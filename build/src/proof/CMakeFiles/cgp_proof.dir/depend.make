# Empty dependencies file for cgp_proof.
# This may be replaced when dependencies are built.
