file(REMOVE_RECURSE
  "libcgp_proof.a"
)
