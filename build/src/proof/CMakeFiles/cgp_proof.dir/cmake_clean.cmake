file(REMOVE_RECURSE
  "CMakeFiles/cgp_proof.dir/deduction.cpp.o"
  "CMakeFiles/cgp_proof.dir/deduction.cpp.o.d"
  "CMakeFiles/cgp_proof.dir/prop.cpp.o"
  "CMakeFiles/cgp_proof.dir/prop.cpp.o.d"
  "CMakeFiles/cgp_proof.dir/theories.cpp.o"
  "CMakeFiles/cgp_proof.dir/theories.cpp.o.d"
  "libcgp_proof.a"
  "libcgp_proof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_proof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
