# Empty dependencies file for cgp_distributed.
# This may be replaced when dependencies are built.
