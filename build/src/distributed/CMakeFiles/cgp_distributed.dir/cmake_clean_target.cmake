file(REMOVE_RECURSE
  "libcgp_distributed.a"
)
