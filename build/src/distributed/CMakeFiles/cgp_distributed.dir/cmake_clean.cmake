file(REMOVE_RECURSE
  "CMakeFiles/cgp_distributed.dir/algorithms.cpp.o"
  "CMakeFiles/cgp_distributed.dir/algorithms.cpp.o.d"
  "CMakeFiles/cgp_distributed.dir/network.cpp.o"
  "CMakeFiles/cgp_distributed.dir/network.cpp.o.d"
  "libcgp_distributed.a"
  "libcgp_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
