# CMake generated Testfile for 
# Source directory: /root/repo/src/taxonomy
# Build directory: /root/repo/build/src/taxonomy
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
