file(REMOVE_RECURSE
  "CMakeFiles/cgp_taxonomy.dir/taxonomy.cpp.o"
  "CMakeFiles/cgp_taxonomy.dir/taxonomy.cpp.o.d"
  "libcgp_taxonomy.a"
  "libcgp_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
