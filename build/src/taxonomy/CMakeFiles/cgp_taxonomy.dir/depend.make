# Empty dependencies file for cgp_taxonomy.
# This may be replaced when dependencies are built.
