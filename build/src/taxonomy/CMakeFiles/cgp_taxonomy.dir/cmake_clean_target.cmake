file(REMOVE_RECURSE
  "libcgp_taxonomy.a"
)
