# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("rewrite")
subdirs("proof")
subdirs("stllint")
subdirs("sequences")
subdirs("graph")
subdirs("linalg")
subdirs("taxonomy")
subdirs("distributed")
subdirs("parallel")
