file(REMOVE_RECURSE
  "CMakeFiles/cgp_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/cgp_parallel.dir/thread_pool.cpp.o.d"
  "libcgp_parallel.a"
  "libcgp_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
