file(REMOVE_RECURSE
  "libcgp_parallel.a"
)
