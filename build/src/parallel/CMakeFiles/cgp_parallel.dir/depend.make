# Empty dependencies file for cgp_parallel.
# This may be replaced when dependencies are built.
