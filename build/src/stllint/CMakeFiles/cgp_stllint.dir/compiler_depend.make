# Empty compiler generated dependencies file for cgp_stllint.
# This may be replaced when dependencies are built.
