file(REMOVE_RECURSE
  "libcgp_stllint.a"
)
