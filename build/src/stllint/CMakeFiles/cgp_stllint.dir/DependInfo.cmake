
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stllint/analyzer.cpp" "src/stllint/CMakeFiles/cgp_stllint.dir/analyzer.cpp.o" "gcc" "src/stllint/CMakeFiles/cgp_stllint.dir/analyzer.cpp.o.d"
  "/root/repo/src/stllint/lexer.cpp" "src/stllint/CMakeFiles/cgp_stllint.dir/lexer.cpp.o" "gcc" "src/stllint/CMakeFiles/cgp_stllint.dir/lexer.cpp.o.d"
  "/root/repo/src/stllint/parser.cpp" "src/stllint/CMakeFiles/cgp_stllint.dir/parser.cpp.o" "gcc" "src/stllint/CMakeFiles/cgp_stllint.dir/parser.cpp.o.d"
  "/root/repo/src/stllint/specs.cpp" "src/stllint/CMakeFiles/cgp_stllint.dir/specs.cpp.o" "gcc" "src/stllint/CMakeFiles/cgp_stllint.dir/specs.cpp.o.d"
  "/root/repo/src/stllint/stllint.cpp" "src/stllint/CMakeFiles/cgp_stllint.dir/stllint.cpp.o" "gcc" "src/stllint/CMakeFiles/cgp_stllint.dir/stllint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cgp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
