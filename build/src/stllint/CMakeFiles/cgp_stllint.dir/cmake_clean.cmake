file(REMOVE_RECURSE
  "CMakeFiles/cgp_stllint.dir/analyzer.cpp.o"
  "CMakeFiles/cgp_stllint.dir/analyzer.cpp.o.d"
  "CMakeFiles/cgp_stllint.dir/lexer.cpp.o"
  "CMakeFiles/cgp_stllint.dir/lexer.cpp.o.d"
  "CMakeFiles/cgp_stllint.dir/parser.cpp.o"
  "CMakeFiles/cgp_stllint.dir/parser.cpp.o.d"
  "CMakeFiles/cgp_stllint.dir/specs.cpp.o"
  "CMakeFiles/cgp_stllint.dir/specs.cpp.o.d"
  "CMakeFiles/cgp_stllint.dir/stllint.cpp.o"
  "CMakeFiles/cgp_stllint.dir/stllint.cpp.o.d"
  "libcgp_stllint.a"
  "libcgp_stllint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_stllint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
