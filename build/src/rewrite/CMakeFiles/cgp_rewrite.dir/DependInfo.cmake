
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewrite/engine.cpp" "src/rewrite/CMakeFiles/cgp_rewrite.dir/engine.cpp.o" "gcc" "src/rewrite/CMakeFiles/cgp_rewrite.dir/engine.cpp.o.d"
  "/root/repo/src/rewrite/eval.cpp" "src/rewrite/CMakeFiles/cgp_rewrite.dir/eval.cpp.o" "gcc" "src/rewrite/CMakeFiles/cgp_rewrite.dir/eval.cpp.o.d"
  "/root/repo/src/rewrite/expr.cpp" "src/rewrite/CMakeFiles/cgp_rewrite.dir/expr.cpp.o" "gcc" "src/rewrite/CMakeFiles/cgp_rewrite.dir/expr.cpp.o.d"
  "/root/repo/src/rewrite/parser.cpp" "src/rewrite/CMakeFiles/cgp_rewrite.dir/parser.cpp.o" "gcc" "src/rewrite/CMakeFiles/cgp_rewrite.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cgp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
