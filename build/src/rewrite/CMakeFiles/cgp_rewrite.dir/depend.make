# Empty dependencies file for cgp_rewrite.
# This may be replaced when dependencies are built.
