file(REMOVE_RECURSE
  "libcgp_rewrite.a"
)
