file(REMOVE_RECURSE
  "CMakeFiles/cgp_rewrite.dir/engine.cpp.o"
  "CMakeFiles/cgp_rewrite.dir/engine.cpp.o.d"
  "CMakeFiles/cgp_rewrite.dir/eval.cpp.o"
  "CMakeFiles/cgp_rewrite.dir/eval.cpp.o.d"
  "CMakeFiles/cgp_rewrite.dir/expr.cpp.o"
  "CMakeFiles/cgp_rewrite.dir/expr.cpp.o.d"
  "CMakeFiles/cgp_rewrite.dir/parser.cpp.o"
  "CMakeFiles/cgp_rewrite.dir/parser.cpp.o.d"
  "libcgp_rewrite.a"
  "libcgp_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
