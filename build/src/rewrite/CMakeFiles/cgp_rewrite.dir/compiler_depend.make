# Empty compiler generated dependencies file for cgp_rewrite.
# This may be replaced when dependencies are built.
