# Empty compiler generated dependencies file for cgp_core.
# This may be replaced when dependencies are built.
