file(REMOVE_RECURSE
  "libcgp_core.a"
)
