file(REMOVE_RECURSE
  "CMakeFiles/cgp_core.dir/complexity.cpp.o"
  "CMakeFiles/cgp_core.dir/complexity.cpp.o.d"
  "CMakeFiles/cgp_core.dir/registry.cpp.o"
  "CMakeFiles/cgp_core.dir/registry.cpp.o.d"
  "CMakeFiles/cgp_core.dir/term.cpp.o"
  "CMakeFiles/cgp_core.dir/term.cpp.o.d"
  "libcgp_core.a"
  "libcgp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
