file(REMOVE_RECURSE
  "CMakeFiles/rewrite_test.dir/rewrite_test.cpp.o"
  "CMakeFiles/rewrite_test.dir/rewrite_test.cpp.o.d"
  "rewrite_test"
  "rewrite_test.pdb"
  "rewrite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
