file(REMOVE_RECURSE
  "CMakeFiles/proof_test.dir/proof_test.cpp.o"
  "CMakeFiles/proof_test.dir/proof_test.cpp.o.d"
  "proof_test"
  "proof_test.pdb"
  "proof_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
