# Empty dependencies file for proof_test.
# This may be replaced when dependencies are built.
