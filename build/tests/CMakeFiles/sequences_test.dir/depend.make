# Empty dependencies file for sequences_test.
# This may be replaced when dependencies are built.
