file(REMOVE_RECURSE
  "CMakeFiles/sequences_test.dir/sequences_test.cpp.o"
  "CMakeFiles/sequences_test.dir/sequences_test.cpp.o.d"
  "sequences_test"
  "sequences_test.pdb"
  "sequences_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequences_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
