# Empty compiler generated dependencies file for stllint_matrix_test.
# This may be replaced when dependencies are built.
