file(REMOVE_RECURSE
  "CMakeFiles/stllint_matrix_test.dir/stllint_matrix_test.cpp.o"
  "CMakeFiles/stllint_matrix_test.dir/stllint_matrix_test.cpp.o.d"
  "stllint_matrix_test"
  "stllint_matrix_test.pdb"
  "stllint_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stllint_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
