file(REMOVE_RECURSE
  "CMakeFiles/stllint_test.dir/stllint_test.cpp.o"
  "CMakeFiles/stllint_test.dir/stllint_test.cpp.o.d"
  "stllint_test"
  "stllint_test.pdb"
  "stllint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stllint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
