# Empty compiler generated dependencies file for stllint_test.
# This may be replaced when dependencies are built.
