# Empty compiler generated dependencies file for rewrite_parser_test.
# This may be replaced when dependencies are built.
