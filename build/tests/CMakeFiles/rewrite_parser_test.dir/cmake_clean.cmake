file(REMOVE_RECURSE
  "CMakeFiles/rewrite_parser_test.dir/rewrite_parser_test.cpp.o"
  "CMakeFiles/rewrite_parser_test.dir/rewrite_parser_test.cpp.o.d"
  "rewrite_parser_test"
  "rewrite_parser_test.pdb"
  "rewrite_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
