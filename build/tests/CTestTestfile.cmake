# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_test[1]_include.cmake")
include("/root/repo/build/tests/proof_test[1]_include.cmake")
include("/root/repo/build/tests/stllint_test[1]_include.cmake")
include("/root/repo/build/tests/sequences_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/distributed_test[1]_include.cmake")
include("/root/repo/build/tests/taxonomy_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/stllint_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_parser_test[1]_include.cmake")
