file(REMOVE_RECURSE
  "CMakeFiles/fig6_proof.dir/fig6_proof.cpp.o"
  "CMakeFiles/fig6_proof.dir/fig6_proof.cpp.o.d"
  "fig6_proof"
  "fig6_proof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_proof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
