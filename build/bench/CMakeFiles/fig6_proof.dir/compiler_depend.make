# Empty compiler generated dependencies file for fig6_proof.
# This may be replaced when dependencies are built.
