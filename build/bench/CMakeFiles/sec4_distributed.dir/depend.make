# Empty dependencies file for sec4_distributed.
# This may be replaced when dependencies are built.
