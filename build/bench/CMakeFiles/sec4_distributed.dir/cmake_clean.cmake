file(REMOVE_RECURSE
  "CMakeFiles/sec4_distributed.dir/sec4_distributed.cpp.o"
  "CMakeFiles/sec4_distributed.dir/sec4_distributed.cpp.o.d"
  "sec4_distributed"
  "sec4_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
