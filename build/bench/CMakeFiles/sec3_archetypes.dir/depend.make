# Empty dependencies file for sec3_archetypes.
# This may be replaced when dependencies are built.
