file(REMOVE_RECURSE
  "CMakeFiles/sec3_archetypes.dir/sec3_archetypes.cpp.o"
  "CMakeFiles/sec3_archetypes.dir/sec3_archetypes.cpp.o.d"
  "sec3_archetypes"
  "sec3_archetypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec3_archetypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
