file(REMOVE_RECURSE
  "CMakeFiles/fig1_2_graph_concepts.dir/fig1_2_graph_concepts.cpp.o"
  "CMakeFiles/fig1_2_graph_concepts.dir/fig1_2_graph_concepts.cpp.o.d"
  "fig1_2_graph_concepts"
  "fig1_2_graph_concepts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_2_graph_concepts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
