# Empty compiler generated dependencies file for fig1_2_graph_concepts.
# This may be replaced when dependencies are built.
