# Empty dependencies file for sec2_dispatch.
# This may be replaced when dependencies are built.
