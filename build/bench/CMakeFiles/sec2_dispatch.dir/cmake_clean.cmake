file(REMOVE_RECURSE
  "CMakeFiles/sec2_dispatch.dir/sec2_dispatch.cpp.o"
  "CMakeFiles/sec2_dispatch.dir/sec2_dispatch.cpp.o.d"
  "sec2_dispatch"
  "sec2_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec2_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
