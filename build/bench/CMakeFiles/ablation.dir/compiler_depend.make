# Empty compiler generated dependencies file for ablation.
# This may be replaced when dependencies are built.
