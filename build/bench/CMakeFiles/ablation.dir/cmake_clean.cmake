file(REMOVE_RECURSE
  "CMakeFiles/ablation.dir/ablation.cpp.o"
  "CMakeFiles/ablation.dir/ablation.cpp.o.d"
  "ablation"
  "ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
