# Empty dependencies file for sec3_algorithm_selection.
# This may be replaced when dependencies are built.
