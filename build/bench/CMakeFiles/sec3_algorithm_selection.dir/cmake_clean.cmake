file(REMOVE_RECURSE
  "CMakeFiles/sec3_algorithm_selection.dir/sec3_algorithm_selection.cpp.o"
  "CMakeFiles/sec3_algorithm_selection.dir/sec3_algorithm_selection.cpp.o.d"
  "sec3_algorithm_selection"
  "sec3_algorithm_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec3_algorithm_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
