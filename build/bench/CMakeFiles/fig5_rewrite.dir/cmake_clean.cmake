file(REMOVE_RECURSE
  "CMakeFiles/fig5_rewrite.dir/fig5_rewrite.cpp.o"
  "CMakeFiles/fig5_rewrite.dir/fig5_rewrite.cpp.o.d"
  "fig5_rewrite"
  "fig5_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
