# Empty dependencies file for fig5_rewrite.
# This may be replaced when dependencies are built.
