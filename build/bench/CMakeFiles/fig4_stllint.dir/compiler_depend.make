# Empty compiler generated dependencies file for fig4_stllint.
# This may be replaced when dependencies are built.
