file(REMOVE_RECURSE
  "CMakeFiles/fig4_stllint.dir/fig4_stllint.cpp.o"
  "CMakeFiles/fig4_stllint.dir/fig4_stllint.cpp.o.d"
  "fig4_stllint"
  "fig4_stllint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_stllint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
