file(REMOVE_RECURSE
  "CMakeFiles/sec4_dataparallel.dir/sec4_dataparallel.cpp.o"
  "CMakeFiles/sec4_dataparallel.dir/sec4_dataparallel.cpp.o.d"
  "sec4_dataparallel"
  "sec4_dataparallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_dataparallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
