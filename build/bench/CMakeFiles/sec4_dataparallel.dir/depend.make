# Empty dependencies file for sec4_dataparallel.
# This may be replaced when dependencies are built.
