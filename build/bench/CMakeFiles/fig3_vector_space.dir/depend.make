# Empty dependencies file for fig3_vector_space.
# This may be replaced when dependencies are built.
