file(REMOVE_RECURSE
  "CMakeFiles/fig3_vector_space.dir/fig3_vector_space.cpp.o"
  "CMakeFiles/fig3_vector_space.dir/fig3_vector_space.cpp.o.d"
  "fig3_vector_space"
  "fig3_vector_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_vector_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
