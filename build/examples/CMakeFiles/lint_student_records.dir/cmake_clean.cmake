file(REMOVE_RECURSE
  "CMakeFiles/lint_student_records.dir/lint_student_records.cpp.o"
  "CMakeFiles/lint_student_records.dir/lint_student_records.cpp.o.d"
  "lint_student_records"
  "lint_student_records.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lint_student_records.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
