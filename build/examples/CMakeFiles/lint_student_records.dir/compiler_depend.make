# Empty compiler generated dependencies file for lint_student_records.
# This may be replaced when dependencies are built.
