file(REMOVE_RECURSE
  "CMakeFiles/parallel_pipeline.dir/parallel_pipeline.cpp.o"
  "CMakeFiles/parallel_pipeline.dir/parallel_pipeline.cpp.o.d"
  "parallel_pipeline"
  "parallel_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
