# Empty compiler generated dependencies file for parallel_pipeline.
# This may be replaced when dependencies are built.
