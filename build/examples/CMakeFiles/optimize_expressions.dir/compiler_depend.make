# Empty compiler generated dependencies file for optimize_expressions.
# This may be replaced when dependencies are built.
