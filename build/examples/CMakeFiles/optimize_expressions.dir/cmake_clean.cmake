file(REMOVE_RECURSE
  "CMakeFiles/optimize_expressions.dir/optimize_expressions.cpp.o"
  "CMakeFiles/optimize_expressions.dir/optimize_expressions.cpp.o.d"
  "optimize_expressions"
  "optimize_expressions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_expressions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
