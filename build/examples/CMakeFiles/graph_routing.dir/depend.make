# Empty dependencies file for graph_routing.
# This may be replaced when dependencies are built.
