file(REMOVE_RECURSE
  "CMakeFiles/graph_routing.dir/graph_routing.cpp.o"
  "CMakeFiles/graph_routing.dir/graph_routing.cpp.o.d"
  "graph_routing"
  "graph_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
