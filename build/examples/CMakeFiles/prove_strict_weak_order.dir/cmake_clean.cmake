file(REMOVE_RECURSE
  "CMakeFiles/prove_strict_weak_order.dir/prove_strict_weak_order.cpp.o"
  "CMakeFiles/prove_strict_weak_order.dir/prove_strict_weak_order.cpp.o.d"
  "prove_strict_weak_order"
  "prove_strict_weak_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prove_strict_weak_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
