# Empty dependencies file for prove_strict_weak_order.
# This may be replaced when dependencies are built.
