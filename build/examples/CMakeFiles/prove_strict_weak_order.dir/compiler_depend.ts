# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for prove_strict_weak_order.
