# Empty compiler generated dependencies file for distributed_leader_election.
# This may be replaced when dependencies are built.
