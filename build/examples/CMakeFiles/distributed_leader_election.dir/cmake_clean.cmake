file(REMOVE_RECURSE
  "CMakeFiles/distributed_leader_election.dir/distributed_leader_election.cpp.o"
  "CMakeFiles/distributed_leader_election.dir/distributed_leader_election.cpp.o.d"
  "distributed_leader_election"
  "distributed_leader_election.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_leader_election.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
