# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lint_student_records "/root/repo/build/examples/lint_student_records")
set_tests_properties(example_lint_student_records PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_optimize_expressions "/root/repo/build/examples/optimize_expressions")
set_tests_properties(example_optimize_expressions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_prove_strict_weak_order "/root/repo/build/examples/prove_strict_weak_order")
set_tests_properties(example_prove_strict_weak_order PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_graph_routing "/root/repo/build/examples/graph_routing")
set_tests_properties(example_graph_routing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed_leader_election "/root/repo/build/examples/distributed_leader_election")
set_tests_properties(example_distributed_leader_election PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_taxonomy_explorer "/root/repo/build/examples/taxonomy_explorer")
set_tests_properties(example_taxonomy_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
