// Walks all three algorithm concept taxonomies (sequence, graph,
// distributed — Sections 1 and 4), then answers "which algorithm should I
// use?" queries the way the paper envisions a system designer would.
//
// Build: cmake --build build && ./build/examples/taxonomy_explorer
#include <cstdio>

#include "taxonomy/taxonomy.hpp"

namespace {

void ask(const cgp::taxonomy::taxonomy& t,
         const cgp::taxonomy::requirements& req, const std::string& metric,
         std::map<std::string, double> env, const char* story) {
  std::printf("\nQ: %s\n   requirements:", story);
  for (const auto& [d, c] : req) std::printf(" %s=%s", d.c_str(), c.c_str());
  std::printf("; minimize %s at {", metric.c_str());
  for (const auto& [k, v] : env) std::printf(" %s=%.0f", k.c_str(), v);
  std::printf(" }\n");
  const auto matches = t.query(req);
  std::printf("   candidates:");
  for (const auto& m : matches) std::printf(" %s", m.name.c_str());
  if (matches.empty()) std::printf(" (none)");
  std::printf("\n");
  if (const auto best = t.select(req, metric, env)) {
    std::printf("   A: %s  [%s]  (%s = %s)\n", best->name.c_str(),
                best->implemented_by.c_str(), metric.c_str(),
                best->costs.at(metric).to_string().c_str());
    if (!best->notes.empty()) std::printf("      note: %s\n",
                                          best->notes.c_str());
  } else {
    std::printf("   A: no algorithm satisfies these requirements\n");
  }
}

}  // namespace

int main() {
  using cgp::taxonomy::requirements;

  const auto seq = cgp::taxonomy::sequence_taxonomy();
  const auto gph = cgp::taxonomy::graph_taxonomy();
  const auto dst = cgp::taxonomy::distributed_taxonomy();

  std::printf("%s\n", seq.describe().c_str());
  std::printf("%s\n", gph.describe().c_str());
  std::printf("%s\n", dst.describe().c_str());

  std::printf("================ designer queries ================\n");
  ask(seq, {{"problem", "searching"}, {"precondition", "none"}},
      "comparisons", {{"n", 1e6}},
      "search a million unsorted records (cannot guarantee order)");
  ask(seq, {{"problem", "searching"}, {"precondition", "sorted"}},
      "comparisons", {{"n", 1e6}},
      "search a million records I just sorted");
  ask(seq, {{"problem", "sorting"}, {"iterator", "forward"}}, "comparisons",
      {{"n", 1e5}},
      "sort data reachable only through forward iterators");
  ask(gph, {{"problem", "shortest-paths"}}, "time",
      {{"V", 1e4}, {"E", 1e5}},
      "route over a 10k-node road network");
  ask(dst, {{"problem", "leader-election"}, {"topology", "ring"}},
      "messages", {{"n", 4096}},
      "elect a coordinator on a 4096-node token ring");
  ask(dst,
      {{"problem", "leader-election"}, {"topology", "ring"},
       {"strategy", "randomized"}},
      "messages", {{"n", 64}},
      "elect on an ANONYMOUS ring (no unique ids => must randomize)");
  ask(dst, {{"problem", "failure-detection"}, {"fault-tolerance", "crash"}},
      "messages", {{"E", 500}, {"R", 100}},
      "watch a 500-link cluster for crashes over 100 rounds");
  ask(dst, {{"problem", "consensus"}}, "messages", {{"n", 10}},
      "byzantine consensus (not implemented: taxonomy answers honestly)");
  return 0;
}
