// Fig. 6 end-to-end: from the Strict Weak Order axioms, machine-check that
// the induced relation E is an equivalence relation, then instantiate the
// same generic proof for several concrete orders — "in much the same way as
// one does with generic algorithms" (Section 3.3).
//
// Build: cmake --build build && ./build/examples/prove_strict_weak_order
#include <cstdio>

#include "proof/theories.hpp"

int main() {
  using namespace cgp::proof;

  std::printf("Fig. 6 — axioms of a Strict Weak Order:\n");
  for (const prop& ax : theories::strict_weak_order_axioms({}))
    std::printf("  axiom: %s\n", ax.to_string().c_str());

  std::printf("\nderived theorems (each run is a full proof CHECK):\n");
  for (const theorem& thm :
       {theories::equivalence_reflexive(), theories::equivalence_symmetric(),
        theories::equivalence_relation()}) {
    std::size_t steps = 0;
    const prop proved = thm.check({}, &steps);
    std::printf("  %-28s  %-62s (%zu inferences)\n", thm.name.c_str(),
                proved.to_string().c_str(), steps);
  }

  std::printf("\ninstantiating the generic proof for concrete orders:\n");
  const theorem generic = theories::equivalence_relation();
  const std::pair<const char*, signature> models[] = {
      {"int under <", signature{{{"lt", "lt_int"}, {"E", "eq_int"}}}},
      {"string lexicographic", signature{{{"lt", "lex"}, {"E", "same"}}}},
      {"case-insensitive chars",
       signature{{{"lt", "ci_less"}, {"E", "ci_equiv"}}}},
  };
  for (const auto& [label, sig] : models) {
    const prop inst = generic.check(sig);
    std::printf("  %-24s |- %s\n", label, inst.to_string().c_str());
  }

  std::printf("\nimproper deductions are rejected, not silently accepted:\n");
  theorem bogus = theories::equivalence_reflexive();
  bogus.axioms = [](const signature&) { return std::vector<prop>{}; };
  try {
    (void)bogus.check();
    std::printf("  UNEXPECTED: bogus proof accepted\n");
  } catch (const proof_error& e) {
    std::printf("  rejected as expected: %s\n", e.what());
  }

  std::printf(
      "\nalgebraic bonus — the annihilation theorem licensing the rewrite "
      "engine's x*0 -> 0:\n");
  std::size_t steps = 0;
  const prop ann = theories::ring_annihilation().check(
      signature{{{"op", "+"}, {"e", "0"}, {"mul", "*"}, {"one", "1"}}},
      &steps);
  std::printf("  |- %s  (%zu inferences)\n", ann.to_string().c_str(), steps);
  return 0;
}
