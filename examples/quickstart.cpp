// Quickstart: the concept system in ten minutes.
//
//  1. declare a user-defined type a model of algebraic concepts (nominal
//     conformance with semantic witnesses);
//  2. use concept-constrained generic algorithms on it;
//  3. register the model in the runtime concept registry and watch the
//     concept-based optimizer pick up a rewrite "for free";
//  4. machine-check the theory your declaration signed up for.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/algebraic.hpp"
#include "core/registry.hpp"
#include "proof/theories.hpp"
#include "rewrite/engine.hpp"
#include "sequences/algorithms.hpp"

// A toy user-defined type: arithmetic modulo 7.
struct mod7 {
  int v = 0;
  friend bool operator==(const mod7&, const mod7&) = default;
};
struct mod7_add {
  mod7 operator()(mod7 a, mod7 b) const { return {(a.v + b.v) % 7}; }
};

// Step 1: declare (mod7, mod7_add) an abelian group.  The declaration is a
// *promise* of the axioms; the proof module below shows what that promise
// formally entails.
namespace cgp::core {
template <>
struct declares_associative<mod7, mod7_add> : std::true_type {};
template <>
struct declares_commutative<mod7, mod7_add> : std::true_type {};
template <>
struct monoid_traits<mod7, mod7_add> {
  static mod7 identity() { return {0}; }
};
template <>
struct group_traits<mod7, mod7_add> {
  static mod7 inverse(const mod7& a) { return {(7 - a.v) % 7}; }
};
}  // namespace cgp::core

static_assert(cgp::core::AbelianGroup<mod7, mod7_add>);

int main() {
  // Step 2: the Monoid-constrained reduction now accepts mod7 out of the
  // box — the identity element comes from the declared model.
  std::vector<mod7> xs{{3}, {5}, {6}, {1}};
  const mod7 sum = cgp::sequences::reduce<mod7_add>(xs.begin(), xs.end());
  std::printf("reduce over Z/7: (3+5+6+1) mod 7 = %d\n", sum.v);

  // Step 3: register the model with the runtime registry; the
  // Simplicissimus-style optimizer immediately knows `x + 0 -> x` and
  // `x + (-x) -> 0` are sound for mod7 expressions.
  auto& reg = cgp::core::concept_registry::global();
  reg.declare_model({"AbelianGroup",
                     {"mod7", "+"},
                     {{"op", "+"}, {"e", "0"}, {"inv", "-"}}});

  cgp::rewrite::simplifier opt;
  opt.add_default_concept_rules();
  using E = cgp::rewrite::expr;
  const E x = E::var("x", "mod7");
  const E zero = cgp::rewrite::parse_literal("0", "mod7").value();
  const E before =
      E::binary_op("+", E::binary_op("+", x, zero), E::unary_op("-", x));
  std::vector<cgp::rewrite::rewrite_step> trace;
  const E after = opt.simplify(before, &trace);
  std::printf("\noptimizer: %s  ==>  %s\n", before.to_string().c_str(),
              after.to_string().c_str());
  for (const auto& step : trace)
    std::printf("  applied %-26s  %s -> %s\n", step.rule.c_str(),
                step.before.c_str(), step.after.c_str());

  // Step 4: machine-check the group theory the declaration relies on, then
  // instantiate the generic proof for mod7's signature.
  std::size_t steps = 0;
  const auto thm = cgp::proof::theories::group_left_cancellation().check(
      cgp::proof::signature{{{"op", "+mod7"}, {"e", "0mod7"}}}, &steps);
  std::printf("\nproof checker certified (in %zu primitive inferences):\n  %s\n",
              steps, thm.to_string().c_str());

  // And the registry can render the concept's full contract:
  std::printf("\n%s", reg.describe("Group").c_str());
  return 0;
}
