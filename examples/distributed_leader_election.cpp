// Section 4 end-to-end: run leader elections on simulated rings, account
// for messages / time / LOCAL COMPUTATION, and let the seven-dimension
// taxonomy pick the right algorithm for a deployment.
//
// Build: cmake --build build && ./build/examples/distributed_leader_election
#include <cstdio>

#include "distributed/algorithms.hpp"
#include "taxonomy/taxonomy.hpp"

int main() {
  using namespace cgp::distributed;

  std::printf("%-6s %-28s %10s %8s %12s\n", "n", "algorithm", "messages",
              "rounds", "local steps");
  for (const std::size_t n : {16u, 64u, 256u}) {
    for (const auto& [name, algo] :
         {std::pair<const char*, process_factory>{"lcr (async)",
                                                  lcr_leader_election()},
          {"hs (async)", hs_leader_election()},
          {"peterson (async, fifo)", peterson_leader_election()}}) {
      const auto out = run_ring_election(algo, {.nodes = n, .mode = timing::asynchronous});
      std::printf("%-6zu %-28s %10zu %8zu %12zu   leader uid %ld%s\n", n,
                  name, out.stats.messages_total, out.stats.rounds,
                  out.stats.local_steps, out.leader_uid,
                  out.leaders == 1 ? "" : "  !! NOT UNIQUE");
    }
  }

  std::printf("\nanonymous ring (no uids): randomized election, 5 seeds\n");
  for (std::uint32_t seed = 1; seed <= 5; ++seed) {
    sim_transport net({.nodes = 8, .seed = seed});
    net.spawn(randomized_anonymous_election());
    const auto stats = net.run();
    std::printf("  seed %u: %zu leader(s), %zu messages, %zu rounds\n", seed,
                net.deciders("leader").size(), stats.messages_total,
                stats.rounds);
  }

  std::printf("\nfault injection: heartbeat detector on a 6-ring, node 2 "
              "crashes at round 5\n");
  {
    sim_transport net({.nodes = 6});
    net.spawn(heartbeat_detector(3));
    net.crash(2, 5);
    (void)net.run(25);
    for (int v = 0; v < 6; ++v)
      for (int nb : net.neighbors_of(v))
        if (auto r = net.decision(v, "suspects:" + std::to_string(nb)))
          std::printf("  node %d suspects node %d (at round %ld)\n", v, nb,
                      *r);
  }

  // Taxonomy-driven selection (Section 4: "helps a system designer to pick
  // the correct algorithm").
  const auto tax = cgp::taxonomy::distributed_taxonomy();
  std::printf("\ntaxonomy selection, problem=leader-election topology=ring, "
              "minimizing messages:\n");
  for (const double n : {4.0, 64.0, 4096.0}) {
    const auto best = tax.select(
        {{"problem", "leader-election"}, {"topology", "ring"}}, "messages",
        {{"n", n}});
    std::printf("  n = %6.0f  ->  %s\n", n,
                best ? best->name.c_str() : "(none)");
  }
  std::printf("\nper-dimension classification of the chosen algorithm:\n");
  if (const auto* rec = tax.find("hs-leader-election")) {
    for (const auto& [dim, c] : rec->classification)
      std::printf("  %-22s %s\n", dim.c_str(), c.c_str());
    for (const auto& [metric, bound] : rec->costs)
      std::printf("  %-22s %s\n", metric.c_str(), bound.to_string().c_str());
  }
  return 0;
}
