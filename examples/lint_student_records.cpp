// Fig. 4 end-to-end: STLlint finds the iterator-invalidation bug in the
// textbook failing-grades program, and the Section 3.2 sorted-range
// optimization advisory.
//
// Build: cmake --build build && ./build/examples/lint_student_records
#include <cstdio>

#include "stllint/stllint.hpp"

namespace {

constexpr const char* kFig4 = R"(
vector<student_info> extract_fails(vector<student_info>& students) {
  vector<student_info> fail;
  vector<student_info>::iterator iter = students.begin();
  while (iter != students.end()) {
    if (fgrade(*iter)) {
      fail.push_back(*iter);
      students.erase(iter);
    } else
      ++iter;
  }
  return fail;
}
)";

constexpr const char* kFig4Fixed = R"(
vector<student_info> extract_fails(vector<student_info>& students) {
  vector<student_info> fail;
  vector<student_info>::iterator iter = students.begin();
  while (iter != students.end()) {
    if (fgrade(*iter)) {
      fail.push_back(*iter);
      iter = students.erase(iter);
    } else
      ++iter;
  }
  return fail;
}
)";

constexpr const char* kSortThenFind = R"(
void lookup(vector<int>& grades) {
  sort(grades.begin(), grades.end());
  vector<int>::iterator i = find(grades.begin(), grades.end(), 42);
}
)";

void lint_and_print(const char* title, const char* source) {
  std::printf("==== %s ====\n", title);
  const auto result = cgp::stllint::lint_source(source);
  if (result.diags.empty()) {
    std::printf("  (no diagnostics)\n\n");
    return;
  }
  for (const auto& d : result.diags)
    std::printf("%s\n", d.to_string().c_str());
  std::printf("analyzed %zu statements, %zu expressions, %zu loop passes\n\n",
              result.stats.statements, result.stats.expressions,
              result.stats.loop_passes);
}

}  // namespace

int main() {
  // The paper's example: "Warning: attempt to dereference a singular
  // iterator / if (fgrade(*iter)) {"
  lint_and_print("Fig. 4: the misguided optimization", kFig4);
  lint_and_print("Fig. 4, fixed with erase's return value", kFig4Fixed);
  // Section 3.2's advisory, verbatim.
  lint_and_print("sort + linear find (optimization advisory)", kSortThenFind);
  return 0;
}
