// Fig. 5 end-to-end: two concept-based rewrite rules cover the table's ten
// per-type instances; a LiDIA-style user rule specializes 1.0/f to a
// library call; the cost model quantifies the win.
//
// Build: cmake --build build && ./build/examples/optimize_expressions
#include <cstdio>
#include <vector>

#include "rewrite/engine.hpp"
#include "rewrite/eval.hpp"

using cgp::rewrite::expr;

namespace {

void show(const cgp::rewrite::simplifier& opt, const expr& e) {
  const cgp::rewrite::cost_model cm;
  std::vector<cgp::rewrite::rewrite_step> trace;
  const expr out = opt.simplify(e, &trace);
  std::printf("  %-34s ->  %-14s", e.to_string().c_str(),
              out.to_string().c_str());
  if (!trace.empty())
    std::printf("  [%s]", trace.front().rule.c_str());
  std::printf("  (cost %.0f -> %.0f)\n", cm.total(e), cm.total(out));
}

}  // namespace

int main() {
  cgp::rewrite::simplifier opt;
  // THE two rules of Fig. 5 (plus the reciprocal normalization that lets
  // the Group rule see `f * (1.0/f)`).
  opt.add_concept_rule({"Monoid", "right_identity"});
  opt.add_concept_rule({"Group", "right_inverse"});
  opt.add_expr_rule(cgp::rewrite::reciprocal_normalization_rule("double"));

  using E = expr;
  const E i = E::var("i", "int");
  const E f = E::var("f", "double");
  const E b = E::var("b", "bool");
  const E u = E::var("u", "unsigned");
  const E s = E::var("s", "string");
  const E A = E::var("A", "matrix");

  std::printf("Fig. 5, row 1 — x + 0 -> x where (x,+) models Monoid:\n");
  show(opt, E::binary_op("*", i, E::int_lit(1)));
  show(opt, E::binary_op("*", f, E::double_lit(1.0)));
  show(opt, E::binary_op("&&", b, E::bool_lit(true)));
  show(opt, E::binary_op("&", u, E::uint_lit(0xFFFFFFFFull)));
  show(opt, E::call_fn("concat", {s, E::string_lit("")}, "string"));
  show(opt, E::call_fn("matmul", {A, E::constant("I", "matrix")}, "matrix"));

  std::printf("\nFig. 5, row 2 — x + (-x) -> 0 where (x,+,-) models Group:\n");
  show(opt, E::binary_op("+", i, E::unary_op("-", i)));
  show(opt, E::binary_op("*", f, E::binary_op("/", E::double_lit(1.0), f)));
  show(opt, E::binary_op("^", u, u));
  show(opt,
       E::call_fn("matmul", {A, E::call_fn("inverse", {A}, "matrix")},
                  "matrix"));

  std::printf("\nGuard in action — (int, -) models nothing, so no rewrite:\n");
  show(opt, E::binary_op("-", i, E::int_lit(0)));

  std::printf("\nLiDIA-style user extension — 1.0/f -> f.Inverse():\n");
  opt.add_expr_rule(cgp::rewrite::lidia_inverse_rule());
  const E bf = E::var("f", "bigfloat");
  show(opt, E::binary_op("/", E::lit(1.0, "bigfloat"), bf));

  std::printf(
      "\nrule accounting: %zu generic concept rules replaced %zu enumerated "
      "instances\n",
      opt.concept_rule_count(), cgp::rewrite::fig5_instance_rules().size());
  return 0;
}
