// Graph library walkthrough: a small road network exercised through the
// Fig. 1/Fig. 2 concept interface — BFS, Dijkstra, MST, components, and the
// Section 2.3 `first_neighbor` with its single concept constraint.
//
// Build: cmake --build build && ./build/examples/graph_routing
#include <cstdio>

#include "graph/algorithms.hpp"

int main() {
  using namespace cgp::graph;

  // Cities: 0 Aachen, 1 Bonn, 2 Cologne, 3 Dortmund, 4 Essen, 5 Fulda.
  const char* city[] = {"Aachen", "Bonn", "Cologne", "Dortmund", "Essen",
                        "Fulda"};
  adjacency_list<double> roads(6, directedness::undirected);
  roads.add_edge(0, 2, 70.0);
  roads.add_edge(1, 2, 30.0);
  roads.add_edge(2, 3, 95.0);
  roads.add_edge(2, 4, 68.0);
  roads.add_edge(3, 4, 38.0);
  roads.add_edge(1, 5, 170.0);

  static_assert(cgp::core::IncidenceGraph<adjacency_list<double>>);
  static_assert(cgp::core::GraphEdge<edge<double>>);

  std::printf("network: %zu cities, %zu roads\n", num_vertices(roads),
              num_edges(roads));
  for (auto v : vertices(roads))
    std::printf("  %-8s degree %zu\n", city[v], out_degree(v, roads));

  // Section 2.3: one constraint, no associated-type boilerplate.
  const auto [found, nb] = first_neighbor(roads, vertex_descriptor{0});
  if (found) std::printf("\nfirst neighbor of %s: %s\n", city[0], city[nb]);

  // BFS hop counts from Aachen.
  const auto hops = bfs_distances(roads, 0);
  std::printf("\nBFS hops from %s:\n", city[0]);
  for (std::size_t v = 0; v < 6; ++v)
    std::printf("  %-8s %ld\n", city[v], hops[v]);

  // Dijkstra driving distances.
  const auto [dist, pred] = dijkstra_shortest_paths(
      roads, 0, [](const edge<double>& e) { return e.property; });
  std::printf("\nshortest driving distance from %s:\n", city[0]);
  for (std::size_t v = 0; v < 6; ++v) {
    std::printf("  %-8s %6.1f km  (route: %s", city[v], dist[v], city[v]);
    for (std::size_t u = v; pred[u] != u; u = pred[u])
      std::printf(" <- %s", city[pred[u]]);
    std::printf(")\n");
  }

  // Kruskal: the cheapest road subset keeping everything connected.
  const auto mst = kruskal_mst(roads);
  double total = 0.0;
  std::printf("\nminimum spanning tree:\n");
  for (const auto& e : mst) {
    std::printf("  %s -- %s (%.0f km)\n", city[e.src], city[e.dst],
                e.property);
    total += e.property;
  }
  std::printf("  total: %.0f km\n", total);

  // Components after a road closure.
  adjacency_list<double> broken(6, directedness::undirected);
  broken.add_edge(0, 2, 70.0);
  broken.add_edge(1, 2, 30.0);
  broken.add_edge(3, 4, 38.0);
  const auto comp = connected_components(broken);
  std::printf("\nafter closures, components: ");
  for (std::size_t v = 0; v < 6; ++v)
    std::printf("%s=%zu ", city[v], comp[v]);
  std::printf("\n");
  return 0;
}
