// Data-parallel pipeline (Section 4): histogram + prefix statistics over a
// synthetic measurement stream using the Monoid-constrained data-parallel
// primitives.  The semantic concepts earn their keep: a non-associative
// operation will not compile into parallel_reduce.
//
// Build: cmake --build build && ./build/examples/parallel_pipeline
#include <chrono>
#include <cstdio>
#include <random>

#include "parallel/algorithms.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace cgp::parallel;
  thread_pool pool;
  std::printf("thread pool: %u workers\n\n", pool.size());

  // Synthetic sensor readings.
  const std::size_t n = 8'000'000;
  std::vector<double> readings(n);
  std::mt19937 rng(2026);
  std::normal_distribution<double> sensor(20.0, 4.0);
  for (double& r : readings) r = sensor(rng);

  // Stage 1: parallel_transform — calibrate.
  std::vector<double> celsius(n);
  auto t0 = std::chrono::steady_clock::now();
  parallel_transform(readings.begin(), readings.end(), celsius.begin(),
                     [](double r) { return r * 1.002 - 0.3; }, pool);
  std::printf("calibrate (parallel_transform): %.3fs\n", seconds_since(t0));

  // Stage 2: parallel_reduce under the + Monoid for the mean.
  t0 = std::chrono::steady_clock::now();
  const double total =
      parallel_reduce<std::plus<>>(celsius.begin(), celsius.end(), {}, pool);
  std::printf("mean      (parallel_reduce):    %.3fs  mean=%.3f\n",
              seconds_since(t0), total / static_cast<double>(n));

  // Stage 3: running totals via the Monoid-constrained inclusive scan.
  std::vector<double> running(n);
  t0 = std::chrono::steady_clock::now();
  parallel_inclusive_scan<std::plus<>>(celsius.begin(), celsius.end(),
                                       running.begin(), {}, pool);
  std::printf("prefix    (parallel_scan):      %.3fs  last=%.1f\n",
              seconds_since(t0), running.back());

  // Stage 4: top readings via parallel_sort.
  t0 = std::chrono::steady_clock::now();
  parallel_sort(celsius.begin(), celsius.end(), std::greater<>{}, pool);
  std::printf("sort      (parallel_sort):      %.3fs  hottest=%.2f "
              "coldest=%.2f\n",
              seconds_since(t0), celsius.front(), celsius.back());

  // The semantic guardrail, in comments because it must NOT compile:
  //   parallel_reduce<std::minus<>>(celsius.begin(), celsius.end());
  // error: constraint Monoid<double, std::minus<>> not satisfied —
  // subtraction is not associative, so reassociating it across chunks
  // would silently change the answer.  The concept turns that silent wrong
  // answer into a compile-time diagnosis.
  std::printf("\n(non-associative ops are rejected at compile time by the "
              "Monoid constraint)\n");
  return 0;
}
