// Data-parallel pipeline (Section 4): histogram + prefix statistics over a
// synthetic measurement stream using the Monoid-constrained data-parallel
// primitives.  Both concept layers earn their keep: a non-associative
// operation will not compile into parallel_reduce (semantic concept), and
// the same algorithms run unchanged over the legacy thread_pool or the
// work-stealing executor (Executor concept) — the final stage swaps
// schedulers without touching the pipeline.
//
// Build: cmake --build build && ./build/examples/parallel_pipeline
#include <chrono>
#include <cstdio>
#include <random>

#include "parallel/algorithms.hpp"
#include "parallel/work_stealing_pool.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using namespace cgp::parallel;
  thread_pool pool;
  std::printf("thread pool: %u workers\n\n", pool.worker_count());

  // Synthetic sensor readings.
  const std::size_t n = 8'000'000;
  std::vector<double> readings(n);
  std::mt19937 rng(2026);
  std::normal_distribution<double> sensor(20.0, 4.0);
  for (double& r : readings) r = sensor(rng);

  // Stage 1: parallel_transform — calibrate.
  std::vector<double> celsius(n);
  auto t0 = std::chrono::steady_clock::now();
  parallel_transform(readings.begin(), readings.end(), celsius.begin(),
                     [](double r) { return r * 1.002 - 0.3; }, pool);
  std::printf("calibrate (parallel_transform): %.3fs\n", seconds_since(t0));

  // Stage 2: parallel_reduce under the + Monoid for the mean.
  t0 = std::chrono::steady_clock::now();
  const double total =
      parallel_reduce<std::plus<>>(celsius.begin(), celsius.end(), {}, pool);
  std::printf("mean      (parallel_reduce):    %.3fs  mean=%.3f\n",
              seconds_since(t0), total / static_cast<double>(n));

  // Stage 3: running totals via the Monoid-constrained inclusive scan.
  std::vector<double> running(n);
  t0 = std::chrono::steady_clock::now();
  parallel_inclusive_scan<std::plus<>>(celsius.begin(), celsius.end(),
                                       running.begin(), {}, pool);
  std::printf("prefix    (parallel_scan):      %.3fs  last=%.1f\n",
              seconds_since(t0), running.back());

  // Stage 4: top readings via parallel_sort.
  t0 = std::chrono::steady_clock::now();
  parallel_sort(celsius.begin(), celsius.end(), std::greater<>{}, pool);
  std::printf("sort      (parallel_sort):      %.3fs  hottest=%.2f "
              "coldest=%.2f\n",
              seconds_since(t0), celsius.front(), celsius.back());

  // Stage 5: the Executor concept at work — the SAME algorithm call on a
  // different scheduler.  Per-band work here is irregular (band size varies
  // wildly after the sort), which is the work-stealing pool's home turf:
  // a worker that drew a thin band steals bands from loaded peers.
  work_stealing_pool stealer({.workers = 4, .steal_attempts = 2});
  std::vector<double> band_mean(64);
  t0 = std::chrono::steady_clock::now();
  parallel_for(
      band_mean.size(),
      [&](std::size_t b) {
        // Irregular share: band b covers an n/2^(b%8)-ish slice.
        const std::size_t lo = b * (n / band_mean.size());
        const std::size_t hi = lo + (n / band_mean.size()) / (1 + b % 8);
        double acc = 0.0;
        for (std::size_t i = lo; i < hi; ++i) acc += celsius[i];
        band_mean[b] = hi > lo ? acc / static_cast<double>(hi - lo) : 0.0;
      },
      stealer, /*grain=*/1);
  std::printf("bands     (work_stealing_pool): %.3fs  band0=%.2f\n",
              seconds_since(t0), band_mean[0]);

  // The semantic guardrail, in comments because it must NOT compile:
  //   parallel_reduce<std::minus<>>(celsius.begin(), celsius.end());
  // error: constraint Monoid<double, std::minus<>> not satisfied —
  // subtraction is not associative, so reassociating it across chunks
  // would silently change the answer.  The concept turns that silent wrong
  // answer into a compile-time diagnosis.
  std::printf("\n(non-associative ops are rejected at compile time by the "
              "Monoid constraint)\n");
  return 0;
}
