// Axiom-to-property bridge, registry side: instantiates checkable
// properties directly from the `core::concept_registry`'s equational axioms
// and model declarations.
//
// Where laws.hpp checks the COMPILE-TIME modeling relation (trait
// specializations), this bridge checks the RUNTIME one: for every declared
// model, each axiom of its concept (inherited axioms included) is renamed
// through the model's symbol binding, lowered to the rewrite IR with
// `rewrite::pattern_from_term`, instantiated with generated literals, and
// evaluated on both sides.  This is the same pipeline the Simplicissimus
// simplifier uses to turn axioms into rewrite rules — so a model that
// survives this bridge is exactly a model the optimizer may trust.
#pragma once

#include <string>
#include <vector>

#include "check/property.hpp"
#include "core/registry.hpp"

namespace cgp::check {

/// True when the bridge can generate and evaluate values of the named
/// registry type ("int", "unsigned", "double", "bool", "string").  Models
/// over other carriers (matrix, complex, containers) are exercised by the
/// typed bundles in laws.hpp instead.
[[nodiscard]] bool bridge_supports_type(const std::string& type);

/// Properties for one declared model: one property per axiom of its concept
/// (including axioms inherited through refinement) that is executable —
/// i.e. the carrier type is bridge-supported, every constant in the renamed
/// axiom parses as a literal of that type, and the axiom quantifies over
/// one to three variables.  Non-executable axioms are skipped silently;
/// an unsupported carrier yields an empty vector.
[[nodiscard]] std::vector<result> model_axiom_properties(
    const core::concept_registry& reg, const core::model_declaration& m,
    const config& cfg = {});

/// The full conformance sweep: properties for every model declared in the
/// registry (each declaration visited once, under the concept it names).
[[nodiscard]] std::vector<result> registry_axiom_properties(
    const core::concept_registry& reg, const config& cfg = {});

}  // namespace cgp::check
