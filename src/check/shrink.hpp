// Shrinking for the property-based conformance checker: once a property is
// falsified, the runner greedily replaces each component of the failing
// tuple by simpler candidates (toward 0 / empty) while the failure
// persists, so the reported counterexample is minimal — a wrong Monoid
// declaration surfaces as `(0, 0, 1)`, not as three random 31-bit values.
#pragma once

#include <cmath>
#include <complex>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace cgp::check {

/// Specialize `shrinker<T>` with a static
/// `std::vector<T> candidates(const T&)` returning strictly-simpler values
/// to try, best first.  An empty vector means fully shrunk.
template <class T, class = void>
struct shrinker {
  static std::vector<T> candidates(const T&) { return {}; }
};

template <class T>
struct shrinker<T, std::enable_if_t<std::is_integral_v<T> &&
                                    std::is_signed_v<T>>> {
  static std::vector<T> candidates(const T& v) {
    std::vector<T> out;
    if (v == T{0}) return out;
    out.push_back(T{0});
    if (v < T{0}) out.push_back(static_cast<T>(-v));  // prefer positive
    const T half = static_cast<T>(v / 2);
    if (half != v) out.push_back(half);
    const T step = static_cast<T>(v > T{0} ? v - 1 : v + 1);
    if (step != half) out.push_back(step);
    return out;
  }
};

template <class T>
struct shrinker<T, std::enable_if_t<std::is_integral_v<T> &&
                                    std::is_unsigned_v<T> &&
                                    !std::is_same_v<T, bool>>> {
  static std::vector<T> candidates(const T& v) {
    std::vector<T> out;
    if (v == T{0}) return out;
    out.push_back(T{0});
    const T half = static_cast<T>(v / 2);
    if (half != v) out.push_back(half);
    if (v - 1 != half) out.push_back(static_cast<T>(v - 1));
    return out;
  }
};

template <>
struct shrinker<bool> {
  static std::vector<bool> candidates(const bool& v) {
    return v ? std::vector<bool>{false} : std::vector<bool>{};
  }
};

template <>
struct shrinker<double> {
  static std::vector<double> candidates(const double& v) {
    std::vector<double> out;
    if (v == 0.0) return out;
    out.push_back(0.0);
    if (v < 0.0) out.push_back(-v);
    const double t = std::trunc(v);
    if (t != v && t != 0.0) out.push_back(t);
    if (v / 2.0 != v) out.push_back(v / 2.0);
    return out;
  }
};

template <class F>
struct shrinker<std::complex<F>> {
  static std::vector<std::complex<F>> candidates(const std::complex<F>& v) {
    std::vector<std::complex<F>> out;
    if (v == std::complex<F>{}) return out;
    out.push_back({});
    if (v.imag() != F{0}) out.push_back({v.real(), F{0}});
    if (v.real() != F{0}) out.push_back({F{0}, v.imag()});
    for (F r : shrinker<F>::candidates(v.real()))
      out.push_back({r, v.imag()});
    return out;
  }
};

template <>
struct shrinker<std::string> {
  static std::vector<std::string> candidates(const std::string& v) {
    std::vector<std::string> out;
    if (v.empty()) return out;
    out.emplace_back();
    if (v.size() > 1) {
      out.push_back(v.substr(0, v.size() / 2));
      out.push_back(v.substr(v.size() / 2));
      out.push_back(v.substr(0, v.size() - 1));
    }
    // Simplify the alphabet: all-'a' of the same length.
    const std::string flat(v.size(), 'a');
    if (flat != v) out.push_back(flat);
    return out;
  }
};

template <class T>
struct shrinker<std::vector<T>> {
  static std::vector<std::vector<T>> candidates(const std::vector<T>& v) {
    std::vector<std::vector<T>> out;
    if (v.empty()) return out;
    out.emplace_back();
    if (v.size() > 1) {
      out.emplace_back(v.begin(), v.begin() + v.size() / 2);
      out.emplace_back(v.begin() + v.size() / 2, v.end());
      out.emplace_back(v.begin(), v.end() - 1);
    }
    // Shrink one element in place (first candidate only, per position).
    for (std::size_t i = 0; i < v.size(); ++i) {
      const auto cs = shrinker<T>::candidates(v[i]);
      if (cs.empty()) continue;
      std::vector<T> copy = v;
      copy[i] = cs.front();
      out.push_back(std::move(copy));
    }
    return out;
  }
};

}  // namespace cgp::check
