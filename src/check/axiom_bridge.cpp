#include "check/axiom_bridge.hpp"

#include <cmath>
#include <cstdint>
#include <iterator>
#include <map>
#include <utility>

#include "rewrite/eval.hpp"
#include "rewrite/expr.hpp"
#include "rewrite/rules.hpp"

namespace cgp::check {

namespace {

/// Value comparison for axiom sides.  Doubles get a relative tolerance:
/// reciprocal-based inverse witnesses are correct models of the real-number
/// axioms while being one ulp off in IEEE arithmetic, and a genuinely wrong
/// model misses by far more than 1e-9.
bool values_agree(const rewrite::value& a, const rewrite::value& b) {
  if (std::holds_alternative<double>(a) && std::holds_alternative<double>(b)) {
    const double x = std::get<double>(a);
    const double y = std::get<double>(b);
    if (x == y) return true;
    if (!std::isfinite(x) || !std::isfinite(y)) return false;
    const double scale = std::max({std::fabs(x), std::fabs(y), 1.0});
    return std::fabs(x - y) <= 1e-9 * scale;
  }
  return rewrite::value_equal(a, b);
}

/// A renamed axiom side is executable only if every constant was resolved
/// to a literal by parse_literal; a surviving named_const means the model's
/// symbol binding does not cover the axiom's signature (e.g. a Field model
/// declared without an "e" binding), so the axiom must be skipped rather
/// than failed.
bool has_unbound_constant(const rewrite::expr& e) {
  if (e.is(rewrite::expr::kind::named_const)) return true;
  for (const rewrite::expr& c : e.children())
    if (has_unbound_constant(c)) return true;
  return false;
}

template <class T>
rewrite::expr literal_of(const T& v, const std::string& type) {
  return rewrite::expr::lit(rewrite::value(v), type);
}

/// Checks one renamed axiom over generated values of carrier type T.
/// Samples on which evaluation is undefined (division by zero, reciprocal
/// of zero) are discarded — axioms only constrain the operation's domain.
template <class T>
result check_axiom_as(const std::string& name, const rewrite::expr& lhs,
                      const rewrite::expr& rhs,
                      const std::vector<std::string>& vars,
                      const std::string& type, const config& cfg) {
  const auto pred = [&lhs, &rhs, &vars, &type](const auto&... xs) -> bool {
    std::map<std::string, rewrite::expr> binding;
    std::size_t i = 0;
    (binding.emplace(vars[i++], literal_of(xs, type)), ...);
    try {
      return values_agree(rewrite::evaluate(lhs.substitute(binding), {}),
                          rewrite::evaluate(rhs.substitute(binding), {}));
    } catch (const rewrite::eval_error&) {
      throw discard_case{};
    }
  };
  switch (vars.size()) {
    case 1:
      return for_all<T>(name, pred, cfg);
    case 2:
      return for_all<T, T>(name, pred, cfg);
    default:
      return for_all<T, T, T>(name, pred, cfg);
  }
}

std::string model_label(const core::model_declaration& m) {
  std::string label = m.concept_name + "{";
  for (std::size_t i = 0; i < m.arguments.size(); ++i) {
    if (i != 0) label += ",";
    label += m.arguments[i];
  }
  return label + "}";
}

}  // namespace

bool bridge_supports_type(const std::string& type) {
  return type == "int" || type == "unsigned" || type == "double" ||
         type == "bool" || type == "string";
}

std::vector<result> model_axiom_properties(const core::concept_registry& reg,
                                           const core::model_declaration& m,
                                           const config& cfg) {
  std::vector<result> out;
  if (m.arguments.empty()) return out;
  const std::string& type = m.arguments.front();
  if (!bridge_supports_type(type)) return out;

  const std::string label = model_label(m);
  for (const core::axiom& ax : reg.all_axioms(m.concept_name)) {
    if (ax.vars.empty() || ax.vars.size() > 3) continue;
    const rewrite::expr lhs =
        rewrite::pattern_from_term(ax.lhs.rename_symbols(m.symbol_binding),
                                   type);
    const rewrite::expr rhs =
        rewrite::pattern_from_term(ax.rhs.rename_symbols(m.symbol_binding),
                                   type);
    if (has_unbound_constant(lhs) || has_unbound_constant(rhs)) continue;

    const std::string name = label + "." + ax.name;
    if (type == "int") {
      out.push_back(
          check_axiom_as<std::int64_t>(name, lhs, rhs, ax.vars, type, cfg));
    } else if (type == "unsigned") {
      out.push_back(
          check_axiom_as<std::uint64_t>(name, lhs, rhs, ax.vars, type, cfg));
    } else if (type == "double") {
      out.push_back(check_axiom_as<double>(name, lhs, rhs, ax.vars, type, cfg));
    } else if (type == "bool") {
      out.push_back(check_axiom_as<bool>(name, lhs, rhs, ax.vars, type, cfg));
    } else {
      out.push_back(
          check_axiom_as<std::string>(name, lhs, rhs, ax.vars, type, cfg));
    }
  }
  return out;
}

std::vector<result> registry_axiom_properties(const core::concept_registry& reg,
                                              const config& cfg) {
  std::vector<result> out;
  for (const std::string& name : reg.concept_names()) {
    for (const core::model_declaration& m : reg.models_of(name)) {
      // models_of surfaces declarations of refinements too; visit each
      // declaration only under its own concept so no model is checked twice.
      if (m.concept_name != name) continue;
      auto props = model_axiom_properties(reg, m, cfg);
      out.insert(out.end(), std::make_move_iterator(props.begin()),
                 std::make_move_iterator(props.end()));
    }
  }
  return out;
}

}  // namespace cgp::check
