// Seeded deterministic value generation for the property-based conformance
// checker (DESIGN.md §8).
//
// The paper's Section 2 semantic constraints ("axioms") and Section 3.3
// proof checking treat concept requirements as checkable artifacts.  This
// module supplies the randomized half of that promise: every generated
// value is a pure function of a 64-bit seed, so a failing property is
// reproduced exactly by re-running with the `CGP_CHECK_SEED` the failure
// printed — no hidden entropy, no platform-dependent distributions.
//
// Generation is biased toward SMALL and BOUNDARY values (0, 1, -1,
// identity-adjacent elements): algebraic law violations almost always have
// tiny witnesses, and small inputs shrink to readable counterexamples.
#pragma once

#include <complex>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace cgp::check {

/// Deterministic 64-bit stream (splitmix64).  Unlike <random> engines +
/// distributions, every draw is fully specified by this header, so a seed
/// reproduces the same values on every platform and standard library.
class random_source {
 public:
  explicit random_source(std::uint64_t seed) noexcept : state_(seed) {}

  [[nodiscard]] std::uint64_t bits() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n); n == 0 yields 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept {
    return n == 0 ? 0 : bits() % n;
  }

  /// Uniform in the inclusive range [lo, hi].
  [[nodiscard]] std::int64_t int_in(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// True with probability ~`percent`/100.
  [[nodiscard]] bool chance(unsigned percent) noexcept {
    return below(100) < percent;
  }

 private:
  std::uint64_t state_;
};

/// Derives the seed for case `index` of a run seeded with `seed` — each
/// case gets an independent stream, so shrinking can replay one case
/// without replaying the whole run.
[[nodiscard]] inline std::uint64_t case_seed(std::uint64_t seed,
                                             std::uint64_t index) noexcept {
  random_source mix(seed ^ (0x2545f4914f6cdd1dull * (index + 1)));
  return mix.bits();
}

// ---------------------------------------------------------------------------
// arbitrary<T>: the generation customization point
// ---------------------------------------------------------------------------

/// Specialize `arbitrary<T>` with a static `T generate(random_source&)` to
/// make T usable with `for_all`.  Shrinking is the separate customization
/// point `shrinker<T>` in shrink.hpp.
template <class T, class = void>
struct arbitrary;

namespace detail {

/// Small-biased signed magnitude: ~55% in [-4, 4], ~30% in [-128, 128],
/// the rest across 32 bits.  Boundary-ish values shrink fast and catch
/// identity/inverse law violations with tiny witnesses.
[[nodiscard]] inline std::int64_t small_biased_int(random_source& rs) {
  const std::uint64_t roll = rs.below(100);
  if (roll < 55) return rs.int_in(-4, 4);
  if (roll < 85) return rs.int_in(-128, 128);
  return rs.int_in(-2147483647, 2147483647);
}

}  // namespace detail

template <class T>
struct arbitrary<T, std::enable_if_t<std::is_integral_v<T> &&
                                     std::is_signed_v<T>>> {
  static T generate(random_source& rs) {
    return static_cast<T>(detail::small_biased_int(rs));
  }
};

template <class T>
struct arbitrary<T, std::enable_if_t<std::is_integral_v<T> &&
                                     std::is_unsigned_v<T> &&
                                     !std::is_same_v<T, bool>>> {
  static T generate(random_source& rs) {
    const std::uint64_t roll = rs.below(100);
    if (roll < 55) return static_cast<T>(rs.below(9));
    if (roll < 85) return static_cast<T>(rs.below(257));
    // Stay within 32 bits: the registry's built-in "unsigned" models (e.g.
    // the 0xFFFFFFFF bit_and identity) are declared for 32-bit words.
    return static_cast<T>(rs.below(0x100000000ull));
  }
};

template <>
struct arbitrary<bool> {
  static bool generate(random_source& rs) { return rs.chance(50); }
};

/// Doubles are generated as dyadic rationals n/4 with |n| <= 256, so sums
/// and triple products evaluate EXACTLY in IEEE double — associativity and
/// distributivity can be checked with == instead of a tolerance.  (Laws
/// involving reciprocals still need the approximate-equality knob in
/// laws.hpp.)
template <>
struct arbitrary<double> {
  static double generate(random_source& rs) {
    return static_cast<double>(rs.int_in(-256, 256)) / 4.0;
  }
};

template <class F>
struct arbitrary<std::complex<F>> {
  static std::complex<F> generate(random_source& rs) {
    return {static_cast<F>(rs.int_in(-16, 16)) / F{4},
            static_cast<F>(rs.int_in(-16, 16)) / F{4}};
  }
};

template <>
struct arbitrary<std::string> {
  static std::string generate(random_source& rs) {
    const std::size_t n = rs.below(9);
    std::string s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      s.push_back(static_cast<char>('a' + rs.below(4)));
    return s;
  }
};

template <class T>
struct arbitrary<std::vector<T>> {
  static std::vector<T> generate(random_source& rs) {
    const std::size_t n = rs.below(7);
    std::vector<T> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      v.push_back(arbitrary<T>::generate(rs));
    return v;
  }
};

}  // namespace cgp::check
