// Axiom-to-property bridge, compile-time side: turns the semantic contract
// a `core::algebraic` model declaration signs (associativity, identities,
// inverses, commutativity, distributivity, the StrictWeakOrder laws of
// Fig. 6) into executable randomized properties.
//
// Each bundle is constrained on the corresponding concept, so asking for
// `monoid_properties<T, Op>` of a pair that never declared Monoid is a
// compile error — and a pair that declared it WRONGLY (the paper's central
// worry: "the modeling relation ... is by nominal conformance") is caught
// at test time with a shrunk counterexample and a CGP_CHECK_SEED repro
// line.  The runtime-registry twin of this header is axiom_bridge.hpp.
#pragma once

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "check/property.hpp"
#include "core/algebraic.hpp"

namespace cgp::check {

/// Equality used by the law predicates.  Defaults to ==; models whose
/// witnesses are inexact (floating-point reciprocals) pass approx_eq.
template <class T>
using eq_fn = std::function<bool(const T&, const T&)>;

template <class T>
[[nodiscard]] eq_fn<T> exact_eq() {
  return [](const T& a, const T& b) { return a == b; };
}

/// Relative-tolerance comparison for floating-point law checks.
[[nodiscard]] inline eq_fn<double> approx_eq(double rel = 1e-9) {
  return [rel](const double& a, const double& b) {
    if (a == b) return true;
    if (!std::isfinite(a) || !std::isfinite(b)) return false;
    const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
    return std::fabs(a - b) <= rel * scale;
  };
}

namespace detail {

/// Discards samples whose intermediate results leave the value domain
/// (overflowed-to-inf doubles); integral wraparound is well-defined and
/// deliberately NOT discarded — the declared models promise modular laws.
template <class T>
[[nodiscard]] bool in_domain(const T& v) {
  if constexpr (std::is_floating_point_v<T>) return std::isfinite(v);
  (void)v;
  return true;
}

template <class T>
void require_domain(const T& v) {
  if (!in_domain(v)) throw discard_case{};
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Algebraic bundles (core::algebraic declarations -> properties)
// ---------------------------------------------------------------------------

/// Semigroup: associativity.
template <class T, class Op>
  requires core::Semigroup<T, Op>
[[nodiscard]] std::vector<result> semigroup_properties(
    const std::string& model, const config& cfg = {},
    eq_fn<T> eq = exact_eq<T>()) {
  const Op op{};
  std::vector<result> out;
  out.push_back(for_all<T, T, T>(
      "Semigroup[" + model + "].associativity",
      [op, eq](const T& x, const T& y, const T& z) {
        const T ab = op(x, y), bc = op(y, z);
        detail::require_domain(ab);
        detail::require_domain(bc);
        const T l = op(ab, z), r = op(x, bc);
        detail::require_domain(l);
        detail::require_domain(r);
        return eq(l, r);
      },
      cfg));
  return out;
}

/// Monoid: associativity + two-sided identity (the axioms behind Fig. 5's
/// `x + 0 -> x` rewrite rule).
template <class T, class Op>
  requires core::Monoid<T, Op>
[[nodiscard]] std::vector<result> monoid_properties(
    const std::string& model, const config& cfg = {},
    eq_fn<T> eq = exact_eq<T>()) {
  auto out = semigroup_properties<T, Op>(model, cfg, eq);
  const Op op{};
  const T e = core::monoid_traits<T, Op>::identity();
  out.push_back(for_all<T>(
      "Monoid[" + model + "].right_identity",
      [op, eq, e](const T& x) { return eq(op(x, e), x); }, cfg));
  out.push_back(for_all<T>(
      "Monoid[" + model + "].left_identity",
      [op, eq, e](const T& x) { return eq(op(e, x), x); }, cfg));
  return out;
}

/// Group: monoid + two-sided inverse (Fig. 5's `x + (-x) -> 0`).  Samples
/// whose inverse leaves the domain (e.g. reciprocal of 0 under the
/// multiplicative-group-of-nonzero-reals model) are discarded.
template <class T, class Op>
  requires core::Group<T, Op>
[[nodiscard]] std::vector<result> group_properties(
    const std::string& model, const config& cfg = {},
    eq_fn<T> eq = exact_eq<T>()) {
  auto out = monoid_properties<T, Op>(model, cfg, eq);
  const Op op{};
  const T e = core::monoid_traits<T, Op>::identity();
  const auto inv = [](const T& x) {
    return core::group_traits<T, Op>::inverse(x);
  };
  out.push_back(for_all<T>(
      "Group[" + model + "].right_inverse",
      [op, eq, e, inv](const T& x) {
        const T ix = inv(x);
        detail::require_domain(ix);
        return eq(op(x, ix), e);
      },
      cfg));
  out.push_back(for_all<T>(
      "Group[" + model + "].left_inverse",
      [op, eq, e, inv](const T& x) {
        const T ix = inv(x);
        detail::require_domain(ix);
        return eq(op(ix, x), e);
      },
      cfg));
  return out;
}

/// Commutativity, as declared by `declares_commutative`.
template <class T, class Op>
  requires(core::BinaryOperation<T, Op> &&
           core::declares_commutative<T, Op>::value)
[[nodiscard]] std::vector<result> commutativity_property(
    const std::string& model, const config& cfg = {},
    eq_fn<T> eq = exact_eq<T>()) {
  const Op op{};
  std::vector<result> out;
  out.push_back(for_all<T, T>(
      "Commutative[" + model + "].commutativity",
      [op, eq](const T& x, const T& y) { return eq(op(x, y), op(y, x)); },
      cfg));
  return out;
}

template <class T, class Op>
  requires core::CommutativeMonoid<T, Op>
[[nodiscard]] std::vector<result> commutative_monoid_properties(
    const std::string& model, const config& cfg = {},
    eq_fn<T> eq = exact_eq<T>()) {
  auto out = monoid_properties<T, Op>(model, cfg, eq);
  auto comm = commutativity_property<T, Op>(model, cfg, eq);
  out.insert(out.end(), comm.begin(), comm.end());
  return out;
}

template <class T, class Op>
  requires core::AbelianGroup<T, Op>
[[nodiscard]] std::vector<result> abelian_group_properties(
    const std::string& model, const config& cfg = {},
    eq_fn<T> eq = exact_eq<T>()) {
  auto out = group_properties<T, Op>(model, cfg, eq);
  auto comm = commutativity_property<T, Op>(model, cfg, eq);
  out.insert(out.end(), comm.begin(), comm.end());
  return out;
}

/// Ring: both distributivity axioms over the declared (Add, Mul) pair.
template <class T, class Add = std::plus<>, class Mul = std::multiplies<>>
  requires core::Ring<T, Add, Mul>
[[nodiscard]] std::vector<result> ring_distributivity_properties(
    const std::string& model, const config& cfg = {},
    eq_fn<T> eq = exact_eq<T>()) {
  const Add add{};
  const Mul mul{};
  std::vector<result> out;
  out.push_back(for_all<T, T, T>(
      "Ring[" + model + "].left_distributivity",
      [add, mul, eq](const T& x, const T& y, const T& z) {
        const T s = add(y, z);
        detail::require_domain(s);
        const T l = mul(x, s);
        const T r = add(mul(x, y), mul(x, z));
        detail::require_domain(l);
        detail::require_domain(r);
        return eq(l, r);
      },
      cfg));
  out.push_back(for_all<T, T, T>(
      "Ring[" + model + "].right_distributivity",
      [add, mul, eq](const T& x, const T& y, const T& z) {
        const T s = add(x, y);
        detail::require_domain(s);
        const T l = mul(s, z);
        const T r = add(mul(x, z), mul(y, z));
        detail::require_domain(l);
        detail::require_domain(r);
        return eq(l, r);
      },
      cfg));
  return out;
}

// ---------------------------------------------------------------------------
// Strict Weak Order (Fig. 6) + the derived equivalence theorems
// ---------------------------------------------------------------------------

/// The four SWO axioms as stated by the registry's StrictWeakOrder concept,
/// plus the two derived theorems (reflexivity and symmetry of the induced
/// equivalence E) that proof::theories machine-checks symbolically —
/// checked here empirically against the same concrete model, closing the
/// paper's §3.3 loop: one law, one proof, one property.
template <class T, class Cmp>
  requires core::StrictWeakOrder<Cmp, T>
[[nodiscard]] std::vector<result> strict_weak_order_properties(
    const std::string& model, const config& cfg = {}) {
  const Cmp lt{};
  const auto equiv = [lt](const T& a, const T& b) {
    return !lt(a, b) && !lt(b, a);
  };
  std::vector<result> out;
  out.push_back(for_all<T>(
      "StrictWeakOrder[" + model + "].irreflexivity",
      [lt](const T& x) { return !lt(x, x); }, cfg));
  out.push_back(for_all<T, T>(
      "StrictWeakOrder[" + model + "].asymmetry",
      [lt](const T& x, const T& y) { return !(lt(x, y) && lt(y, x)); }, cfg));
  out.push_back(for_all<T, T, T>(
      "StrictWeakOrder[" + model + "].transitivity",
      [lt](const T& x, const T& y, const T& z) {
        return !(lt(x, y) && lt(y, z)) || lt(x, z);
      },
      cfg));
  out.push_back(for_all<T, T, T>(
      "StrictWeakOrder[" + model + "].incomparability_transitivity",
      [equiv](const T& x, const T& y, const T& z) {
        return !(equiv(x, y) && equiv(y, z)) || equiv(x, z);
      },
      cfg));
  // Derived theorems (Fig. 6: "symmetry and reflexivity ... can be derived
  // as theorems"); proved in proof::theories, sampled here.
  out.push_back(for_all<T>(
      "StrictWeakOrder[" + model + "].equivalence_reflexive[derived]",
      [equiv](const T& x) { return equiv(x, x); }, cfg));
  out.push_back(for_all<T, T>(
      "StrictWeakOrder[" + model + "].equivalence_symmetric[derived]",
      [equiv](const T& x, const T& y) {
        return equiv(x, y) == equiv(y, x);
      },
      cfg));
  return out;
}

}  // namespace cgp::check
