#include "check/property.hpp"

#include <charconv>
#include <cstdlib>

#include "telemetry/telemetry.hpp"

namespace cgp::check {

std::uint64_t default_seed() {
  static const std::uint64_t seed = [] {
    if (const char* env = std::getenv("CGP_CHECK_SEED")) {
      std::uint64_t v = 0;
      const char* end = env;
      while (*end != '\0') ++end;
      auto [p, ec] = std::from_chars(env, end, v);
      if (ec == std::errc{} && p == end) return v;
    }
    return std::uint64_t{42};
  }();
  return seed;
}

std::string seed_banner() {
  return "CGP_CHECK_SEED=" + std::to_string(default_seed());
}

namespace detail {

std::string display_value(std::int64_t v) { return std::to_string(v); }
std::string display_value(std::uint64_t v) { return std::to_string(v); }
std::string display_value(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}
std::string display_value(bool v) { return v ? "true" : "false"; }
std::string display_value(const std::string& v) { return "\"" + v + "\""; }

}  // namespace detail

namespace detail {

void record_result_telemetry(const result& r) {
  auto& reg = telemetry::registry::global();
  reg.get_counter("check.properties.executed").add();
  reg.get_counter("check.properties.cases_executed").add(r.cases_run);
  if (r.falsified) reg.get_counter("check.properties.falsified").add();
}

}  // namespace detail

std::size_t total_cases(const std::vector<result>& rs) {
  std::size_t n = 0;
  for (const result& r : rs) n += r.cases_run;
  return n;
}

bool all_ok(const std::vector<result>& rs) {
  for (const result& r : rs)
    if (!r.ok) return false;
  return true;
}

std::string failure_messages(const std::vector<result>& rs) {
  std::string out;
  for (const result& r : rs) {
    if (r.ok) continue;
    if (!out.empty()) out += "\n";
    out += r.message;
  }
  return out;
}

}  // namespace cgp::check
