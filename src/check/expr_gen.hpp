// Random typed expression generation for the rewrite differential oracle:
// `eval(e) == eval(simplify(e))` must hold for every generated `e`.
//
// Plain uniform trees almost never contain a redex, so the generator is
// biased toward the shapes the Fig. 5 rules fire on — identity operands
// (`x + 0`, `1 * x`), inverse pairs (`x + (-x)`, `x * reciprocal(x)`,
// `x ^ x`) — while still mixing in arbitrary operator applications so the
// oracle also witnesses that the simplifier leaves non-redexes alone.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/gen.hpp"
#include "rewrite/eval.hpp"
#include "rewrite/expr.hpp"

namespace cgp::check {

/// A generated expression together with the environment binding its free
/// variables (drawn from {x, y, z}) to concrete values.
struct generated_expr {
  rewrite::expr e = rewrite::expr::int_lit(0);
  rewrite::environment env;
};

namespace detail {

inline rewrite::value random_value_of(random_source& rs,
                                      const std::string& type) {
  if (type == "unsigned") {
    return rewrite::value(
        static_cast<std::uint64_t>(arbitrary<std::uint64_t>::generate(rs)));
  }
  if (type == "double") return rewrite::value(arbitrary<double>::generate(rs));
  return rewrite::value(small_biased_int(rs));
}

inline const std::vector<std::string>& ops_for(const std::string& type) {
  static const std::vector<std::string> int_ops = {"+", "-", "*"};
  // No `&`: the registry's Monoid{unsigned,&} identity is the 32-bit mask
  // 0xFFFFFFFF, but `evaluate` computes unsigned arithmetic in uint64, so
  // erasing the mask changes the value once a `+`/`*` intermediate exceeds
  // 2^32.  The rule is sound on its declared 32-bit carrier (the axiom
  // bridge checks that); the differential oracle must not feed it a wider
  // domain.
  static const std::vector<std::string> unsigned_ops = {"+", "*", "|", "^"};
  static const std::vector<std::string> double_ops = {"+", "-", "*"};
  if (type == "unsigned") return unsigned_ops;
  if (type == "double") return double_ops;
  return int_ops;
}

/// Identity element literal for `op` over `type`, when the builtin models
/// declare one.
inline std::optional<rewrite::expr> identity_for(const std::string& op,
                                                 const std::string& type) {
  using rewrite::expr;
  if (type == "double") {
    if (op == "+") return expr::double_lit(0.0);
    if (op == "*") return expr::double_lit(1.0);
    return std::nullopt;
  }
  if (type == "unsigned") {
    if (op == "+" || op == "|" || op == "^") return expr::uint_lit(0);
    if (op == "*") return expr::uint_lit(1);
    return std::nullopt;
  }
  if (op == "+") return expr::int_lit(0);
  if (op == "*") return expr::int_lit(1);
  return std::nullopt;
}

inline rewrite::expr gen_expr_rec(random_source& rs, const std::string& type,
                                  int depth) {
  using rewrite::expr;
  const auto leaf = [&]() -> expr {
    if (rs.chance(50)) return expr::lit(random_value_of(rs, type), type);
    static const char* const names[] = {"x", "y", "z"};
    return expr::var(names[rs.below(3)], type);
  };
  if (depth <= 0 || rs.chance(30)) return leaf();

  const auto& ops = ops_for(type);
  const std::string op = ops[rs.below(ops.size())];
  expr sub = gen_expr_rec(rs, type, depth - 1);

  const std::uint64_t shape = rs.below(100);
  // Identity redex: op(sub, e) or op(e, sub).
  if (shape < 30) {
    if (auto e = identity_for(op, type)) {
      return rs.chance(50) ? expr::binary_op(op, sub, *e, type)
                           : expr::binary_op(op, *e, sub, type);
    }
  }
  // Inverse redex: x + (-x), x * reciprocal(x), x ^ x.
  if (shape < 50) {
    if (op == "+" && type != "unsigned")
      return expr::binary_op("+", sub, expr::unary_op("-", sub, type), type);
    if (op == "*" && type == "double")
      return expr::binary_op("*", sub,
                             expr::call_fn("reciprocal", {sub}, type), type);
    if (op == "^" && type == "unsigned")
      return expr::binary_op("^", sub, sub, type);
  }
  // Plain application.
  return expr::binary_op(op, sub, gen_expr_rec(rs, type, depth - 1), type);
}

}  // namespace detail

/// Generates a random expression of `type` ("int", "unsigned" or "double")
/// plus an environment for its free variables, all drawn from `rs`.
[[nodiscard]] inline generated_expr generate_expr(random_source& rs,
                                                  const std::string& type,
                                                  int max_depth = 4) {
  generated_expr g;
  for (const char* name : {"x", "y", "z"})
    g.env.emplace(name, detail::random_value_of(rs, type));
  g.e = detail::gen_expr_rec(rs, type, max_depth);
  return g;
}

}  // namespace cgp::check
