// GoogleTest glue for the conformance suites: registers a global test
// environment that prints the run's `CGP_CHECK_SEED` into the ctest log, so
// every randomized failure in CI carries its own reproduction recipe.
#pragma once

#include <cstdio>

#include <gtest/gtest.h>

#include "check/property.hpp"

namespace cgp::check {

class seed_banner_environment : public ::testing::Environment {
 public:
  void SetUp() override {
    std::printf("[check] %s  (export this variable to reproduce the run)\n",
                seed_banner().c_str());
    std::fflush(stdout);
  }
};

/// Idempotent: the environment is registered once per process no matter how
/// many translation units invoke this.
inline ::testing::Environment* register_seed_banner() {
  static ::testing::Environment* const env =
      ::testing::AddGlobalTestEnvironment(new seed_banner_environment);
  return env;
}

}  // namespace cgp::check

/// Put one of these at namespace scope in every test file that consumes
/// check::default_seed(), directly or via for_all.
#define CGP_REGISTER_SEED_BANNER()                            \
  static ::testing::Environment* const cgp_check_seed_env_ =  \
      ::cgp::check::register_seed_banner()
