// Executor-concept laws: the semantic contract behind the syntactic
// concept of parallel/executor.hpp, as an executable property bundle in
// the laws.hpp idiom.  The syntax (`submit`, `worker_count`) is checked by
// static_assert; what makes something a SCHEDULER is checked here:
//
//   - exactly-once: every submitted task runs exactly once, even when N
//     producer threads submit concurrently (no lost or doubled tasks
//     across the inject/deque/steal paths);
//   - nested fork-join completes: task_group recursion from inside pool
//     tasks terminates (the helping protocol actually prevents the
//     workers-all-waiting deadlock);
//   - destruction drains: a destroyed executor has run every task
//     submitted before destruction began.
//
// The bundle is generic over a factory returning any Executor model, so
// the conformance suite runs the SAME properties against thread_pool,
// work_stealing_pool, and the inline archetype — one contract, three
// models, exactly how the transport parity suite treats its backends.
// Failures reproduce via the standard CGP_CHECK_SEED line.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "check/property.hpp"
#include "parallel/executor.hpp"
#include "parallel/task_group.hpp"

namespace cgp::check {

namespace detail {

/// Bounded completion wait for raw (non-group) submissions.  Ten seconds
/// is far past any sane schedule; hitting it means tasks were lost, which
/// is exactly what the property then reports.
inline bool await_count(const std::atomic<std::size_t>& done,
                        std::size_t want) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (done.load(std::memory_order_acquire) < want) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

}  // namespace detail

/// Executor-model property bundle.  `make` is a factory returning a
/// freshly constructed model behind a unique_ptr (pools are neither
/// copyable nor movable); each sampled case builds its own instance, so
/// construction/destruction races are part of what the bundle exercises.
template <class Factory>
  requires requires(const Factory& f) {
    requires parallel::Executor<
        typename std::invoke_result_t<const Factory&>::element_type>;
  }
[[nodiscard]] std::vector<result> executor_properties(
    const std::string& model, Factory make, const config& cfg = {}) {
  using E = typename std::invoke_result_t<const Factory&>::element_type;
  std::vector<result> out;

  out.push_back(for_all<std::uint64_t>(
      "Executor[" + model + "].exactly_once_under_writers",
      [make](std::uint64_t entropy) {
        const unsigned writers = 1 + entropy % 4;
        const std::size_t per_writer = 8 + (entropy >> 4) % 25;
        const std::size_t total = writers * per_writer;
        auto exec = make();
        std::vector<std::atomic<int>> runs(total);
        std::atomic<std::size_t> done{0};
        {
          std::vector<std::thread> producers;
          producers.reserve(writers);
          for (unsigned w = 0; w < writers; ++w)
            producers.emplace_back([&, w] {
              for (std::size_t t = 0; t < per_writer; ++t)
                exec->submit([&runs, &done, idx = w * per_writer + t] {
                  runs[idx].fetch_add(1, std::memory_order_acq_rel);
                  done.fetch_add(1, std::memory_order_acq_rel);
                });
            });
          for (std::thread& p : producers) p.join();
        }
        if (!detail::await_count(done, total)) return false;
        for (const auto& r : runs)
          if (r.load(std::memory_order_acquire) != 1) return false;
        return true;
      },
      cfg));

  out.push_back(for_all<std::uint64_t>(
      "Executor[" + model + "].nested_fork_join_completes",
      [make](std::uint64_t entropy) {
        const std::size_t fan = 2 + entropy % 3;
        const std::size_t depth = 2 + (entropy >> 2) % 2;
        auto exec = make();
        std::atomic<std::size_t> leaves{0};
        auto spawn = [&](auto&& self, std::size_t d) -> void {
          if (d == 0) {
            leaves.fetch_add(1, std::memory_order_acq_rel);
            return;
          }
          parallel::task_group<E> group(*exec);
          for (std::size_t k = 0; k < fan; ++k)
            group.run([&self, d] { self(self, d - 1); });
          group.wait();
        };
        spawn(spawn, depth);
        std::size_t want = 1;
        for (std::size_t d = 0; d < depth; ++d) want *= fan;
        return leaves.load(std::memory_order_acquire) == want;
      },
      cfg));

  out.push_back(for_all<std::uint64_t>(
      "Executor[" + model + "].destruction_drains",
      [make](std::uint64_t entropy) {
        const std::size_t n = 16 + entropy % 113;
        std::atomic<std::size_t> ran{0};
        {
          auto exec = make();
          for (std::size_t i = 0; i < n; ++i)
            exec->submit(
                [&ran] { ran.fetch_add(1, std::memory_order_acq_rel); });
        }
        return ran.load(std::memory_order_acquire) == n;
      },
      cfg));

  return out;
}

}  // namespace cgp::check
