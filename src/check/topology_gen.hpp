// Generators and shrinkers for the CSR-topology fuzzer (DESIGN.md §8 meets
// §13): seeded random graph cases for `for_all`, with greedy shrinking to
// minimal counterexamples.
//
// Two case shapes:
//
//   * `edge_list_case` — a RAW undirected edge list drawn from several
//     degree-distribution profiles (uniform scatter, hub-centred, chain)
//     and deliberately hostile inputs: self-loops, duplicate edges in both
//     orientations, and disconnected components (edges are sparse over the
//     node range, so isolated vertices abound).  Exercises
//     `csr_topology::from_edges` invariants directly.
//
//   * `topology_case` — a (builder, node count, seed) triple over every
//     `distributed::topology` value.  Exercises the production path:
//     `build_topology` must be permutation-equal to the legacy
//     per-node-vector construction (`build_adjacency_reference`) on the
//     same seed, consuming the rng identically.
//
// Shrinking drops edges (halves, then one at a time from the front),
// halves node counts, and steers builders toward the simplest topology, so
// a reported counterexample is close to minimal.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "check/gen.hpp"
#include "check/shrink.hpp"
#include "distributed/topology.hpp"

namespace cgp::check {

// ---------------------------------------------------------------------------
// Raw edge lists
// ---------------------------------------------------------------------------

struct edge_list_case {
  std::size_t nodes = 1;
  std::vector<std::pair<int, int>> edges;

  friend bool operator==(const edge_list_case&,
                         const edge_list_case&) = default;
};

template <>
struct arbitrary<edge_list_case> {
  static edge_list_case generate(random_source& rs) {
    edge_list_case c;
    c.nodes = 1 + rs.below(64);
    const std::size_t m = rs.below(4 * c.nodes + 1);
    c.edges.reserve(m);
    const auto node = [&] { return static_cast<int>(rs.below(c.nodes)); };
    for (std::size_t k = 0; k < m; ++k) {
      const int a = node();
      int b = 0;
      switch (rs.below(4)) {
        case 0:  // uniform scatter
          b = node();
          break;
        case 1:  // explicit self-loop (must be stripped)
          b = a;
          break;
        case 2:  // hub profile: many edges into a small cluster
          b = static_cast<int>(rs.below(std::max<std::size_t>(1, c.nodes / 8)));
          break;
        default:  // chain profile: near-neighbor edges
          b = static_cast<int>(
              std::min(c.nodes - 1, static_cast<std::size_t>(a) + 1));
          break;
      }
      c.edges.emplace_back(a, b);
      if (rs.chance(15))  // duplicate, sometimes flipped
        c.edges.emplace_back(rs.chance(50) ? std::pair{a, b}
                                           : std::pair{b, a});
    }
    return c;
  }
};

template <>
struct shrinker<edge_list_case> {
  static std::vector<edge_list_case> candidates(const edge_list_case& c) {
    std::vector<edge_list_case> out;
    if (!c.edges.empty()) {
      // First half of the edges, then drop a single edge at a time (from
      // the front, capped so shrink sweeps stay cheap).
      edge_list_case half = c;
      half.edges.resize(c.edges.size() / 2);
      out.push_back(std::move(half));
      const std::size_t single_drops = std::min<std::size_t>(16, c.edges.size());
      for (std::size_t i = 0; i < single_drops; ++i) {
        edge_list_case d = c;
        d.edges.erase(d.edges.begin() + static_cast<std::ptrdiff_t>(i));
        out.push_back(std::move(d));
      }
    }
    if (c.nodes > 1) {
      // Halve the node range, keeping only edges that still fit.
      edge_list_case small;
      small.nodes = c.nodes / 2;
      for (const auto& [a, b] : c.edges)
        if (static_cast<std::size_t>(a) < small.nodes &&
            static_cast<std::size_t>(b) < small.nodes)
          small.edges.emplace_back(a, b);
      out.push_back(std::move(small));
    }
    return out;
  }
};

[[nodiscard]] inline std::string display_value(const edge_list_case& c) {
  std::string out =
      "{nodes=" + std::to_string(c.nodes) + ", edges=[";
  for (std::size_t i = 0; i < c.edges.size(); ++i) {
    if (i != 0) out += ", ";
    out += "(" + std::to_string(c.edges[i].first) + "," +
           std::to_string(c.edges[i].second) + ")";
  }
  return out + "]}";
}

// ---------------------------------------------------------------------------
// Builder cases
// ---------------------------------------------------------------------------

struct topology_case {
  std::size_t nodes = 1;
  std::uint32_t seed = 0;
  distributed::topology topo = distributed::topology::ring;

  friend bool operator==(const topology_case&, const topology_case&) = default;
};

template <>
struct arbitrary<topology_case> {
  static topology_case generate(random_source& rs) {
    const auto all = distributed::all_topologies();
    topology_case c;
    c.nodes = 1 + rs.below(96);
    c.seed = static_cast<std::uint32_t>(rs.bits());
    c.topo = all[rs.below(all.size())];
    return c;
  }
};

template <>
struct shrinker<topology_case> {
  static std::vector<topology_case> candidates(const topology_case& c) {
    std::vector<topology_case> out;
    if (c.nodes > 1) {
      topology_case half = c;
      half.nodes = c.nodes / 2;
      out.push_back(half);
      topology_case one = c;
      one.nodes = 1;
      out.push_back(one);
    }
    if (c.seed != 0) {
      topology_case zero_seed = c;
      zero_seed.seed = 0;
      out.push_back(zero_seed);
    }
    if (c.topo != distributed::topology::ring) {
      topology_case ring = c;
      ring.topo = distributed::topology::ring;
      out.push_back(ring);
    }
    return out;
  }
};

[[nodiscard]] inline std::string display_value(const topology_case& c) {
  return std::string("{topo=") + distributed::to_string(c.topo) +
         ", nodes=" + std::to_string(c.nodes) +
         ", seed=" + std::to_string(c.seed) + "}";
}

}  // namespace cgp::check
