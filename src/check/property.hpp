// The property runner: `for_all<Args...>(name, predicate)` samples the
// predicate over seeded deterministic inputs, shrinks any counterexample to
// a minimal one, and reports a single reproduction line
// (`CGP_CHECK_SEED=<n>`) that replays the failure exactly.
//
// This is the execution engine behind DESIGN.md §8's "executable semantic
// concepts": the axiom bundles in laws.hpp and the registry bridge in
// axiom_bridge.hpp all reduce to for_all calls, and the conformance test
// suites (`ctest -L conformance`) assert on the returned results.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "check/gen.hpp"
#include "check/shrink.hpp"

namespace cgp::check {

/// The run-wide seed: the value of the CGP_CHECK_SEED environment variable
/// when set (decimal), otherwise 42.  Every property and every reseeded
/// randomized test derives from this one documented source, so any failure
/// in a ctest log is reproduced by exporting the printed seed.
[[nodiscard]] std::uint64_t default_seed();

/// One line suitable for test logs: "CGP_CHECK_SEED=<n>".
[[nodiscard]] std::string seed_banner();

/// Throw inside a property to discard the current sample (unmet
/// precondition, e.g. a non-invertible element for an inverse law).
/// Discarded samples do not count toward `cases_run`.
struct discard_case {};

struct config {
  std::size_t cases = 200;       ///< target number of non-discarded samples
  std::uint64_t seed = default_seed();
  std::size_t max_shrinks = 500; ///< cap on accepted shrink steps
};

/// Outcome of one property.  `ok` is false when a counterexample was found
/// OR when every sample was discarded (a silently-skipped property is a
/// failure: the CI conformance gate requires every suite to execute cases).
struct result {
  std::string name;
  bool ok = true;
  bool falsified = false;
  std::size_t cases_run = 0;
  std::size_t discarded = 0;
  std::uint64_t seed = 0;
  std::size_t failing_case = 0;   ///< index of the first failing sample
  std::size_t shrink_steps = 0;
  std::vector<std::string> counterexample;  ///< one rendered value per arg
  std::string message;  ///< full failure report incl. the CGP_CHECK_SEED line

  [[nodiscard]] std::string repro() const {
    return "CGP_CHECK_SEED=" + std::to_string(seed);
  }
};

namespace detail {

/// Counts the property into the telemetry registry
/// (check.properties.{executed,cases_executed,falsified}).
void record_result_telemetry(const result& r);

[[nodiscard]] std::string display_value(std::int64_t v);
[[nodiscard]] std::string display_value(std::uint64_t v);
[[nodiscard]] std::string display_value(double v);
[[nodiscard]] std::string display_value(bool v);
[[nodiscard]] std::string display_value(const std::string& v);

template <class F>
[[nodiscard]] std::string display_value(const std::complex<F>& v) {
  return "(" + display_value(static_cast<double>(v.real())) + " + " +
         display_value(static_cast<double>(v.imag())) + "i)";
}
template <class T>
[[nodiscard]] std::string display_value(const std::vector<T>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    out += display_value(v[i]);
  }
  return out + "]";
}
// Integral types narrower than 64 bits route through the wide overloads.
template <class T>
  requires(std::is_integral_v<T> && !std::is_same_v<T, bool> &&
           !std::is_same_v<T, std::int64_t> &&
           !std::is_same_v<T, std::uint64_t>)
[[nodiscard]] std::string display_value(T v) {
  if constexpr (std::is_signed_v<T>)
    return display_value(static_cast<std::int64_t>(v));
  else
    return display_value(static_cast<std::uint64_t>(v));
}

/// Runs the predicate, mapping `discard_case` to "discard" and any other
/// exception to "failed" (an axiom check that throws is a counterexample).
enum class verdict { passed, failed, discarded };

template <class Pred, class Tuple>
[[nodiscard]] verdict run_predicate(const Pred& pred, const Tuple& args,
                                    std::string* error) {
  try {
    return std::apply(pred, args) ? verdict::passed : verdict::failed;
  } catch (const discard_case&) {
    return verdict::discarded;
  } catch (const std::exception& e) {
    if (error) *error = e.what();
    return verdict::failed;
  }
}

template <class Tuple, std::size_t... Is>
[[nodiscard]] std::vector<std::string> render_tuple(
    const Tuple& t, std::index_sequence<Is...>) {
  return {display_value(std::get<Is>(t))...};
}

}  // namespace detail

/// Checks `pred(Args...)` over `cfg.cases` generated samples.  On failure,
/// greedily shrinks the counterexample componentwise and fills in
/// `result::message` with the reproduction line and the minimal tuple.
template <class... Args, class Pred>
[[nodiscard]] result for_all(std::string name, const Pred& pred,
                             const config& cfg = {}) {
  result res;
  res.name = std::move(name);
  res.seed = cfg.seed;

  using tuple_t = std::tuple<Args...>;
  std::string error;
  for (std::size_t i = 0; res.cases_run < cfg.cases; ++i) {
    // Give up when preconditions reject almost everything: the property is
    // then vacuous and must be flagged, not silently skipped.
    if (res.discarded > 10 * cfg.cases + 100) break;
    random_source rs(case_seed(cfg.seed, i));
    tuple_t args{arbitrary<Args>::generate(rs)...};
    error.clear();
    const auto v = detail::run_predicate(pred, args, &error);
    if (v == detail::verdict::discarded) {
      ++res.discarded;
      continue;
    }
    ++res.cases_run;
    if (v == detail::verdict::passed) continue;

    // --- counterexample found: shrink it ------------------------------------
    res.ok = false;
    res.falsified = true;
    res.failing_case = i;
    bool shrunk = true;
    while (shrunk && res.shrink_steps < cfg.max_shrinks) {
      shrunk = false;
      // Try to simplify each component in turn; accept the first candidate
      // that still fails and restart the sweep.
      const auto try_component = [&](auto index_constant) {
        constexpr std::size_t I = index_constant.value;
        using elem_t = std::tuple_element_t<I, tuple_t>;
        auto& slot = std::get<I>(args);
        // Indexed loop: vector<bool> candidate lists yield proxy references.
        const std::vector<elem_t> cands = shrinker<elem_t>::candidates(slot);
        for (std::size_t ci = 0; ci < cands.size(); ++ci) {
          tuple_t trial = args;
          std::get<I>(trial) = cands[ci];
          std::string trial_error;
          if (detail::run_predicate(pred, trial, &trial_error) ==
              detail::verdict::failed) {
            slot = cands[ci];
            error = trial_error;
            ++res.shrink_steps;
            return true;
          }
        }
        return false;
      };
      [&]<std::size_t... Is>(std::index_sequence<Is...>) {
        shrunk = (try_component(std::integral_constant<std::size_t, Is>{}) ||
                  ...);
      }(std::index_sequence_for<Args...>{});
    }
    res.counterexample =
        detail::render_tuple(args, std::index_sequence_for<Args...>{});

    std::ostringstream msg;
    msg << "property '" << res.name << "' FALSIFIED\n  reproduce with: "
        << res.repro() << "  (case " << res.failing_case << ", "
        << res.shrink_steps << " shrink steps)\n  counterexample: (";
    for (std::size_t k = 0; k < res.counterexample.size(); ++k) {
      if (k != 0) msg << ", ";
      msg << res.counterexample[k];
    }
    msg << ")";
    if (!error.empty()) msg << "\n  raised: " << error;
    res.message = msg.str();
    detail::record_result_telemetry(res);
    return res;
  }

  if (res.cases_run == 0) {
    // The silent-skip guard: a property whose generator/preconditions
    // discarded everything proves nothing and must fail loudly.
    res.ok = false;
    res.message = "property '" + res.name +
                  "' executed 0 cases (all " +
                  std::to_string(res.discarded) +
                  " samples discarded) — vacuous suite; " + res.repro();
  }
  detail::record_result_telemetry(res);
  return res;
}

/// Sum of executed cases across results (for report gating).
[[nodiscard]] std::size_t total_cases(const std::vector<result>& rs);
/// True when every result is ok.
[[nodiscard]] bool all_ok(const std::vector<result>& rs);
/// Concatenated failure messages (empty when all ok).
[[nodiscard]] std::string failure_messages(const std::vector<result>& rs);

}  // namespace cgp::check
