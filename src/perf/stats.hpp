// Outlier-robust sample statistics for the performance observatory.
//
// Wall-clock samples on a shared machine are contaminated: scheduler
// preemptions, frequency transitions, and cold caches put a heavy right
// tail on any timing distribution, and a single preempted batch can move
// a mean or a standard deviation arbitrarily far.  The observatory
// therefore bases every decision on order statistics — the median for
// location, the median absolute deviation (MAD) for spread, and a seeded
// bootstrap for a confidence interval on the median — so one bad sample
// shifts nothing and every number is reproducible for a fixed seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cgp::perf {

/// Median of `v` (taken by value; partially sorted in place).  Even sizes
/// average the two central order statistics.  0 for an empty vector.
[[nodiscard]] double median(std::vector<double> v);

/// Median absolute deviation about `center`: median(|v_i - center|).
/// Reported raw (no 1.4826 normal-consistency factor): the regression
/// gates work in MAD units, not estimated sigmas.
[[nodiscard]] double mad(const std::vector<double>& v, double center);

/// Percentile (p in [0, 100]) with linear interpolation between order
/// statistics.  0 for an empty vector.
[[nodiscard]] double percentile(std::vector<double> v, double p);

struct confidence_interval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Bootstrap confidence interval for the median: `resamples`
/// with-replacement resamples of `v`, each reduced to its median; the
/// interval is the central `confidence` percentile band of those medians.
/// Resample indices come from splitmix64 on `seed`, so the interval is
/// deterministic per seed (the CGP_CHECK_SEED replay contract).
[[nodiscard]] confidence_interval bootstrap_median_ci(
    const std::vector<double>& v, std::uint64_t seed,
    std::size_t resamples = 200, double confidence = 0.95);

/// The full summary the observatory attaches to every (benchmark, n)
/// sweep cell.
struct summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double mad = 0.0;        ///< about the median
  confidence_interval ci;  ///< bootstrap CI for the median
};

/// Computes the whole summary (the bootstrap draws from `seed`).
[[nodiscard]] summary summarize(const std::vector<double>& samples,
                                std::uint64_t seed);

}  // namespace cgp::perf
