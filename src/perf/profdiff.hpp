// Profile diffing: frame-by-frame comparison of two cgp.prof.v1
// documents, the attribution half of the baseline gate.  Where
// report.hpp's compare_reports says "benchmark X got slower",
// profile_diff says *which call path* absorbed the time: each path is
// classified grown / shrunk / new / vanished by its exclusive-time
// delta, and the result is sorted by |delta| so the top entries name
// the culprit.  In manual-clock mode deltas are tick-exact, which is
// what lets the --plant-regression self-test assert that the planted
// hot loop lands in the top-5.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "telemetry/export.hpp"

namespace cgp::perf {

/// One diffed call path ("a;b;c" in collapsed-stack notation).
struct frame_delta {
  std::string path;
  /// "grown" | "shrunk" | "new" | "vanished".  Paths whose exclusive
  /// time is unchanged are omitted from the diff entirely.
  std::string status;
  double excl_before = 0.0;
  double excl_after = 0.0;
  double delta = 0.0;  ///< excl_after - excl_before
  double count_before = 0.0;
  double count_after = 0.0;
};

struct profile_diff_result {
  bool ok = true;  ///< false when either input failed validation
  std::vector<std::string> errors;
  std::string unit;  ///< shared unit of both profiles
  /// Sorted by |delta| descending, ties by path ascending (deterministic).
  std::vector<frame_delta> deltas;
};

/// Compares two parsed cgp.prof.v1 documents.  Both must pass
/// telemetry::profile::validate_profile and agree on the unit; otherwise
/// `ok` is false and `errors` says why.
[[nodiscard]] profile_diff_result profile_diff(
    const telemetry::json_value& before, const telemetry::json_value& after);

/// Human-readable top-N rendering: status, exclusive before -> after,
/// signed delta, call path.
[[nodiscard]] std::string render_profile_diff(const profile_diff_result& d,
                                              std::size_t top_n);

}  // namespace cgp::perf
