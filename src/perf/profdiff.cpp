#include "perf/profdiff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

#include "telemetry/profile.hpp"

namespace cgp::perf {

namespace {

struct path_stat {
  double excl = 0.0;
  double count = 0.0;
};

void flatten(const telemetry::json_value& node, std::string& path,
             std::map<std::string, path_stat>& out) {
  const std::size_t len = path.size();
  if (!path.empty()) path += ';';
  path += node.at("name").str;
  path_stat& s = out[path];  // paths are unique per validated profile
  s.excl += node.at("excl").num;
  s.count += node.at("count").num;
  for (const auto& c : node.at("children").arr) flatten(c, path, out);
  path.resize(len);
}

}  // namespace

profile_diff_result profile_diff(const telemetry::json_value& before,
                                 const telemetry::json_value& after) {
  profile_diff_result out;
  const auto vb = telemetry::profile::validate_profile(before);
  const auto va = telemetry::profile::validate_profile(after);
  if (!vb.ok) {
    out.ok = false;
    for (const auto& e : vb.errors) out.errors.push_back("before: " + e);
  }
  if (!va.ok) {
    out.ok = false;
    for (const auto& e : va.errors) out.errors.push_back("after: " + e);
  }
  if (!out.ok) return out;
  if (before.at("unit").str != after.at("unit").str) {
    out.ok = false;
    out.errors.push_back("unit mismatch: before is \"" +
                         before.at("unit").str + "\", after is \"" +
                         after.at("unit").str + "\"");
    return out;
  }
  out.unit = before.at("unit").str;

  std::map<std::string, path_stat> b, a;
  std::string scratch;
  for (const auto& r : before.at("roots").arr) flatten(r, scratch, b);
  for (const auto& r : after.at("roots").arr) flatten(r, scratch, a);

  for (const auto& [path, sb] : b) {
    const auto it = a.find(path);
    frame_delta d;
    d.path = path;
    d.excl_before = sb.excl;
    d.count_before = sb.count;
    if (it == a.end()) {
      d.status = "vanished";
      d.delta = -sb.excl;
    } else {
      d.excl_after = it->second.excl;
      d.count_after = it->second.count;
      d.delta = d.excl_after - d.excl_before;
      if (d.delta > 0.0)
        d.status = "grown";
      else if (d.delta < 0.0)
        d.status = "shrunk";
      else
        continue;  // unchanged paths carry no signal
    }
    out.deltas.push_back(std::move(d));
  }
  for (const auto& [path, sa] : a) {
    if (b.count(path) != 0) continue;
    frame_delta d;
    d.path = path;
    d.status = "new";
    d.excl_after = sa.excl;
    d.count_after = sa.count;
    d.delta = sa.excl;
    out.deltas.push_back(std::move(d));
  }

  std::sort(out.deltas.begin(), out.deltas.end(),
            [](const frame_delta& x, const frame_delta& y) {
              const double ax = std::fabs(x.delta), ay = std::fabs(y.delta);
              if (ax != ay) return ax > ay;
              return x.path < y.path;
            });
  return out;
}

std::string render_profile_diff(const profile_diff_result& d,
                                std::size_t top_n) {
  std::ostringstream out;
  if (!d.ok) {
    out << "profile diff failed:\n";
    for (const auto& e : d.errors) out << "  " << e << "\n";
    return out.str();
  }
  const std::size_t n = std::min(top_n, d.deltas.size());
  out << "profile diff (top " << n << " of " << d.deltas.size()
      << " changed paths, exclusive " << d.unit << "):\n";
  for (std::size_t i = 0; i < n; ++i) {
    const frame_delta& f = d.deltas[i];
    char line[512];
    std::snprintf(line, sizeof line,
                  "  %-8s %+14.0f  (%.0f -> %.0f)  %s\n", f.status.c_str(),
                  f.delta, f.excl_before, f.excl_after, f.path.c_str());
    out << line;
  }
  if (d.deltas.empty()) out << "  (no changed paths)\n";
  return out.str();
}

}  // namespace cgp::perf
