#include "perf/report.hpp"

#include <sstream>

namespace cgp::perf {

namespace {

using telemetry::json_value;

json_value jstr(std::string s) {
  json_value v;
  v.k = json_value::kind::string;
  v.str = std::move(s);
  return v;
}

json_value jnum(double n) {
  json_value v;
  v.k = json_value::kind::number;
  v.num = n;
  return v;
}

json_value jobj() {
  json_value v;
  v.k = json_value::kind::object;
  return v;
}

json_value jarr() {
  json_value v;
  v.k = json_value::kind::array;
  return v;
}

json_value summary_json(const summary& s) {
  json_value v = jobj();
  v.obj["count"] = jnum(static_cast<double>(s.count));
  v.obj["min"] = jnum(s.min);
  v.obj["max"] = jnum(s.max);
  v.obj["mean"] = jnum(s.mean);
  v.obj["median"] = jnum(s.median);
  v.obj["mad"] = jnum(s.mad);
  v.obj["ci_lo"] = jnum(s.ci.lo);
  v.obj["ci_hi"] = jnum(s.ci.hi);
  return v;
}

/// Looks up a benchmark object by name in a report document; nullptr when
/// absent or the document is not shaped like a report.
const json_value* find_benchmark(const json_value& report,
                                 const std::string& name) {
  if (!report.has("benchmarks")) return nullptr;
  const json_value& arr = report.at("benchmarks");
  if (!arr.is(json_value::kind::array)) return nullptr;
  for (const json_value& b : arr.arr)
    if (b.has("name") && b.at("name").str == name) return &b;
  return nullptr;
}

const json_value* find_sweep_point(const json_value& bench, double n) {
  if (!bench.has("sweep")) return nullptr;
  for (const json_value& pt : bench.at("sweep").arr)
    if (pt.has("n") && pt.at("n").num == n) return &pt;
  return nullptr;
}

/// Duration-unit counters (…_us, …_ns) accumulate wall time, not
/// operations — they are as noisy as the clock and are covered by the
/// time gate, so the deterministic counter gate skips them.
bool is_duration_counter(const std::string& name) {
  return name.size() >= 3 && (name.ends_with("_us") || name.ends_with("_ns"));
}

}  // namespace

json_value report_json(const std::vector<benchmark_result>& results,
                       const environment& env) {
  json_value doc = jobj();
  doc.obj["schema"] = jstr(kSchema);
  doc.obj["environment"] = env.to_json();

  json_value benches = jarr();
  for (const benchmark_result& r : results) {
    json_value b = jobj();
    b.obj["name"] = jstr(r.name);
    b.obj["subsystem"] = jstr(r.subsystem);
    b.obj["declared"] = jstr(r.declared);
    b.obj["counter_prefix"] = jstr(r.counter_prefix);
    b.obj["fitted_on"] = jstr(r.fitted_on);

    json_value fit = jobj();
    fit.obj["verdict"] = jstr(to_string(r.fit.v));
    fit.obj["exponent"] = jnum(r.fit.exponent);
    fit.obj["excess"] = jnum(r.fit.excess);
    fit.obj["r2"] = jnum(r.fit.r2);
    fit.obj["detail"] = jstr(r.fit.detail);
    b.obj["fit"] = std::move(fit);

    json_value sweep = jarr();
    for (const sweep_point& pt : r.sweep) {
      json_value p = jobj();
      p.obj["n"] = jnum(static_cast<double>(pt.n));
      p.obj["iterations"] = jnum(static_cast<double>(pt.iterations));
      p.obj["time_ns"] = summary_json(pt.time_ns);
      json_value counters = jobj();
      for (const auto& [name, per_iter] : pt.counters)
        counters.obj[name] = jnum(per_iter);
      p.obj["counters"] = std::move(counters);
      sweep.arr.push_back(std::move(p));
    }
    b.obj["sweep"] = std::move(sweep);
    benches.arr.push_back(std::move(b));
  }
  doc.obj["benchmarks"] = std::move(benches);
  return doc;
}

std::vector<regression> compare_reports(const json_value& current,
                                        const json_value& baseline,
                                        const gate_options& opts) {
  std::vector<regression> out;
  if (!baseline.has("benchmarks") ||
      !baseline.at("benchmarks").is(json_value::kind::array))
    return out;

  for (const json_value& base : baseline.at("benchmarks").arr) {
    if (!base.has("name")) continue;
    const std::string& name = base.at("name").str;
    const json_value* cur = find_benchmark(current, name);
    if (cur == nullptr) {
      out.push_back({name, "coverage",
                     "benchmark present in baseline but missing from the "
                     "current report"});
      continue;
    }

    if (cur->has("fit") && cur->at("fit").has("verdict") &&
        cur->at("fit").at("verdict").str == "violated") {
      out.push_back({name, "fit", cur->at("fit").at("detail").str});
    }

    if (!base.has("sweep")) continue;
    for (const json_value& bpt : base.at("sweep").arr) {
      if (!bpt.has("n")) continue;
      const double n = bpt.at("n").num;
      const json_value* cpt = find_sweep_point(*cur, n);
      if (cpt == nullptr) {
        std::ostringstream os;
        os << "sweep point n=" << n << " missing from the current report";
        out.push_back({name, "coverage", os.str()});
        continue;
      }

      // Deterministic gate: per-iteration counter growth.
      if (bpt.has("counters") && cpt->has("counters")) {
        for (const auto& [cname, bval] : bpt.at("counters").obj) {
          // Sub-unit baselines are once-per-process amortization artifacts
          // (cache warm-up, lazy registration) spread over however many
          // invocations calibration happened to run — not a per-iteration
          // cost.  Real op counters are >= 1 per iteration by construction.
          if (bval.num < 1.0 || is_duration_counter(cname)) continue;
          const json_value& ccounters = cpt->at("counters");
          const double cval =
              ccounters.has(cname) ? ccounters.at(cname).num : 0.0;
          if (cval > bval.num * opts.counter_ratio + 1e-9) {
            std::ostringstream os;
            os << cname << " at n=" << n << ": " << cval
               << " ops/iter vs baseline " << bval.num << " (ratio "
               << cval / bval.num << " > " << opts.counter_ratio << ")";
            out.push_back({name, "counter", os.str()});
          }
        }
      }

      // Noisy gate: whole CI must clear a generous multiple of baseline.
      if (opts.gate_time && bpt.has("time_ns") && cpt->has("time_ns")) {
        const double base_median = bpt.at("time_ns").at("median").num;
        const json_value& ct = cpt->at("time_ns");
        const double cur_ci_lo = ct.has("ci_lo") ? ct.at("ci_lo").num : 0.0;
        if (base_median > 0.0 && cur_ci_lo > base_median * opts.time_ratio) {
          std::ostringstream os;
          os << "time at n=" << n << ": ci_lo " << cur_ci_lo
             << " ns/iter vs baseline median " << base_median << " (ratio "
             << cur_ci_lo / base_median << " > " << opts.time_ratio << ")";
          out.push_back({name, "time", os.str()});
        }
      }
    }
  }
  return out;
}

}  // namespace cgp::perf
