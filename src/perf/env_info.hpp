// The shared environment block every report binary stamps its output
// with (bench/perf_report, bench/telemetry_export, bench/trace_export).
//
// A measured number is only comparable to another measured number when
// both carry the conditions they were measured under, so the observatory
// refuses to emit an anonymous report: compiler, build flags, core
// count, OS, and a caller-supplied timestamp ride along in one
// "environment" JSON object with a single definition here — previously
// each binary re-derived (or skipped) this ad hoc.
#pragma once

#include <string>

#include "telemetry/export.hpp"

namespace cgp::perf {

struct environment {
  std::string compiler;       ///< e.g. "GCC 13.2.0"
  std::string build_type;     ///< CMake config, e.g. "Release"
  std::string cxx_flags;      ///< configured CMAKE_CXX_FLAGS (may be empty)
  unsigned hardware_threads = 0;
  std::string os;             ///< coarse platform tag, e.g. "linux"
  std::string timestamp;      ///< caller-provided (see utc_timestamp())

  [[nodiscard]] telemetry::json_value to_json() const;
  [[nodiscard]] std::string to_string() const;
};

/// Snapshot of the current process's build/runtime environment.  The
/// timestamp is passed in, not read here: reports stay deterministic
/// under replay, and the one clock read sits visibly in the driver.
[[nodiscard]] environment env_info(std::string timestamp = "");

/// Current wall-clock time as ISO-8601 UTC ("2026-08-06T12:00:00Z") —
/// the conventional value drivers pass into env_info.
[[nodiscard]] std::string utc_timestamp();

}  // namespace cgp::perf
