// The benchmark registry and sweep runner — the observatory's core loop.
//
// A benchmark here is not "a function to time" but a *claim*: this
// workload, swept over these problem sizes, should cost no more than the
// declared core::big_o.  The runner produces everything needed to audit
// that claim — robust per-iteration timing statistics at each n, the
// telemetry counter deltas attributed to each iteration (deterministic,
// unlike the clock), and an empirical fit of the sweep against the
// declared bound.  Counter attribution works because timing_result
// counts *every* workload invocation (warmup and calibration included),
// so delta / invocations is exact regardless of how calibration went.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/complexity.hpp"
#include "perf/fit.hpp"
#include "perf/stats.hpp"
#include "perf/timer.hpp"

namespace cgp::perf {

struct benchmark_def {
  std::string name;       ///< "subsystem.workload", e.g. "sequences.sort"
  std::string subsystem;  ///< coarse grouping for the report
  core::big_o declared;   ///< the performance-concept bound per iteration
  std::vector<std::size_t> sizes;  ///< the n-sweep
  /// Telemetry counter prefix attributed to this workload (e.g.
  /// "sequences.sort."); when non-empty and the workload actually bumps
  /// matching counters, the complexity fit runs on ops/iteration
  /// (deterministic) instead of wall time.
  std::string counter_prefix;
  /// Excess-exponent tolerance for the fit (see perf::fit_against).
  double excess_tolerance = kDefaultExcessTolerance;
  /// Whether the workload belongs in the byte-deterministic manual-clock
  /// profile capture.  Nested fork-join workloads must opt out: a worker
  /// blocked in task_group::wait helps with whatever task is available,
  /// and those inline executions land inside the waiting frame's tick
  /// span, so its manual-clock total depends on the schedule.
  bool deterministic_profile = true;
  /// Builds the workload for one sweep size.  Setup cost (allocating
  /// inputs, constructing pools) belongs here, outside the timed region;
  /// the returned callable is what gets timed.
  std::function<std::function<void()>(std::size_t n)> setup;
};

/// One cell of the n-sweep.
struct sweep_point {
  std::size_t n = 0;
  std::size_t iterations = 0;  ///< calibrated batch size
  summary time_ns;             ///< per-iteration wall time statistics
  /// Counter growth per workload invocation, for every counter that grew.
  std::vector<std::pair<std::string, double>> counters;
  /// Sum of `counters` entries matching the def's counter_prefix.
  double prefix_ops = 0.0;
};

struct benchmark_result {
  std::string name;
  std::string subsystem;
  std::string declared;        ///< def.declared.to_string()
  std::string counter_prefix;
  std::vector<sweep_point> sweep;
  fit_result fit;
  std::string fitted_on;  ///< "counters" or "time_ns"
};

/// Order-preserving collection of benchmark definitions.
class bench_registry {
 public:
  void add(benchmark_def def);
  [[nodiscard]] const std::vector<benchmark_def>& all() const noexcept {
    return defs_;
  }
  [[nodiscard]] const benchmark_def* find(const std::string& name) const;

 private:
  std::vector<benchmark_def> defs_;
};

/// Runs one benchmark's full sweep: per n, builds the workload, brackets
/// the adaptive timer with a telemetry::counter_snapshot, and summarizes.
/// The bootstrap seed for point i is `seed + i` (deterministic per seed).
[[nodiscard]] benchmark_result run_benchmark(const benchmark_def& def,
                                             const timing_options& opts,
                                             std::uint64_t seed);

/// run_benchmark over every registered definition, in registration order.
[[nodiscard]] std::vector<benchmark_result> run_all(const bench_registry& reg,
                                                    const timing_options& opts,
                                                    std::uint64_t seed);

}  // namespace cgp::perf
