#include "perf/fit.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace cgp::perf {

namespace {

constexpr double kEps = 1e-12;

struct linfit {
  double slope = 0.0;
  double r2 = 0.0;
};

linfit fit_xy(const std::vector<std::pair<double, double>>& xy) {
  linfit f;
  const double m = static_cast<double>(xy.size());
  if (xy.size() < 2) return f;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (const auto& [x, y] : xy) {
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
  }
  const double denom = m * sxx - sx * sx;
  if (denom == 0.0) return f;
  f.slope = (m * sxy - sx * sy) / denom;
  const double var_y = m * syy - sy * sy;
  if (var_y <= 0.0) {
    // A perfectly flat response is a perfect fit of a zero-slope line.
    f.r2 = 1.0;
  } else {
    const double cov = m * sxy - sx * sy;
    f.r2 = (cov * cov) / (denom * var_y);
  }
  return f;
}

}  // namespace

std::string to_string(verdict v) {
  switch (v) {
    case verdict::consistent:
      return "consistent";
    case verdict::violated:
      return "violated";
    case verdict::inconclusive:
      return "inconclusive";
  }
  return "unknown";
}

double loglog_slope(const std::vector<std::pair<double, double>>& points) {
  std::vector<std::pair<double, double>> logs;
  logs.reserve(points.size());
  for (const auto& [n, y] : points)
    logs.emplace_back(std::log(std::max(n, kEps)),
                      std::log(std::max(y, kEps)));
  return fit_xy(logs).slope;
}

fit_result fit_against(const std::vector<std::pair<double, double>>& points,
                       const core::big_o& bound, double tolerance,
                       const std::string& var) {
  fit_result r;
  r.declared = bound.to_string();

  if (points.size() < 3) {
    r.v = verdict::inconclusive;
    r.detail = "inconclusive: need at least 3 sweep points to fit";
    return r;
  }
  const auto [min_it, max_it] = std::minmax_element(
      points.begin(), points.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (min_it->first <= 0.0 || max_it->first < 4.0 * min_it->first) {
    r.v = verdict::inconclusive;
    r.detail = "inconclusive: sweep must span at least a 4x range of positive n";
    return r;
  }

  std::vector<std::pair<double, double>> raw_logs;
  std::vector<std::pair<double, double>> excess_logs;
  raw_logs.reserve(points.size());
  excess_logs.reserve(points.size());
  for (const auto& [n, y] : points) {
    const double x = std::log(std::max(n, kEps));
    const double ly = std::log(std::max(y, kEps));
    raw_logs.emplace_back(x, ly);
    const double predicted = std::max(bound.eval({{var, n}}), kEps);
    excess_logs.emplace_back(x, std::log(std::max(y, kEps) / predicted));
  }
  const linfit raw = fit_xy(raw_logs);
  const linfit excess = fit_xy(excess_logs);
  r.exponent = raw.slope;
  r.excess = excess.slope;
  r.r2 = raw.r2;
  r.v = excess.slope <= tolerance ? verdict::consistent : verdict::violated;

  std::ostringstream os;
  if (r.v == verdict::consistent) {
    os << "grows like " << var << "^" << r.exponent << ", within " << r.declared
       << " (excess " << r.excess << " <= " << tolerance << ")";
  } else {
    os << "grows like " << var << "^" << r.exponent << ", outgrowing "
       << r.declared << " (excess " << r.excess << " > " << tolerance << ")";
  }
  r.detail = os.str();
  return r;
}

}  // namespace cgp::perf
