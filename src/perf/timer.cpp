#include "perf/timer.hpp"

#include <chrono>

namespace cgp::perf {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace cgp::perf
