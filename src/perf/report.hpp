// BENCH_perf.json assembly and the regression gate.
//
// The report is the observatory's durable artifact: a machine-readable
// trajectory point (schema cgp.perf.v1) that CI uploads on every run and
// compares against the checked-in bench/baseline.json.  The gate is
// deliberately asymmetric about what it trusts: telemetry counters are
// deterministic, so a small counter ratio (default 1.30) catches a real
// algorithmic regression without false positives; wall time is noisy and
// machine-dependent, so time only gates when the *entire* bootstrap
// confidence interval clears a generous multiple of the baseline median —
// a different machine being 2x slower passes, a quadratic slipped into a
// linear loop does not.
#pragma once

#include <string>
#include <vector>

#include "perf/benchmark.hpp"
#include "perf/env_info.hpp"
#include "telemetry/export.hpp"

namespace cgp::perf {

/// Schema tag stamped into every report.
inline constexpr const char* kSchema = "cgp.perf.v1";

/// Builds the full report document:
/// {"schema","environment","benchmarks":[{name, subsystem, declared,
///   fitted_on, fit:{verdict,exponent,excess,r2,detail},
///   sweep:[{n, iterations, time_ns:{...}, counters:{...}}]}]}
[[nodiscard]] telemetry::json_value report_json(
    const std::vector<benchmark_result>& results, const environment& env);

struct gate_options {
  /// A counter's per-iteration cost may grow by at most this factor.
  double counter_ratio = 1.30;
  /// Time regresses only when current ci_lo > baseline median * this.
  double time_ratio = 4.0;
  /// Disable to gate purely on counters (fully deterministic mode).
  bool gate_time = true;
};

struct regression {
  std::string benchmark;
  std::string what;    ///< "coverage" | "counter" | "time" | "fit"
  std::string detail;
};

/// Compares a current report document against a baseline document (both
/// as parsed JSON, so the baseline can come straight off disk).  Every
/// benchmark present in the baseline must be present in the current
/// report (a vanished benchmark is a coverage regression, not a pass).
[[nodiscard]] std::vector<regression> compare_reports(
    const telemetry::json_value& current, const telemetry::json_value& baseline,
    const gate_options& opts = {});

}  // namespace cgp::perf
