#include "perf/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace cgp::perf {

namespace {

/// splitmix64 (Vigna): the same stream the check subsystem's generators
/// use, re-stated here so cgp_perf stays independent of cgp_check.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  const double upper = v[mid];
  if (v.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lower + upper) / 2.0;
}

double mad(const std::vector<double>& v, double center) {
  if (v.empty()) return 0.0;
  std::vector<double> dev;
  dev.reserve(v.size());
  for (const double x : v) dev.push_back(std::abs(x - center));
  return median(std::move(dev));
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  if (p <= 0.0) return v.front();
  if (p >= 100.0) return v.back();
  const double rank = (p / 100.0) * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] + (v[lo + 1] - v[lo]) * frac;
}

confidence_interval bootstrap_median_ci(const std::vector<double>& v,
                                        std::uint64_t seed,
                                        std::size_t resamples,
                                        double confidence) {
  if (v.empty()) return {};
  if (v.size() == 1 || resamples == 0) return {v.front(), v.front()};
  std::uint64_t state = seed;
  std::vector<double> medians;
  medians.reserve(resamples);
  std::vector<double> resample(v.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    for (double& slot : resample)
      slot = v[static_cast<std::size_t>(splitmix64(state) % v.size())];
    medians.push_back(median(resample));
  }
  const double tail = (1.0 - confidence) / 2.0 * 100.0;
  confidence_interval ci;
  ci.lo = percentile(medians, tail);
  ci.hi = percentile(std::move(medians), 100.0 - tail);
  return ci;
}

summary summarize(const std::vector<double>& samples, std::uint64_t seed) {
  summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  const auto [min_it, max_it] =
      std::minmax_element(samples.begin(), samples.end());
  s.min = *min_it;
  s.max = *max_it;
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  s.median = median(samples);
  s.mad = mad(samples, s.median);
  s.ci = bootstrap_median_ci(samples, seed);
  return s;
}

}  // namespace cgp::perf
