#include "perf/benchmark.hpp"

#include "telemetry/telemetry.hpp"

namespace cgp::perf {

void bench_registry::add(benchmark_def def) { defs_.push_back(std::move(def)); }

const benchmark_def* bench_registry::find(const std::string& name) const {
  for (const benchmark_def& d : defs_)
    if (d.name == name) return &d;
  return nullptr;
}

benchmark_result run_benchmark(const benchmark_def& def,
                               const timing_options& opts,
                               std::uint64_t seed) {
  benchmark_result r;
  r.name = def.name;
  r.subsystem = def.subsystem;
  r.declared = def.declared.to_string();
  r.counter_prefix = def.counter_prefix;

  std::vector<std::pair<double, double>> time_points;
  std::vector<std::pair<double, double>> ops_points;
  bool ops_usable = !def.counter_prefix.empty();

  std::uint64_t point_seed = seed;
  for (const std::size_t n : def.sizes) {
    sweep_point pt;
    pt.n = n;

    auto workload = def.setup(n);
    telemetry::counter_snapshot snap;
    const timing_result timing = measure(workload, opts);

    pt.iterations = timing.iterations;
    pt.time_ns = summarize(timing.ns_per_iteration, point_seed++);
    const double invocations =
        static_cast<double>(std::max<std::uint64_t>(1, timing.invocations));
    for (const auto& [name, delta] : snap.delta())
      pt.counters.emplace_back(name, static_cast<double>(delta) / invocations);
    if (!def.counter_prefix.empty())
      pt.prefix_ops = static_cast<double>(snap.delta_sum(def.counter_prefix)) /
                      invocations;

    time_points.emplace_back(static_cast<double>(n), pt.time_ns.median);
    if (pt.prefix_ops > 0.0)
      ops_points.emplace_back(static_cast<double>(n), pt.prefix_ops);
    else
      ops_usable = false;

    r.sweep.push_back(std::move(pt));
  }

  // Prefer the deterministic signal: fit ops/iteration when every sweep
  // point produced matching counters, wall time otherwise.
  if (ops_usable && !ops_points.empty()) {
    r.fit = fit_against(ops_points, def.declared, def.excess_tolerance);
    r.fitted_on = "counters";
  } else {
    r.fit = fit_against(time_points, def.declared, def.excess_tolerance);
    r.fitted_on = "time_ns";
  }
  return r;
}

std::vector<benchmark_result> run_all(const bench_registry& reg,
                                      const timing_options& opts,
                                      std::uint64_t seed) {
  std::vector<benchmark_result> out;
  out.reserve(reg.all().size());
  // Offset each benchmark's seed block so sweep-point seeds never overlap.
  std::uint64_t base = seed;
  for (const benchmark_def& def : reg.all()) {
    out.push_back(run_benchmark(def, opts, base));
    base += 1024;
  }
  return out;
}

}  // namespace cgp::perf
