// Empirical complexity fitting: does a measured n-sweep grow like the
// algorithm's declared core::big_o bound?
//
// Same statistical machinery as telemetry::complexity_check — a
// least-squares fit of log(y / bound(n)) against log(n), whose slope is
// the growth the bound failed to explain — but packaged for the
// observatory: a three-way verdict (consistent / violated /
// inconclusive) instead of a boolean, the raw fitted log-log slope of y
// itself alongside the excess, and an R² so a report reader can tell a
// clean fit from a shrug.  Wall-clock sweeps are noisier than op counts,
// so the default excess tolerance is looser than complexity_check's.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/complexity.hpp"

namespace cgp::perf {

enum class verdict {
  consistent,    ///< observed growth within tolerance of the bound
  violated,      ///< observed growth exceeds the bound beyond tolerance
  inconclusive,  ///< too few points or too narrow an n-span to fit
};

[[nodiscard]] std::string to_string(verdict v);

struct fit_result {
  verdict v = verdict::inconclusive;
  /// Raw log-log slope of y against n — "the data grows like n^exponent".
  double exponent = 0.0;
  /// Slope of log(y / bound(n)) vs log(n): growth the bound missed.
  double excess = 0.0;
  /// Coefficient of determination of the raw log-log fit.
  double r2 = 0.0;
  std::string declared;  ///< bound.to_string()
  std::string detail;    ///< human-readable one-liner
};

/// Default excess-exponent tolerance for wall-time fits.  complexity_check
/// uses 0.35 for deterministic op counts; timing data earns extra slack.
inline constexpr double kDefaultExcessTolerance = 0.5;

/// Least-squares slope of log(y) vs log(n) over `points` (n, y) pairs.
/// Non-positive coordinates are clamped to a tiny epsilon.
[[nodiscard]] double loglog_slope(
    const std::vector<std::pair<double, double>>& points);

/// Fits `points` (n, y) against `bound` and renders the verdict.
/// Inconclusive when fewer than 3 points or max(n) < 4·min(n) — the same
/// refusal thresholds as telemetry::complexity_check.
[[nodiscard]] fit_result fit_against(
    const std::vector<std::pair<double, double>>& points,
    const core::big_o& bound, double tolerance = kDefaultExcessTolerance,
    const std::string& var = "n");

}  // namespace cgp::perf
