// Steady-clock micro-benchmark timer: warmup, adaptive iteration-count
// calibration, and repeated measured batches.
//
// A single invocation of a fast operation is unmeasurable (clock
// granularity) and a single long batch hides variance, so the timer does
// what mature harnesses do: warm the code and data up, grow the batch
// size until one batch meets a minimum wall time (so the clock read is a
// small fraction of the measurement), then run a fixed number of measured
// batches and report each batch's per-iteration time.  The caller feeds
// those samples to perf::summarize for robust statistics.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace cgp::perf {

/// Monotonic nanoseconds (std::chrono::steady_clock under the hood).
[[nodiscard]] std::uint64_t steady_now_ns() noexcept;

struct timing_options {
  /// Target wall time per measured batch; the calibration loop scales the
  /// per-batch iteration count up until one batch takes at least this.
  std::uint64_t min_sample_ns = 2'000'000;
  /// Measured batches (odd keeps the median a real order statistic).
  std::size_t repeats = 9;
  /// Un-measured warmup invocations before calibration.
  std::size_t warmup = 1;
  /// Hard cap on iterations per batch (guards against a no-op benchmark
  /// spinning the calibration loop forever).
  std::size_t max_iterations = std::size_t{1} << 20;
};

struct timing_result {
  std::size_t iterations = 0;  ///< per measured batch, after calibration
  /// One entry per measured batch: that batch's mean ns per iteration.
  std::vector<double> ns_per_iteration;
  /// Total `fn` invocations across warmup + calibration + measurement —
  /// the divisor that turns a telemetry counter delta into ops/iteration.
  std::uint64_t invocations = 0;
};

/// Runs `fn()` with warmup and calibration, then `opts.repeats` measured
/// batches of the calibrated iteration count.
template <class Fn>
[[nodiscard]] timing_result measure(Fn&& fn, const timing_options& opts = {}) {
  timing_result r;
  for (std::size_t i = 0; i < std::max<std::size_t>(1, opts.warmup); ++i) {
    fn();
    ++r.invocations;
  }

  // Calibrate: grow the batch until it meets min_sample_ns.  When a batch
  // produced a usable time, jump straight at the target (with 25%
  // headroom) instead of doubling all the way up.
  std::size_t iters = 1;
  for (;;) {
    const std::uint64_t t0 = steady_now_ns();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const std::uint64_t dt = steady_now_ns() - t0;
    r.invocations += iters;
    if (dt >= opts.min_sample_ns || iters >= opts.max_iterations) break;
    std::uint64_t next = iters * 2;
    if (dt > 0) {
      const double scale =
          static_cast<double>(opts.min_sample_ns) / static_cast<double>(dt);
      next = std::max<std::uint64_t>(
          next, static_cast<std::uint64_t>(static_cast<double>(iters) * scale *
                                           1.25) +
                    1);
    }
    iters = static_cast<std::size_t>(
        std::min<std::uint64_t>(next, opts.max_iterations));
  }

  r.iterations = iters;
  r.ns_per_iteration.reserve(opts.repeats);
  for (std::size_t s = 0; s < opts.repeats; ++s) {
    const std::uint64_t t0 = steady_now_ns();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const std::uint64_t dt = steady_now_ns() - t0;
    r.invocations += iters;
    r.ns_per_iteration.push_back(static_cast<double>(dt) /
                                 static_cast<double>(iters));
  }
  return r;
}

}  // namespace cgp::perf
