#include "perf/env_info.hpp"

#include <ctime>
#include <sstream>
#include <thread>

namespace cgp::perf {

namespace {

telemetry::json_value jstr(std::string s) {
  telemetry::json_value v;
  v.k = telemetry::json_value::kind::string;
  v.str = std::move(s);
  return v;
}

telemetry::json_value jnum(double n) {
  telemetry::json_value v;
  v.k = telemetry::json_value::kind::number;
  v.num = n;
  return v;
}

std::string compiler_id() {
#if defined(__clang__)
  return std::string("Clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("GCC ") + __VERSION__;
#elif defined(_MSC_VER)
  return "MSVC " + std::to_string(_MSC_VER);
#else
  return "unknown";
#endif
}

std::string os_id() {
#if defined(__linux__)
  return "linux";
#elif defined(__APPLE__)
  return "macos";
#elif defined(_WIN32)
  return "windows";
#else
  return "unknown";
#endif
}

}  // namespace

telemetry::json_value environment::to_json() const {
  telemetry::json_value v;
  v.k = telemetry::json_value::kind::object;
  v.obj["compiler"] = jstr(compiler);
  v.obj["build_type"] = jstr(build_type);
  v.obj["cxx_flags"] = jstr(cxx_flags);
  v.obj["hardware_threads"] = jnum(static_cast<double>(hardware_threads));
  v.obj["os"] = jstr(os);
  v.obj["timestamp"] = jstr(timestamp);
  return v;
}

std::string environment::to_string() const {
  std::ostringstream os_;
  os_ << compiler << " [" << build_type << "] " << os << " threads="
      << hardware_threads;
  if (!timestamp.empty()) os_ << " at " << timestamp;
  return os_.str();
}

environment env_info(std::string timestamp) {
  // Everything but the timestamp is a process-lifetime constant, so probe
  // it exactly once: every exporter in the process (telemetry, trace,
  // perf, live) then stamps the SAME block, not a per-call re-derivation.
  static const environment cached = [] {
    environment e;
    e.compiler = compiler_id();
#ifdef CGP_BUILD_TYPE
    e.build_type = CGP_BUILD_TYPE;
#endif
    if (e.build_type.empty()) e.build_type = "unspecified";
#ifdef CGP_CXX_FLAGS
    e.cxx_flags = CGP_CXX_FLAGS;
#endif
    e.hardware_threads = std::thread::hardware_concurrency();
    if (e.hardware_threads == 0) e.hardware_threads = 1;
    e.os = os_id();
    return e;
  }();
  environment e = cached;
  e.timestamp = std::move(timestamp);
  return e;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
#if defined(_WIN32)
  gmtime_s(&tm_utc, &now);
#else
  gmtime_r(&now, &tm_utc);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

}  // namespace cgp::perf
