// Concept-constrained sequence algorithms (the STL slice of the paper).
//
// Three language-level points from Section 2.1 are demonstrated here, with
// the support C++20 has since gained:
//  * concept-bounded polymorphism — every algorithm's type parameters are
//    constrained by iterator/order concepts, so misuse fails at the call
//    site, not deep inside the implementation;
//  * concept-based overloading — `sort` selects introsort when iterators
//    model RandomAccessIterator and a rotation-based mergesort when they
//    model only ForwardIterator ("if they can be accessed efficiently via
//    indexing ... we can apply the more-efficient quicksort algorithm");
//  * the legacy tag-dispatching technique is provided alongside
//    (advance_tagged) so the two mechanisms can be compared.
#pragma once

#include <concepts>
#include <functional>
#include <iterator>
#include <utility>

#include "core/algebraic.hpp"

namespace cgp::sequences {

// ---------------------------------------------------------------------------
// advance / distance: the canonical dispatch example
// ---------------------------------------------------------------------------

/// O(1) for random access, O(n) otherwise — selected by concept.
template <std::input_iterator I>
constexpr void advance(I& it, std::iter_difference_t<I> n) {
  if constexpr (std::random_access_iterator<I>) {
    it += n;
  } else if constexpr (std::bidirectional_iterator<I>) {
    for (; n > 0; --n) ++it;
    for (; n < 0; ++n) --it;
  } else {
    for (; n > 0; --n) ++it;
  }
}

template <std::input_iterator I>
[[nodiscard]] constexpr std::iter_difference_t<I> distance(I first, I last) {
  if constexpr (std::random_access_iterator<I>) {
    return last - first;
  } else {
    std::iter_difference_t<I> n = 0;
    for (; first != last; ++first) ++n;
    return n;
  }
}

/// Pre-concepts tag dispatching (ref. 12's technique), for comparison in
/// tests and the dispatch bench.
namespace detail {
template <class I>
constexpr void advance_impl(I& it, std::iter_difference_t<I> n,
                            std::random_access_iterator_tag) {
  it += n;
}
template <class I>
constexpr void advance_impl(I& it, std::iter_difference_t<I> n,
                            std::input_iterator_tag) {
  for (; n > 0; --n) ++it;
}
}  // namespace detail

template <std::input_iterator I>
constexpr void advance_tagged(I& it, std::iter_difference_t<I> n) {
  detail::advance_impl(
      it, n, typename std::iterator_traits<I>::iterator_category{});
}

// ---------------------------------------------------------------------------
// Linear searches and folds
// ---------------------------------------------------------------------------

template <std::input_iterator I, class T>
[[nodiscard]] constexpr I find(I first, I last, const T& value) {
  for (; first != last; ++first)
    if (*first == value) return first;
  return last;
}

template <std::input_iterator I, std::predicate<std::iter_value_t<I>> P>
[[nodiscard]] constexpr I find_if(I first, I last, P pred) {
  for (; first != last; ++first)
    if (pred(*first)) return first;
  return last;
}

template <std::input_iterator I, class T>
[[nodiscard]] constexpr std::iter_difference_t<I> count(I first, I last,
                                                        const T& value) {
  std::iter_difference_t<I> n = 0;
  for (; first != last; ++first)
    if (*first == value) ++n;
  return n;
}

/// Monoid-constrained reduction: the operation and its identity come from a
/// declared model, so `reduce<std::plus<>>(f, l)` cannot be instantiated
/// with a non-associative operation — the semantic concept is enforced at
/// compile time (Section 3's promise).
template <class Op, std::input_iterator I>
  requires core::Monoid<std::iter_value_t<I>, Op>
[[nodiscard]] constexpr std::iter_value_t<I> reduce(I first, I last,
                                                    Op op = {}) {
  auto acc = core::identity_element<std::iter_value_t<I>, Op>();
  for (; first != last; ++first) acc = op(acc, *first);
  return acc;
}

/// Plain accumulate for explicit init (no concept requirement beyond syntax).
template <std::input_iterator I, class T, class Op = std::plus<>>
[[nodiscard]] constexpr T accumulate(I first, I last, T init, Op op = {}) {
  for (; first != last; ++first) init = op(std::move(init), *first);
  return init;
}

// ---------------------------------------------------------------------------
// Order-based algorithms: require ForwardIterator (multipass!) and a
// Strict Weak Order (Fig. 6's axioms)
// ---------------------------------------------------------------------------

/// Requires ForwardIterator: the `best` iterator is revisited after the
/// traversal has moved on — exactly the multipass dependence STLlint's
/// semantic archetype catches when handed an input iterator (Section 3.1).
template <std::forward_iterator I,
          std::indirect_strict_weak_order<I> Cmp = std::less<>>
[[nodiscard]] constexpr I max_element(I first, I last, Cmp cmp = {}) {
  if (first == last) return last;
  I best = first;
  for (++first; first != last; ++first)
    if (cmp(*best, *first)) best = first;
  return best;
}

template <std::forward_iterator I,
          std::indirect_strict_weak_order<I> Cmp = std::less<>>
[[nodiscard]] constexpr I min_element(I first, I last, Cmp cmp = {}) {
  if (first == last) return last;
  I best = first;
  for (++first; first != last; ++first)
    if (cmp(*first, *best)) best = first;
  return best;
}

template <std::forward_iterator I,
          std::indirect_strict_weak_order<I> Cmp = std::less<>>
[[nodiscard]] constexpr bool is_sorted(I first, I last, Cmp cmp = {}) {
  if (first == last) return true;
  for (I next = std::next(first); next != last; ++first, ++next)
    if (cmp(*next, *first)) return false;
  return true;
}

template <std::forward_iterator I, class T, class Cmp = std::less<>>
[[nodiscard]] constexpr I lower_bound(I first, I last, const T& value,
                                      Cmp cmp = {}) {
  auto n = cgp::sequences::distance(first, last);
  while (n > 0) {
    const auto half = n / 2;
    I mid = first;
    cgp::sequences::advance(mid, half);
    if (cmp(*mid, value)) {
      first = std::next(mid);
      n -= half + 1;
    } else {
      n = half;
    }
  }
  return first;
}

template <std::forward_iterator I, class T, class Cmp = std::less<>>
[[nodiscard]] constexpr I upper_bound(I first, I last, const T& value,
                                      Cmp cmp = {}) {
  auto n = cgp::sequences::distance(first, last);
  while (n > 0) {
    const auto half = n / 2;
    I mid = first;
    cgp::sequences::advance(mid, half);
    if (!cmp(value, *mid)) {
      first = std::next(mid);
      n -= half + 1;
    } else {
      n = half;
    }
  }
  return first;
}

template <std::forward_iterator I, class T, class Cmp = std::less<>>
[[nodiscard]] constexpr bool binary_search(I first, I last, const T& value,
                                           Cmp cmp = {}) {
  const I it = cgp::sequences::lower_bound(first, last, value, cmp);
  return it != last && !cmp(value, *it);
}

template <std::forward_iterator I, class T, class Cmp = std::less<>>
[[nodiscard]] constexpr std::pair<I, I> equal_range(I first, I last,
                                                    const T& value,
                                                    Cmp cmp = {}) {
  return {cgp::sequences::lower_bound(first, last, value, cmp),
          cgp::sequences::upper_bound(first, last, value, cmp)};
}

// ---------------------------------------------------------------------------
// Structural helpers
// ---------------------------------------------------------------------------

template <std::input_iterator I, std::weakly_incrementable O>
constexpr O copy(I first, I last, O out) {
  for (; first != last; ++first, ++out) *out = *first;
  return out;
}

template <std::permutable I>
constexpr void iter_swap(I a, I b) {
  using std::swap;
  swap(*a, *b);
}

template <std::bidirectional_iterator I>
constexpr void reverse(I first, I last) {
  while (first != last && first != --last) {
    cgp::sequences::iter_swap(first, last);
    ++first;
  }
}

/// std::rotate for forward iterators (the workhorse of the buffer-free
/// mergesort below).
template <std::permutable I>
constexpr I rotate(I first, I middle, I last) {
  if (first == middle) return last;
  if (middle == last) return first;
  I write = first;
  I next_read = first;
  for (I read = middle; read != last; ++write, ++read) {
    if (write == next_read) next_read = read;
    cgp::sequences::iter_swap(write, read);
  }
  // Rotate the remaining [write, last) range.
  (void)cgp::sequences::rotate(write, next_read, last);
  return write;
}

template <std::input_iterator I1, std::input_iterator I2,
          std::weakly_incrementable O, class Cmp = std::less<>>
constexpr O merge(I1 f1, I1 l1, I2 f2, I2 l2, O out, Cmp cmp = {}) {
  while (f1 != l1 && f2 != l2) {
    if (cmp(*f2, *f1)) {
      *out = *f2;
      ++f2;
    } else {
      *out = *f1;
      ++f1;
    }
    ++out;
  }
  for (; f1 != l1; ++f1, ++out) *out = *f1;
  for (; f2 != l2; ++f2, ++out) *out = *f2;
  return out;
}

// ---------------------------------------------------------------------------
// Partitioning and uniqueness (ForwardIterator is enough for all of these)
// ---------------------------------------------------------------------------

/// Moves elements satisfying `pred` to the front; returns the partition
/// point.  Forward-iterator algorithm (swap-based single pass).
template <std::permutable I, std::predicate<std::iter_value_t<I>> P>
constexpr I partition(I first, I last, P pred) {
  // Skip the already-true prefix.
  while (first != last && pred(*first)) ++first;
  if (first == last) return first;
  for (I it = std::next(first); it != last; ++it) {
    if (pred(*it)) {
      cgp::sequences::iter_swap(it, first);
      ++first;
    }
  }
  return first;
}

template <std::input_iterator I, std::predicate<std::iter_value_t<I>> P>
[[nodiscard]] constexpr bool is_partitioned(I first, I last, P pred) {
  for (; first != last && pred(*first); ++first) {
  }
  for (; first != last; ++first)
    if (pred(*first)) return false;
  return true;
}

/// First position where two adjacent elements satisfy `pred` (equality by
/// default); `last` if none.
template <std::forward_iterator I, class P = std::equal_to<>>
[[nodiscard]] constexpr I adjacent_find(I first, I last, P pred = {}) {
  if (first == last) return last;
  for (I next = std::next(first); next != last; ++first, ++next)
    if (pred(*first, *next)) return first;
  return last;
}

/// Removes consecutive duplicates in place; returns the new logical end.
/// On a sorted range this deduplicates globally — the sortedness
/// precondition the taxonomy and STLlint track.
template <std::permutable I, class P = std::equal_to<>>
constexpr I unique(I first, I last, P pred = {}) {
  first = cgp::sequences::adjacent_find(first, last, pred);
  if (first == last) return last;
  I write = first;
  ++first;
  for (; first != last; ++first) {
    if (!pred(*write, *first)) {
      ++write;
      *write = std::move(*first);
    }
  }
  return ++write;
}

}  // namespace cgp::sequences
