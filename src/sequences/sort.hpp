// Sorting with concept-based overloading (Section 2.1's motivating example):
// "when applying a sorting algorithm to a data structure, we must consider
// how the elements ... are accessed: if they can only be accessed linearly
// (as with a linked list) we might select a default algorithm, but if they
// can be accessed efficiently via indexing (as with an array) we can apply
// the more-efficient quicksort algorithm."
//
//  * RandomAccessIterator  -> introsort (median-of-3 quicksort + heapsort
//                             depth fallback + insertion sort for small
//                             ranges), O(n log n) worst case;
//  * ForwardIterator       -> rotation-based top-down mergesort, in-place,
//                             O(n log^2 n) — the "default algorithm".
//
// `sort` picks between them by concept at compile time with zero runtime
// dispatch cost (measured in bench/sec2_dispatch).
#pragma once

#include <algorithm>
#include <bit>
#include <string_view>
#include <vector>

#include "sequences/algorithms.hpp"

namespace cgp::sequences {

namespace detail {

constexpr std::ptrdiff_t kInsertionThreshold = 16;

template <std::random_access_iterator I, class Cmp>
constexpr void insertion_sort(I first, I last, Cmp& cmp) {
  for (I i = first; i != last; ++i) {
    auto value = std::move(*i);
    I j = i;
    while (j != first && cmp(value, *(j - 1))) {
      *j = std::move(*(j - 1));
      --j;
    }
    *j = std::move(value);
  }
}

template <std::random_access_iterator I, class Cmp>
constexpr void sift_down(I first, std::ptrdiff_t start, std::ptrdiff_t end,
                         Cmp& cmp) {
  std::ptrdiff_t root = start;
  for (;;) {
    std::ptrdiff_t child = 2 * root + 1;
    if (child >= end) return;
    if (child + 1 < end && cmp(first[child], first[child + 1])) ++child;
    if (!cmp(first[root], first[child])) return;
    cgp::sequences::iter_swap(first + root, first + child);
    root = child;
  }
}

template <std::random_access_iterator I, class Cmp>
constexpr void heap_sort(I first, I last, Cmp& cmp) {
  const std::ptrdiff_t n = last - first;
  for (std::ptrdiff_t start = n / 2 - 1; start >= 0; --start)
    sift_down(first, start, n, cmp);
  for (std::ptrdiff_t end = n - 1; end > 0; --end) {
    cgp::sequences::iter_swap(first, first + end);
    sift_down(first, 0, end, cmp);
  }
}

template <std::random_access_iterator I, class Cmp>
constexpr I median_of_three(I a, I b, I c, Cmp& cmp) {
  if (cmp(*a, *b)) {
    if (cmp(*b, *c)) return b;
    return cmp(*a, *c) ? c : a;
  }
  if (cmp(*a, *c)) return a;
  return cmp(*b, *c) ? c : b;
}

template <std::random_access_iterator I, class Cmp>
constexpr void introsort_loop(I first, I last, int depth_budget, Cmp& cmp) {
  while (last - first > kInsertionThreshold) {
    if (depth_budget-- == 0) {
      heap_sort(first, last, cmp);
      return;
    }
    const I mid = first + (last - first) / 2;
    const I pivot_it = median_of_three(first, mid, last - 1, cmp);
    cgp::sequences::iter_swap(pivot_it, last - 1);
    const auto& pivot = *(last - 1);
    I cut = first;
    for (I i = first; i != last - 1; ++i) {
      if (cmp(*i, pivot)) {
        cgp::sequences::iter_swap(i, cut);
        ++cut;
      }
    }
    cgp::sequences::iter_swap(cut, last - 1);
    // Recurse on the smaller side, loop on the larger (O(log n) stack).
    if (cut - first < last - (cut + 1)) {
      introsort_loop(first, cut, depth_budget, cmp);
      first = cut + 1;
    } else {
      introsort_loop(cut + 1, last, depth_budget, cmp);
      last = cut;
    }
  }
}

}  // namespace detail

/// Introsort; requires random access.
template <std::random_access_iterator I,
          std::indirect_strict_weak_order<I> Cmp = std::less<>>
constexpr void intro_sort(I first, I last, Cmp cmp = {}) {
  if (last - first <= 1) return;
  const int depth =
      2 * std::bit_width(static_cast<std::size_t>(last - first));
  detail::introsort_loop(first, last, depth, cmp);
  detail::insertion_sort(first, last, cmp);
}

/// Buffer-free top-down mergesort; needs only forward iterators.
/// O(n log^2 n) because the merge uses rotations instead of a buffer.
template <std::forward_iterator I,
          std::indirect_strict_weak_order<I> Cmp = std::less<>>
  requires std::permutable<I>
constexpr void forward_merge_sort(I first, I last, Cmp cmp = {}) {
  const auto n = cgp::sequences::distance(first, last);
  if (n <= 1) return;
  I mid = first;
  cgp::sequences::advance(mid, n / 2);
  forward_merge_sort(first, mid, cmp);
  forward_merge_sort(mid, last, cmp);
  // In-place merge by recursive rotation.
  struct merger {
    Cmp& cmp;
    void operator()(I f, I m, I l, std::ptrdiff_t len1,
                    std::ptrdiff_t len2) const {
      if (len1 == 0 || len2 == 0) return;
      if (len1 + len2 == 2) {
        if (cmp(*m, *f)) cgp::sequences::iter_swap(f, m);
        return;
      }
      I cut1 = f;
      I cut2 = m;
      std::ptrdiff_t half1 = 0, half2 = 0;
      if (len1 > len2) {
        half1 = len1 / 2;
        cgp::sequences::advance(cut1, half1);
        cut2 = cgp::sequences::lower_bound(m, l, *cut1, cmp);
        half2 = cgp::sequences::distance(m, cut2);
      } else {
        half2 = len2 / 2;
        cgp::sequences::advance(cut2, half2);
        cut1 = cgp::sequences::upper_bound(f, m, *cut2, cmp);
        half1 = cgp::sequences::distance(f, cut1);
      }
      const I new_mid = cgp::sequences::rotate(cut1, m, cut2);
      (*this)(f, cut1, new_mid, half1, half2);
      (*this)(new_mid, cut2, l, len1 - half1, len2 - half2);
    }
  };
  merger{cmp}(first, mid, last, static_cast<std::ptrdiff_t>(n / 2),
              static_cast<std::ptrdiff_t>(n - n / 2));
}

/// Concept-based overload selection: the public `sort`.
template <std::forward_iterator I,
          std::indirect_strict_weak_order<I> Cmp = std::less<>>
  requires std::permutable<I>
constexpr void sort(I first, I last, Cmp cmp = {}) {
  if constexpr (std::random_access_iterator<I>) {
    intro_sort(first, last, cmp);
  } else {
    forward_merge_sort(first, last, cmp);
  }
}

/// Which algorithm `sort` selects for iterator type I — introspection for
/// tests and the dispatch bench.
template <class I>
[[nodiscard]] constexpr std::string_view sort_algorithm_for() {
  if constexpr (std::random_access_iterator<I>)
    return "introsort";
  else
    return "forward_merge_sort";
}

/// Quickselect: after the call, `*nth` holds the element that would be
/// there after a full sort, with everything before it no greater (under
/// cmp).  Expected O(n); random access required (Section 2.1's indexing
/// argument again).
template <std::random_access_iterator I,
          std::indirect_strict_weak_order<I> Cmp = std::less<>>
constexpr void nth_element(I first, I nth, I last, Cmp cmp = {}) {
  if (nth == last) return;
  while (last - first > detail::kInsertionThreshold) {
    const I mid = first + (last - first) / 2;
    const I pivot_it = detail::median_of_three(first, mid, last - 1, cmp);
    cgp::sequences::iter_swap(pivot_it, last - 1);
    const auto& pivot = *(last - 1);
    I cut = first;
    for (I i = first; i != last - 1; ++i) {
      if (cmp(*i, pivot)) {
        cgp::sequences::iter_swap(i, cut);
        ++cut;
      }
    }
    cgp::sequences::iter_swap(cut, last - 1);
    if (cut == nth) return;
    if (nth < cut)
      last = cut;
    else
      first = cut + 1;
  }
  detail::insertion_sort(first, last, cmp);
}

/// Stable mergesort with an explicit buffer (random access), used as the
/// baseline in benches.
template <std::random_access_iterator I,
          std::indirect_strict_weak_order<I> Cmp = std::less<>>
void buffered_merge_sort(I first, I last, Cmp cmp = {}) {
  const auto n = last - first;
  if (n <= 1) return;
  using T = std::iter_value_t<I>;
  std::vector<T> buffer(first, last);
  // Bottom-up merge between buffer and range.
  for (std::ptrdiff_t width = 1; width < n; width *= 2) {
    for (std::ptrdiff_t i = 0; i < n; i += 2 * width) {
      const auto m = std::min(i + width, static_cast<std::ptrdiff_t>(n));
      const auto r = std::min(i + 2 * width, static_cast<std::ptrdiff_t>(n));
      cgp::sequences::merge(first + i, first + m, first + m, first + r,
                            buffer.begin() + i, cmp);
    }
    cgp::sequences::copy(buffer.begin(), buffer.begin() + n, first);
  }
}

/// Stable sort: buffered bottom-up mergesort (the merge keeps the left
/// run's elements first on ties).
template <std::random_access_iterator I,
          std::indirect_strict_weak_order<I> Cmp = std::less<>>
void stable_sort(I first, I last, Cmp cmp = {}) {
  buffered_merge_sort(first, last, cmp);
}

}  // namespace cgp::sequences
