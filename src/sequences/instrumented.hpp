// Operation-counted entry points for the sequence algorithms.
//
// The core algorithms in sort.hpp/algorithms.hpp stay constexpr and
// uninstrumented — performance-concept measurement wraps them from the
// outside by counting comparator invocations, the currency in which
// Section 2's ComplexityO guarantees for comparison sorts are stated.
// Each wrapper reports to the telemetry registry under
// `sequences.<algorithm>.*` and returns the observed comparison count so
// callers (tests, benches, telemetry::check_scaling) can feed it straight
// into an empirical complexity check.
#pragma once

#include <cstdint>
#include <functional>

#include "sequences/sort.hpp"
#include "telemetry/telemetry.hpp"

namespace cgp::sequences::instrumented {

/// Comparator wrapper that counts invocations into a caller-owned tally.
/// The tally lives outside the registry so counting costs one increment —
/// the registry sees one aggregate add() per algorithm call.
template <class Cmp>
struct counting_compare {
  Cmp* cmp;
  std::uint64_t* tally;

  template <class A, class B>
  constexpr bool operator()(const A& a, const B& b) const {
    ++*tally;
    return (*cmp)(a, b);
  }
};

namespace detail {

inline void report(const char* algorithm, std::uint64_t comparisons,
                   std::uint64_t n) {
  auto& reg = telemetry::registry::global();
  const std::string base = std::string("sequences.") + algorithm;
  reg.get_counter(base + ".calls").add();
  reg.get_counter(base + ".comparisons").add(comparisons);
  reg.get_counter(base + ".elements").add(n);
  reg.get_histogram(base + ".comparisons_per_call").record(comparisons);
}

}  // namespace detail

/// Concept-dispatched sort (introsort / forward mergesort), counted.
/// Returns the number of comparisons performed.
template <std::forward_iterator I,
          std::indirect_strict_weak_order<I> Cmp = std::less<>>
  requires std::permutable<I>
std::uint64_t sort(I first, I last, Cmp cmp = {}) {
  std::uint64_t comparisons = 0;
  counting_compare<Cmp> counted{&cmp, &comparisons};
  cgp::sequences::sort(first, last, counted);
  detail::report(
      "sort", comparisons,
      static_cast<std::uint64_t>(cgp::sequences::distance(first, last)));
  return comparisons;
}

/// Stable (buffered mergesort) sort, counted.
template <std::random_access_iterator I,
          std::indirect_strict_weak_order<I> Cmp = std::less<>>
std::uint64_t stable_sort(I first, I last, Cmp cmp = {}) {
  std::uint64_t comparisons = 0;
  counting_compare<Cmp> counted{&cmp, &comparisons};
  cgp::sequences::stable_sort(first, last, counted);
  detail::report("stable_sort", comparisons,
                 static_cast<std::uint64_t>(last - first));
  return comparisons;
}

/// nth_element (quickselect), counted.
template <std::random_access_iterator I,
          std::indirect_strict_weak_order<I> Cmp = std::less<>>
std::uint64_t nth_element(I first, I nth, I last, Cmp cmp = {}) {
  std::uint64_t comparisons = 0;
  counting_compare<Cmp> counted{&cmp, &comparisons};
  cgp::sequences::nth_element(first, nth, last, counted);
  detail::report("nth_element", comparisons,
                 static_cast<std::uint64_t>(last - first));
  return comparisons;
}

/// lower_bound, counted (the O(log n) performance concept of binary
/// search on random-access ranges).
template <std::forward_iterator I, class T, class Cmp = std::less<>>
std::uint64_t lower_bound_count(I first, I last, const T& value,
                                Cmp cmp = {}) {
  std::uint64_t comparisons = 0;
  counting_compare<Cmp> counted{&cmp, &comparisons};
  (void)cgp::sequences::lower_bound(first, last, value, counted);
  detail::report(
      "lower_bound", comparisons,
      static_cast<std::uint64_t>(cgp::sequences::distance(first, last)));
  return comparisons;
}

}  // namespace cgp::sequences::instrumented
