// Entry/exit handlers for algorithm concepts (Section 3.1):
// "entry handlers check preconditions and exit handlers check/enforce
// postconditions.  For example, sorting algorithms introduce a sortedness
// property that can be used in checking for proper use of algorithms that
// require it, such as binary search."
//
// The `checked` namespace wraps the generic algorithms with dynamic
// verification of the semantic contract; it is the runtime complement to
// STLlint's static checking, sharing the same property vocabulary.
#pragma once

#include <stdexcept>
#include <string>

#include "core/archetypes.hpp"
#include "sequences/sort.hpp"
#include "telemetry/telemetry.hpp"

namespace cgp::sequences::checked {

/// Thrown by an entry handler when a precondition fails.
class precondition_violation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown by an exit handler when a postcondition fails — this indicates a
/// bug in the *algorithm*, not the caller.
class postcondition_violation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Per-call handler statistics so tests/benches can audit checking cost.
struct handler_stats {
  std::size_t entry_checks = 0;
  std::size_t exit_checks = 0;
};

[[nodiscard]] inline handler_stats& stats() {
  static handler_stats s;
  return s;
}

namespace detail {
/// Mirrors handler activity into the telemetry registry (resolved once).
inline void count_entry_check() {
  static telemetry::counter& c = telemetry::registry::global().get_counter(
      "sequences.checked.entry_checks");
  c.add();
  ++stats().entry_checks;
}
inline void count_exit_check() {
  static telemetry::counter& c = telemetry::registry::global().get_counter(
      "sequences.checked.exit_checks");
  c.add();
  ++stats().exit_checks;
}
}  // namespace detail

/// binary_search with its Sorted entry handler.
template <std::forward_iterator I, class T, class Cmp = std::less<>>
[[nodiscard]] bool binary_search(I first, I last, const T& value,
                                 Cmp cmp = {}) {
  detail::count_entry_check();
  if (!cgp::sequences::is_sorted(first, last, cmp))
    throw precondition_violation(
        "binary_search: the range [first, last) is not sorted with respect "
        "to the supplied strict weak order");
  return cgp::sequences::binary_search(first, last, value, cmp);
}

/// lower_bound with its Sorted entry handler.
template <std::forward_iterator I, class T, class Cmp = std::less<>>
[[nodiscard]] I lower_bound(I first, I last, const T& value, Cmp cmp = {}) {
  detail::count_entry_check();
  if (!cgp::sequences::is_sorted(first, last, cmp))
    throw precondition_violation(
        "lower_bound: the range [first, last) is not sorted");
  return cgp::sequences::lower_bound(first, last, value, cmp);
}

/// sort with (a) an archetype-checked strict weak order — every comparison
/// is audited against the Fig. 6 asymmetry requirement — and (b) a
/// sortedness exit handler.
template <std::forward_iterator I, class Cmp = std::less<>>
  requires std::permutable<I>
void sort(I first, I last, Cmp cmp = {}) {
  core::checked_strict_weak_order<std::iter_value_t<I>, Cmp> checked_cmp(cmp);
  cgp::sequences::sort(first, last, std::ref(checked_cmp));
  detail::count_exit_check();
  if (!cgp::sequences::is_sorted(first, last, cmp))
    throw postcondition_violation(
        "sort: the range is not sorted on exit (broken comparator or "
        "algorithm bug)");
}

/// max_element with its nonempty entry handler.
template <std::forward_iterator I, class Cmp = std::less<>>
[[nodiscard]] I max_element(I first, I last, Cmp cmp = {}) {
  detail::count_entry_check();
  if (first == last)
    throw precondition_violation("max_element: empty range has no maximum");
  return cgp::sequences::max_element(first, last, cmp);
}

}  // namespace cgp::sequences::checked
