// Generic graph algorithms, concept-constrained in the BGL style the paper
// builds its taxonomy work on (Section 1, ref. 9).
//
// Every algorithm is constrained only by the graph concepts it needs
// (IncidenceGraph / VertexListGraph / EdgeListGraph) and, where relevant, a
// visitor concept — so any type modeling Fig. 2's requirements can be used,
// not just our adjacency_list.
#pragma once

#include <limits>
#include <optional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "core/graph_concepts.hpp"
#include "graph/adjacency_list.hpp"
#include "graph/disjoint_sets.hpp"
#include "graph/property_map.hpp"
#include "sequences/sort.hpp"

namespace cgp::graph {

// ---------------------------------------------------------------------------
// Visitor concepts (syntactic, checked at instantiation)
// ---------------------------------------------------------------------------

template <class V, class G>
concept BFSVisitor = core::IncidenceGraph<G> &&
    requires(V vis, core::vertex_t<G> v, core::edge_t<G> e, const G& g) {
      vis.discover_vertex(v, g);
      vis.examine_edge(e, g);
      vis.tree_edge(e, g);
      vis.finish_vertex(v, g);
    };

/// A do-nothing visitor to derive from (only override what you need — but
/// since conformance is structural, deriving is optional).
template <class G>
struct null_visitor {
  void discover_vertex(core::vertex_t<G>, const G&) {}
  void examine_edge(const core::edge_t<G>&, const G&) {}
  void tree_edge(const core::edge_t<G>&, const G&) {}
  void finish_vertex(core::vertex_t<G>, const G&) {}
};

// ---------------------------------------------------------------------------
// Breadth-first search
// ---------------------------------------------------------------------------

/// BFS from `start`; vertices are dense indices < num_vertices(g).
/// Returns the BFS distance map (-1 = unreachable).
template <core::VertexListGraph G, BFSVisitor<G> Vis>
std::vector<long> breadth_first_search(const G& g, core::vertex_t<G> start,
                                       Vis&& vis) {
  std::vector<long> dist(num_vertices(g), -1);
  std::queue<core::vertex_t<G>> frontier;
  dist.at(start) = 0;
  vis.discover_vertex(start, g);
  frontier.push(start);
  while (!frontier.empty()) {
    const auto u = frontier.front();
    frontier.pop();
    auto [first, last] = out_edges(u, g);
    for (; first != last; ++first) {
      vis.examine_edge(*first, g);
      const auto v = target(*first);
      if (dist.at(v) == -1) {
        dist[v] = dist[u] + 1;
        vis.tree_edge(*first, g);
        vis.discover_vertex(v, g);
        frontier.push(v);
      }
    }
    vis.finish_vertex(u, g);
  }
  return dist;
}

template <core::VertexListGraph G>
std::vector<long> bfs_distances(const G& g, core::vertex_t<G> start) {
  return breadth_first_search(g, start, null_visitor<G>{});
}

// ---------------------------------------------------------------------------
// Depth-first search / topological sort
// ---------------------------------------------------------------------------

/// Thrown by topological_sort on a cyclic graph.
class not_a_dag : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
enum class color { white, gray, black };

template <core::VertexListGraph G>
void dfs_visit(const G& g, core::vertex_t<G> u, std::vector<color>& colors,
               std::vector<core::vertex_t<G>>& finish_order,
               bool throw_on_back_edge) {
  colors.at(u) = color::gray;
  auto [first, last] = out_edges(u, g);
  for (; first != last; ++first) {
    const auto v = target(*first);
    if (colors.at(v) == color::white)
      dfs_visit(g, v, colors, finish_order, throw_on_back_edge);
    else if (colors[v] == color::gray && throw_on_back_edge)
      throw not_a_dag("topological_sort: the graph has a cycle through vertex " +
                      std::to_string(v));
  }
  colors[u] = color::black;
  finish_order.push_back(u);
}
}  // namespace detail

/// Vertices in DFS finish order (reverse topological order for DAGs).
template <core::VertexListGraph G>
std::vector<core::vertex_t<G>> dfs_finish_order(const G& g,
                                                bool throw_on_back_edge =
                                                    false) {
  std::vector<detail::color> colors(num_vertices(g), detail::color::white);
  std::vector<core::vertex_t<G>> order;
  order.reserve(num_vertices(g));
  for (const auto v : vertices(g))
    if (colors.at(v) == detail::color::white)
      detail::dfs_visit(g, v, colors, order, throw_on_back_edge);
  return order;
}

/// Topological order of a DAG; throws not_a_dag otherwise.
template <core::VertexListGraph G>
std::vector<core::vertex_t<G>> topological_sort(const G& g) {
  auto order = dfs_finish_order(g, /*throw_on_back_edge=*/true);
  std::reverse(order.begin(), order.end());
  return order;
}

// ---------------------------------------------------------------------------
// Dijkstra
// ---------------------------------------------------------------------------

/// Shortest path distances from `start` using non-negative edge weights
/// supplied by a readable property-map-like callable `weight(edge)`.
/// Returns (distances, predecessors); unreachable = +inf / self.
template <core::VertexListGraph G, class WeightFn>
  requires requires(WeightFn w, core::edge_t<G> e) {
    { w(e) } -> std::convertible_to<double>;
  }
std::pair<std::vector<double>, std::vector<core::vertex_t<G>>>
dijkstra_shortest_paths(const G& g, core::vertex_t<G> start, WeightFn weight) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  const std::size_t n = num_vertices(g);
  std::vector<double> dist(n, inf);
  std::vector<core::vertex_t<G>> pred(n);
  for (std::size_t i = 0; i < n; ++i) pred[i] = i;
  using entry = std::pair<double, core::vertex_t<G>>;
  std::priority_queue<entry, std::vector<entry>, std::greater<>> pq;
  dist.at(start) = 0.0;
  pq.emplace(0.0, start);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;  // stale entry
    auto [first, last] = out_edges(u, g);
    for (; first != last; ++first) {
      const double w = weight(*first);
      if (w < 0.0)
        throw std::invalid_argument(
            "dijkstra_shortest_paths: negative edge weight");
      const auto v = target(*first);
      if (dist[u] + w < dist[v]) {
        dist[v] = dist[u] + w;
        pred[v] = u;
        pq.emplace(dist[v], v);
      }
    }
  }
  return {std::move(dist), std::move(pred)};
}

/// Bellman-Ford: shortest paths with arbitrary (possibly negative) edge
/// weights over any EdgeListGraph.  Returns nullopt when a negative cycle
/// is reachable — the case Dijkstra's precondition excludes (the two
/// algorithms are distinguished in the graph taxonomy exactly by this
/// requirement).
template <class G, class WeightFn>
  requires core::EdgeListGraph<G> && requires(const G& g, WeightFn w,
                                              core::edge_t<G> e) {
    { num_vertices(g) } -> std::convertible_to<std::size_t>;
    { w(e) } -> std::convertible_to<double>;
  }
std::optional<std::vector<double>> bellman_ford_shortest_paths(
    const G& g, std::size_t start, WeightFn weight) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  const std::size_t n = num_vertices(g);
  std::vector<double> dist(n, inf);
  dist.at(start) = 0.0;
  for (std::size_t pass = 0; pass + 1 < n; ++pass) {
    bool changed = false;
    for (const auto& e : edges(g)) {
      const auto u = source(e);
      const auto v = target(e);
      if (dist[u] != inf && dist[u] + weight(e) < dist[v]) {
        dist[v] = dist[u] + weight(e);
        changed = true;
      }
    }
    if (!changed) break;
  }
  for (const auto& e : edges(g))
    if (dist[source(e)] != inf &&
        dist[source(e)] + weight(e) < dist[target(e)])
      return std::nullopt;  // negative cycle reachable
  return dist;
}

/// Prim's MST (undirected weighted adjacency_list), lazy-deletion heap.
/// The spanning forest of the component containing `start`.
template <class P>
std::vector<edge<P>> prim_mst(const adjacency_list<P>& g,
                              vertex_descriptor start = 0) {
  const std::size_t n = g.vertex_count();
  std::vector<bool> in_tree(n, false);
  std::vector<edge<P>> mst;
  if (n == 0) return mst;
  struct entry {
    P weight;
    edge<P> e;
    bool operator>(const entry& o) const { return o.weight < weight; }
  };
  std::priority_queue<entry, std::vector<entry>, std::greater<>> pq;
  const auto scan = [&](vertex_descriptor v) {
    in_tree[v] = true;
    for (const edge<P>& e : g.out_edges_of(v))
      if (!in_tree[e.dst]) pq.push(entry{e.property, e});
  };
  scan(start);
  while (!pq.empty()) {
    const entry top = pq.top();
    pq.pop();
    if (in_tree[top.e.dst]) continue;
    mst.push_back(top.e);
    scan(top.e.dst);
  }
  return mst;
}

// ---------------------------------------------------------------------------
// Connected components / Kruskal MST (via the disjoint-sets substrate)
// ---------------------------------------------------------------------------

/// Component id per vertex (undirected interpretation: every edge links its
/// endpoints).  Works for any EdgeListGraph.
template <class G>
  requires core::EdgeListGraph<G> && requires(const G& g) {
    { num_vertices(g) } -> std::convertible_to<std::size_t>;
  }
std::vector<std::size_t> connected_components(const G& g) {
  disjoint_sets sets(num_vertices(g));
  for (const auto& e : edges(g)) sets.unite(source(e), target(e));
  std::vector<std::size_t> comp(num_vertices(g));
  std::vector<std::size_t> remap(num_vertices(g),
                                 std::numeric_limits<std::size_t>::max());
  std::size_t next = 0;
  for (std::size_t v = 0; v < comp.size(); ++v) {
    const std::size_t root = sets.find(v);
    if (remap[root] == std::numeric_limits<std::size_t>::max())
      remap[root] = next++;
    comp[v] = remap[root];
  }
  return comp;
}

/// Kruskal's minimum spanning forest over an undirected weighted graph.
/// Uses the concept-dispatched cgp::sequences::sort — the library eating
/// its own dog food.
template <class P>
std::vector<edge<P>> kruskal_mst(const adjacency_list<P>& g) {
  std::vector<edge<P>> sorted = g.all_edges();
  cgp::sequences::sort(sorted.begin(), sorted.end(),
                       [](const edge<P>& a, const edge<P>& b) {
                         return a.property < b.property;
                       });
  disjoint_sets sets(g.vertex_count());
  std::vector<edge<P>> mst;
  for (const edge<P>& e : sorted)
    if (sets.unite(e.src, e.dst)) mst.push_back(e);
  return mst;
}

}  // namespace cgp::graph
