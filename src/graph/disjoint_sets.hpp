// Union-find with union-by-rank and path compression — the substrate for
// Kruskal's MST and connected components.  Near-O(alpha(n)) amortized finds.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

namespace cgp::graph {

class disjoint_sets {
 public:
  explicit disjoint_sets(std::size_t n) : parent_(n), rank_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  [[nodiscard]] std::size_t find(std::size_t x) {
    // Path halving: every other node points to its grandparent.
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Unites the sets of a and b; returns false if they were already united.
  bool unite(std::size_t a, std::size_t b) {
    std::size_t ra = find(a);
    std::size_t rb = find(b);
    if (ra == rb) return false;
    if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    if (rank_[ra] == rank_[rb]) ++rank_[ra];
    --sets_removed_correction_;
    return true;
  }

  [[nodiscard]] bool same_set(std::size_t a, std::size_t b) {
    return find(a) == find(b);
  }

  [[nodiscard]] std::size_t count_sets() const {
    return static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(parent_.size()) +
        sets_removed_correction_);
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> rank_;
  std::ptrdiff_t sets_removed_correction_ = 0;
};

}  // namespace cgp::graph
