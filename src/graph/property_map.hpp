// Property maps: the BGL-style external-property mechanism, modeling the
// ReadWritePropertyMap concept from core/graph_concepts.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "core/graph_concepts.hpp"

namespace cgp::graph {

/// Dense vector-backed property map keyed by vertex_descriptor.
template <class T>
class vector_property_map {
 public:
  explicit vector_property_map(std::size_t n = 0, T init = {})
      : data_(n, init) {}

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] const T& operator[](std::size_t k) const { return data_.at(k); }
  [[nodiscard]] T& operator[](std::size_t k) { return data_.at(k); }

 private:
  std::vector<T> data_;
};

template <class T>
[[nodiscard]] const T& get(const vector_property_map<T>& pm, std::size_t k) {
  return pm[k];
}

template <class T>
void put(vector_property_map<T>& pm, std::size_t k, const T& v) {
  pm[k] = v;
}

static_assert(
    core::ReadWritePropertyMap<vector_property_map<int>, std::size_t, int>);

}  // namespace cgp::graph
