// Operation-counted entry points for the graph algorithms, mirroring
// sequences/instrumented.hpp: the visitor/weight-function hooks the
// concept-generic algorithms already expose are exactly the places where
// Section 4's "measured" operation counts can be collected without
// touching the algorithms themselves.  Metrics land under `graph.<algo>.*`
// and each wrapper returns its operation count for complexity checking.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/algorithms.hpp"
#include "telemetry/telemetry.hpp"

namespace cgp::graph::instrumented {

namespace detail {

inline void report(const char* algorithm, std::uint64_t ops,
                   std::uint64_t vertices, std::uint64_t edges) {
  auto& reg = telemetry::registry::global();
  const std::string base = std::string("graph.") + algorithm;
  reg.get_counter(base + ".calls").add();
  reg.get_counter(base + ".operations").add(ops);
  reg.get_counter(base + ".vertices").add(vertices);
  reg.get_counter(base + ".edges").add(edges);
  reg.get_histogram(base + ".operations_per_call").record(ops);
}

/// Edge count when the graph type exposes one; 0 for graphs that don't.
template <class G>
std::uint64_t edge_count_of(const G& g) {
  if constexpr (requires { num_edges(g); })
    return static_cast<std::uint64_t>(num_edges(g));
  else
    return 0;
}

/// BFS visitor counting edge examinations (the O(V + E) currency).
template <class G>
struct counting_bfs_visitor {
  std::uint64_t* ops;
  void discover_vertex(core::vertex_t<G>, const G&) { ++*ops; }
  void examine_edge(const core::edge_t<G>&, const G&) { ++*ops; }
  void tree_edge(const core::edge_t<G>&, const G&) {}
  void finish_vertex(core::vertex_t<G>, const G&) {}
};

}  // namespace detail

/// BFS distances, counting vertex discoveries + edge examinations.
/// Returns (distances, operation count).
template <core::VertexListGraph G>
std::pair<std::vector<long>, std::uint64_t> bfs_distances(
    const G& g, core::vertex_t<G> start) {
  std::uint64_t ops = 0;
  auto dist =
      breadth_first_search(g, start, detail::counting_bfs_visitor<G>{&ops});
  detail::report("bfs", ops, num_vertices(g), detail::edge_count_of(g));
  return {std::move(dist), ops};
}

/// Dijkstra, counting edge relaxation attempts (weight-function calls).
/// Returns (distances, predecessors, operation count).
template <core::VertexListGraph G, class WeightFn>
  requires requires(WeightFn w, core::edge_t<G> e) {
    { w(e) } -> std::convertible_to<double>;
  }
std::pair<std::pair<std::vector<double>, std::vector<core::vertex_t<G>>>,
          std::uint64_t>
dijkstra_shortest_paths(const G& g, core::vertex_t<G> start, WeightFn weight) {
  std::uint64_t ops = 0;
  auto counted = [&ops, &weight](const core::edge_t<G>& e) -> double {
    ++ops;
    return weight(e);
  };
  auto result = graph::dijkstra_shortest_paths(g, start, counted);
  detail::report("dijkstra", ops, num_vertices(g), detail::edge_count_of(g));
  return {std::move(result), ops};
}

/// Kruskal MST, counting comparator calls of the edge sort plus one union
/// per edge (its O(E log E) cost is dominated by the sort — the library's
/// own concept-dispatched cgp::sequences::sort).
template <class P>
std::pair<std::vector<edge<P>>, std::uint64_t> kruskal_mst(
    const adjacency_list<P>& g) {
  std::uint64_t ops = 0;
  std::vector<edge<P>> sorted = g.all_edges();
  const std::uint64_t edge_total = sorted.size();
  cgp::sequences::sort(sorted.begin(), sorted.end(),
                       [&ops](const edge<P>& a, const edge<P>& b) {
                         ++ops;
                         return a.property < b.property;
                       });
  disjoint_sets sets(g.vertex_count());
  std::vector<edge<P>> mst;
  for (const edge<P>& e : sorted) {
    ++ops;
    if (sets.unite(e.src, e.dst)) mst.push_back(e);
  }
  detail::report("kruskal", ops, g.vertex_count(), edge_total);
  return {std::move(mst), ops};
}

}  // namespace cgp::graph::instrumented
