// Operation-counted entry points for the graph algorithms, mirroring
// sequences/instrumented.hpp: the visitor/weight-function hooks the
// concept-generic algorithms already expose are exactly the places where
// Section 4's "measured" operation counts can be collected without
// touching the algorithms themselves.  Metrics land under `graph.<algo>.*`
// and each wrapper returns its operation count for complexity checking.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/algorithms.hpp"
#include "parallel/algorithms.hpp"
#include "parallel/executor.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/telemetry.hpp"

namespace cgp::graph::instrumented {

namespace detail {

inline void report(const char* algorithm, std::uint64_t ops,
                   std::uint64_t vertices, std::uint64_t edges) {
  auto& reg = telemetry::registry::global();
  const std::string base = std::string("graph.") + algorithm;
  reg.get_counter(base + ".calls").add();
  reg.get_counter(base + ".operations").add(ops);
  reg.get_counter(base + ".vertices").add(vertices);
  reg.get_counter(base + ".edges").add(edges);
  reg.get_histogram(base + ".operations_per_call").record(ops);
}

/// Edge count when the graph type exposes one; 0 for graphs that don't.
template <class G>
std::uint64_t edge_count_of(const G& g) {
  if constexpr (requires { num_edges(g); })
    return static_cast<std::uint64_t>(num_edges(g));
  else
    return 0;
}

/// BFS visitor counting edge examinations (the O(V + E) currency).
template <class G>
struct counting_bfs_visitor {
  std::uint64_t* ops;
  void discover_vertex(core::vertex_t<G>, const G&) { ++*ops; }
  void examine_edge(const core::edge_t<G>&, const G&) { ++*ops; }
  void tree_edge(const core::edge_t<G>&, const G&) {}
  void finish_vertex(core::vertex_t<G>, const G&) {}
};

}  // namespace detail

/// BFS distances, counting vertex discoveries + edge examinations.
/// Returns (distances, operation count).
template <core::VertexListGraph G>
std::pair<std::vector<long>, std::uint64_t> bfs_distances(
    const G& g, core::vertex_t<G> start) {
  static const auto kBfsFrame = telemetry::profile::intern("graph.bfs");
  telemetry::profile::probe bfs_probe(kBfsFrame);
  std::uint64_t ops = 0;
  auto dist =
      breadth_first_search(g, start, detail::counting_bfs_visitor<G>{&ops});
  detail::report("bfs", ops, num_vertices(g), detail::edge_count_of(g));
  return {std::move(dist), ops};
}

/// Dijkstra, counting edge relaxation attempts (weight-function calls).
/// Returns (distances, predecessors, operation count).
template <core::VertexListGraph G, class WeightFn>
  requires requires(WeightFn w, core::edge_t<G> e) {
    { w(e) } -> std::convertible_to<double>;
  }
std::pair<std::pair<std::vector<double>, std::vector<core::vertex_t<G>>>,
          std::uint64_t>
dijkstra_shortest_paths(const G& g, core::vertex_t<G> start, WeightFn weight) {
  std::uint64_t ops = 0;
  auto counted = [&ops, &weight](const core::edge_t<G>& e) -> double {
    ++ops;
    return weight(e);
  };
  auto result = graph::dijkstra_shortest_paths(g, start, counted);
  detail::report("dijkstra", ops, num_vertices(g), detail::edge_count_of(g));
  return {std::move(result), ops};
}

/// Kruskal MST, counting comparator calls of the edge sort plus one union
/// per edge (its O(E log E) cost is dominated by the sort — the library's
/// own concept-dispatched cgp::sequences::sort).
template <class P>
std::pair<std::vector<edge<P>>, std::uint64_t> kruskal_mst(
    const adjacency_list<P>& g) {
  std::uint64_t ops = 0;
  std::vector<edge<P>> sorted = g.all_edges();
  const std::uint64_t edge_total = sorted.size();
  cgp::sequences::sort(sorted.begin(), sorted.end(),
                       [&ops](const edge<P>& a, const edge<P>& b) {
                         ++ops;
                         return a.property < b.property;
                       });
  disjoint_sets sets(g.vertex_count());
  std::vector<edge<P>> mst;
  for (const edge<P>& e : sorted) {
    ++ops;
    if (sets.unite(e.src, e.dst)) mst.push_back(e);
  }
  detail::report("kruskal", ops, g.vertex_count(), edge_total);
  return {std::move(mst), ops};
}

/// PageRank by damped power iteration over out-edges, counting one
/// operation per edge traversal per sweep (the O(k·(V + E)) currency).
/// Dangling mass is redistributed uniformly so ranks stay a distribution.
/// Returns (ranks, operation count).
template <class P>
std::pair<std::vector<double>, std::uint64_t> pagerank(
    const adjacency_list<P>& g, std::size_t iterations = 20,
    double damping = 0.85) {
  static const auto kPagerankFrame =
      telemetry::profile::intern("graph.pagerank");
  telemetry::profile::probe pagerank_probe(kPagerankFrame);
  const std::size_t n = g.vertex_count();
  std::uint64_t ops = 0;
  if (n == 0) {
    detail::report("pagerank", ops, 0, 0);
    return {{}, ops};
  }
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (std::size_t it = 0; it < iterations; ++it) {
    static const auto kIterFrame =
        telemetry::profile::intern("graph.pagerank.iteration");
    telemetry::profile::probe iter_probe(kIterFrame);
    double dangling = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      ++ops;
      const auto& out = g.out_edges_of(v);
      if (out.empty()) {
        dangling += rank[v];
        continue;
      }
      const double share = rank[v] / static_cast<double>(out.size());
      for (const auto& e : out) {
        ++ops;
        next[e.dst] += share;
      }
    }
    const double base = (1.0 - damping) / static_cast<double>(n) +
                        damping * dangling / static_cast<double>(n);
    for (std::size_t v = 0; v < n; ++v) next[v] = base + damping * next[v];
    rank.swap(next);
  }
  detail::report("pagerank", ops, n, detail::edge_count_of(g));
  return {std::move(rank), ops};
}

// ---------------------------------------------------------------------------
// Executor-parallel entry points
// ---------------------------------------------------------------------------
//
// Both take ANY Executor (concept-bounded, like the Section 4 algorithms):
// the same call runs over the legacy thread_pool, the work_stealing_pool —
// where the irregular per-vertex degree distribution is exactly what
// stealing rebalances — or the inline archetype (serial proof build).

/// Level-synchronous parallel BFS.  Each level's frontier is expanded in
/// parallel; discovery claims a vertex with a compare-exchange on its
/// distance slot, so every vertex is discovered exactly once.  Distances
/// match the sequential `bfs_distances` exactly (BFS depth is
/// order-independent).  Returns (distances, operation count).
template <class P, parallel::Executor E = parallel::thread_pool>
std::pair<std::vector<long>, std::uint64_t> bfs_distances_parallel(
    const adjacency_list<P>& g, std::size_t start,
    E& exec = parallel::thread_pool::default_pool(),
    std::size_t grain = 128) {
  static const auto kFrame = telemetry::profile::intern("graph.bfs_parallel");
  telemetry::profile::probe bfs_probe(kFrame);
  const std::size_t n = g.vertex_count();
  std::uint64_t ops = 0;
  if (n == 0 || start >= n) {
    detail::report("bfs_parallel", ops, n, detail::edge_count_of(g));
    return {std::vector<long>(n, -1), ops};
  }
  std::vector<std::atomic<long>> dist(n);
  for (auto& d : dist) d.store(-1, std::memory_order_relaxed);
  dist[start].store(0, std::memory_order_relaxed);
  std::vector<std::size_t> frontier{start};
  long level = 0;
  while (!frontier.empty()) {
    const auto [chunks, size] =
        parallel::detail::chunks_for(frontier.size(), exec, grain);
    std::vector<std::vector<std::size_t>> next_local(
        std::max<std::size_t>(chunks, 1));
    std::vector<std::uint64_t> ops_local(std::max<std::size_t>(chunks, 1), 0);
    const long next_level = level + 1;
    auto expand = [&](std::size_t c) {
      const std::size_t lo = c * size;
      const std::size_t hi = std::min(lo + size, frontier.size());
      std::uint64_t local_ops = 0;
      auto& out_frontier = next_local[c];
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t v = frontier[i];
        ++local_ops;  // vertex visit
        for (const auto& e : g.out_edges_of(v)) {
          ++local_ops;  // edge examination
          long expected = -1;
          if (dist[e.dst].compare_exchange_strong(expected, next_level,
                                                  std::memory_order_acq_rel))
            out_frontier.push_back(e.dst);
        }
      }
      ops_local[c] = local_ops;
    };
    if (chunks <= 1) {
      expand(0);
    } else {
      parallel::detail::run_chunks_on(exec, chunks, expand);
    }
    // Merge in chunk order: the next frontier (and therefore every later
    // expansion order) is deterministic for a fixed chunking.
    std::vector<std::size_t> next;
    for (auto& local : next_local)
      next.insert(next.end(), local.begin(), local.end());
    for (const std::uint64_t o : ops_local) ops += o;
    frontier.swap(next);
    level = next_level;
  }
  std::vector<long> out(n);
  for (std::size_t v = 0; v < n; ++v)
    out[v] = dist[v].load(std::memory_order_relaxed);
  detail::report("bfs_parallel", ops, n, detail::edge_count_of(g));
  return {std::move(out), ops};
}

/// Parallel PageRank.  Each sweep scatters rank shares into CHUNK-LOCAL
/// accumulator vectors (no write sharing, no atomics on the hot loop) and
/// a second parallel pass merges them per-vertex in chunk-index order —
/// the addition order is fixed, so results are deterministic for a given
/// executor width.  Returns (ranks, operation count).
template <class P, parallel::Executor E = parallel::thread_pool>
std::pair<std::vector<double>, std::uint64_t> pagerank_parallel(
    const adjacency_list<P>& g, E& exec = parallel::thread_pool::default_pool(),
    std::size_t iterations = 20, double damping = 0.85,
    std::size_t grain = 64) {
  static const auto kFrame =
      telemetry::profile::intern("graph.pagerank_parallel");
  telemetry::profile::probe pagerank_probe(kFrame);
  const std::size_t n = g.vertex_count();
  std::uint64_t ops = 0;
  if (n == 0) {
    detail::report("pagerank_parallel", ops, 0, 0);
    return {{}, ops};
  }
  const auto [chunks, size] = parallel::detail::chunks_for(n, exec, grain);
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  if (chunks <= 1) {
    auto result = pagerank(g, iterations, damping);
    detail::report("pagerank_parallel", result.second, n,
                   detail::edge_count_of(g));
    return result;
  }
  std::vector<std::vector<double>> local(chunks,
                                         std::vector<double>(n, 0.0));
  std::vector<double> dangling_local(chunks, 0.0);
  std::vector<std::uint64_t> ops_local(chunks, 0);
  std::vector<double> next(n, 0.0);
  for (std::size_t it = 0; it < iterations; ++it) {
    static const auto kIterFrame =
        telemetry::profile::intern("graph.pagerank_parallel.iteration");
    telemetry::profile::probe iter_probe(kIterFrame);
    // Scatter phase: chunk c writes only local[c] — zero sharing.
    parallel::detail::run_chunks_on(exec, chunks, [&, size =
                                                          size](std::size_t c) {
      auto& mine = local[c];
      std::fill(mine.begin(), mine.end(), 0.0);
      double dangling = 0.0;
      std::uint64_t my_ops = 0;
      const std::size_t lo = c * size;
      const std::size_t hi = std::min(lo + size, n);
      for (std::size_t v = lo; v < hi; ++v) {
        ++my_ops;
        const auto& out = g.out_edges_of(v);
        if (out.empty()) {
          dangling += rank[v];
          continue;
        }
        const double share = rank[v] / static_cast<double>(out.size());
        for (const auto& e : out) {
          ++my_ops;
          mine[e.dst] += share;
        }
      }
      dangling_local[c] = dangling;
      ops_local[c] = my_ops;
    });
    double dangling = 0.0;
    for (const double d : dangling_local) dangling += d;
    for (const std::uint64_t o : ops_local) ops += o;
    const double base = (1.0 - damping) / static_cast<double>(n) +
                        damping * dangling / static_cast<double>(n);
    // Merge phase: vertex-parallel; per-vertex sum runs in chunk-index
    // order, so the floating-point result is independent of scheduling.
    parallel::detail::run_chunks_on(exec, chunks,
                                    [&, size = size](std::size_t c) {
                                      const std::size_t lo = c * size;
                                      const std::size_t hi =
                                          std::min(lo + size, n);
                                      for (std::size_t v = lo; v < hi; ++v) {
                                        double acc = 0.0;
                                        for (std::size_t k = 0; k < chunks;
                                             ++k)
                                          acc += local[k][v];
                                        next[v] = base + damping * acc;
                                      }
                                    });
    rank.swap(next);
  }
  detail::report("pagerank_parallel", ops, n, detail::edge_count_of(g));
  return {std::move(rank), ops};
}

}  // namespace cgp::graph::instrumented
