// A BGL-flavoured adjacency list modeling the paper's graph concepts.
//
// `adjacency_list<P>` models Incidence Graph (Fig. 2), Vertex List Graph,
// and Edge List Graph; its edge type models Graph Edge (Fig. 1).  All
// concept conformance is checked by static_asserts in tests/graph_test.cpp
// against the C++20 concepts in core/graph_concepts.hpp.
#pragma once

#include <cstddef>
#include <ranges>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/graph_concepts.hpp"

namespace cgp::graph {

using vertex_descriptor = std::size_t;

/// Tag type for property-less edges.
struct no_property {
  friend bool operator==(const no_property&, const no_property&) = default;
};

/// An edge value: models Graph Edge (Fig. 1) via the `vertex_type`
/// associated type and the `source`/`target` valid expressions.
template <class P = no_property>
struct edge {
  using vertex_type = vertex_descriptor;

  vertex_descriptor src = 0;
  vertex_descriptor dst = 0;
  P property{};

  friend bool operator==(const edge&, const edge&) = default;
};

template <class P>
[[nodiscard]] constexpr vertex_descriptor source(const edge<P>& e) {
  return e.src;
}
template <class P>
[[nodiscard]] constexpr vertex_descriptor target(const edge<P>& e) {
  return e.dst;
}

/// Directedness selector.
enum class directedness { directed, undirected };

/// The graph.  Vertices are dense indices; out-edges are stored per vertex
/// and the full edge list is kept for Edge List Graph support.
template <class P = no_property>
class adjacency_list {
 public:
  using vertex_type = vertex_descriptor;
  using edge_type = edge<P>;
  using out_edge_iterator = typename std::vector<edge_type>::const_iterator;

  explicit adjacency_list(std::size_t n = 0,
                          directedness d = directedness::directed)
      : out_(n), directed_(d) {}

  [[nodiscard]] vertex_type add_vertex() {
    out_.emplace_back();
    return out_.size() - 1;
  }

  /// Adds an edge (and its reverse for undirected graphs).
  edge_type add_edge(vertex_type u, vertex_type v, P property = {}) {
    require_vertex(u);
    require_vertex(v);
    const edge_type e{u, v, property};
    out_[u].push_back(e);
    if (directed_ == directedness::undirected && u != v)
      out_[v].push_back(edge_type{v, u, property});
    edges_.push_back(e);
    return e;
  }

  [[nodiscard]] std::size_t vertex_count() const noexcept {
    return out_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }
  [[nodiscard]] directedness direction() const noexcept { return directed_; }

  [[nodiscard]] const std::vector<edge_type>& out_edges_of(
      vertex_type v) const {
    require_vertex(v);
    return out_[v];
  }
  [[nodiscard]] const std::vector<edge_type>& all_edges() const noexcept {
    return edges_;
  }

 private:
  void require_vertex(vertex_type v) const {
    if (v >= out_.size())
      throw std::out_of_range("adjacency_list: vertex " + std::to_string(v) +
                              " out of range (have " +
                              std::to_string(out_.size()) + ")");
  }

  std::vector<std::vector<edge_type>> out_;
  std::vector<edge_type> edges_;
  directedness directed_;
};

// --- the Fig. 2 interface, as free functions found by ADL -------------------

template <class P>
[[nodiscard]] std::pair<typename adjacency_list<P>::out_edge_iterator,
                        typename adjacency_list<P>::out_edge_iterator>
out_edges(vertex_descriptor v, const adjacency_list<P>& g) {
  const auto& list = g.out_edges_of(v);
  return {list.begin(), list.end()};
}

template <class P>
[[nodiscard]] std::size_t out_degree(vertex_descriptor v,
                                     const adjacency_list<P>& g) {
  return g.out_edges_of(v).size();
}

template <class P>
[[nodiscard]] auto vertices(const adjacency_list<P>& g) {
  return std::views::iota(vertex_descriptor{0}, g.vertex_count());
}

template <class P>
[[nodiscard]] std::size_t num_vertices(const adjacency_list<P>& g) {
  return g.vertex_count();
}

template <class P>
[[nodiscard]] const std::vector<edge<P>>& edges(const adjacency_list<P>& g) {
  return g.all_edges();
}

template <class P>
[[nodiscard]] std::size_t num_edges(const adjacency_list<P>& g) {
  return g.edge_count();
}

// --- Section 2.3's example algorithm ----------------------------------------

/// Returns the first neighbor of v, or `none` when v has no out-edges.
/// With first-class concepts (and constraint propagation) the declaration
/// needs exactly ONE constraint; compare the 4-type-parameter versions the
/// paper shows for languages without associated types.
template <core::IncidenceGraph G>
[[nodiscard]] std::pair<bool, core::vertex_t<G>> first_neighbor(
    const G& g, const core::vertex_t<G>& v) {
  auto [first, last] = out_edges(v, g);
  if (first == last) return {false, {}};
  return {true, target(*first)};
}

}  // namespace cgp::graph
