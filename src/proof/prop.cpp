#include "proof/prop.hpp"

namespace cgp::proof {
namespace {

term term_generalize_constant(const term& t, const std::string& c,
                              const std::string& v) {
  switch (t.node_kind()) {
    case term::kind::variable:
      return t;
    case term::kind::constant:
      return t.symbol() == c ? term::var(v) : t;
    case term::kind::apply: {
      std::vector<term> args;
      args.reserve(t.arity());
      for (const term& a : t.args())
        args.push_back(term_generalize_constant(a, c, v));
      return term::app(t.symbol(), std::move(args));
    }
  }
  return t;
}

bool term_mentions_constant(const term& t, const std::string& c) {
  if (t.is_constant()) return t.symbol() == c;
  for (const term& a : t.args())
    if (term_mentions_constant(a, c)) return true;
  return false;
}

}  // namespace

prop prop::falsum() { return make({kind::falsum, {}, {}, {}}); }
prop prop::atom(std::string predicate, std::vector<term> args) {
  return make({kind::atom, std::move(predicate), std::move(args), {}});
}
prop prop::equal(term lhs, term rhs) {
  return make({kind::equal, "=", {std::move(lhs), std::move(rhs)}, {}});
}
prop prop::negation(prop p) {
  return make({kind::negation, {}, {}, {std::move(p)}});
}
prop prop::conjunction(prop a, prop b) {
  return make({kind::conjunction, {}, {}, {std::move(a), std::move(b)}});
}
prop prop::disjunction(prop a, prop b) {
  return make({kind::disjunction, {}, {}, {std::move(a), std::move(b)}});
}
prop prop::implication(prop a, prop b) {
  return make({kind::implication, {}, {}, {std::move(a), std::move(b)}});
}
prop prop::biconditional(prop a, prop b) {
  return make({kind::biconditional, {}, {}, {std::move(a), std::move(b)}});
}
prop prop::forall(std::string var, prop body) {
  return make({kind::forall, std::move(var), {}, {std::move(body)}});
}
prop prop::exists(std::string var, prop body) {
  return make({kind::exists, std::move(var), {}, {std::move(body)}});
}
prop prop::forall_all(const std::vector<std::string>& vars, prop body) {
  prop out = std::move(body);
  for (auto it = vars.rbegin(); it != vars.rend(); ++it)
    out = forall(*it, std::move(out));
  return out;
}

bool operator==(const prop& a, const prop& b) {
  if (a.node_ == b.node_) return true;
  if (a.node_->k != b.node_->k || a.node_->symbol != b.node_->symbol ||
      a.node_->terms.size() != b.node_->terms.size() ||
      a.node_->children.size() != b.node_->children.size())
    return false;
  for (std::size_t i = 0; i < a.node_->terms.size(); ++i)
    if (!(a.node_->terms[i] == b.node_->terms[i])) return false;
  for (std::size_t i = 0; i < a.node_->children.size(); ++i)
    if (!(a.node_->children[i] == b.node_->children[i])) return false;
  return true;
}

std::string prop::to_string() const {
  switch (node_kind()) {
    case kind::falsum:
      return "false";
    case kind::atom: {
      std::string out = symbol() + "(";
      for (std::size_t i = 0; i < terms().size(); ++i) {
        if (i > 0) out += ", ";
        out += terms()[i].to_string();
      }
      return out + ")";
    }
    case kind::equal:
      return terms()[0].to_string() + " = " + terms()[1].to_string();
    case kind::negation:
      return "!" + children()[0].to_string();
    case kind::conjunction:
      return "(" + children()[0].to_string() + " & " +
             children()[1].to_string() + ")";
    case kind::disjunction:
      return "(" + children()[0].to_string() + " | " +
             children()[1].to_string() + ")";
    case kind::implication:
      return "(" + children()[0].to_string() + " ==> " +
             children()[1].to_string() + ")";
    case kind::biconditional:
      return "(" + children()[0].to_string() + " <=> " +
             children()[1].to_string() + ")";
    case kind::forall:
      return "forall " + symbol() + ". " + children()[0].to_string();
    case kind::exists:
      return "exists " + symbol() + ". " + children()[0].to_string();
  }
  return {};
}

prop prop::substitute_var(const std::string& var, const term& t) const {
  switch (node_kind()) {
    case kind::falsum:
      return *this;
    case kind::atom:
    case kind::equal: {
      std::vector<term> new_terms;
      new_terms.reserve(terms().size());
      const std::map<std::string, term> sub{{var, t}};
      for (const term& x : terms()) new_terms.push_back(x.substitute(sub));
      return node_kind() == kind::atom
                 ? atom(symbol(), std::move(new_terms))
                 : equal(new_terms[0], new_terms[1]);
    }
    case kind::forall:
    case kind::exists: {
      if (symbol() == var) return *this;  // shadowed: stop
      prop body = children()[0].substitute_var(var, t);
      return node_kind() == kind::forall ? forall(symbol(), std::move(body))
                                         : exists(symbol(), std::move(body));
    }
    default: {
      std::vector<prop> new_children;
      new_children.reserve(children().size());
      for (const prop& c : children())
        new_children.push_back(c.substitute_var(var, t));
      node n{node_kind(), symbol(), {}, std::move(new_children)};
      return make(std::move(n));
    }
  }
}

prop prop::generalize_constant(const std::string& c,
                               const std::string& v) const {
  switch (node_kind()) {
    case kind::falsum:
      return *this;
    case kind::atom:
    case kind::equal: {
      std::vector<term> new_terms;
      new_terms.reserve(terms().size());
      for (const term& x : terms())
        new_terms.push_back(term_generalize_constant(x, c, v));
      return node_kind() == kind::atom
                 ? atom(symbol(), std::move(new_terms))
                 : equal(new_terms[0], new_terms[1]);
    }
    default: {
      std::vector<prop> new_children;
      new_children.reserve(children().size());
      for (const prop& ch : children())
        new_children.push_back(ch.generalize_constant(c, v));
      node n{node_kind(), symbol(), {}, std::move(new_children)};
      return make(std::move(n));
    }
  }
}

prop prop::rename_symbols(const std::map<std::string, std::string>& m) const {
  const auto renamed = [&](const std::string& s) {
    auto it = m.find(s);
    return it == m.end() ? s : it->second;
  };
  switch (node_kind()) {
    case kind::falsum:
      return *this;
    case kind::atom:
    case kind::equal: {
      std::vector<term> new_terms;
      new_terms.reserve(terms().size());
      for (const term& x : terms()) new_terms.push_back(x.rename_symbols(m));
      return node_kind() == kind::atom
                 ? atom(renamed(symbol()), std::move(new_terms))
                 : equal(new_terms[0], new_terms[1]);
    }
    default: {
      std::vector<prop> new_children;
      new_children.reserve(children().size());
      for (const prop& ch : children())
        new_children.push_back(ch.rename_symbols(m));
      node n{node_kind(), symbol(), {}, std::move(new_children)};
      return make(std::move(n));
    }
  }
}

bool prop::mentions_constant(const std::string& c) const {
  for (const term& t : terms())
    if (term_mentions_constant(t, c)) return true;
  for (const prop& ch : children())
    if (ch.mentions_constant(c)) return true;
  return false;
}

}  // namespace cgp::proof
