#include "proof/theories.hpp"

namespace cgp::proof::theories {
namespace {

// Term/prop construction helpers that route symbols through the signature.
term V(const std::string& v) { return term::var(v); }

prop lt(const signature& s, const term& a, const term& b) {
  return prop::atom(s("lt"), {a, b});
}
prop E(const signature& s, const term& a, const term& b) {
  return prop::atom(s("E"), {a, b});
}
term op2(const signature& s, const term& a, const term& b) {
  return term::app(s("op"), {a, b});
}
term mul2(const signature& s, const term& a, const term& b) {
  return term::app(s("mul"), {a, b});
}
term inv1(const signature& s, const term& a) {
  return term::app(s("inv"), {a});
}
term ident(const signature& s) { return term::cst(s("e")); }

}  // namespace

// ===========================================================================
// Strict Weak Order
// ===========================================================================

std::vector<prop> strict_weak_order_axioms(const signature& s) {
  const term x = V("x"), y = V("y"), z = V("z");
  return {
      // irreflexivity: forall x. !lt(x, x)
      prop::forall("x", prop::negation(lt(s, x, x))),
      // transitivity: forall x y z. lt(x,y) & lt(y,z) ==> lt(x,z)
      prop::forall_all(
          {"x", "y", "z"},
          prop::implication(prop::conjunction(lt(s, x, y), lt(s, y, z)),
                            lt(s, x, z))),
      // definition of the induced equivalence:
      // forall x y. E(x,y) <=> (!lt(x,y) & !lt(y,x))
      prop::forall_all(
          {"x", "y"},
          prop::biconditional(E(s, x, y),
                              prop::conjunction(prop::negation(lt(s, x, y)),
                                                prop::negation(lt(s, y, x))))),
      // transitivity of the equivalence (the subtle SWO axiom):
      prop::forall_all(
          {"x", "y", "z"},
          prop::implication(prop::conjunction(E(s, x, y), E(s, y, z)),
                            E(s, x, z))),
  };
}

namespace {

// Reusable first-class sub-proofs (methods, in DPL terms).

/// Derives `E(c, c)` for a given term c.
prop derive_E_reflexive_at(proof_context& ctx, const signature& s,
                           const term& c) {
  const std::vector<prop> ax = strict_weak_order_axioms(s);
  const prop not_ltcc = ctx.uspec(ax[0], c);             // !lt(c,c)
  const prop conj = ctx.and_intro(not_ltcc, not_ltcc);   // !lt(c,c) & !lt(c,c)
  const prop iff_cc = ctx.uspec(ctx.uspec(ax[2], c), c); // E(c,c) <=> ...
  const prop back = ctx.iff_elim_backward(iff_cc);       // conj ==> E(c,c)
  return ctx.modus_ponens(back, conj);                   // E(c,c)
}

/// Derives `E(c,d) ==> E(d,c)` for given terms c, d.
prop derive_E_symmetric_at(proof_context& ctx, const signature& s,
                           const term& c, const term& d) {
  const std::vector<prop> ax = strict_weak_order_axioms(s);
  return ctx.assume(E(s, c, d), [&](proof_context& h) {
    const prop iff_cd = h.uspec(h.uspec(ax[2], c), d);
    const prop fwd = h.iff_elim_forward(iff_cd);         // E(c,d) ==> conj
    const prop conj = h.modus_ponens(fwd, E(s, c, d));   // !lt(c,d) & !lt(d,c)
    const prop l = h.and_elim_left(conj);
    const prop r = h.and_elim_right(conj);
    const prop flipped = h.and_intro(r, l);              // !lt(d,c) & !lt(c,d)
    const prop iff_dc = h.uspec(h.uspec(ax[2], d), c);
    const prop back = h.iff_elim_backward(iff_dc);
    return h.modus_ponens(back, flipped);                // E(d,c)
  });
}

}  // namespace

theorem equivalence_reflexive() {
  return theorem{
      .name = "swo-equivalence-reflexive",
      .statement =
          [](const signature& s) {
            return prop::forall("x", E(s, V("x"), V("x")));
          },
      .axioms = strict_weak_order_axioms,
      .prove =
          [](proof_context& ctx, const signature& s) {
            return ctx.ugen("x", [&](proof_context& c, const term& fresh) {
              return derive_E_reflexive_at(c, s, fresh);
            });
          },
  };
}

theorem equivalence_symmetric() {
  return theorem{
      .name = "swo-equivalence-symmetric",
      .statement =
          [](const signature& s) {
            return prop::forall_all(
                {"x", "y"}, prop::implication(E(s, V("x"), V("y")),
                                              E(s, V("y"), V("x"))));
          },
      .axioms = strict_weak_order_axioms,
      .prove =
          [](proof_context& ctx, const signature& s) {
            return ctx.ugen("x", [&](proof_context& cx, const term& c) {
              return cx.ugen("y", [&](proof_context& cy, const term& d) {
                return derive_E_symmetric_at(cy, s, c, d);
              });
            });
          },
  };
}

theorem equivalence_relation() {
  return theorem{
      .name = "swo-equivalence-relation",
      .statement =
          [](const signature& s) {
            const term x = V("x"), y = V("y"), z = V("z");
            const prop refl = prop::forall("x", E(s, x, x));
            const prop symm = prop::forall_all(
                {"x", "y"},
                prop::implication(E(s, x, y), E(s, y, x)));
            const prop trans = prop::forall_all(
                {"x", "y", "z"},
                prop::implication(prop::conjunction(E(s, x, y), E(s, y, z)),
                                  E(s, x, z)));
            return prop::conjunction(prop::conjunction(refl, symm), trans);
          },
      .axioms = strict_weak_order_axioms,
      .prove =
          [](proof_context& ctx, const signature& s) {
            const std::vector<prop> ax = strict_weak_order_axioms(s);
            const prop refl =
                ctx.ugen("x", [&](proof_context& c, const term& fc) {
                  return derive_E_reflexive_at(c, s, fc);
                });
            const prop symm =
                ctx.ugen("x", [&](proof_context& cx, const term& c) {
                  return cx.ugen("y", [&](proof_context& cy, const term& d) {
                    return derive_E_symmetric_at(cy, s, c, d);
                  });
                });
            const prop trans = ctx.claim(ax[3]);  // given as an SWO axiom
            return ctx.and_intro(ctx.and_intro(refl, symm), trans);
          },
  };
}

std::vector<prop> total_order_axioms(const signature& s) {
  std::vector<prop> ax = strict_weak_order_axioms(s);
  const term x = V("x"), y = V("y");
  // trichotomy: forall x y. lt(x,y) | (x = y | lt(y,x))
  ax.push_back(prop::forall_all(
      {"x", "y"},
      prop::disjunction(lt(s, x, y),
                        prop::disjunction(prop::equal(x, y), lt(s, y, x)))));
  return ax;
}

theorem total_order_equivalence_is_equality() {
  return theorem{
      .name = "total-order-equivalence-is-equality",
      .statement =
          [](const signature& s) {
            return prop::forall_all(
                {"x", "y"}, prop::implication(E(s, V("x"), V("y")),
                                              prop::equal(V("x"), V("y"))));
          },
      .axioms = total_order_axioms,
      .prove =
          [](proof_context& ctx, const signature& s) {
            const std::vector<prop> ax = total_order_axioms(s);
            return ctx.ugen("x", [&](proof_context& cx, const term& a) {
              return cx.ugen("y", [&](proof_context& cy, const term& b) {
                return cy.assume(E(s, a, b), [&](proof_context& h) {
                  // Unpack E(a,b) into !lt(a,b) and !lt(b,a).
                  const prop iff_ab = h.uspec(h.uspec(ax[2], a), b);
                  const prop fwd = h.iff_elim_forward(iff_ab);
                  const prop conj = h.modus_ponens(fwd, E(s, a, b));
                  const prop not_ab = h.and_elim_left(conj);
                  const prop not_ba = h.and_elim_right(conj);
                  // Trichotomy instance.
                  const prop tri = h.uspec(h.uspec(ax[4], a), b);
                  const prop goal = prop::equal(a, b);
                  // Case split on lt(a,b) | (a = b | lt(b,a)).
                  return h.cases(
                      tri, goal,
                      [&](proof_context& c1) {
                        (void)c1.absurd(c1.claim(lt(s, a, b)), not_ab);
                        return c1.ex_falso(goal);
                      },
                      [&](proof_context& c2) {
                        const prop inner = prop::disjunction(
                            prop::equal(a, b), lt(s, b, a));
                        return c2.cases(
                            inner, goal,
                            [&](proof_context& c3) { return c3.claim(goal); },
                            [&](proof_context& c4) {
                              (void)c4.absurd(c4.claim(lt(s, b, a)), not_ba);
                              return c4.ex_falso(goal);
                            });
                      });
                });
              });
            });
          },
  };
}

// ===========================================================================
// Group theory
// ===========================================================================

std::vector<prop> group_axioms(const signature& s) {
  const term x = V("x"), y = V("y"), z = V("z");
  const term e = ident(s);
  return {
      // [0] associativity
      prop::forall_all({"x", "y", "z"},
                       prop::equal(op2(s, op2(s, x, y), z),
                                   op2(s, x, op2(s, y, z)))),
      // [1] left identity, [2] right identity
      prop::forall("x", prop::equal(op2(s, e, x), x)),
      prop::forall("x", prop::equal(op2(s, x, e), x)),
      // [3] left inverse, [4] right inverse
      prop::forall("x", prop::equal(op2(s, inv1(s, x), x), e)),
      prop::forall("x", prop::equal(op2(s, x, inv1(s, x)), e)),
  };
}

namespace {

/// First-class method deriving `B = C` from a proved `op(A,B) = op(A,C)`.
/// Reused by left-cancellation, inverse uniqueness, and ring annihilation —
/// the paper's point about packaging proofs as passable functions.
prop derive_left_cancel(proof_context& ctx, const signature& s, const term& A,
                        const term& B, const term& C) {
  const std::vector<prop> ax = group_axioms(s);
  const term e = ident(s);
  const term iA = inv1(s, A);
  const std::string opn = s("op");

  // op(inv A, op(A,B)) = op(inv A, op(A,C))   [congruence on the hypothesis]
  const prop hyp = prop::equal(op2(s, A, B), op2(s, A, C));
  const prop refl_iA = ctx.eq_reflexive(iA);
  const prop cong = ctx.eq_congruence(opn, {refl_iA, ctx.claim(hyp)});

  // B = op(e,B) = op(op(iA,A),B) = op(iA,op(A,B))
  const prop left_id_B = ctx.uspec(ax[1], B);            // op(e,B) = B
  const prop s1 = ctx.eq_symmetric(left_id_B);           // B = op(e,B)
  const prop linv_A = ctx.uspec(ax[3], A);               // op(iA,A) = e
  const prop cong2 = ctx.eq_congruence(
      opn, {linv_A, ctx.eq_reflexive(B)});               // op(op(iA,A),B)=op(e,B)
  const prop s2 = ctx.eq_symmetric(cong2);               // op(e,B)=op(op(iA,A),B)
  const prop assoc_B = ctx.uspec(ctx.uspec(ctx.uspec(ax[0], iA), A), B);
  // assoc_B: op(op(iA,A),B) = op(iA,op(A,B))
  const prop t1 = ctx.eq_transitive(s1, s2);
  const prop t2 = ctx.eq_transitive(t1, assoc_B);        // B = op(iA,op(A,B))
  const prop t3 = ctx.eq_transitive(t2, cong);           // B = op(iA,op(A,C))

  // op(iA,op(A,C)) = op(op(iA,A),C) = op(e,C) = C
  const prop assoc_C = ctx.uspec(ctx.uspec(ctx.uspec(ax[0], iA), A), C);
  const prop s3 = ctx.eq_symmetric(assoc_C);  // op(iA,op(A,C)) = op(op(iA,A),C)
  const prop cong3 = ctx.eq_congruence(
      opn, {linv_A, ctx.eq_reflexive(C)});               // op(op(iA,A),C)=op(e,C)
  const prop left_id_C = ctx.uspec(ax[1], C);            // op(e,C) = C
  const prop t4 = ctx.eq_transitive(t3, s3);
  const prop t5 = ctx.eq_transitive(t4, cong3);
  return ctx.eq_transitive(t5, left_id_C);               // B = C
}

}  // namespace

theorem group_identity_unique() {
  return theorem{
      .name = "group-identity-unique",
      .statement =
          [](const signature& s) {
            const term u = V("u"), x = V("x");
            return prop::forall(
                "u", prop::implication(
                         prop::forall("x", prop::equal(op2(s, x, u), x)),
                         prop::equal(u, ident(s))));
          },
      .axioms = group_axioms,
      .prove =
          [](proof_context& ctx, const signature& s) {
            const std::vector<prop> ax = group_axioms(s);
            const term e = ident(s);
            return ctx.ugen("u", [&](proof_context& cu, const term& c) {
              const prop hyp =
                  prop::forall("x", prop::equal(op2(s, V("x"), c), V("x")));
              return cu.assume(hyp, [&](proof_context& h) {
                const prop a = h.uspec(hyp, e);       // op(e,c) = e
                const prop b = h.uspec(ax[1], c);     // op(e,c) = c
                const prop c_eq = h.eq_symmetric(b);  // c = op(e,c)
                return h.eq_transitive(c_eq, a);      // c = e
              });
            });
          },
  };
}

theorem group_left_cancellation() {
  return theorem{
      .name = "group-left-cancellation",
      .statement =
          [](const signature& s) {
            const term a = V("a"), b = V("b"), c = V("c");
            return prop::forall_all(
                {"a", "b", "c"},
                prop::implication(prop::equal(op2(s, a, b), op2(s, a, c)),
                                  prop::equal(b, c)));
          },
      .axioms = group_axioms,
      .prove =
          [](proof_context& ctx, const signature& s) {
            return ctx.ugen("a", [&](proof_context& ca, const term& A) {
              return ca.ugen("b", [&](proof_context& cb, const term& B) {
                return cb.ugen("c", [&](proof_context& cc, const term& C) {
                  const prop hyp =
                      prop::equal(op2(s, A, B), op2(s, A, C));
                  return cc.assume(hyp, [&](proof_context& h) {
                    return derive_left_cancel(h, s, A, B, C);
                  });
                });
              });
            });
          },
  };
}

theorem group_inverse_unique() {
  return theorem{
      .name = "group-inverse-unique",
      .statement =
          [](const signature& s) {
            const term a = V("a"), b = V("b");
            return prop::forall_all(
                {"a", "b"},
                prop::implication(prop::equal(op2(s, a, b), ident(s)),
                                  prop::equal(b, inv1(s, a))));
          },
      .axioms = group_axioms,
      .prove =
          [](proof_context& ctx, const signature& s) {
            const std::vector<prop> ax = group_axioms(s);
            return ctx.ugen("a", [&](proof_context& ca, const term& A) {
              return ca.ugen("b", [&](proof_context& cb, const term& B) {
                const prop hyp = prop::equal(op2(s, A, B), ident(s));
                return cb.assume(hyp, [&](proof_context& h) {
                  // op(A,B) = e = op(A, inv(A))  ==> cancel A.
                  const prop rinv = h.uspec(ax[4], A);  // op(A,inv A) = e
                  const prop sym = h.eq_symmetric(rinv);
                  const prop chain =
                      h.eq_transitive(h.claim(hyp), sym);
                  // chain: op(A,B) = op(A, inv(A)); reuse the cancellation
                  // method — a first-class sub-proof.
                  (void)chain;
                  return derive_left_cancel(h, s, A, B, inv1(s, A));
                });
              });
            });
          },
  };
}

theorem group_inverse_of_identity() {
  return theorem{
      .name = "group-inverse-of-identity",
      .statement =
          [](const signature& s) {
            return prop::equal(inv1(s, ident(s)), ident(s));
          },
      .axioms = group_axioms,
      .prove =
          [](proof_context& ctx, const signature& s) {
            const std::vector<prop> ax = group_axioms(s);
            const term e = ident(s);
            const term ie = inv1(s, e);
            // op(e, inv(e)) = e   [right inverse at e]
            const prop rinv = ctx.uspec(ax[4], e);
            // op(e, inv(e)) = inv(e)   [left identity at inv(e)]
            const prop lid = ctx.uspec(ax[1], ie);
            // inv(e) = op(e, inv(e)) = e
            return ctx.eq_transitive(ctx.eq_symmetric(lid), rinv);
          },
  };
}

theorem group_double_inverse() {
  return theorem{
      .name = "group-double-inverse",
      .statement =
          [](const signature& s) {
            return prop::forall(
                "a", prop::equal(inv1(s, inv1(s, V("a"))), V("a")));
          },
      .axioms = group_axioms,
      .prove =
          [](proof_context& ctx, const signature& s) {
            const std::vector<prop> ax = group_axioms(s);
            return ctx.ugen("a", [&](proof_context& c, const term& A) {
              const term iA = inv1(s, A);
              const term iiA = inv1(s, iA);
              // op(inv(a), a) = e        [left inverse at a]
              const prop linv = c.uspec(ax[3], A);
              // op(inv(a), inv(inv(a))) = e  [right inverse at inv(a)]
              const prop rinv = c.uspec(ax[4], iA);
              // op(inv(a), a) = op(inv(a), inv(inv(a)))
              const prop chain =
                  c.eq_transitive(linv, c.eq_symmetric(rinv));
              (void)chain;  // the cancellation premise, now in the base
              // cancel inv(a): a = inv(inv(a)), then flip.
              const prop a_eq = derive_left_cancel(c, s, iA, A, iiA);
              return c.eq_symmetric(a_eq);
            });
          },
  };
}

// ===========================================================================
// Ring theory
// ===========================================================================

std::vector<prop> ring_axioms(const signature& s) {
  std::vector<prop> ax = group_axioms(s);  // additive group (op, e, inv)
  const term x = V("x"), y = V("y"), z = V("z");
  const term one = term::cst(s("one"));
  // [5] mul associativity
  ax.push_back(prop::forall_all(
      {"x", "y", "z"}, prop::equal(mul2(s, mul2(s, x, y), z),
                                   mul2(s, x, mul2(s, y, z)))));
  // [6] left distributivity: mul(x, op(y,z)) = op(mul(x,y), mul(x,z))
  ax.push_back(prop::forall_all(
      {"x", "y", "z"},
      prop::equal(mul2(s, x, op2(s, y, z)),
                  op2(s, mul2(s, x, y), mul2(s, x, z)))));
  // [7][8] mul identities
  ax.push_back(prop::forall("x", prop::equal(mul2(s, x, one), x)));
  ax.push_back(prop::forall("x", prop::equal(mul2(s, one, x), x)));
  return ax;
}

theorem ring_annihilation() {
  return theorem{
      .name = "ring-annihilation",
      .statement =
          [](const signature& s) {
            return prop::forall(
                "x", prop::equal(mul2(s, V("x"), ident(s)), ident(s)));
          },
      .axioms = ring_axioms,
      .prove =
          [](proof_context& ctx, const signature& s) {
            const std::vector<prop> ax = ring_axioms(s);
            const term e = ident(s);
            const std::string muln = s("mul");
            return ctx.ugen("x", [&](proof_context& c, const term& X) {
              const term m = mul2(s, X, e);
              // op(e,e) = e  (left identity at e)
              const prop ee = c.uspec(ax[1], e);
              // mul(X, op(e,e)) = mul(X, e)   [congruence]
              const prop cong =
                  c.eq_congruence(muln, {c.eq_reflexive(X), ee});
              // distributivity at (X, e, e):
              // mul(X, op(e,e)) = op(mul(X,e), mul(X,e))
              const prop dist =
                  c.uspec(c.uspec(c.uspec(ax[6], X), e), e);
              // op(m, m) = m
              const prop sym_dist = c.eq_symmetric(dist);
              const prop mm = c.eq_transitive(sym_dist, cong);
              // op(m, e) = m  (right identity), so op(m,m) = op(m,e)
              const prop rid = c.uspec(ax[2], m);  // op(m,e) = m
              const prop t = c.eq_transitive(mm, c.eq_symmetric(rid));
              (void)t;  // t : op(m,m) = op(m,e) — the cancellation premise
              // cancel m on the left: m = e
              return derive_left_cancel(c, s, m, m, e);
            });
          },
  };
}

// ===========================================================================
// Bridge from the concept registry
// ===========================================================================

prop from_axiom(const core::axiom& ax) {
  return prop::forall_all(ax.vars, prop::equal(ax.lhs, ax.rhs));
}

std::vector<prop> axioms_of_concept(const core::concept_registry& reg,
                                    const std::string& concept_name,
                                    const signature& s) {
  std::vector<prop> out;
  for (const core::axiom& ax : reg.all_axioms(concept_name))
    out.push_back(from_axiom(ax).rename_symbols(s.mapping()));
  return out;
}

}  // namespace cgp::proof::theories
