// First-order propositions for the Denotational-Proof-Language-style checker
// (Section 3.3).  Terms are shared with the concept registry (core::term),
// so a concept's equational axioms can be lifted into the logic unchanged.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/term.hpp"

namespace cgp::proof {

using core::term;

/// Immutable first-order proposition.
class prop {
 public:
  enum class kind {
    falsum,   ///< the absurd proposition
    atom,     ///< predicate applied to terms, e.g. lt(x, y)
    equal,    ///< term equality, e.g. op(x, e) = x
    negation,
    conjunction,
    disjunction,
    implication,
    biconditional,
    forall,
    exists,
  };

  // -- constructors ---------------------------------------------------------
  [[nodiscard]] static prop falsum();
  [[nodiscard]] static prop atom(std::string predicate,
                                 std::vector<term> args);
  [[nodiscard]] static prop equal(term lhs, term rhs);
  [[nodiscard]] static prop negation(prop p);
  [[nodiscard]] static prop conjunction(prop a, prop b);
  [[nodiscard]] static prop disjunction(prop a, prop b);
  [[nodiscard]] static prop implication(prop a, prop b);
  [[nodiscard]] static prop biconditional(prop a, prop b);
  [[nodiscard]] static prop forall(std::string var, prop body);
  [[nodiscard]] static prop exists(std::string var, prop body);

  /// forall over several variables, outermost first.
  [[nodiscard]] static prop forall_all(const std::vector<std::string>& vars,
                                       prop body);

  // -- observers ------------------------------------------------------------
  [[nodiscard]] kind node_kind() const noexcept { return node_->k; }
  [[nodiscard]] const std::string& symbol() const noexcept {
    return node_->symbol;  // predicate name or quantified variable
  }
  [[nodiscard]] const std::vector<term>& terms() const noexcept {
    return node_->terms;
  }
  [[nodiscard]] const std::vector<prop>& children() const noexcept {
    return node_->children;
  }
  [[nodiscard]] bool is(kind k) const noexcept { return node_->k == k; }

  /// Structural equality (variables compared by name; theories use
  /// deterministic naming so this is sufficient for assumption-base lookup).
  friend bool operator==(const prop& a, const prop& b);
  friend bool operator!=(const prop& a, const prop& b) { return !(a == b); }

  [[nodiscard]] std::string to_string() const;

  /// Capture-avoiding-enough substitution of free occurrences of variable
  /// `var` by `t`: substitution stops at a binder of the same name.  Theories
  /// instantiate with fresh constants, so capture cannot occur in practice.
  [[nodiscard]] prop substitute_var(const std::string& var,
                                    const term& t) const;

  /// Replaces every occurrence of the *constant* named `c` by variable `v`
  /// (used by universal generalization to abstract a fresh constant).
  [[nodiscard]] prop generalize_constant(const std::string& c,
                                         const std::string& v) const;

  /// Renames predicate/function/constant symbols (a signature morphism) —
  /// the mechanism that makes proofs generic: prove once over the abstract
  /// signature, instantiate per model (Section 3.3).
  [[nodiscard]] prop rename_symbols(
      const std::map<std::string, std::string>& m) const;

  /// True if constant `c` occurs anywhere in the proposition.
  [[nodiscard]] bool mentions_constant(const std::string& c) const;

 private:
  struct node {
    kind k;
    std::string symbol;
    std::vector<term> terms;
    std::vector<prop> children;
  };
  explicit prop(std::shared_ptr<const node> n) : node_(std::move(n)) {}
  [[nodiscard]] static prop make(node n) {
    return prop(std::make_shared<const node>(std::move(n)));
  }
  std::shared_ptr<const node> node_;
};

}  // namespace cgp::proof
