#include "proof/deduction.hpp"

namespace cgp::proof {

void assumption_base::insert(const prop& p) {
  props_.emplace(p.to_string(), p);
}

bool assumption_base::contains(const prop& p) const {
  auto it = props_.find(p.to_string());
  return it != props_.end() && it->second == p;
}

prop proof_context::assert_axiom(const prop& p) {
  ab_.insert(p);
  return p;
}

prop proof_context::conclude(prop p) {
  ++*steps_;
  ab_.insert(p);
  return p;
}

void proof_context::require(const prop& p, const char* method) const {
  if (!ab_.contains(p))
    throw proof_error(std::string(method) + ": premise not in assumption base: " +
                      p.to_string());
}

void proof_context::fail(const std::string& msg) const {
  throw proof_error(msg);
}

prop proof_context::claim(const prop& p) {
  require(p, "claim");
  return conclude(p);
}

prop proof_context::modus_ponens(const prop& implication,
                                 const prop& antecedent) {
  require(implication, "modus-ponens");
  require(antecedent, "modus-ponens");
  if (!implication.is(prop::kind::implication))
    fail("modus-ponens: first premise is not an implication: " +
         implication.to_string());
  if (!(implication.children()[0] == antecedent))
    fail("modus-ponens: antecedent mismatch: wanted " +
         implication.children()[0].to_string() + ", got " +
         antecedent.to_string());
  return conclude(implication.children()[1]);
}

prop proof_context::modus_tollens(const prop& implication,
                                  const prop& not_consequent) {
  require(implication, "modus-tollens");
  require(not_consequent, "modus-tollens");
  if (!implication.is(prop::kind::implication))
    fail("modus-tollens: first premise is not an implication");
  if (!not_consequent.is(prop::kind::negation) ||
      !(not_consequent.children()[0] == implication.children()[1]))
    fail("modus-tollens: second premise is not the negated consequent");
  return conclude(prop::negation(implication.children()[0]));
}

prop proof_context::and_intro(const prop& a, const prop& b) {
  require(a, "and-intro");
  require(b, "and-intro");
  return conclude(prop::conjunction(a, b));
}

prop proof_context::and_elim_left(const prop& conj) {
  require(conj, "and-elim-left");
  if (!conj.is(prop::kind::conjunction))
    fail("and-elim-left: premise is not a conjunction");
  return conclude(conj.children()[0]);
}

prop proof_context::and_elim_right(const prop& conj) {
  require(conj, "and-elim-right");
  if (!conj.is(prop::kind::conjunction))
    fail("and-elim-right: premise is not a conjunction");
  return conclude(conj.children()[1]);
}

prop proof_context::or_intro_left(const prop& a, const prop& b) {
  require(a, "or-intro-left");
  return conclude(prop::disjunction(a, b));
}

prop proof_context::or_intro_right(const prop& a, const prop& b) {
  require(b, "or-intro-right");
  return conclude(prop::disjunction(a, b));
}

prop proof_context::absurd(const prop& a, const prop& not_a) {
  require(a, "absurd");
  require(not_a, "absurd");
  if (!not_a.is(prop::kind::negation) || !(not_a.children()[0] == a))
    fail("absurd: second premise is not the negation of the first");
  return conclude(prop::falsum());
}

prop proof_context::ex_falso(const prop& goal) {
  require(prop::falsum(), "ex-falso");
  return conclude(goal);
}

prop proof_context::double_negation(const prop& nn) {
  require(nn, "double-negation");
  if (!nn.is(prop::kind::negation) ||
      !nn.children()[0].is(prop::kind::negation))
    fail("double-negation: premise is not a double negation");
  return conclude(nn.children()[0].children()[0]);
}

prop proof_context::iff_elim_forward(const prop& iff) {
  require(iff, "iff-elim-forward");
  if (!iff.is(prop::kind::biconditional))
    fail("iff-elim-forward: premise is not a biconditional");
  return conclude(prop::implication(iff.children()[0], iff.children()[1]));
}

prop proof_context::iff_elim_backward(const prop& iff) {
  require(iff, "iff-elim-backward");
  if (!iff.is(prop::kind::biconditional))
    fail("iff-elim-backward: premise is not a biconditional");
  return conclude(prop::implication(iff.children()[1], iff.children()[0]));
}

prop proof_context::iff_intro(const prop& fwd, const prop& bwd) {
  require(fwd, "iff-intro");
  require(bwd, "iff-intro");
  if (!fwd.is(prop::kind::implication) || !bwd.is(prop::kind::implication))
    fail("iff-intro: premises must be implications");
  if (!(fwd.children()[0] == bwd.children()[1]) ||
      !(fwd.children()[1] == bwd.children()[0]))
    fail("iff-intro: implications are not converses of each other");
  return conclude(prop::biconditional(fwd.children()[0], fwd.children()[1]));
}

prop proof_context::assume(const prop& hypothesis,
                           const std::function<prop(proof_context&)>& body) {
  proof_context child(ab_, steps_, fresh_);
  child.ab_.insert(hypothesis);
  const prop result = body(child);
  if (!child.ab_.contains(result))
    fail("assume: body returned a proposition it did not prove");
  return conclude(prop::implication(hypothesis, result));
}

prop proof_context::by_contradiction(
    const prop& goal, const std::function<prop(proof_context&)>& body) {
  proof_context child(ab_, steps_, fresh_);
  child.ab_.insert(prop::negation(goal));
  const prop result = body(child);
  if (!(result == prop::falsum()))
    fail("by-contradiction: body must derive falsum, got " +
         result.to_string());
  if (!child.ab_.contains(result))
    fail("by-contradiction: body returned an unproved proposition");
  return conclude(goal);
}

prop proof_context::cases(const prop& disjunction, const prop& goal,
                          const std::function<prop(proof_context&)>& left,
                          const std::function<prop(proof_context&)>& right) {
  require(disjunction, "cases");
  if (!disjunction.is(prop::kind::disjunction))
    fail("cases: premise is not a disjunction");
  proof_context lchild(ab_, steps_, fresh_);
  lchild.ab_.insert(disjunction.children()[0]);
  const prop lres = left(lchild);
  if (!(lres == goal) || !lchild.ab_.contains(lres))
    fail("cases: left branch did not prove the goal");
  proof_context rchild(ab_, steps_, fresh_);
  rchild.ab_.insert(disjunction.children()[1]);
  const prop rres = right(rchild);
  if (!(rres == goal) || !rchild.ab_.contains(rres))
    fail("cases: right branch did not prove the goal");
  return conclude(goal);
}

prop proof_context::uspec(const prop& universal, const term& t) {
  require(universal, "uspec");
  if (!universal.is(prop::kind::forall))
    fail("uspec: premise is not universally quantified: " +
         universal.to_string());
  return conclude(universal.children()[0].substitute_var(universal.symbol(), t));
}

prop proof_context::ugen(
    const std::string& var,
    const std::function<prop(proof_context&, const term&)>& body) {
  const std::string fresh_name = "$c" + std::to_string((*fresh_)++);
  const term fresh_const = term::cst(fresh_name);
  proof_context child(ab_, steps_, fresh_);
  const prop instance = body(child, fresh_const);
  if (!child.ab_.contains(instance))
    fail("ugen: body returned an unproved proposition");
  const prop generalized =
      prop::forall(var, instance.generalize_constant(fresh_name, var));
  if (generalized.mentions_constant(fresh_name))
    fail("ugen: fresh constant leaked into the conclusion");
  return conclude(generalized);
}

prop proof_context::egen(const prop& existential, const term& witness) {
  if (!existential.is(prop::kind::exists))
    fail("egen: goal is not existentially quantified");
  const prop instance = existential.children()[0].substitute_var(
      existential.symbol(), witness);
  require(instance, "egen");
  return conclude(existential);
}

prop proof_context::eq_reflexive(const term& t) {
  return conclude(prop::equal(t, t));
}

prop proof_context::eq_symmetric(const prop& eq) {
  require(eq, "eq-symmetric");
  if (!eq.is(prop::kind::equal)) fail("eq-symmetric: premise not an equality");
  return conclude(prop::equal(eq.terms()[1], eq.terms()[0]));
}

prop proof_context::eq_transitive(const prop& ab, const prop& bc) {
  require(ab, "eq-transitive");
  require(bc, "eq-transitive");
  if (!ab.is(prop::kind::equal) || !bc.is(prop::kind::equal))
    fail("eq-transitive: premises must be equalities");
  if (!(ab.terms()[1] == bc.terms()[0]))
    fail("eq-transitive: middle terms differ: " + ab.terms()[1].to_string() +
         " vs " + bc.terms()[0].to_string());
  return conclude(prop::equal(ab.terms()[0], bc.terms()[1]));
}

prop proof_context::eq_congruence(const std::string& fn,
                                  const std::vector<prop>& eqs) {
  std::vector<term> lhs, rhs;
  lhs.reserve(eqs.size());
  rhs.reserve(eqs.size());
  for (const prop& e : eqs) {
    require(e, "eq-congruence");
    if (!e.is(prop::kind::equal))
      fail("eq-congruence: premise is not an equality");
    lhs.push_back(e.terms()[0]);
    rhs.push_back(e.terms()[1]);
  }
  return conclude(
      prop::equal(term::app(fn, std::move(lhs)), term::app(fn, std::move(rhs))));
}

prop proof_context::eq_substitute(const prop& eq, const prop& p,
                                  const prop& replacement) {
  require(eq, "eq-substitute");
  require(p, "eq-substitute");
  if (!eq.is(prop::kind::equal)) fail("eq-substitute: first premise not an =");
  // Soundness check without occurrence bookkeeping: abstract both sides.
  // `replacement` is p with some occurrences of a replaced by b.  We verify
  // by checking that replacing *all* occurrences of a by b in both p and
  // replacement yields the same proposition (so replacement differs from p
  // only at positions that held a and now hold b).
  const std::string marker = "$subst";
  const term a = eq.terms()[0];
  const term b = eq.terms()[1];
  const auto replace_all = [&](const prop& q) {
    // Replace occurrences of term `a` by `b` via generalize-through-render:
    // simplest sound approach — rebuild by structural recursion.
    struct rec {
      const term& from;
      const term& to;
      term on_term(const term& t) const {
        if (t == from) return to;
        if (!t.is_apply()) return t;
        std::vector<term> args;
        args.reserve(t.arity());
        for (const term& x : t.args()) args.push_back(on_term(x));
        return term::app(t.symbol(), std::move(args));
      }
      prop on_prop(const prop& q) const {
        switch (q.node_kind()) {
          case prop::kind::atom: {
            std::vector<term> ts;
            for (const term& t : q.terms()) ts.push_back(on_term(t));
            return prop::atom(q.symbol(), std::move(ts));
          }
          case prop::kind::equal:
            return prop::equal(on_term(q.terms()[0]), on_term(q.terms()[1]));
          case prop::kind::falsum:
            return q;
          case prop::kind::forall:
            return prop::forall(q.symbol(), on_prop(q.children()[0]));
          case prop::kind::exists:
            return prop::exists(q.symbol(), on_prop(q.children()[0]));
          case prop::kind::negation:
            return prop::negation(on_prop(q.children()[0]));
          case prop::kind::conjunction:
            return prop::conjunction(on_prop(q.children()[0]),
                                     on_prop(q.children()[1]));
          case prop::kind::disjunction:
            return prop::disjunction(on_prop(q.children()[0]),
                                     on_prop(q.children()[1]));
          case prop::kind::implication:
            return prop::implication(on_prop(q.children()[0]),
                                     on_prop(q.children()[1]));
          case prop::kind::biconditional:
            return prop::biconditional(on_prop(q.children()[0]),
                                       on_prop(q.children()[1]));
        }
        return q;
      }
    };
    return rec{a, b}.on_prop(q);
  };
  (void)marker;
  if (!(replace_all(p) == replace_all(replacement)))
    fail("eq-substitute: replacement is not obtained from the premise by "
         "rewriting " + a.to_string() + " to " + b.to_string());
  return conclude(replacement);
}

prop theorem::check(const signature& sig, std::size_t* steps_out) const {
  proof_context ctx;
  for (const prop& ax : axioms(sig)) ctx.assert_axiom(ax);
  const prop proved = prove(ctx, sig);
  if (!ctx.holds(proved))
    throw proof_error("theorem '" + name +
                      "': proof returned an unproved proposition");
  const prop wanted = statement(sig);
  if (!(proved == wanted))
    throw proof_error("theorem '" + name + "': proof produced " +
                      proved.to_string() + " but the statement is " +
                      wanted.to_string());
  if (steps_out != nullptr) *steps_out = ctx.steps();
  return proved;
}

}  // namespace cgp::proof
