// Formalized theories: orderings (Fig. 6's Strict Weak Order), groups, and
// rings — "numerous properties of ordering concepts ..., algebraic concepts
// (such as monoid, group, ring, ...)" (Section 3.3).
//
// Every theorem is *generic*: its statement, axioms, and proof are built
// through a signature (operator mapping), so checking it for `<` on int,
// lexicographic string order, or any other declared model is one
// `thm.check(signature{...})` call — proofs instantiate like generic
// algorithms.
#pragma once

#include <vector>

#include "core/registry.hpp"
#include "proof/deduction.hpp"

namespace cgp::proof::theories {

// --- Strict Weak Order (Fig. 6) ---------------------------------------------
// Abstract signature symbols: predicate `lt`, defined predicate `E`.
// Axioms: irreflexivity, transitivity, the definition of E, and transitivity
// of E.  Fig. 6: "From these axioms two additional properties of E, symmetry
// and reflexivity, can be derived as theorems, showing that E is in fact an
// equivalence relation."

[[nodiscard]] std::vector<prop> strict_weak_order_axioms(const signature& s);

/// forall x. E(x, x)
[[nodiscard]] theorem equivalence_reflexive();
/// forall x, y. E(x, y) ==> E(y, x)
[[nodiscard]] theorem equivalence_symmetric();
/// The Fig. 6 headline: reflexivity & symmetry & transitivity of E, i.e.
/// E is an equivalence relation.
[[nodiscard]] theorem equivalence_relation();

// --- Total Order ---------------------------------------------------------------
// Strict weak order + trichotomy: forall x y. lt(x,y) | (x = y | lt(y,x)).

[[nodiscard]] std::vector<prop> total_order_axioms(const signature& s);

/// forall x, y. E(x, y) ==> x = y — under a TOTAL order the induced
/// equivalence collapses to equality (the property that separates
/// TotalOrder from StrictWeakOrder in the registry).  The proof exercises
/// case analysis and ex falso.
[[nodiscard]] theorem total_order_equivalence_is_equality();

// --- Group theory -------------------------------------------------------------
// Abstract signature symbols: `op`, constant `e`, function `inv`.

[[nodiscard]] std::vector<prop> group_axioms(const signature& s);

/// forall u. (forall x. op(x, u) = x) ==> u = e
[[nodiscard]] theorem group_identity_unique();
/// forall a, b, c. op(a, b) = op(a, c) ==> b = c
[[nodiscard]] theorem group_left_cancellation();
/// forall a, b. op(a, b) = e ==> b = inv(a)
[[nodiscard]] theorem group_inverse_unique();
/// inv(e) = e
[[nodiscard]] theorem group_inverse_of_identity();
/// forall a. inv(inv(a)) = a — licenses the rewrite `-(-x) -> x`.
[[nodiscard]] theorem group_double_inverse();

// --- Ring theory ---------------------------------------------------------------
// Extends the (additive) group signature with `mul` and constant `one`.

[[nodiscard]] std::vector<prop> ring_axioms(const signature& s);

/// forall x. mul(x, e) = e  — the annihilation theorem.  Its machine-checked
/// proof is what licenses the rewrite engine's derived rule `x * 0 -> 0`
/// (see rewrite::simplifier and tests/rewrite_test.cpp).
[[nodiscard]] theorem ring_annihilation();

// --- Bridge from the concept registry's equational axioms --------------------

/// Lifts a core equational axiom (`forall vars . lhs = rhs`) into a
/// proposition — the single-source-of-truth pipeline: the SAME axiom object
/// that generates a rewrite rule in src/rewrite becomes a usable premise
/// here.
[[nodiscard]] prop from_axiom(const core::axiom& ax);

/// All axioms of a registry concept (including inherited ones) as
/// propositions under a signature.
[[nodiscard]] std::vector<prop> axioms_of_concept(
    const core::concept_registry& reg, const std::string& concept_name,
    const signature& s = {});

}  // namespace cgp::proof::theories
