// The deduction engine: an embedded Denotational Proof Language.
//
// Following Arkoudas's DPL design as summarized in Section 3.3:
//  * all proof activity centres on an *assumption base* — an associative
//    store of propositions that have been asserted or proved;
//  * primitive *methods* consume propositions that must already be in the
//    assumption base and produce a new theorem, which is added to it;
//  * "proper deductions ... produce theorems; improper deductions result in
//    an error condition" — here, `proof_error` is thrown and nothing is
//    added, so a completed run *is* the certificate;
//  * methods are first-class (`deduction` is just a function), so proofs can
//    be packaged, passed around, and parameterized by operator mappings —
//    the paper's recipe for genericity without modules or templates.
//
// The engine only ever *checks* proofs (each method is O(size of inputs));
// there is no proof search, which is the efficiency argument of Section 3.3.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "proof/prop.hpp"

namespace cgp::proof {

/// Thrown by improper deductions.
class proof_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// The assumption base: an associative memory of propositions.
class assumption_base {
 public:
  void insert(const prop& p);
  [[nodiscard]] bool contains(const prop& p) const;
  [[nodiscard]] std::size_t size() const noexcept { return props_.size(); }

 private:
  // Keyed by rendered text; renderings are injective for our constructors.
  std::unordered_map<std::string, prop> props_;
};

/// A proof context: assumption base + inference counters.  Methods verify
/// their premises against the base, then record their conclusion in it.
class proof_context {
 public:
  proof_context() = default;

  /// Asserts `p` as an axiom (no proof obligation).
  prop assert_axiom(const prop& p);

  /// The number of primitive inference steps executed (proof size metric
  /// for bench/fig6_proof).
  [[nodiscard]] std::size_t steps() const noexcept { return *steps_; }
  [[nodiscard]] const assumption_base& base() const noexcept { return ab_; }
  [[nodiscard]] bool holds(const prop& p) const { return ab_.contains(p); }

  // --- primitive methods ---------------------------------------------------
  /// Reiterates a proposition already in the base.
  prop claim(const prop& p);
  /// From `a ==> b` and `a`, concludes `b`.
  prop modus_ponens(const prop& implication, const prop& antecedent);
  /// From `a ==> b` and `!b`, concludes `!a`.
  prop modus_tollens(const prop& implication, const prop& not_consequent);
  /// From `a` and `b`, concludes `a & b`.
  prop and_intro(const prop& a, const prop& b);
  prop and_elim_left(const prop& conj);   ///< from `a & b`, concludes `a`
  prop and_elim_right(const prop& conj);  ///< from `a & b`, concludes `b`
  /// From `a`, concludes `a | b` (b arbitrary).
  prop or_intro_left(const prop& a, const prop& b);
  prop or_intro_right(const prop& a, const prop& b);
  /// From `a` and `!a`, concludes falsum.
  prop absurd(const prop& a, const prop& not_a);
  /// From falsum, concludes anything.
  prop ex_falso(const prop& goal);
  /// From `!!a`, concludes `a`.
  prop double_negation(const prop& not_not_a);
  /// From `a <=> b`, concludes `a ==> b` / `b ==> a`.
  prop iff_elim_forward(const prop& iff);
  prop iff_elim_backward(const prop& iff);
  /// From `a ==> b` and `b ==> a`, concludes `a <=> b`.
  prop iff_intro(const prop& fwd, const prop& bwd);

  // --- hypothetical / structured deductions --------------------------------
  /// Conditional proof: runs `body` in a child context where `hypothesis`
  /// holds; concludes `hypothesis ==> body-result`.
  prop assume(const prop& hypothesis,
              const std::function<prop(proof_context&)>& body);
  /// Proof by contradiction: derives falsum under `!goal`; concludes `goal`.
  prop by_contradiction(const prop& goal,
                        const std::function<prop(proof_context&)>& body);
  /// Case analysis on `a | b`; both branches must conclude `goal`.
  prop cases(const prop& disjunction, const prop& goal,
             const std::function<prop(proof_context&)>& left,
             const std::function<prop(proof_context&)>& right);

  // --- quantifiers ----------------------------------------------------------
  /// Universal instantiation: from `forall v. P(v)`, concludes `P(t)`.
  prop uspec(const prop& universal, const term& t);
  /// Universal generalization: `body` receives a fresh constant `c` and must
  /// prove P(c); concludes `forall var. P(var)`.  Improper if `c` leaks into
  /// the conclusion.
  prop ugen(const std::string& var,
            const std::function<prop(proof_context&, const term&)>& body);
  /// Existential introduction: from P(t), concludes `exists v. P(v)` where
  /// `witnessed` is P with `t` generalized at the caller's direction.
  prop egen(const prop& existential, const term& witness);

  // --- equality -------------------------------------------------------------
  prop eq_reflexive(const term& t);          ///< concludes t = t
  prop eq_symmetric(const prop& eq);         ///< from a = b, concludes b = a
  prop eq_transitive(const prop& ab, const prop& bc);  ///< a = b, b = c |- a = c
  /// Congruence: from a1 = b1, ..., an = bn, concludes
  /// f(a1..an) = f(b1..bn).
  prop eq_congruence(const std::string& fn, const std::vector<prop>& eqs);
  /// Leibniz: from `a = b` and theorem P containing occurrences of `a`,
  /// concludes `replacement`, which must be P with some occurrences of a
  /// replaced by b (checked by re-substitution in both directions).
  prop eq_substitute(const prop& eq, const prop& p, const prop& replacement);

 private:
  explicit proof_context(const assumption_base& parent,
                         std::shared_ptr<std::size_t> steps,
                         std::shared_ptr<std::size_t> fresh)
      : ab_(parent), steps_(std::move(steps)), fresh_(std::move(fresh)) {}

  prop conclude(prop p);
  void require(const prop& p, const char* method) const;
  [[noreturn]] void fail(const std::string& msg) const;

  assumption_base ab_;
  std::shared_ptr<std::size_t> steps_ = std::make_shared<std::size_t>(0);
  std::shared_ptr<std::size_t> fresh_ = std::make_shared<std::size_t>(0);
};

/// A deduction is a first-class proof method.
using deduction = std::function<prop(proof_context&)>;

/// An operator mapping — Section 3.3: "we simulate type-parameterization
/// simply by parameterizing functions and methods by functions that carry
/// operator mappings."  Symbols not in the map denote themselves.
class signature {
 public:
  signature() = default;
  explicit signature(std::map<std::string, std::string> m)
      : map_(std::move(m)) {}

  [[nodiscard]] std::string operator()(const std::string& s) const {
    auto it = map_.find(s);
    return it == map_.end() ? s : it->second;
  }
  [[nodiscard]] const std::map<std::string, std::string>& mapping() const {
    return map_;
  }

 private:
  std::map<std::string, std::string> map_;
};

/// A generic proof method: builds its deduction through the signature, so
/// one proof text certifies every instantiation.
using generic_deduction =
    std::function<prop(proof_context&, const signature&)>;

/// A named theorem with a generic statement, the axioms it assumes, and its
/// generic proof.  `check` re-executes the proof for a concrete signature —
/// instantiating a proof exactly the way one instantiates a generic
/// algorithm.
struct theorem {
  std::string name;
  std::function<prop(const signature&)> statement;
  std::function<std::vector<prop>(const signature&)> axioms;
  generic_deduction prove;

  /// Seeds a fresh context with `axioms(sig)`, runs the proof, and verifies
  /// the produced theorem equals `statement(sig)`.  Returns the certified
  /// instance; throws proof_error otherwise.  `steps_out` receives the
  /// number of primitive inferences checked.
  prop check(const signature& sig = {},
             std::size_t* steps_out = nullptr) const;
};

}  // namespace cgp::proof
