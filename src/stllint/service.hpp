// STLlint as a long-lived service: lint many translation units, possibly
// from many threads, with a content-addressed summary cache.
//
// Editors and build daemons re-lint the same headers over and over; the
// analysis is pure in (source, options), so its result can be memoized by
// content hash.  The cache is the parallel layer's insert-only
// `concurrent_map` — the second shipped consumer beside the simplifier's
// instantiation memo: lookups contend only within one of 64 stripes, hits
// return a pointer to a never-moving cached summary, and a batch fan-out
// over any Executor shares one cache with no extra coordination.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "parallel/algorithms.hpp"
#include "parallel/concurrent_map.hpp"
#include "parallel/executor.hpp"
#include "parallel/thread_pool.hpp"
#include "stllint/stllint.hpp"
#include "telemetry/telemetry.hpp"

namespace cgp::stllint {

/// Memoizing lint front end.  Results are cached by (source, options)
/// content hash; `lint` is safe to call concurrently from any number of
/// threads (the cache is insert-only — racing linters of the same source
/// both analyze, one result wins, both callers see a valid summary).
class lint_service {
 public:
  lint_service() = default;
  explicit lint_service(const options& opt) : opt_(opt) {}

  /// Lints `source`, serving repeats from the summary cache.  The returned
  /// reference is stable for the service's lifetime (insert-only map).
  const lint_result& lint(std::string_view source) {
    const std::uint64_t key = cache_key(source);
    if (const lint_result* hit = cache_.find(key)) {
      hits_().add();
      return *hit;
    }
    misses_().add();
    lint_result fresh = lint_source(source, opt_);
    return cache_.try_emplace(key, std::move(fresh)).first->second;
  }

  /// Lints a batch over any Executor, sharing this service's cache.
  /// Returns pointers into the cache, in input order (stable forever).
  template <parallel::Executor E = parallel::thread_pool>
  std::vector<const lint_result*> lint_batch(
      const std::vector<std::string>& sources,
      E& exec = parallel::thread_pool::default_pool(),
      std::size_t grain = 4) {
    std::vector<const lint_result*> out(sources.size(), nullptr);
    parallel::parallel_for(
        sources.size(), [&](std::size_t i) { out[i] = &lint(sources[i]); },
        exec, grain);
    return out;
  }

  /// Distinct summaries currently cached.
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }

 private:
  // FNV-1a over the source text, seeded with the option bits: two services
  // with different options never share keys even if callers copy cache
  // contents around.  64-bit content hashing is the standard build-cache
  // tradeoff (collisions are ~2^-32 at a million entries).
  [[nodiscard]] std::uint64_t cache_key(std::string_view source) const {
    std::uint64_t h = 14695981039346656037ull;
    auto mix = [&h](unsigned char c) {
      h ^= c;
      h *= 1099511628211ull;
    };
    mix(static_cast<unsigned char>(opt_.max_loop_passes));
    mix(opt_.advisories ? 1 : 0);
    mix(static_cast<unsigned char>(opt_.max_provenance_steps));
    for (const char c : source) mix(static_cast<unsigned char>(c));
    return h;
  }

  static telemetry::counter& hits_() {
    static telemetry::counter& c = telemetry::registry::global().get_counter(
        "stllint.service.cache_hits");
    return c;
  }
  static telemetry::counter& misses_() {
    static telemetry::counter& c = telemetry::registry::global().get_counter(
        "stllint.service.cache_misses");
    return c;
  }

  options opt_{};
  parallel::concurrent_map<std::uint64_t, lint_result> cache_{256};
};

}  // namespace cgp::stllint
