// Library-supplied semantic specifications (Section 3.1).
//
// "Central to the design of STLlint is the notion of abstraction via concept
// and data-type specifications" — the analyzer never looks at container
// implementations; it interprets programs against these concept-level specs:
// which iterator concept a container's iterators model (looked up against
// the core concept registry's refinement lattice), and how each mutating
// operation invalidates outstanding iterators.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace cgp::stllint {

/// How a mutating container operation affects outstanding iterators.
enum class invalidation {
  none,         ///< no iterator is invalidated (e.g. list::push_back)
  argument,     ///< only the iterator passed to the call (e.g. list::erase)
  all,          ///< every iterator into the container (e.g. vector::erase,
                ///< vector::push_back — reallocation)
};

/// Concept-level specification of a container kind.
struct container_spec {
  std::string kind;              ///< "vector", "list", ...
  std::string iterator_concept;  ///< registry concept its iterators model
  invalidation on_insert = invalidation::all;
  invalidation on_erase = invalidation::all;
  invalidation on_push_back = invalidation::all;
  invalidation on_clear = invalidation::all;
  bool has_push_back = true;
  bool keeps_sorted = false;   ///< set/multiset: always sorted
  bool single_pass = false;    ///< input_stream: one traversal only
};

/// Returns the spec for a container kind; unknown kinds get a maximally
/// conservative spec.
[[nodiscard]] const container_spec& spec_for(const std::string& kind);

/// What a generic algorithm requires and guarantees — the machine-readable
/// core of an algorithm concept (Section 3.1's entry/exit handlers).
struct algorithm_spec {
  std::string name;
  std::size_t range_args = 2;        ///< leading (first, last) iterator args
  std::string requires_iterator;     ///< concept name in the registry
  bool requires_sorted = false;      ///< entry handler: precondition
  bool establishes_sorted = false;   ///< exit handler: postcondition
  bool linear_search = false;        ///< triggers the sorted-range advisory
  enum class result { none, iterator_into_range, boolean, value } returns =
      result::none;
};

/// Looks up a known STL-style algorithm; nullopt for unknown functions
/// (which the analyzer treats as opaque and pure).
[[nodiscard]] std::optional<algorithm_spec> algorithm_for(
    const std::string& name);

/// All registered algorithm specs (used by the taxonomy and docs).
[[nodiscard]] const std::vector<algorithm_spec>& all_algorithms();

}  // namespace cgp::stllint
