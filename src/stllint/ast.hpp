// AST and type representation for MiniCpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace cgp::stllint {

/// MiniCpp types.  Containers know their kind ("vector", "list", "deque",
/// "set", "multiset", "input_stream") and element type; iterator types know
/// which container kind they iterate.
struct mini_type {
  enum class kind {
    void_t,
    int_t,
    bool_t,
    double_t,
    string_t,
    user,       ///< opaque user type, e.g. student_info
    container,
    iterator,
  };

  kind k = kind::void_t;
  std::string user_name;             ///< for kind::user
  std::string container;             ///< container kind, for container/iterator
  std::shared_ptr<mini_type> element;  ///< element type, for container/iterator

  [[nodiscard]] bool is_container() const { return k == kind::container; }
  [[nodiscard]] bool is_iterator() const { return k == kind::iterator; }
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] static mini_type void_type() { return {}; }
  [[nodiscard]] static mini_type scalar(kind k) {
    mini_type t;
    t.k = k;
    return t;
  }
  [[nodiscard]] static mini_type user(std::string name) {
    mini_type t;
    t.k = kind::user;
    t.user_name = std::move(name);
    return t;
  }
  [[nodiscard]] static mini_type make_container(std::string c, mini_type elem) {
    mini_type t;
    t.k = kind::container;
    t.container = std::move(c);
    t.element = std::make_shared<mini_type>(std::move(elem));
    return t;
  }
  [[nodiscard]] static mini_type make_iterator(std::string c, mini_type elem) {
    mini_type t;
    t.k = kind::iterator;
    t.container = std::move(c);
    t.element = std::make_shared<mini_type>(std::move(elem));
    return t;
  }
};

/// Expression node.  `text` holds the operator, callee, variable name, or
/// literal spelling depending on `k`.
struct ast_expr {
  enum class kind {
    int_lit,
    double_lit,
    bool_lit,
    string_lit,
    var,
    unary,        ///< text in {"++", "--", "!", "-", "*"}; prefix
    postfix,      ///< text in {"++", "--"}
    binary,       ///< text in {"+","-","*","/","%","<","<=",">",">=","==","!=","&&","||"}
    assign,       ///< children = {target, value}; text in {"=", "+=", "-="}
    member_call,  ///< text = method; children = {object, args...}
    call,         ///< text = function; children = args
  };

  kind k = kind::int_lit;
  std::string text;
  std::vector<std::unique_ptr<ast_expr>> children;
  int line = 0;
  int column = 0;
};

using expr_ptr = std::unique_ptr<ast_expr>;

/// Statement node.
struct ast_stmt {
  enum class kind {
    decl,      ///< decl_type name [= e1];
    expr,      ///< e1;
    if_stmt,   ///< if (e1) s1 [else s2]
    while_stmt,  ///< while (e1) s1
    for_stmt,  ///< for (s1; e1; e2) s2   (s1 may be decl or expr stmt)
    return_stmt,  ///< return [e1];
    block,     ///< { body... }
    break_stmt,
    continue_stmt,
  };

  kind k = kind::block;
  mini_type decl_type;
  std::string name;  ///< declared variable name
  expr_ptr e1, e2;
  std::unique_ptr<ast_stmt> s1, s2;
  std::vector<std::unique_ptr<ast_stmt>> body;
  int line = 0;
  int column = 0;
};

using stmt_ptr = std::unique_ptr<ast_stmt>;

/// Function parameter; containers may be passed by reference (the analyzer
/// treats both the same — no container aliasing in MiniCpp).
struct ast_param {
  mini_type type;
  std::string name;
  bool by_ref = false;
};

struct ast_function {
  mini_type return_type;
  std::string name;
  std::vector<ast_param> params;
  stmt_ptr body;
  int line = 0;
};

struct ast_program {
  std::vector<ast_function> functions;
};

}  // namespace cgp::stllint
