// Public STLlint API: parse + analyze a MiniCpp source, returning
// concept-level diagnostics (Section 3.1).
#pragma once

#include <string_view>

#include "stllint/analyzer.hpp"
#include "stllint/ast.hpp"
#include "stllint/diagnostics.hpp"

namespace cgp::stllint {

struct lint_result {
  diagnostics diags;
  analyzer::stats stats;

  /// True when no error/warning was produced (advisories and notes are OK).
  [[nodiscard]] bool clean() const {
    for (const diagnostic& d : diags)
      if (d.sev == severity::error || d.sev == severity::warning) return false;
    return true;
  }

  /// All diagnostics with the given severity.
  [[nodiscard]] diagnostics with_severity(severity s) const {
    diagnostics out;
    for (const diagnostic& d : diags)
      if (d.sev == s) out.push_back(d);
    return out;
  }

  [[nodiscard]] std::string to_string() const {
    std::string out;
    for (const diagnostic& d : diags) out += d.to_string() + "\n";
    return out;
  }
};

/// Lints a MiniCpp translation unit.
[[nodiscard]] lint_result lint_source(std::string_view source,
                                      const options& opt = {});

}  // namespace cgp::stllint
