// Recursive-descent parser for MiniCpp.
#pragma once

#include <optional>

#include "stllint/ast.hpp"
#include "stllint/lexer.hpp"

namespace cgp::stllint {

/// Parses a MiniCpp translation unit (a sequence of function definitions).
/// Parse errors are appended to `diags`; the parser recovers at statement
/// boundaries so one bad line does not hide later diagnostics.
[[nodiscard]] ast_program parse(const std::vector<token>& tokens,
                                diagnostics& diags);

[[nodiscard]] std::string mini_type_to_string(const mini_type& t);

}  // namespace cgp::stllint
