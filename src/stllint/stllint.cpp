#include "stllint/stllint.hpp"

#include "stllint/lexer.hpp"
#include "stllint/parser.hpp"

namespace cgp::stllint {

lint_result lint_source(std::string_view source, const options& opt) {
  lint_result result;
  const std::vector<token> toks = tokenize(source, result.diags);
  const ast_program program = parse(toks, result.diags);
  analyzer a(opt);
  a.run(program, source_lines(source));
  for (const diagnostic& d : a.diags()) result.diags.push_back(d);
  result.stats = a.statistics();
  return result;
}

}  // namespace cgp::stllint
