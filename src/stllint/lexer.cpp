#include "stllint/lexer.hpp"

#include <array>
#include <cctype>
#include <string_view>

namespace cgp::stllint {
namespace {

bool is_keyword(std::string_view s) {
  static constexpr std::string_view kw[] = {
      "int",   "bool",  "double", "string",   "void",     "vector",
      "list",  "deque", "set",    "iterator", "if",       "else",
      "while", "for",   "return", "true",     "false",    "const",
      "break", "continue", "input_stream", "multiset"};
  for (std::string_view k : kw)
    if (k == s) return true;
  return false;
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<std::string> source_lines(std::string_view source) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : source) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

std::vector<token> tokenize(std::string_view src, diagnostics& diags) {
  std::vector<token> out;
  int line = 1, col = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  const auto advance = [&](std::size_t k) {
    for (std::size_t j = 0; j < k && i < n; ++j, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') advance(1);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      advance(2);
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) advance(1);
      if (i + 1 >= n)
        diags.push_back({severity::error, line, col,
                         "unterminated block comment", ""});
      advance(2);
      continue;
    }
    const int tline = line, tcol = col;
    // Identifiers and keywords.
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      std::string text(src.substr(i, j - i));
      advance(j - i);
      out.push_back({is_keyword(text) ? token_kind::keyword
                                      : token_kind::identifier,
                     std::move(text), tline, tcol});
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(src[j])) ||
                       src[j] == '.')) {
        if (src[j] == '.') is_float = true;
        ++j;
      }
      std::string text(src.substr(i, j - i));
      advance(j - i);
      out.push_back({is_float ? token_kind::floating : token_kind::integer,
                     std::move(text), tline, tcol});
      continue;
    }
    // String literals.
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '"') {
        if (src[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      if (j >= n) {
        diags.push_back({severity::error, tline, tcol,
                         "unterminated string literal", ""});
        advance(n - i);
        continue;
      }
      std::string text(src.substr(i, j - i + 1));
      advance(j - i + 1);
      out.push_back({token_kind::string_lit, std::move(text), tline, tcol});
      continue;
    }
    // Multi-character punctuation, longest first.
    static constexpr std::string_view two[] = {
        "::", "++", "--", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
        "->"};
    bool matched = false;
    for (std::string_view t : two) {
      if (src.substr(i, 2) == t) {
        out.push_back({token_kind::punct, std::string(t), tline, tcol});
        advance(2);
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static constexpr std::string_view one = "(){}[];,.<>=+-*/!&|:%";
    if (one.find(c) != std::string_view::npos) {
      out.push_back({token_kind::punct, std::string(1, c), tline, tcol});
      advance(1);
      continue;
    }
    diags.push_back({severity::error, tline, tcol,
                     std::string("unexpected character '") + c + "'", ""});
    advance(1);
  }
  out.push_back({token_kind::end_of_file, "<eof>", line, col});
  return out;
}

}  // namespace cgp::stllint
