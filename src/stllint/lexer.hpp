// Lexer for MiniCpp, the C++ subset STLlint analyzes.
//
// Substitution note (see DESIGN.md): the real STLlint consumed full C++
// through a commercial front end; the analysis itself, however, operates on
// concept-level semantics of containers/iterators/algorithms.  MiniCpp keeps
// exactly the surface needed for the paper's programs (Fig. 4, the sort+find
// advisory, multipass violations) so the interesting machinery — the
// symbolic executor in analyzer.cpp — is fully exercised.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "stllint/diagnostics.hpp"

namespace cgp::stllint {

enum class token_kind {
  identifier,
  keyword,      // int, bool, double, string, void, vector, list, deque, set,
                // iterator, if, else, while, for, return, true, false,
                // const, break, continue, input_stream
  integer,
  floating,
  string_lit,
  punct,        // ( ) { } [ ] ; , . :: & < > etc. and multi-char operators
  end_of_file,
};

struct token {
  token_kind kind = token_kind::end_of_file;
  std::string text;
  int line = 1;
  int column = 1;

  [[nodiscard]] bool is(token_kind k) const { return kind == k; }
  [[nodiscard]] bool is(token_kind k, std::string_view t) const {
    return kind == k && text == t;
  }
};

/// Tokenizes `source`.  Lexical problems are reported into `diags`; the
/// returned stream always ends with an end_of_file token.
[[nodiscard]] std::vector<token> tokenize(std::string_view source,
                                          diagnostics& diags);

/// Splits `source` into physical lines (for echoing in diagnostics).
[[nodiscard]] std::vector<std::string> source_lines(std::string_view source);

}  // namespace cgp::stllint
