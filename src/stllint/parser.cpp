#include "stllint/parser.hpp"

#include <cassert>

namespace cgp::stllint {

std::string mini_type::to_string() const {
  switch (k) {
    case kind::void_t:
      return "void";
    case kind::int_t:
      return "int";
    case kind::bool_t:
      return "bool";
    case kind::double_t:
      return "double";
    case kind::string_t:
      return "string";
    case kind::user:
      return user_name;
    case kind::container:
      return container + "<" + (element ? element->to_string() : "?") + ">";
    case kind::iterator:
      return container + "<" + (element ? element->to_string() : "?") +
             ">::iterator";
  }
  return "?";
}

std::string mini_type_to_string(const mini_type& t) { return t.to_string(); }

namespace {

bool is_container_keyword(const token& t) {
  return t.is(token_kind::keyword) &&
         (t.text == "vector" || t.text == "list" || t.text == "deque" ||
          t.text == "set" || t.text == "multiset" ||
          t.text == "input_stream");
}

bool is_scalar_type_keyword(const token& t) {
  return t.is(token_kind::keyword) &&
         (t.text == "int" || t.text == "bool" || t.text == "double" ||
          t.text == "string" || t.text == "void");
}

class parser {
 public:
  parser(const std::vector<token>& toks, diagnostics& diags)
      : toks_(toks), diags_(diags) {}

  ast_program parse_program() {
    ast_program prog;
    while (!peek().is(token_kind::end_of_file)) {
      const std::size_t before = pos_;
      if (auto fn = parse_function()) prog.functions.push_back(std::move(*fn));
      if (pos_ == before) advance();  // ensure progress on malformed input
    }
    return prog;
  }

 private:
  // --- token stream helpers -------------------------------------------------
  const token& peek(std::size_t k = 0) const {
    const std::size_t i = pos_ + k;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const token& advance() {
    const token& t = peek();
    if (pos_ + 1 < toks_.size()) ++pos_;
    return t;
  }
  bool accept(token_kind k, std::string_view text) {
    if (peek().is(k, text)) {
      advance();
      return true;
    }
    return false;
  }
  bool accept_punct(std::string_view text) {
    return accept(token_kind::punct, text);
  }
  void expect_punct(std::string_view text) {
    if (!accept_punct(text)) error("expected '" + std::string(text) + "'");
  }
  void error(const std::string& msg) {
    diags_.push_back({severity::error, peek().line, peek().column,
                      msg + " (got '" + peek().text + "')", ""});
  }
  void sync_to_statement_end() {
    int depth = 0;
    while (!peek().is(token_kind::end_of_file)) {
      const token& t = peek();
      if (t.is(token_kind::punct, "{")) ++depth;
      if (t.is(token_kind::punct, "}")) {
        if (depth == 0) return;
        --depth;
      }
      if (t.is(token_kind::punct, ";") && depth == 0) {
        advance();
        return;
      }
      advance();
    }
  }

  // --- types ------------------------------------------------------------------
  /// Returns true iff a type starts at position `pos_ + k` (lookahead only).
  bool looks_like_type(std::size_t k = 0) const {
    const token& t = peek(k);
    if (is_scalar_type_keyword(t) || is_container_keyword(t)) return true;
    // user-type declaration heuristic: identifier identifier
    return t.is(token_kind::identifier) &&
           peek(k + 1).is(token_kind::identifier);
  }

  std::optional<mini_type> parse_type() {
    const token& t = peek();
    if (is_scalar_type_keyword(t)) {
      advance();
      if (t.text == "int") return mini_type::scalar(mini_type::kind::int_t);
      if (t.text == "bool") return mini_type::scalar(mini_type::kind::bool_t);
      if (t.text == "double")
        return mini_type::scalar(mini_type::kind::double_t);
      if (t.text == "string")
        return mini_type::scalar(mini_type::kind::string_t);
      return mini_type::void_type();
    }
    if (is_container_keyword(t)) {
      const std::string cont = advance().text;
      expect_punct("<");
      auto elem = parse_type();
      if (!elem) return std::nullopt;
      // tolerate `>>` from nested templates by splitting: not needed in
      // MiniCpp (single-level templates only).
      expect_punct(">");
      if (accept_punct("::")) {
        if (!accept(token_kind::keyword, "iterator")) {
          error("expected 'iterator' after '::'");
          return std::nullopt;
        }
        return mini_type::make_iterator(cont, std::move(*elem));
      }
      return mini_type::make_container(cont, std::move(*elem));
    }
    if (t.is(token_kind::identifier)) {
      return mini_type::user(advance().text);
    }
    error("expected a type");
    return std::nullopt;
  }

  // --- expressions --------------------------------------------------------------
  expr_ptr make_expr(ast_expr::kind k, std::string text, int line, int col) {
    auto e = std::make_unique<ast_expr>();
    e->k = k;
    e->text = std::move(text);
    e->line = line;
    e->column = col;
    return e;
  }

  expr_ptr parse_expression() { return parse_assignment(); }

  expr_ptr parse_assignment() {
    expr_ptr lhs = parse_logical_or();
    if (lhs == nullptr) return nullptr;
    for (const char* op : {"=", "+=", "-="}) {
      if (peek().is(token_kind::punct, op)) {
        const token& t = advance();
        expr_ptr rhs = parse_assignment();
        if (rhs == nullptr) return nullptr;
        auto e = make_expr(ast_expr::kind::assign, op, t.line, t.column);
        e->children.push_back(std::move(lhs));
        e->children.push_back(std::move(rhs));
        return e;
      }
    }
    return lhs;
  }

  expr_ptr parse_binary_level(int level) {
    // levels: 0 ||, 1 &&, 2 ==/!=, 3 </<=/>/>=, 4 +/-, 5 */ /%.
    static const std::vector<std::vector<std::string>> ops = {
        {"||"}, {"&&"}, {"==", "!="}, {"<", "<=", ">", ">="},
        {"+", "-"}, {"*", "/", "%"}};
    if (level >= static_cast<int>(ops.size())) return parse_unary();
    expr_ptr lhs = parse_binary_level(level + 1);
    if (lhs == nullptr) return nullptr;
    for (;;) {
      bool matched = false;
      for (const std::string& op : ops[level]) {
        if (peek().is(token_kind::punct, op)) {
          const token& t = advance();
          expr_ptr rhs = parse_binary_level(level + 1);
          if (rhs == nullptr) return nullptr;
          auto e = make_expr(ast_expr::kind::binary, op, t.line, t.column);
          e->children.push_back(std::move(lhs));
          e->children.push_back(std::move(rhs));
          lhs = std::move(e);
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  expr_ptr parse_logical_or() { return parse_binary_level(0); }

  expr_ptr parse_unary() {
    const token& t = peek();
    for (const char* op : {"++", "--", "!", "-", "*"}) {
      if (t.is(token_kind::punct, op)) {
        advance();
        expr_ptr operand = parse_unary();
        if (operand == nullptr) return nullptr;
        auto e = make_expr(ast_expr::kind::unary, op, t.line, t.column);
        e->children.push_back(std::move(operand));
        return e;
      }
    }
    return parse_postfix();
  }

  expr_ptr parse_postfix() {
    expr_ptr e = parse_primary();
    if (e == nullptr) return nullptr;
    for (;;) {
      const token& t = peek();
      if (t.is(token_kind::punct, "++") || t.is(token_kind::punct, "--")) {
        advance();
        auto p = make_expr(ast_expr::kind::postfix, t.text, t.line, t.column);
        p->children.push_back(std::move(e));
        e = std::move(p);
        continue;
      }
      if (t.is(token_kind::punct, ".")) {
        advance();
        const token& name = peek();
        if (!name.is(token_kind::identifier) &&
            !name.is(token_kind::keyword)) {
          error("expected member name after '.'");
          return nullptr;
        }
        advance();
        auto call = make_expr(ast_expr::kind::member_call, name.text,
                              name.line, name.column);
        call->children.push_back(std::move(e));
        expect_punct("(");
        if (!peek().is(token_kind::punct, ")")) {
          do {
            expr_ptr arg = parse_expression();
            if (arg == nullptr) return nullptr;
            call->children.push_back(std::move(arg));
          } while (accept_punct(","));
        }
        expect_punct(")");
        e = std::move(call);
        continue;
      }
      return e;
    }
  }

  expr_ptr parse_primary() {
    const token& t = peek();
    if (t.is(token_kind::integer)) {
      advance();
      return make_expr(ast_expr::kind::int_lit, t.text, t.line, t.column);
    }
    if (t.is(token_kind::floating)) {
      advance();
      return make_expr(ast_expr::kind::double_lit, t.text, t.line, t.column);
    }
    if (t.is(token_kind::string_lit)) {
      advance();
      return make_expr(ast_expr::kind::string_lit, t.text, t.line, t.column);
    }
    if (t.is(token_kind::keyword, "true") ||
        t.is(token_kind::keyword, "false")) {
      advance();
      return make_expr(ast_expr::kind::bool_lit, t.text, t.line, t.column);
    }
    if (t.is(token_kind::punct, "(")) {
      advance();
      expr_ptr inner = parse_expression();
      expect_punct(")");
      return inner;
    }
    if (t.is(token_kind::identifier)) {
      advance();
      if (peek().is(token_kind::punct, "(")) {
        // Free function call.
        advance();
        auto call =
            make_expr(ast_expr::kind::call, t.text, t.line, t.column);
        if (!peek().is(token_kind::punct, ")")) {
          do {
            expr_ptr arg = parse_expression();
            if (arg == nullptr) return nullptr;
            call->children.push_back(std::move(arg));
          } while (accept_punct(","));
        }
        expect_punct(")");
        return call;
      }
      return make_expr(ast_expr::kind::var, t.text, t.line, t.column);
    }
    error("expected an expression");
    return nullptr;
  }

  // --- statements ------------------------------------------------------------
  stmt_ptr make_stmt(ast_stmt::kind k, int line, int col) {
    auto s = std::make_unique<ast_stmt>();
    s->k = k;
    s->line = line;
    s->column = col;
    return s;
  }

  stmt_ptr parse_statement() {
    const token& t = peek();
    if (t.is(token_kind::punct, "{")) return parse_block();
    if (t.is(token_kind::keyword, "if")) return parse_if();
    if (t.is(token_kind::keyword, "while")) return parse_while();
    if (t.is(token_kind::keyword, "for")) return parse_for();
    if (t.is(token_kind::keyword, "return")) {
      advance();
      auto s = make_stmt(ast_stmt::kind::return_stmt, t.line, t.column);
      if (!peek().is(token_kind::punct, ";")) s->e1 = parse_expression();
      expect_punct(";");
      return s;
    }
    if (t.is(token_kind::keyword, "break")) {
      advance();
      expect_punct(";");
      return make_stmt(ast_stmt::kind::break_stmt, t.line, t.column);
    }
    if (t.is(token_kind::keyword, "continue")) {
      advance();
      expect_punct(";");
      return make_stmt(ast_stmt::kind::continue_stmt, t.line, t.column);
    }
    if (looks_like_type()) return parse_declaration();
    // Expression statement.
    auto s = make_stmt(ast_stmt::kind::expr, t.line, t.column);
    s->e1 = parse_expression();
    if (s->e1 == nullptr) {
      sync_to_statement_end();
      return nullptr;
    }
    expect_punct(";");
    return s;
  }

  stmt_ptr parse_declaration() {
    const token& t = peek();
    auto type = parse_type();
    if (!type) {
      sync_to_statement_end();
      return nullptr;
    }
    const token& name = peek();
    if (!name.is(token_kind::identifier)) {
      error("expected variable name in declaration");
      sync_to_statement_end();
      return nullptr;
    }
    advance();
    auto s = make_stmt(ast_stmt::kind::decl, t.line, t.column);
    s->decl_type = std::move(*type);
    s->name = name.text;
    if (accept_punct("=")) {
      s->e1 = parse_expression();
      if (s->e1 == nullptr) {
        sync_to_statement_end();
        return nullptr;
      }
    }
    expect_punct(";");
    return s;
  }

  stmt_ptr parse_block() {
    const token& t = peek();
    expect_punct("{");
    auto s = make_stmt(ast_stmt::kind::block, t.line, t.column);
    while (!peek().is(token_kind::punct, "}") &&
           !peek().is(token_kind::end_of_file)) {
      const std::size_t before = pos_;
      if (stmt_ptr inner = parse_statement())
        s->body.push_back(std::move(inner));
      if (pos_ == before) advance();
    }
    expect_punct("}");
    return s;
  }

  stmt_ptr parse_if() {
    const token& t = advance();  // 'if'
    auto s = make_stmt(ast_stmt::kind::if_stmt, t.line, t.column);
    expect_punct("(");
    s->e1 = parse_expression();
    expect_punct(")");
    s->s1 = parse_statement();
    if (accept(token_kind::keyword, "else")) s->s2 = parse_statement();
    return s;
  }

  stmt_ptr parse_while() {
    const token& t = advance();  // 'while'
    auto s = make_stmt(ast_stmt::kind::while_stmt, t.line, t.column);
    expect_punct("(");
    s->e1 = parse_expression();
    expect_punct(")");
    s->s1 = parse_statement();
    return s;
  }

  stmt_ptr parse_for() {
    const token& t = advance();  // 'for'
    auto s = make_stmt(ast_stmt::kind::for_stmt, t.line, t.column);
    expect_punct("(");
    if (!accept_punct(";")) {
      if (looks_like_type()) {
        s->s1 = parse_declaration();  // consumes ';'
      } else {
        auto init = make_stmt(ast_stmt::kind::expr, peek().line,
                              peek().column);
        init->e1 = parse_expression();
        expect_punct(";");
        s->s1 = std::move(init);
      }
    }
    if (!peek().is(token_kind::punct, ";")) s->e1 = parse_expression();
    expect_punct(";");
    if (!peek().is(token_kind::punct, ")")) s->e2 = parse_expression();
    expect_punct(")");
    s->s2 = parse_statement();
    return s;
  }

  // --- functions ----------------------------------------------------------------
  std::optional<ast_function> parse_function() {
    auto ret = parse_type();
    if (!ret) {
      sync_to_statement_end();
      return std::nullopt;
    }
    const token& name = peek();
    if (!name.is(token_kind::identifier)) {
      error("expected function name");
      sync_to_statement_end();
      return std::nullopt;
    }
    advance();
    ast_function fn;
    fn.return_type = std::move(*ret);
    fn.name = name.text;
    fn.line = name.line;
    expect_punct("(");
    if (!peek().is(token_kind::punct, ")")) {
      do {
        accept(token_kind::keyword, "const");
        auto pt = parse_type();
        if (!pt) return std::nullopt;
        ast_param p;
        p.type = std::move(*pt);
        p.by_ref = accept_punct("&");
        const token& pname = peek();
        if (!pname.is(token_kind::identifier)) {
          error("expected parameter name");
          return std::nullopt;
        }
        advance();
        p.name = pname.text;
        fn.params.push_back(std::move(p));
      } while (accept_punct(","));
    }
    expect_punct(")");
    fn.body = parse_block();
    return fn;
  }

  const std::vector<token>& toks_;
  diagnostics& diags_;
  std::size_t pos_ = 0;
};

}  // namespace

ast_program parse(const std::vector<token>& tokens, diagnostics& diags) {
  parser p(tokens, diags);
  return p.parse_program();
}

}  // namespace cgp::stllint
