// Diagnostics for STLlint (Section 3.1): high-level, concept-level messages
// ("attempt to dereference a singular iterator"), not language-level ones.
#pragma once

#include <string>
#include <vector>

namespace cgp::stllint {

/// Severity ladder:
///  * error    — the program's meaning is broken (parse/type errors);
///  * warning  — concept-level misuse (invalidation, range violations,
///               multipass violations, unmet preconditions);
///  * advice   — "potential optimization" suggestions (Section 3.2);
///  * note     — supplementary context.
enum class severity { error, warning, advice, note };

[[nodiscard]] constexpr const char* to_string(severity s) {
  switch (s) {
    case severity::error:
      return "error";
    case severity::warning:
      return "Warning";
    case severity::advice:
      return "Warning: potential optimization";
    case severity::note:
      return "note";
  }
  return "?";
}

/// One diagnostic, anchored to a source position, with the offending source
/// line echoed underneath (as in the paper's sample output).
struct diagnostic {
  severity sev = severity::warning;
  int line = 0;
  int column = 0;
  std::string message;
  std::string source_line;  ///< echo of the offending line, if available

  [[nodiscard]] std::string to_string() const {
    std::string out = std::string(stllint::to_string(sev)) + ": " + message;
    if (!source_line.empty()) out += "\n  " + source_line;
    return out;
  }

  friend bool operator==(const diagnostic&, const diagnostic&) = default;
};

using diagnostics = std::vector<diagnostic>;

}  // namespace cgp::stllint
