// Diagnostics for STLlint (Section 3.1): high-level, concept-level messages
// ("attempt to dereference a singular iterator"), not language-level ones.
//
// Each diagnostic carries its PROVENANCE: the sequence of symbolic-
// execution steps (statement executed, abstract-state transition) the
// analyzer took on the path to the report.  The paper's pitch is that
// misuse should be explained at the concept level; the provenance trail
// extends that from "what went wrong" to "why the analyzer believes it" —
// e.g. the erase() that made an iterator singular, two statements before
// the dereference that trips the warning.
#pragma once

#include <string>
#include <vector>

namespace cgp::stllint {

/// Severity ladder:
///  * error    — the program's meaning is broken (parse/type errors);
///  * warning  — concept-level misuse (invalidation, range violations,
///               multipass violations, unmet preconditions);
///  * advice   — "potential optimization" suggestions (Section 3.2);
///  * note     — supplementary context.
enum class severity { error, warning, advice, note };

[[nodiscard]] constexpr const char* to_string(severity s) {
  switch (s) {
    case severity::error:
      return "error";
    case severity::warning:
      return "Warning";
    case severity::advice:
      return "Warning: potential optimization";
    case severity::note:
      return "note";
  }
  return "?";
}

/// One symbolic-execution step: what the analyzer did at `line` and how
/// the abstract state changed (empty `transition` = no tracked change).
struct provenance_step {
  int line = 0;
  std::string action;      ///< e.g. "declare 'iter' = students.begin()"
  std::string transition;  ///< e.g. "iter: valid at begin+0 of 'students'"

  [[nodiscard]] std::string to_string() const {
    std::string out = "line " + std::to_string(line) + ": " + action;
    if (!transition.empty()) out += "  [" + transition + "]";
    return out;
  }

  friend bool operator==(const provenance_step&, const provenance_step&) =
      default;
};

/// One diagnostic, anchored to a source position, with the offending source
/// line echoed underneath (as in the paper's sample output).
struct diagnostic {
  severity sev = severity::warning;
  int line = 0;
  int column = 0;
  std::string message;
  std::string source_line;  ///< echo of the offending line, if available
  /// Column within `source_line` (the echo is stripped of leading
  /// whitespace, so this differs from `column`); 0 when unknown.
  int caret_column = 0;
  /// Symbolic-execution path that led here, oldest step first (bounded by
  /// options::max_provenance_steps).
  std::vector<provenance_step> provenance;

  [[nodiscard]] std::string to_string() const {
    std::string out = std::string(stllint::to_string(sev)) + ": " + message;
    if (!source_line.empty()) out += "\n  " + source_line;
    return out;
  }

  friend bool operator==(const diagnostic&, const diagnostic&) = default;
};

/// Caret-style rendering: severity + message, the offending source line
/// with a `^` under the offending column, then the provenance trail.
///
///   Warning: attempt to dereference a singular iterator (...)
///     --> line 8, column 12
///      |  use(*iter);
///      |      ^
///     provenance:
///      1. line 4: declare 'iter' = students.begin()  [...]
///      ...
[[nodiscard]] inline std::string render_caret(const diagnostic& d) {
  std::string out = std::string(to_string(d.sev)) + ": " + d.message + "\n";
  out += "  --> line " + std::to_string(d.line) + ", column " +
         std::to_string(d.column) + "\n";
  if (!d.source_line.empty()) {
    out += "   |  " + d.source_line + "\n";
    if (d.caret_column >= 1 &&
        static_cast<std::size_t>(d.caret_column) <= d.source_line.size())
      out += "   |  " +
             std::string(static_cast<std::size_t>(d.caret_column - 1), ' ') +
             "^\n";
  }
  if (!d.provenance.empty()) {
    out += "  provenance:\n";
    std::size_t n = 0;
    for (const provenance_step& step : d.provenance)
      out += "   " + std::to_string(++n) + ". " + step.to_string() + "\n";
  }
  return out;
}

using diagnostics = std::vector<diagnostic>;

}  // namespace cgp::stllint
