#include "stllint/specs.hpp"

#include <map>

namespace cgp::stllint {

const container_spec& spec_for(const std::string& kind) {
  static const std::map<std::string, container_spec> specs = [] {
    std::map<std::string, container_spec> m;
    // vector: contiguous storage.  insert/erase shift elements; push_back
    // may reallocate.  The C++ standard invalidates at-and-after the point
    // of change (and everything on reallocation); like STLlint we use the
    // sound conservative approximation: all iterators die.
    m["vector"] = {.kind = "vector",
                   .iterator_concept = "RandomAccessIterator",
                   .on_insert = invalidation::all,
                   .on_erase = invalidation::all,
                   .on_push_back = invalidation::all,
                   .on_clear = invalidation::all};
    // deque: any middle insert/erase invalidates everything; push_back
    // invalidates iterators (not references) — again: all.
    m["deque"] = {.kind = "deque",
                  .iterator_concept = "RandomAccessIterator",
                  .on_insert = invalidation::all,
                  .on_erase = invalidation::all,
                  .on_push_back = invalidation::all,
                  .on_clear = invalidation::all};
    // list: node-based; only the erased iterator dies.
    m["list"] = {.kind = "list",
                 .iterator_concept = "BidirectionalIterator",
                 .on_insert = invalidation::none,
                 .on_erase = invalidation::argument,
                 .on_push_back = invalidation::none,
                 .on_clear = invalidation::all};
    // set / multiset: node-based and always sorted.
    m["set"] = {.kind = "set",
                .iterator_concept = "BidirectionalIterator",
                .on_insert = invalidation::none,
                .on_erase = invalidation::argument,
                .on_push_back = invalidation::none,
                .on_clear = invalidation::all,
                .has_push_back = false,
                .keeps_sorted = true};
    m["multiset"] = m["set"];
    m["multiset"].kind = "multiset";
    // input_stream: the semantic archetype of a single-pass sequence
    // (Section 3.1's most-restrictive InputIterator model).
    m["input_stream"] = {.kind = "input_stream",
                         .iterator_concept = "InputIterator",
                         .on_insert = invalidation::all,
                         .on_erase = invalidation::all,
                         .on_push_back = invalidation::all,
                         .on_clear = invalidation::all,
                         .has_push_back = false,
                         .single_pass = true};
    return m;
  }();
  static const container_spec conservative{.kind = "unknown",
                                           .iterator_concept = "InputIterator"};
  auto it = specs.find(kind);
  return it == specs.end() ? conservative : it->second;
}

const std::vector<algorithm_spec>& all_algorithms() {
  using res = algorithm_spec::result;
  static const std::vector<algorithm_spec> algos = {
      {.name = "find",
       .requires_iterator = "InputIterator",
       .linear_search = true,
       .returns = res::iterator_into_range},
      {.name = "find_if",
       .requires_iterator = "InputIterator",
       .linear_search = true,
       .returns = res::iterator_into_range},
      {.name = "count",
       .requires_iterator = "InputIterator",
       .returns = res::value},
      {.name = "accumulate",
       .requires_iterator = "InputIterator",
       .returns = res::value},
      {.name = "for_each",
       .requires_iterator = "InputIterator",
       .returns = res::none},
      {.name = "max_element",
       .requires_iterator = "ForwardIterator",
       .returns = res::iterator_into_range},
      {.name = "min_element",
       .requires_iterator = "ForwardIterator",
       .returns = res::iterator_into_range},
      {.name = "adjacent_find",
       .requires_iterator = "ForwardIterator",
       .returns = res::iterator_into_range},
      {.name = "unique",
       .requires_iterator = "ForwardIterator",
       .returns = res::iterator_into_range},
      {.name = "lower_bound",
       .requires_iterator = "ForwardIterator",
       .requires_sorted = true,
       .returns = res::iterator_into_range},
      {.name = "upper_bound",
       .requires_iterator = "ForwardIterator",
       .requires_sorted = true,
       .returns = res::iterator_into_range},
      {.name = "equal_range",
       .requires_iterator = "ForwardIterator",
       .requires_sorted = true,
       .returns = res::iterator_into_range},
      {.name = "binary_search",
       .requires_iterator = "ForwardIterator",
       .requires_sorted = true,
       .returns = res::boolean},
      {.name = "reverse",
       .requires_iterator = "BidirectionalIterator",
       .returns = res::none},
      {.name = "sort",
       .requires_iterator = "RandomAccessIterator",
       .establishes_sorted = true,
       .returns = res::none},
      {.name = "stable_sort",
       .requires_iterator = "RandomAccessIterator",
       .establishes_sorted = true,
       .returns = res::none},
      {.name = "nth_element",
       .requires_iterator = "RandomAccessIterator",
       .returns = res::none},
      {.name = "random_shuffle",
       .requires_iterator = "RandomAccessIterator",
       .returns = res::none},
      {.name = "merge",
       .requires_iterator = "InputIterator",
       .requires_sorted = true,
       .returns = res::iterator_into_range},
      {.name = "copy",
       .requires_iterator = "InputIterator",
       .returns = res::iterator_into_range},
  };
  return algos;
}

std::optional<algorithm_spec> algorithm_for(const std::string& name) {
  for (const algorithm_spec& a : all_algorithms())
    if (a.name == name) return a;
  return std::nullopt;
}

}  // namespace cgp::stllint
