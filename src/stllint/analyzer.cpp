#include "stllint/analyzer.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>

#include "telemetry/profile.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace cgp::stllint {
namespace {

using validity = iterator_state::validity;
using position = iterator_state::position;

const char* severity_metric_key(severity s) {
  switch (s) {
    case severity::error:
      return "error";
    case severity::warning:
      return "warning";
    case severity::advice:
      return "advice";
    case severity::note:
      return "note";
  }
  return "unknown";
}

/// Short human descriptions of abstract states for provenance trails.
std::string describe(const interval& iv) {
  if (iv.lo <= interval::neg_inf && iv.hi >= interval::pos_inf)
    return "unknown";
  if (iv.is_exact()) return std::to_string(iv.lo);
  std::string lo = iv.lo <= interval::neg_inf ? "-inf" : std::to_string(iv.lo);
  std::string hi = iv.hi >= interval::pos_inf ? "+inf" : std::to_string(iv.hi);
  return "[" + lo + ", " + hi + "]";
}

std::string describe(const iterator_state& it) {
  if (it.valid == iterator_state::validity::singular)
    return "singular" + (it.reason.empty() ? "" : " (" + it.reason + ")");
  if (it.valid == iterator_state::validity::maybe_singular)
    return "maybe-singular" +
           (it.reason.empty() ? "" : " (" + it.reason + ")");
  std::string out = "valid";
  switch (it.pos) {
    case iterator_state::position::from_begin:
      out += " at begin+" + std::to_string(it.offset);
      break;
    case iterator_state::position::from_end:
      out += it.offset == 0 ? " at end" : " at end-" + std::to_string(it.offset);
      break;
    case iterator_state::position::somewhere:
      out += " somewhere";
      break;
    case iterator_state::position::none:
      break;
  }
  if (!it.container.empty()) out += " in '" + it.container + "'";
  if (!it.unverified_from.empty())
    out += ", unverified result of '" + it.unverified_from + "'";
  return out;
}

std::string describe(const container_state& c) {
  std::string out = c.kind + ", size " + describe(c.size);
  switch (c.sorted) {
    case sorted3::yes:
      out += ", sorted";
      break;
    case sorted3::no:
      out += ", unsorted";
      break;
    case sorted3::unknown:
      break;
  }
  if (c.consumed) out += ", traversal consumed";
  return out;
}

validity join_validity(validity a, validity b) {
  if (a == b) return a;
  return validity::maybe_singular;
}

iterator_state join_iterators(const iterator_state& a,
                              const iterator_state& b) {
  if (a == b) return a;
  iterator_state out;
  out.valid = join_validity(a.valid, b.valid);
  out.reason = a.reason.empty() ? b.reason : a.reason;
  out.unverified_from =
      a.unverified_from.empty() ? b.unverified_from : a.unverified_from;
  if (a.container == b.container) {
    out.container = a.container;
    if (a.pos == b.pos && a.offset == b.offset) {
      out.pos = a.pos;
      out.offset = a.offset;
    } else {
      out.pos = position::somewhere;
    }
  } else {
    out.container.clear();
    out.pos = position::somewhere;
  }
  if (out.valid == validity::singular) out.pos = position::none;
  return out;
}

abstract_value join_values(const abstract_value& a, const abstract_value& b) {
  if (a == b) return a;
  if (a.k != b.k) return abstract_value::unknown_value();
  switch (a.k) {
    case abstract_value::kind::integer:
      return abstract_value::integer(a.num.join(b.num));
    case abstract_value::kind::boolean:
      return abstract_value::boolean(a.truth == b.truth ? a.truth
                                                        : std::nullopt);
    case abstract_value::kind::iterator:
      return abstract_value::iterator(join_iterators(a.iter, b.iter));
    default:
      return abstract_value::unknown_value();
  }
}

container_state join_containers(const container_state& a,
                                const container_state& b) {
  container_state out = a;
  out.size = a.size.join(b.size);
  out.sorted = join(a.sorted, b.sorted);
  out.consumed = a.consumed || b.consumed;
  return out;
}

}  // namespace

abstract_state join(const abstract_state& a, const abstract_state& b) {
  if (!a.reachable) return b;
  if (!b.reachable) return a;
  abstract_state out;
  out.reachable = true;
  for (const auto& [name, ca] : a.containers) {
    auto it = b.containers.find(name);
    out.containers[name] = it == b.containers.end()
                               ? ca
                               : join_containers(ca, it->second);
  }
  for (const auto& [name, cb] : b.containers)
    if (!out.containers.contains(name)) out.containers[name] = cb;
  for (const auto& [name, va] : a.values) {
    auto it = b.values.find(name);
    out.values[name] = it == b.values.end() ? va : join_values(va, it->second);
  }
  for (const auto& [name, vb] : b.values)
    if (!out.values.contains(name)) out.values[name] = vb;
  return out;
}

// ===========================================================================
// The executor
// ===========================================================================

class exec_impl {
 public:
  exec_impl(analyzer& a) : a_(a) {}

  void run_function(const ast_function& fn) {
    ++a_.stats_.functions;
    trail_.clear();
    note(fn.line, "enter function '" + fn.name + "'", "");
    abstract_state st;
    for (const ast_param& p : fn.params) bind_param(p, st);
    if (fn.body) exec(*fn.body, st);
  }

 private:
  // --- provenance trail -----------------------------------------------------
  /// Appends a symbolic-execution step to the bounded trail.  The trail is
  /// a linear log of the analyzer's most recent steps (branch copies of
  /// the abstract state share it), so a diagnostic's provenance reads as
  /// "the path the analyzer walked to get here".
  void note(int line, std::string action, std::string transition) {
    if (a_.opt_.max_provenance_steps <= 0) return;
    if (trail_.size() >=
        static_cast<std::size_t>(a_.opt_.max_provenance_steps))
      trail_.erase(trail_.begin());
    trail_.push_back({line, std::move(action), std::move(transition)});
  }

  // --- reporting ------------------------------------------------------------
  void report(severity sev, int line, int col, std::string msg) {
    const std::string key =
        std::to_string(line) + ":" + std::to_string(col) + ":" + msg;
    if (!a_.reported_.insert(key).second) return;
    std::string echo;
    int caret_col = 0;
    if (line >= 1 &&
        static_cast<std::size_t>(line) <= a_.source_lines_.size()) {
      echo = a_.source_lines_[static_cast<std::size_t>(line) - 1];
      const std::size_t first = echo.find_first_not_of(" \t");
      if (first != std::string::npos) {
        echo = echo.substr(first);
        caret_col = col - static_cast<int>(first);
        if (caret_col < 1) caret_col = 0;
      }
    }
    telemetry::registry::global()
        .get_counter(std::string("stllint.analyzer.diagnostics.") +
                     severity_metric_key(sev))
        .add();
    diagnostic d{sev, line, col, std::move(msg), std::move(echo),
                 caret_col, trail_};
    // Traced sessions also see the verdict (with its provenance) as an
    // instant event hanging off the analyzer's span.
    if (telemetry::trace::current_context().active()) {
      std::vector<std::pair<std::string, std::string>> args = {
          {"severity", severity_metric_key(sev)},
          {"line", std::to_string(line)},
          {"column", std::to_string(col)},
          {"message", d.message},
      };
      std::string path;
      for (const provenance_step& step : d.provenance) {
        if (!path.empty()) path += " ; ";
        path += step.to_string();
      }
      args.emplace_back("provenance", std::move(path));
      telemetry::trace::instant("stllint.diagnostic", "stllint",
                                std::move(args));
    }
    a_.diags_.push_back(std::move(d));
  }

  // --- state helpers ----------------------------------------------------------
  static container_state* container_of(abstract_state& st,
                                       const std::string& name) {
    auto it = st.containers.find(name);
    return it == st.containers.end() ? nullptr : &it->second;
  }

  void bind_param(const ast_param& p, abstract_state& st) {
    if (p.type.is_container()) {
      const container_spec& spec = spec_for(p.type.container);
      container_state c;
      c.kind = p.type.container;
      c.size = interval{0, interval::pos_inf};
      c.sorted = spec.keeps_sorted ? sorted3::yes : sorted3::unknown;
      st.containers[p.name] = c;
    } else if (p.type.is_iterator()) {
      st.values[p.name] =
          abstract_value::iterator(iterator_state::somewhere_in(""));
    } else if (p.type.k == mini_type::kind::int_t) {
      st.values[p.name] = abstract_value::integer(interval::unknown());
    } else if (p.type.k == mini_type::kind::bool_t) {
      st.values[p.name] = abstract_value::boolean(std::nullopt);
    } else {
      st.values[p.name] = abstract_value::unknown_value();
    }
  }

  void invalidate_all(abstract_state& st, const std::string& cont,
                      const std::string& why, int line = 0) {
    for (auto& [name, v] : st.values) {
      if (v.k == abstract_value::kind::iterator && v.iter.container == cont &&
          v.iter.valid != validity::singular) {
        v.iter.valid = validity::singular;
        v.iter.pos = position::none;
        v.iter.reason = why;
        note(line, "iterator '" + name + "' becomes singular", why);
      }
    }
  }

  void invalidate_matching(abstract_state& st, const std::string& cont,
                           const iterator_state& target,
                           const std::string& arg_var,
                           const std::string& why, int line = 0) {
    for (auto& [name, v] : st.values) {
      if (v.k != abstract_value::kind::iterator || v.iter.container != cont)
        continue;
      const bool is_arg_var = !arg_var.empty() && name == arg_var;
      const bool same_known_pos = target.pos != position::somewhere &&
                                  target.pos != position::none &&
                                  v.iter.pos == target.pos &&
                                  v.iter.offset == target.offset;
      if (is_arg_var || same_known_pos) {
        v.iter.valid = validity::singular;
        v.iter.pos = position::none;
        v.iter.reason = why;
        note(line, "iterator '" + name + "' becomes singular", why);
      }
    }
  }

  void apply_invalidation(abstract_state& st, const std::string& cont,
                          invalidation rule, const iterator_state& arg,
                          const std::string& arg_var, const std::string& why,
                          int line = 0) {
    switch (rule) {
      case invalidation::none:
        break;
      case invalidation::argument:
        invalidate_matching(st, cont, arg, arg_var, why, line);
        break;
      case invalidation::all:
        invalidate_all(st, cont, why, line);
        break;
    }
  }

  /// After reporting a singular-iterator misuse rooted at variable `var`,
  /// heal the variable so one root cause yields one report.
  void heal(abstract_state& st, const std::string& var) {
    if (var.empty()) return;
    auto it = st.values.find(var);
    if (it == st.values.end() ||
        it->second.k != abstract_value::kind::iterator)
      return;
    iterator_state& s = it->second.iter;
    s.valid = validity::valid;
    s.pos = position::somewhere;
    s.reason.clear();
  }

  static std::string var_name_of(const ast_expr& e) {
    return e.k == ast_expr::kind::var ? e.text : std::string{};
  }

  // --- iterator use checks -------------------------------------------------
  void check_deref(abstract_state& st, const iterator_state& it,
                   const std::string& var, int line, int col) {
    if (it.valid == validity::valid && !it.unverified_from.empty()) {
      report(severity::warning, line, col,
             "dereferencing the result of '" + it.unverified_from +
                 "' without comparing it against end() first — it may be "
                 "the not-found sentinel");
      if (!var.empty()) {
        auto vit = st.values.find(var);
        if (vit != st.values.end() &&
            vit->second.k == abstract_value::kind::iterator)
          vit->second.iter.unverified_from.clear();
      }
      return;
    }
    if (it.valid != validity::valid) {
      report(severity::warning, line, col,
             "attempt to dereference a singular iterator" +
                 (it.reason.empty() ? "" : " (" + it.reason + ")"));
      heal(st, var);
      return;
    }
    if (it.pos == position::from_end && it.offset == 0) {
      report(severity::warning, line, col,
             "attempt to dereference a past-the-end iterator");
      return;
    }
    if (it.pos == position::from_begin) {
      if (container_state* c = container_of(st, it.container);
          c != nullptr && it.offset >= c->size.hi) {
        report(severity::warning, line, col,
               "attempt to dereference a past-the-end iterator (position "
               "begin+" +
                   std::to_string(it.offset) + ", size at most " +
                   std::to_string(c->size.hi) + ")");
      }
    }
  }

  void check_advance(abstract_state& st, const iterator_state& it,
                     const std::string& var, bool forward, int line,
                     int col) {
    if (it.valid != validity::valid) {
      report(severity::warning, line, col,
             std::string("attempt to ") + (forward ? "advance" : "decrement") +
                 " a singular iterator" +
                 (it.reason.empty() ? "" : " (" + it.reason + ")"));
      heal(st, var);
      return;
    }
    if (!forward && it.pos == position::from_begin && it.offset == 0) {
      report(severity::warning, line, col,
             "attempt to decrement an iterator already at the beginning");
    }
    if (forward && it.pos == position::from_end && it.offset == 0) {
      report(severity::warning, line, col,
             "attempt to advance a past-the-end iterator");
    }
  }

  // --- expression evaluation -------------------------------------------------
  abstract_value eval(const ast_expr& e, abstract_state& st) {
    ++a_.stats_.expressions;
    switch (e.k) {
      case ast_expr::kind::int_lit: {
        long v = 0;
        std::from_chars(e.text.data(), e.text.data() + e.text.size(), v);
        return abstract_value::integer(interval::exact(v));
      }
      case ast_expr::kind::double_lit:
      case ast_expr::kind::string_lit:
        return abstract_value::unknown_value();
      case ast_expr::kind::bool_lit:
        return abstract_value::boolean(e.text == "true");
      case ast_expr::kind::var:
        return eval_var(e, st);
      case ast_expr::kind::unary:
        return eval_unary(e, st);
      case ast_expr::kind::postfix:
        return eval_incdec(e, *e.children[0], e.text == "++", st);
      case ast_expr::kind::binary:
        return eval_binary(e, st);
      case ast_expr::kind::assign:
        return eval_assign(e, st);
      case ast_expr::kind::member_call:
        return eval_member_call(e, st);
      case ast_expr::kind::call:
        return eval_call(e, st);
    }
    return abstract_value::unknown_value();
  }

  abstract_value eval_var(const ast_expr& e, abstract_state& st) {
    if (auto it = st.values.find(e.text); it != st.values.end())
      return it->second;
    if (st.containers.contains(e.text)) {
      abstract_value v;
      v.k = abstract_value::kind::container_ref;
      v.container = e.text;
      return v;
    }
    report(severity::error, e.line, e.column,
           "use of undeclared variable '" + e.text + "'");
    return abstract_value::unknown_value();
  }

  abstract_value eval_unary(const ast_expr& e, abstract_state& st) {
    const ast_expr& operand = *e.children[0];
    if (e.text == "*") {
      const abstract_value v = eval(operand, st);
      if (v.k == abstract_value::kind::iterator)
        check_deref(st, v.iter, var_name_of(operand), e.line, e.column);
      return abstract_value::unknown_value();
    }
    if (e.text == "++" || e.text == "--")
      return eval_incdec(e, operand, e.text == "++", st);
    const abstract_value v = eval(operand, st);
    if (e.text == "!") {
      if (v.k == abstract_value::kind::boolean && v.truth.has_value())
        return abstract_value::boolean(!*v.truth);
      return abstract_value::boolean(std::nullopt);
    }
    if (e.text == "-" && v.k == abstract_value::kind::integer) {
      return abstract_value::integer(
          {v.num.hi >= interval::pos_inf ? interval::neg_inf : -v.num.hi,
           v.num.lo <= interval::neg_inf ? interval::pos_inf : -v.num.lo});
    }
    return abstract_value::unknown_value();
  }

  abstract_value eval_incdec(const ast_expr& site, const ast_expr& operand,
                             bool forward, abstract_state& st) {
    const abstract_value before = eval(operand, st);
    const std::string var = var_name_of(operand);
    if (before.k == abstract_value::kind::iterator) {
      check_advance(st, before.iter, var, forward, site.line, site.column);
      iterator_state next = before.iter;
      if (next.valid == validity::valid) {
        if (next.pos == position::from_begin)
          next.offset += forward ? 1 : -1;
        else if (next.pos == position::from_end)
          next.offset += forward ? -1 : 1;
        // somewhere stays somewhere
      }
      if (!var.empty() && st.values.contains(var) &&
          st.values[var].k == abstract_value::kind::iterator &&
          st.values[var].iter.valid == validity::valid)
        st.values[var] = abstract_value::iterator(next);
      return abstract_value::iterator(next);
    }
    if (before.k == abstract_value::kind::integer) {
      const abstract_value after =
          abstract_value::integer(before.num.plus(forward ? 1 : -1));
      if (!var.empty() && st.values.contains(var)) st.values[var] = after;
      return after;
    }
    return abstract_value::unknown_value();
  }

  abstract_value eval_binary(const ast_expr& e, abstract_state& st) {
    const abstract_value a = eval(*e.children[0], st);
    const abstract_value b = eval(*e.children[1], st);
    const std::string& op = e.text;

    // Iterator comparison: flag cross-container comparisons.
    if (a.k == abstract_value::kind::iterator &&
        b.k == abstract_value::kind::iterator) {
      // Any comparison verifies a search result (the `it != end()` idiom).
      for (const auto& child : e.children) {
        const std::string vn = var_name_of(*child);
        if (vn.empty()) continue;
        auto vit = st.values.find(vn);
        if (vit != st.values.end() &&
            vit->second.k == abstract_value::kind::iterator)
          vit->second.iter.unverified_from.clear();
      }
      if (!a.iter.container.empty() && !b.iter.container.empty() &&
          a.iter.container != b.iter.container) {
        report(severity::warning, e.line, e.column,
               "comparison of iterators from different containers ('" +
                   a.iter.container + "' and '" + b.iter.container + "')");
        return abstract_value::boolean(std::nullopt);
      }
      if ((op == "==" || op == "!=") && a.iter.valid == validity::valid &&
          b.iter.valid == validity::valid &&
          a.iter.container == b.iter.container) {
        // Known positions let us decide the comparison.
        if (a.iter.pos == b.iter.pos && a.iter.pos != position::somewhere &&
            a.iter.pos != position::none) {
          const bool eq = a.iter.offset == b.iter.offset;
          return abstract_value::boolean(op == "==" ? eq : !eq);
        }
        if (container_state* c = container_of(st, a.iter.container)) {
          // begin+k vs end-j with exact size: decidable.
          const iterator_state* fb = nullptr;
          const iterator_state* fe = nullptr;
          if (a.iter.pos == position::from_begin &&
              b.iter.pos == position::from_end) {
            fb = &a.iter;
            fe = &b.iter;
          } else if (b.iter.pos == position::from_begin &&
                     a.iter.pos == position::from_end) {
            fb = &b.iter;
            fe = &a.iter;
          }
          if (fb != nullptr && c->size.is_exact()) {
            const bool eq = fb->offset == c->size.lo - fe->offset;
            return abstract_value::boolean(op == "==" ? eq : !eq);
          }
          // begin+k vs end: if k < minimum size, definitely not equal.
          if (fb != nullptr && fe->offset == 0 && fb->offset < c->size.lo) {
            return abstract_value::boolean(op == "==" ? false : true);
          }
        }
      }
      return abstract_value::boolean(std::nullopt);
    }

    // Integer arithmetic and comparisons over intervals.
    if (a.k == abstract_value::kind::integer &&
        b.k == abstract_value::kind::integer) {
      const interval& x = a.num;
      const interval& y = b.num;
      const auto sat_add = [](long p, long q) {
        if (p <= interval::neg_inf || q <= interval::neg_inf)
          return interval::neg_inf;
        if (p >= interval::pos_inf || q >= interval::pos_inf)
          return interval::pos_inf;
        return p + q;
      };
      if (op == "+")
        return abstract_value::integer({sat_add(x.lo, y.lo),
                                        sat_add(x.hi, y.hi)});
      if (op == "-")
        return abstract_value::integer({sat_add(x.lo, -y.hi),
                                        sat_add(x.hi, -y.lo)});
      if (op == "*" && x.is_exact() && y.is_exact())
        return abstract_value::integer(interval::exact(x.lo * y.lo));
      if (op == "<") {
        if (x.hi < y.lo) return abstract_value::boolean(true);
        if (x.lo >= y.hi) return abstract_value::boolean(false);
        return abstract_value::boolean(std::nullopt);
      }
      if (op == "<=") {
        if (x.hi <= y.lo) return abstract_value::boolean(true);
        if (x.lo > y.hi) return abstract_value::boolean(false);
        return abstract_value::boolean(std::nullopt);
      }
      if (op == ">") {
        if (x.lo > y.hi) return abstract_value::boolean(true);
        if (x.hi <= y.lo) return abstract_value::boolean(false);
        return abstract_value::boolean(std::nullopt);
      }
      if (op == ">=") {
        if (x.lo >= y.hi) return abstract_value::boolean(true);
        if (x.hi < y.lo) return abstract_value::boolean(false);
        return abstract_value::boolean(std::nullopt);
      }
      if (op == "==") {
        if (x.is_exact() && y.is_exact())
          return abstract_value::boolean(x.lo == y.lo);
        if (x.hi < y.lo || y.hi < x.lo) return abstract_value::boolean(false);
        return abstract_value::boolean(std::nullopt);
      }
      if (op == "!=") {
        if (x.is_exact() && y.is_exact())
          return abstract_value::boolean(x.lo != y.lo);
        if (x.hi < y.lo || y.hi < x.lo) return abstract_value::boolean(true);
        return abstract_value::boolean(std::nullopt);
      }
      return abstract_value::integer(interval::unknown());
    }

    if (op == "&&" || op == "||") {
      const auto ta = a.truth;
      const auto tb = b.truth;
      if (op == "&&") {
        if (ta == std::optional<bool>(false) ||
            tb == std::optional<bool>(false))
          return abstract_value::boolean(false);
        if (ta == std::optional<bool>(true) && tb == std::optional<bool>(true))
          return abstract_value::boolean(true);
      } else {
        if (ta == std::optional<bool>(true) || tb == std::optional<bool>(true))
          return abstract_value::boolean(true);
        if (ta == std::optional<bool>(false) &&
            tb == std::optional<bool>(false))
          return abstract_value::boolean(false);
      }
      return abstract_value::boolean(std::nullopt);
    }
    if (op == "==" || op == "!=" || op == "<" || op == "<=" || op == ">" ||
        op == ">=")
      return abstract_value::boolean(std::nullopt);
    return abstract_value::unknown_value();
  }

  abstract_value eval_assign(const ast_expr& e, abstract_state& st) {
    const ast_expr& target = *e.children[0];
    abstract_value rhs = eval(*e.children[1], st);

    if (target.k == ast_expr::kind::unary && target.text == "*") {
      // *it = value: a dereference-write; run the read checks.
      const abstract_value it = eval(*target.children[0], st);
      if (it.k == abstract_value::kind::iterator)
        check_deref(st, it.iter, var_name_of(*target.children[0]),
                    target.line, target.column);
      // Writing through an iterator can break sortedness.
      if (it.k == abstract_value::kind::iterator &&
          !it.iter.container.empty()) {
        if (container_state* c = container_of(st, it.iter.container))
          if (c->sorted == sorted3::yes) c->sorted = sorted3::unknown;
      }
      return rhs;
    }

    if (target.k != ast_expr::kind::var) {
      report(severity::error, target.line, target.column,
             "unsupported assignment target");
      return rhs;
    }
    const std::string& name = target.text;
    if (st.containers.contains(name)) {
      if (rhs.k == abstract_value::kind::container_ref) {
        if (container_state* src = container_of(st, rhs.container)) {
          container_state copy = *src;
          st.containers[name] = copy;
          invalidate_all(st, name, "container assignment", target.line);
        }
      }
      return rhs;
    }
    if (e.text == "+=" || e.text == "-=") {
      auto it = st.values.find(name);
      if (it != st.values.end() &&
          it->second.k == abstract_value::kind::integer &&
          rhs.k == abstract_value::kind::integer && rhs.num.is_exact()) {
        const long d = e.text == "+=" ? rhs.num.lo : -rhs.num.lo;
        it->second = abstract_value::integer(it->second.num.plus(d));
        return it->second;
      }
      st.values[name] = abstract_value::unknown_value();
      return st.values[name];
    }
    // Keep iterator-ness when assigning an unknown value to an iterator var.
    if (auto it = st.values.find(name);
        it != st.values.end() &&
        it->second.k == abstract_value::kind::iterator &&
        rhs.k == abstract_value::kind::unknown) {
      st.values[name] =
          abstract_value::iterator(iterator_state::somewhere_in(""));
      return st.values[name];
    }
    st.values[name] = rhs;
    return rhs;
  }

  abstract_value eval_member_call(const ast_expr& e, abstract_state& st) {
    const ast_expr& object = *e.children[0];
    const std::string method = e.text;
    if (object.k != ast_expr::kind::var ||
        !st.containers.contains(object.text)) {
      // Unknown receiver: evaluate everything for its side diagnostics.
      for (const auto& c : e.children) (void)eval(*c, st);
      return abstract_value::unknown_value();
    }
    const std::string& name = object.text;
    container_state& c = st.containers[name];
    const container_spec& spec = spec_for(c.kind);

    const auto eval_arg = [&](std::size_t i) {
      return eval(*e.children[i], st);
    };

    if (method == "begin" || method == "end") {
      if (spec.single_pass && method == "begin") {
        if (c.consumed) {
          report(severity::warning, e.line, e.column,
                 "second traversal of single-pass sequence '" + name +
                     "' (its iterators model only InputIterator; a second "
                     "pass requires ForwardIterator)");
        }
        c.consumed = true;
      }
      return abstract_value::iterator(method == "begin"
                                          ? iterator_state::at_begin(name)
                                          : iterator_state::at_end(name));
    }
    if (method == "size")
      return abstract_value::integer(c.size.clamp_lo(0));
    if (method == "empty") {
      if (c.size.hi == 0) return abstract_value::boolean(true);
      if (c.size.lo >= 1) return abstract_value::boolean(false);
      return abstract_value::boolean(std::nullopt);
    }
    if (method == "push_back") {
      if (e.children.size() > 1) (void)eval_arg(1);
      if (!spec.has_push_back)
        report(severity::error, e.line, e.column,
               "'" + c.kind + "' has no push_back");
      const bool was_empty = c.size.hi == 0;
      apply_invalidation(st, name, spec.on_push_back, {}, "",
                         "invalidated by " + name + ".push_back()", e.line);
      c.size = c.size.plus(1).clamp_lo(1);
      if (!spec.keeps_sorted) c.sorted = was_empty ? sorted3::yes : sorted3::no;
      note(e.line, name + ".push_back(...)", "'" + name + "': " + describe(c));
      return abstract_value::unknown_value();
    }
    if (method == "pop_back") {
      if (c.size.hi == 0)
        report(severity::warning, e.line, e.column,
               "pop_back on an empty container '" + name + "'");
      c.size = c.size.plus(-1).clamp_lo(0);
      // Iterators at/near the end die; be precise only about the known ones.
      for (auto& [vn, v] : st.values) {
        if (v.k == abstract_value::kind::iterator &&
            v.iter.container == name && v.iter.pos == position::from_end &&
            v.iter.valid == validity::valid) {
          v.iter.valid = validity::singular;
          v.iter.pos = position::none;
          v.iter.reason = "invalidated by " + name + ".pop_back()";
          note(e.line, "iterator '" + vn + "' becomes singular",
               v.iter.reason);
        }
      }
      note(e.line, name + ".pop_back()", "'" + name + "': " + describe(c));
      return abstract_value::unknown_value();
    }
    if (method == "clear") {
      apply_invalidation(st, name, spec.on_clear, {}, "",
                         "invalidated by " + name + ".clear()", e.line);
      c.size = interval::exact(0);
      c.sorted = sorted3::yes;
      note(e.line, name + ".clear()", "'" + name + "': " + describe(c));
      return abstract_value::unknown_value();
    }
    if (method == "insert") {
      // set.insert(x) or sequence.insert(it, x).
      if (e.children.size() >= 3) {
        const abstract_value pos = eval_arg(1);
        (void)eval_arg(2);
        if (pos.k == abstract_value::kind::iterator) {
          if (!pos.iter.container.empty() && pos.iter.container != name)
            report(severity::warning, e.line, e.column,
                   "iterator into '" + pos.iter.container +
                       "' passed to '" + name + "'.insert");
          if (pos.iter.valid != validity::valid) {
            report(severity::warning, e.line, e.column,
                   "insert position is a singular iterator" +
                       (pos.iter.reason.empty() ? ""
                                                : " (" + pos.iter.reason + ")"));
            heal(st, var_name_of(*e.children[1]));
          }
        }
        apply_invalidation(st, name, spec.on_insert, pos.iter,
                           var_name_of(*e.children[1]),
                           "invalidated by " + name + ".insert()", e.line);
      } else if (e.children.size() == 2) {
        (void)eval_arg(1);
        apply_invalidation(st, name, spec.on_insert, {}, "",
                           "invalidated by " + name + ".insert()", e.line);
      }
      const bool was_empty = c.size.hi == 0;
      c.size = c.size.plus(1).clamp_lo(1);
      if (!spec.keeps_sorted) c.sorted = was_empty ? sorted3::yes : sorted3::no;
      note(e.line, name + ".insert(...)", "'" + name + "': " + describe(c));
      return abstract_value::iterator(iterator_state::somewhere_in(name));
    }
    if (method == "erase") {
      abstract_value pos;
      std::string arg_var;
      if (e.children.size() >= 2) {
        pos = eval_arg(1);
        arg_var = var_name_of(*e.children[1]);
      }
      if (pos.k == abstract_value::kind::iterator) {
        if (!pos.iter.container.empty() && pos.iter.container != name)
          report(severity::warning, e.line, e.column,
                 "iterator into '" + pos.iter.container + "' passed to '" +
                     name + "'.erase");
        if (pos.iter.valid != validity::valid) {
          report(severity::warning, e.line, e.column,
                 "attempt to erase through a singular iterator" +
                     (pos.iter.reason.empty() ? ""
                                              : " (" + pos.iter.reason + ")"));
          heal(st, arg_var);
        } else if (pos.iter.pos == position::from_end &&
                   pos.iter.offset == 0) {
          report(severity::warning, e.line, e.column,
                 "attempt to erase the past-the-end iterator");
        }
      }
      if (c.size.hi == 0)
        report(severity::warning, e.line, e.column,
               "erase from an empty container '" + name + "'");
      iterator_state result = pos.k == abstract_value::kind::iterator &&
                                      pos.iter.valid == validity::valid
                                  ? pos.iter
                                  : iterator_state::somewhere_in(name);
      result.container = name;
      result.valid = validity::valid;
      apply_invalidation(st, name, spec.on_erase, pos.iter, arg_var,
                         "invalidated by " + name + ".erase()", e.line);
      c.size = c.size.plus(-1).clamp_lo(0);
      note(e.line, name + ".erase(...)", "'" + name + "': " + describe(c));
      return abstract_value::iterator(result);
    }
    if (method == "front" || method == "back") {
      if (c.size.hi == 0)
        report(severity::warning, e.line, e.column,
               method + "() on an empty container '" + name + "'");
      return abstract_value::unknown_value();
    }
    if (method == "sort") {  // list::sort
      c.sorted = sorted3::yes;
      return abstract_value::unknown_value();
    }
    if (method == "reserve") {
      // May reallocate: vector iterators die; size unchanged.
      if (e.children.size() > 1) (void)eval_arg(1);
      if (c.kind == "vector")
        invalidate_all(st, name, "invalidated by " + name + ".reserve()",
                       e.line);
      return abstract_value::unknown_value();
    }
    if (method == "resize") {
      abstract_value arg;
      if (e.children.size() > 1) arg = eval_arg(1);
      apply_invalidation(st, name, spec.on_push_back, {}, "",
                         "invalidated by " + name + ".resize()", e.line);
      c.size = arg.k == abstract_value::kind::integer
                   ? arg.num.clamp_lo(0)
                   : interval{0, interval::pos_inf};
      if (!spec.keeps_sorted) c.sorted = sorted3::unknown;
      return abstract_value::unknown_value();
    }
    if (method == "swap") {
      // Swap container states; iterators keep following their elements
      // (they now belong to the *other* variable), which our
      // name-keyed tracking cannot represent — conservatively retarget
      // nothing and invalidate nothing (swap preserves validity).
      if (e.children.size() > 1 &&
          e.children[1]->k == ast_expr::kind::var) {
        const std::string other = e.children[1]->text;
        if (container_state* oc = container_of(st, other)) {
          std::swap(c, *oc);
          // Retarget iterators: they stay valid but follow the data.
          for (auto& [vn, v] : st.values) {
            if (v.k != abstract_value::kind::iterator) continue;
            if (v.iter.container == name)
              v.iter.container = other;
            else if (v.iter.container == other)
              v.iter.container = name;
          }
        }
      }
      return abstract_value::unknown_value();
    }
    if (method == "find") {  // set::find
      for (std::size_t i = 1; i < e.children.size(); ++i) (void)eval_arg(i);
      return abstract_value::iterator(iterator_state::somewhere_in(name));
    }
    report(severity::note, e.line, e.column,
           "unmodeled member function '" + method + "' on '" + name +
               "'; assuming no effect");
    for (std::size_t i = 1; i < e.children.size(); ++i) (void)eval_arg(i);
    return abstract_value::unknown_value();
  }

  abstract_value eval_call(const ast_expr& e, abstract_state& st) {
    const auto spec = algorithm_for(e.text);
    if (!spec) {
      // Opaque user function: assumed pure; arguments still checked.
      for (const auto& c : e.children) (void)eval(*c, st);
      return abstract_value::unknown_value();
    }
    std::vector<abstract_value> args;
    args.reserve(e.children.size());
    for (const auto& c : e.children) args.push_back(eval(*c, st));
    if (args.size() < spec->range_args) {
      report(severity::error, e.line, e.column,
             "'" + spec->name + "' expects an iterator range");
      return abstract_value::unknown_value();
    }

    std::string cont;
    if (args[0].k == abstract_value::kind::iterator &&
        args[1].k == abstract_value::kind::iterator) {
      const iterator_state& first = args[0].iter;
      const iterator_state& last = args[1].iter;
      if (!first.container.empty() && !last.container.empty() &&
          first.container != last.container) {
        report(severity::warning, e.line, e.column,
               "iterator range [first, last) spans different containers ('" +
                   first.container + "' and '" + last.container + "')");
      }
      if (first.valid != validity::valid || last.valid != validity::valid) {
        report(severity::warning, e.line, e.column,
               "singular iterator used as a range boundary in '" +
                   spec->name + "'");
        heal(st, var_name_of(*e.children[0]));
        heal(st, var_name_of(*e.children[1]));
      }
      cont = first.container.empty() ? last.container : first.container;
    }

    if (container_state* c = container_of(st, cont)) {
      const container_spec& cspec = spec_for(c->kind);
      // Iterator-concept requirement: checked against the concept
      // registry's refinement lattice (the core library at work).
      if (!spec->requires_iterator.empty() &&
          !a_.registry_->refines(cspec.iterator_concept,
                                 spec->requires_iterator)) {
        std::string extra;
        if (spec->requires_iterator == "ForwardIterator" &&
            cspec.iterator_concept == "InputIterator")
          extra = " — the algorithm needs the multipass guarantee";
        report(severity::warning, e.line, e.column,
               "'" + spec->name + "' requires a model of " +
                   spec->requires_iterator + ", but " + c->kind +
                   "::iterator models only " + cspec.iterator_concept +
                   extra);
      }
      // Entry handler: sortedness precondition.
      if (spec->requires_sorted && c->sorted == sorted3::no) {
        report(severity::warning, e.line, e.column,
               "'" + spec->name +
                   "' requires the range [first, last) to be sorted, but it "
                   "is not");
      }
      // The Section 3.2 advisory, verbatim.
      if (a_.opt_.advisories && spec->linear_search &&
          c->sorted == sorted3::yes) {
        report(severity::advice, e.line, e.column,
               "the incoming sequence [first, last) is sorted, but will be "
               "searched linearly with this algorithm. Consider replacing "
               "this algorithm with one specialized for sorted sequences "
               "(e.g., lower_bound)");
      }
      // Exit handler: sortedness postcondition.
      if (spec->establishes_sorted) c->sorted = sorted3::yes;
    }

    switch (spec->returns) {
      case algorithm_spec::result::iterator_into_range: {
        iterator_state result = cont.empty()
                                    ? iterator_state::somewhere_in("")
                                    : iterator_state::somewhere_in(cont);
        // Search results may be the end() sentinel until compared.
        if (spec->name == "find" || spec->name == "find_if" ||
            spec->name == "lower_bound" || spec->name == "upper_bound" ||
            spec->name == "adjacent_find" || spec->name == "max_element" ||
            spec->name == "min_element")
          result.unverified_from = spec->name;
        return abstract_value::iterator(std::move(result));
      }
      case algorithm_spec::result::boolean:
        return abstract_value::boolean(std::nullopt);
      case algorithm_spec::result::value:
        return abstract_value::integer(interval::unknown());
      case algorithm_spec::result::none:
        return abstract_value::unknown_value();
    }
    return abstract_value::unknown_value();
  }

  // --- branch refinement ----------------------------------------------------
  void refine(abstract_state& st, const ast_expr& cond, bool branch) {
    if (cond.k == ast_expr::kind::unary && cond.text == "!") {
      refine(st, *cond.children[0], !branch);
      return;
    }
    if (cond.k == ast_expr::kind::binary &&
        (cond.text == "&&" || cond.text == "||")) {
      if ((cond.text == "&&" && branch) || (cond.text == "||" && !branch)) {
        refine(st, *cond.children[0], branch);
        refine(st, *cond.children[1], branch);
      }
      return;
    }
    if (cond.k == ast_expr::kind::member_call && cond.text == "empty" &&
        cond.children[0]->k == ast_expr::kind::var) {
      if (container_state* c = container_of(st, cond.children[0]->text)) {
        if (branch) {
          c->size = interval::exact(0);
          c->sorted = sorted3::yes;
        } else {
          c->size = interval{std::max(c->size.lo, 1L),
                             std::max(c->size.hi, 1L)};
        }
      }
      return;
    }
    if (cond.k != ast_expr::kind::binary) return;
    const std::string& op = cond.text;
    if (op != "==" && op != "!=" && op != "<" && op != "<=" && op != ">" &&
        op != ">=")
      return;

    // Iterator vs c.end(): the loop idiom.
    const auto end_call_container =
        [&](const ast_expr& x) -> std::optional<std::string> {
      if (x.k == ast_expr::kind::member_call && x.text == "end" &&
          x.children[0]->k == ast_expr::kind::var &&
          st.containers.contains(x.children[0]->text))
        return x.children[0]->text;
      return std::nullopt;
    };
    if (op == "==" || op == "!=") {
      const ast_expr* var_side = nullptr;
      std::optional<std::string> endc;
      if ((endc = end_call_container(*cond.children[1])))
        var_side = cond.children[0].get();
      else if ((endc = end_call_container(*cond.children[0])))
        var_side = cond.children[1].get();
      if (var_side != nullptr && var_side->k == ast_expr::kind::var) {
        auto it = st.values.find(var_side->text);
        if (it != st.values.end() &&
            it->second.k == abstract_value::kind::iterator &&
            it->second.iter.valid == validity::valid &&
            it->second.iter.container == *endc) {
          const bool equals_end = (op == "==") == branch;
          if (equals_end) {
            it->second.iter.pos = position::from_end;
            it->second.iter.offset = 0;
          } else if (it->second.iter.pos == position::from_end &&
                     it->second.iter.offset == 0) {
            st.reachable = false;  // it != end contradicts it == end
          }
        }
        return;
      }
    }

    // Integer var vs literal refinement.
    const auto as_lit = [](const ast_expr& x) -> std::optional<long> {
      if (x.k != ast_expr::kind::int_lit) return std::nullopt;
      long v = 0;
      std::from_chars(x.text.data(), x.text.data() + x.text.size(), v);
      return v;
    };
    const ast_expr* var_side = nullptr;
    std::optional<long> lit;
    bool var_on_left = true;
    if (cond.children[0]->k == ast_expr::kind::var &&
        (lit = as_lit(*cond.children[1]))) {
      var_side = cond.children[0].get();
    } else if (cond.children[1]->k == ast_expr::kind::var &&
               (lit = as_lit(*cond.children[0]))) {
      var_side = cond.children[1].get();
      var_on_left = false;
    }
    if (var_side == nullptr) return;
    auto it = st.values.find(var_side->text);
    if (it == st.values.end() ||
        it->second.k != abstract_value::kind::integer)
      return;
    interval& iv = it->second.num;
    // Normalize to var OP lit.
    std::string nop = op;
    if (!var_on_left) {
      if (op == "<") nop = ">";
      else if (op == "<=") nop = ">=";
      else if (op == ">") nop = "<";
      else if (op == ">=") nop = "<=";
    }
    if (!branch) {
      if (nop == "<") nop = ">=";
      else if (nop == "<=") nop = ">";
      else if (nop == ">") nop = "<=";
      else if (nop == ">=") nop = "<";
      else if (nop == "==") nop = "!=";
      else if (nop == "!=") nop = "==";
    }
    const long v = *lit;
    if (nop == "<") iv.hi = std::min(iv.hi, v - 1);
    else if (nop == "<=") iv.hi = std::min(iv.hi, v);
    else if (nop == ">") iv.lo = std::max(iv.lo, v + 1);
    else if (nop == ">=") iv.lo = std::max(iv.lo, v);
    else if (nop == "==") iv = interval::exact(v);
    if (iv.lo > iv.hi) st.reachable = false;
  }

  // --- statements ------------------------------------------------------------
  void exec(const ast_stmt& s, abstract_state& st) {
    if (!st.reachable) return;
    ++a_.stats_.statements;
    switch (s.k) {
      case ast_stmt::kind::block:
        for (const auto& inner : s.body) exec(*inner, st);
        return;
      case ast_stmt::kind::decl:
        exec_decl(s, st);
        return;
      case ast_stmt::kind::expr:
        if (s.e1) (void)eval(*s.e1, st);
        return;
      case ast_stmt::kind::if_stmt: {
        const abstract_value cond = eval(*s.e1, st);
        abstract_state then_state = st;
        refine(then_state, *s.e1, true);
        if (cond.truth == std::optional<bool>(false))
          then_state.reachable = false;
        if (s.s1) exec(*s.s1, then_state);
        abstract_state else_state = st;
        refine(else_state, *s.e1, false);
        if (cond.truth == std::optional<bool>(true))
          else_state.reachable = false;
        if (s.s2) exec(*s.s2, else_state);
        st = join(then_state, else_state);
        return;
      }
      case ast_stmt::kind::while_stmt:
        exec_loop(s.e1.get(), s.s1.get(), nullptr, st);
        return;
      case ast_stmt::kind::for_stmt: {
        abstract_state inner = st;
        if (s.s1) exec(*s.s1, inner);
        exec_loop(s.e1.get(), s.s2.get(), s.e2.get(), inner);
        st = inner;
        return;
      }
      case ast_stmt::kind::return_stmt:
        if (s.e1) (void)eval(*s.e1, st);
        st.reachable = false;
        return;
      case ast_stmt::kind::break_stmt:
        if (loop_breaks_ != nullptr) loop_breaks_->push_back(st);
        st.reachable = false;
        return;
      case ast_stmt::kind::continue_stmt:
        st.reachable = false;  // sound for diagnostics; loop join is bounded
        return;
    }
  }

  void exec_decl(const ast_stmt& s, abstract_state& st) {
    const mini_type& t = s.decl_type;
    if (t.is_container()) {
      const container_spec& spec = spec_for(t.container);
      container_state c;
      c.kind = t.container;
      c.size = interval::exact(0);
      c.sorted = sorted3::yes;
      (void)spec;
      if (s.e1) {
        const abstract_value init = eval(*s.e1, st);
        if (init.k == abstract_value::kind::container_ref) {
          if (container_state* src = container_of(st, init.container))
            c = *src;
          c.kind = t.container;
        }
      }
      st.containers[s.name] = c;
      st.values.erase(s.name);
      note(s.line, "declare container '" + s.name + "'",
           "'" + s.name + "': " + describe(c));
      return;
    }
    abstract_value v;
    if (s.e1) {
      v = eval(*s.e1, st);
      if (t.is_iterator() && v.k != abstract_value::kind::iterator)
        v = abstract_value::iterator(iterator_state::somewhere_in(""));
    } else if (t.is_iterator()) {
      v = abstract_value::iterator(
          iterator_state::singular_state("uninitialized"));
    } else if (t.k == mini_type::kind::int_t) {
      v = abstract_value::integer(interval::unknown());
    } else if (t.k == mini_type::kind::bool_t) {
      v = abstract_value::boolean(std::nullopt);
    }
    if (v.k == abstract_value::kind::iterator)
      note(s.line, "declare iterator '" + s.name + "'",
           "'" + s.name + "': " + describe(v.iter));
    else if (v.k == abstract_value::kind::integer)
      note(s.line, "declare '" + s.name + "'",
           "'" + s.name + "' = " + describe(v.num));
    st.values[s.name] = v;
    st.containers.erase(s.name);
  }

  void exec_loop(const ast_expr* cond, const ast_stmt* body,
                 const ast_expr* step, abstract_state& st) {
    abstract_state cur = st;
    std::vector<abstract_state> breaks;
    std::vector<abstract_state>* saved = loop_breaks_;
    loop_breaks_ = &breaks;

    abstract_state exit;
    exit.reachable = false;
    int passes_used = 0;
    const int loop_line = cond != nullptr ? cond->line : 0;
    for (int pass = 0; pass < a_.opt_.max_loop_passes; ++pass) {
      static const auto kPassFrame =
          telemetry::profile::intern("stllint.analyzer.pass");
      telemetry::profile::probe pass_probe(kPassFrame);
      ++a_.stats_.loop_passes;
      ++passes_used;
      note(loop_line, "loop analysis pass " + std::to_string(pass + 1), "");
      std::optional<bool> truth;
      if (cond != nullptr) {
        const abstract_value cv = eval(*cond, cur);
        truth = cv.truth;
      }
      // Path that leaves the loop now.
      abstract_state exiting = cur;
      if (cond != nullptr) refine(exiting, *cond, false);
      if (truth == std::optional<bool>(true)) exiting.reachable = false;
      exit = join(exit, exiting);
      // Path that runs the body.
      abstract_state iter = cur;
      if (cond != nullptr) refine(iter, *cond, true);
      if (truth == std::optional<bool>(false)) iter.reachable = false;
      if (!iter.reachable) break;
      if (body != nullptr) exec(*body, iter);
      if (step != nullptr && iter.reachable) (void)eval(*step, iter);
      const abstract_state next = join(cur, iter);
      if (next == cur) {
        // Fixpoint: the exit state joined above covers all later behavior.
        break;
      }
      cur = next;
    }
    loop_breaks_ = saved;
    telemetry::registry::global()
        .get_histogram("stllint.analyzer.loop_fixpoint_passes")
        .record(static_cast<std::uint64_t>(passes_used));
    for (const abstract_state& b : breaks) exit = join(exit, b);
    if (!exit.reachable) exit = cur;  // e.g. while(true) without breaks
    st = exit;
  }

  analyzer& a_;
  std::vector<abstract_state>* loop_breaks_ = nullptr;
  /// Bounded log of recent symbolic-execution steps; copied into each
  /// diagnostic as its provenance (see diagnostics.hpp).
  std::vector<provenance_step> trail_;
};

void analyzer::run(const ast_program& program,
                   const std::vector<std::string>& source) {
  telemetry::trace::child_span tspan("stllint.analyzer.run", "stllint");
  static const auto kRunFrame =
      telemetry::profile::intern("stllint.analyzer.run");
  telemetry::profile::probe run_probe(kRunFrame);
  source_lines_ = source;
  const stats before = stats_;
  exec_impl impl(*this);
  for (const ast_function& fn : program.functions) impl.run_function(fn);
  auto& reg = telemetry::registry::global();
  reg.get_counter("stllint.analyzer.runs").add();
  reg.get_counter("stllint.analyzer.functions")
      .add(stats_.functions - before.functions);
  reg.get_counter("stllint.analyzer.statements")
      .add(stats_.statements - before.statements);
  reg.get_counter("stllint.analyzer.expressions")
      .add(stats_.expressions - before.expressions);
  reg.get_counter("stllint.analyzer.loop_passes")
      .add(stats_.loop_passes - before.loop_passes);
  // Level metric for the live sampler: diagnostics found by the most
  // recent run, so a service loop's per-input severity is visible as a
  // series rather than only a cumulative count.
  reg.get_gauge("stllint.analyzer.last_run_diagnostics")
      .set(static_cast<std::int64_t>(diags_.size()));
}

}  // namespace cgp::stllint
