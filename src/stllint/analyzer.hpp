// The STLlint symbolic executor (Section 3.1).
//
// The analyzer abstractly interprets MiniCpp functions against the
// concept-level container/iterator specifications in specs.hpp: containers
// are symbolic (kind, size interval, sortedness), iterators are symbolic
// positions with a validity lattice (valid < maybe-singular < singular),
// and mutating operations apply the specs' invalidation rules to every
// outstanding iterator.  Branches are joined; loops are analyzed to a
// bounded fixpoint.  Diagnostics are concept-level: singular-iterator
// dereference, range violations, multipass violations, unmet sortedness
// preconditions, and the "consider lower_bound" optimization advisory.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>

#include "core/registry.hpp"
#include "stllint/ast.hpp"
#include "stllint/diagnostics.hpp"
#include "stllint/specs.hpp"

namespace cgp::stllint {

/// Closed integer interval with +/- infinity sentinels.
struct interval {
  static constexpr long neg_inf = -(1L << 60);
  static constexpr long pos_inf = (1L << 60);

  long lo = neg_inf;
  long hi = pos_inf;

  [[nodiscard]] static interval exact(long v) { return {v, v}; }
  [[nodiscard]] static interval at_least(long v) { return {v, pos_inf}; }
  [[nodiscard]] static interval unknown() { return {}; }
  [[nodiscard]] bool is_exact() const { return lo == hi; }

  [[nodiscard]] interval join(const interval& o) const {
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
  }
  [[nodiscard]] interval plus(long v) const {
    return {lo <= neg_inf ? neg_inf : lo + v, hi >= pos_inf ? pos_inf : hi + v};
  }
  [[nodiscard]] interval clamp_lo(long v) const {
    return {std::max(lo, v), std::max(hi, v)};
  }
  friend bool operator==(const interval&, const interval&) = default;
};

/// Three-valued sortedness.
enum class sorted3 { yes, no, unknown };
[[nodiscard]] constexpr sorted3 join(sorted3 a, sorted3 b) {
  return a == b ? a : sorted3::unknown;
}

/// Abstract container.
struct container_state {
  std::string kind;  ///< "vector", "list", ...
  interval size = interval::exact(0);
  sorted3 sorted = sorted3::yes;  ///< empty containers are sorted
  bool consumed = false;          ///< input_stream: traversal already taken

  friend bool operator==(const container_state&, const container_state&) =
      default;
};

/// Abstract iterator.
struct iterator_state {
  enum class validity { valid, maybe_singular, singular };
  enum class position { from_begin, from_end, somewhere, none };

  validity valid = validity::singular;
  position pos = position::none;
  long offset = 0;          ///< begin+offset or end-offset when pos is known
  std::string container;    ///< owning container variable; "" if unknown
  std::string reason;       ///< why singular ("uninitialized", "erase", ...)
  /// Result of a search algorithm (find/lower_bound/...) that has not yet
  /// been compared against end(): dereferencing it may hit the not-found
  /// sentinel.  Cleared by any iterator comparison.
  std::string unverified_from;  ///< algorithm name, or "" when verified

  [[nodiscard]] static iterator_state singular_state(std::string why) {
    iterator_state s;
    s.reason = std::move(why);
    return s;
  }
  [[nodiscard]] static iterator_state at_begin(std::string cont, long off = 0) {
    return {validity::valid, position::from_begin, off, std::move(cont), ""};
  }
  [[nodiscard]] static iterator_state at_end(std::string cont, long off = 0) {
    return {validity::valid, position::from_end, off, std::move(cont), ""};
  }
  [[nodiscard]] static iterator_state somewhere_in(std::string cont) {
    return {validity::valid, position::somewhere, 0, std::move(cont), ""};
  }

  friend bool operator==(const iterator_state&, const iterator_state&) =
      default;
};

/// Abstract value of an expression / variable.
struct abstract_value {
  enum class kind { unknown, integer, boolean, iterator, container_ref };

  kind k = kind::unknown;
  interval num;                  ///< kind::integer
  std::optional<bool> truth;     ///< kind::boolean; nullopt = unknown
  iterator_state iter;           ///< kind::iterator
  std::string container;         ///< kind::container_ref

  [[nodiscard]] static abstract_value unknown_value() { return {}; }
  [[nodiscard]] static abstract_value integer(interval i) {
    abstract_value v;
    v.k = kind::integer;
    v.num = i;
    return v;
  }
  [[nodiscard]] static abstract_value boolean(std::optional<bool> b) {
    abstract_value v;
    v.k = kind::boolean;
    v.truth = b;
    return v;
  }
  [[nodiscard]] static abstract_value iterator(iterator_state s) {
    abstract_value v;
    v.k = kind::iterator;
    v.iter = std::move(s);
    return v;
  }

  friend bool operator==(const abstract_value&, const abstract_value&) =
      default;
};

/// Full abstract program state at a program point.
struct abstract_state {
  std::map<std::string, container_state> containers;
  std::map<std::string, abstract_value> values;
  bool reachable = true;

  friend bool operator==(const abstract_state&, const abstract_state&) =
      default;
};

/// Join (least upper bound) of two states at a control-flow merge.
[[nodiscard]] abstract_state join(const abstract_state& a,
                                  const abstract_state& b);

/// Analyzer options.
struct options {
  int max_loop_passes = 3;   ///< bounded fixpoint iterations per loop
  bool advisories = true;    ///< emit optimization advice (Section 3.2)
  /// Most recent symbolic-execution steps attached to each diagnostic as
  /// its provenance trail (0 disables provenance collection).
  int max_provenance_steps = 24;
};

/// The analyzer itself.
class analyzer {
 public:
  struct stats {
    std::size_t functions = 0;
    std::size_t statements = 0;
    std::size_t expressions = 0;
    std::size_t loop_passes = 0;
  };

  explicit analyzer(options opt = {},
                    const core::concept_registry& reg =
                        core::concept_registry::global())
      : opt_(opt), registry_(&reg) {}

  /// Analyzes every function in the program; diagnostics accumulate.
  void run(const ast_program& program,
           const std::vector<std::string>& source = {});

  [[nodiscard]] const diagnostics& diags() const noexcept { return diags_; }
  [[nodiscard]] const stats& statistics() const noexcept { return stats_; }

 private:
  friend class exec_impl;
  options opt_;
  const core::concept_registry* registry_;
  diagnostics diags_;
  stats stats_;
  std::set<std::string> reported_;  ///< dedup key: "line:col:message"
  std::vector<std::string> source_lines_;
};

}  // namespace cgp::stllint
