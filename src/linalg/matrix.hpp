// Dense row-major matrices and the CLACRM-style mixed-precision kernels
// (Section 2.4 / Fig. 3).
#pragma once

#include <complex>
#include <concepts>
#include <stdexcept>
#include <vector>

namespace cgp::linalg {

template <class T>
class matrix {
 public:
  matrix() = default;
  matrix(std::size_t rows, std::size_t cols, T init = {})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }
  [[nodiscard]] T* data() noexcept { return data_.data(); }

  friend bool operator==(const matrix&, const matrix&) = default;

  [[nodiscard]] static matrix identity(std::size_t n) {
    matrix m(n, n, T{});
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

namespace detail {
inline void require_multiplicable(std::size_t a_cols, std::size_t b_rows) {
  if (a_cols != b_rows)
    throw std::invalid_argument("gemm: inner dimensions differ");
}
}  // namespace detail

/// Generic GEMM: C = A * B for any semiring-ish element type.
template <class T>
[[nodiscard]] matrix<T> gemm(const matrix<T>& a, const matrix<T>& b) {
  detail::require_multiplicable(a.cols(), b.rows());
  matrix<T> c(a.rows(), b.cols(), T{});
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const T aik = a(i, k);
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  return c;
}

/// CLACRM analogue, mixed path: complex matrix times REAL matrix without
/// promotion — each inner product multiplies a complex by a real scalar
/// (2 real multiply-adds) instead of a full complex multiply (4 multiplies
/// + 2 adds).  This is the efficiency the paper says an
/// associated-scalar-type design would forfeit.
template <std::floating_point F>
[[nodiscard]] matrix<std::complex<F>> clacrm_mixed(
    const matrix<std::complex<F>>& a, const matrix<F>& b) {
  detail::require_multiplicable(a.cols(), b.rows());
  matrix<std::complex<F>> c(a.rows(), b.cols(), std::complex<F>{});
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const std::complex<F> aik = a(i, k);
      const F re = aik.real();
      const F im = aik.imag();
      for (std::size_t j = 0; j < b.cols(); ++j) {
        const F s = b(k, j);
        auto& cij = c(i, j);
        cij = std::complex<F>(cij.real() + re * s, cij.imag() + im * s);
      }
    }
  return c;
}

/// The promoted path an associated-type design forces: convert B to complex
/// and run the general complex GEMM.
template <std::floating_point F>
[[nodiscard]] matrix<std::complex<F>> clacrm_promoted(
    const matrix<std::complex<F>>& a, const matrix<F>& b) {
  matrix<std::complex<F>> bc(b.rows(), b.cols());
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j)
      bc(i, j) = std::complex<F>(b(i, j), F{});
  return gemm(a, bc);
}

/// axpy: y += alpha * x, with an independent scalar type (mixed allowed).
template <class T, class S>
  requires requires(T t, S s) { { t * s } -> std::convertible_to<T>; }
void axpy(const S& alpha, const std::vector<T>& x, std::vector<T>& y) {
  if (x.size() != y.size())
    throw std::invalid_argument("axpy: dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += x[i] * alpha;
}

}  // namespace cgp::linalg
