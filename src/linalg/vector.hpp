// Dense linear algebra modeling Fig. 3's Vector Space concept.
//
// The design point of Section 2.4: the scalar type of a vector space is an
// INDEPENDENT constrained type, not an associated type of the vector type.
// `vec<std::complex<float>>` forms a vector space over `float` *and* over
// `complex<float>`; tying the scalar to the vector type would force the
// promoted (slower) scalar everywhere — the LAPACK CLACRM argument, measured
// in bench/fig3_vector_space.
//
// Algebraic footnote: the additive identity of `vec<T>` is the empty vector,
// which acts as the zero of every dimension (x + {} == x).  This gives the
// Monoid/Group traits a well-defined identity() without dragging the
// dimension into the type.
#pragma once

#include <complex>
#include <stdexcept>
#include <vector>

#include "core/algebraic.hpp"

namespace cgp::linalg {

template <class T>
class vec {
 public:
  vec() = default;
  explicit vec(std::size_t n, T init = {}) : data_(n, init) {}
  vec(std::initializer_list<T> init) : data_(init) {}

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] auto begin() const noexcept { return data_.begin(); }
  [[nodiscard]] auto end() const noexcept { return data_.end(); }
  [[nodiscard]] auto begin() noexcept { return data_.begin(); }
  [[nodiscard]] auto end() noexcept { return data_.end(); }

  friend bool operator==(const vec&, const vec&) = default;

  /// Elementwise sum; the empty vector is the universal zero.
  friend vec operator+(const vec& a, const vec& b) {
    if (a.empty()) return b;
    if (b.empty()) return a;
    if (a.size() != b.size())
      throw std::invalid_argument("vec +: dimension mismatch");
    vec out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
    return out;
  }

  friend vec operator-(const vec& a) {
    vec out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = -a[i];
    return out;
  }

 private:
  std::vector<T> data_;
};

// --- Fig. 3's valid expressions: mult(v, s) and mult(s, v) -------------------
// The scalar type S is a separate template parameter; any S with T*S -> T
// elementwise works — including mixed complex<float> * float, which never
// promotes (2 real multiplies per element instead of a full complex
// multiply).

template <class T, class S>
  requires requires(T t, S s) { { t * s } -> std::convertible_to<T>; }
[[nodiscard]] vec<T> mult(const vec<T>& v, const S& s) {
  vec<T> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i] * s;
  return out;
}

template <class T, class S>
  requires requires(T t, S s) { { t * s } -> std::convertible_to<T>; }
[[nodiscard]] vec<T> mult(const S& s, const vec<T>& v) {
  return mult(v, s);
}

}  // namespace cgp::linalg

// --- model declarations: vec<T> is an additive abelian group -----------------
namespace cgp::core {

template <class T>
struct declares_associative<linalg::vec<T>, std::plus<>> : std::true_type {};
template <class T>
struct declares_commutative<linalg::vec<T>, std::plus<>> : std::true_type {};
template <class T>
struct monoid_traits<linalg::vec<T>, std::plus<>> {
  static linalg::vec<T> identity() { return {}; }
};
template <class T>
struct group_traits<linalg::vec<T>, std::plus<>> {
  static linalg::vec<T> inverse(const linalg::vec<T>& v) { return -v; }
};

}  // namespace cgp::core
