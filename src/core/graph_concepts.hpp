// Graph concepts of Figs. 1 and 2, expressed with the first-class language
// support the paper calls for (C++20 concepts + associated types via traits).
//
// Fig. 1 — Graph Edge:
//   Edge::vertex_type       associated vertex type
//   source(e) -> vertex     target(e) -> vertex
//
// Fig. 2 — Incidence Graph:
//   Graph::vertex_type / ::edge_type / ::out_edge_iterator associated types
//   out_edge_iterator::value_type == edge_type
//   edge_type models Graph Edge; out_edge_iterator models Iterator
//   out_edges(v, g) -> iterator range; out_degree(v, g)
//
// Associated types are resolved through `graph_traits`, the traits-class
// idiom the paper cites (ref. 23) as C++'s encapsulation mechanism for
// concept information; types with nested member types get them picked up
// automatically.  Constraint propagation (Section 2.3) comes for free:
// `IncidenceGraph<G>` implies `GraphEdge<edge_t<G>>`, so algorithms such as
// `first_neighbor` state ONE constraint, not three.
#pragma once

#include <concepts>
#include <iterator>
#include <ranges>

namespace cgp::core {

/// Primary graph traits template: forwards to nested member types when they
/// exist (SFINAE-friendly: types without them get an empty traits, so the
/// concepts below evaluate to false instead of a hard error).  Graph types
/// without members specialize this instead (non-intrusive adaptation,
/// exactly what traits were invented for).
template <class G>
struct graph_traits {};

template <class G>
  requires requires {
    typename G::vertex_type;
    typename G::edge_type;
    typename G::out_edge_iterator;
  }
struct graph_traits<G> {
  using vertex_type = typename G::vertex_type;
  using edge_type = typename G::edge_type;
  using out_edge_iterator = typename G::out_edge_iterator;
};

/// Edge traits, analogously.
template <class E>
struct edge_traits {};

template <class E>
  requires requires { typename E::vertex_type; }
struct edge_traits<E> {
  using vertex_type = typename E::vertex_type;
};

template <class G>
using vertex_t = typename graph_traits<G>::vertex_type;
template <class G>
using edge_t = typename graph_traits<G>::edge_type;
template <class G>
using out_edge_iterator_t = typename graph_traits<G>::out_edge_iterator;
template <class E>
using edge_vertex_t = typename edge_traits<E>::vertex_type;

/// Fig. 1: the Graph Edge concept.
template <class E>
concept GraphEdge =
    std::copyable<E> && requires(const E& e) {
      typename edge_vertex_t<E>;
      { source(e) } -> std::convertible_to<edge_vertex_t<E>>;
      { target(e) } -> std::convertible_to<edge_vertex_t<E>>;
    };

/// Fig. 2: the Incidence Graph concept.
///
/// All of Fig. 2's rows appear below: the three associated types; the
/// same-type constraint between the iterator's value type and the edge type;
/// the requirement that the edge type model Graph Edge (and thereby that its
/// vertex type agree with the graph's); the iterator requirement; and the
/// two valid expressions.
template <class G>
concept IncidenceGraph = requires {
  typename vertex_t<G>;
  typename edge_t<G>;
  typename out_edge_iterator_t<G>;
} && GraphEdge<edge_t<G>> &&
  std::same_as<typename std::iterator_traits<out_edge_iterator_t<G>>::value_type,
               edge_t<G>> &&
  std::same_as<edge_vertex_t<edge_t<G>>, vertex_t<G>> &&
  std::forward_iterator<out_edge_iterator_t<G>> &&
  requires(const G& g, const vertex_t<G>& v) {
    { out_edges(v, g) } -> std::convertible_to<
        std::pair<out_edge_iterator_t<G>, out_edge_iterator_t<G>>>;
    { out_degree(v, g) } -> std::convertible_to<std::size_t>;
  };

/// Refinement: graphs that can enumerate all vertices.
template <class G>
concept VertexListGraph = IncidenceGraph<G> && requires(const G& g) {
  { vertices(g) } -> std::ranges::forward_range;
  { num_vertices(g) } -> std::convertible_to<std::size_t>;
};

/// Refinement: graphs that can enumerate all edges.
template <class G>
concept EdgeListGraph = requires(const G& g) {
  typename edge_t<G>;
  { edges(g) } -> std::ranges::forward_range;
  { num_edges(g) } -> std::convertible_to<std::size_t>;
};

/// Read-only property map over keys K (the BGL-style concept the paper's
/// taxonomy work builds on).
template <class PM, class K>
concept ReadablePropertyMap = requires(const PM& pm, const K& k) {
  { get(pm, k) };
};

/// Read-write property map.
template <class PM, class K, class V>
concept WritablePropertyMap = requires(PM& pm, const K& k, const V& v) {
  put(pm, k, v);
};

template <class PM, class K, class V>
concept ReadWritePropertyMap =
    ReadablePropertyMap<PM, K> && WritablePropertyMap<PM, K, V>;

}  // namespace cgp::core
