#include "core/registry.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace cgp::core {

concept_registry& concept_registry::global() {
  static concept_registry r = [] {
    concept_registry reg;
    register_builtin_concepts(reg);
    return reg;
  }();
  return r;
}

void concept_registry::define(concept_descriptor d) {
  for (const std::string& base : d.refines) {
    if (!concepts_.contains(base))
      throw std::invalid_argument("concept '" + d.name +
                                  "' refines unknown concept '" + base + "'");
  }
  concepts_[d.name] = std::move(d);
}

bool concept_registry::contains(const std::string& name) const {
  return concepts_.contains(name);
}

const concept_descriptor* concept_registry::find(
    const std::string& name) const {
  auto it = concepts_.find(name);
  return it == concepts_.end() ? nullptr : &it->second;
}

bool concept_registry::refines(const std::string& derived,
                               const std::string& base) const {
  if (derived == base) return contains(derived);
  const concept_descriptor* d = find(derived);
  if (d == nullptr) return false;
  for (const std::string& r : d->refines)
    if (refines(r, base)) return true;
  return false;
}

std::vector<std::string> concept_registry::ancestors(
    const std::string& name) const {
  std::set<std::string> seen;
  std::vector<std::string> stack{name};
  while (!stack.empty()) {
    const std::string cur = stack.back();
    stack.pop_back();
    const concept_descriptor* d = find(cur);
    if (d == nullptr) continue;
    for (const std::string& r : d->refines)
      if (seen.insert(r).second) stack.push_back(r);
  }
  return {seen.begin(), seen.end()};
}

std::vector<std::string> concept_registry::descendants(
    const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& [cname, d] : concepts_)
    if (cname != name && refines(cname, name)) out.push_back(cname);
  return out;
}

std::vector<axiom> concept_registry::all_axioms(
    const std::string& name) const {
  std::vector<axiom> out;
  std::set<std::string> seen_names;
  const auto add_from = [&](const std::string& cname) {
    const concept_descriptor* d = find(cname);
    if (d == nullptr) return;
    for (const axiom& a : d->axioms)
      if (seen_names.insert(a.name).second) out.push_back(a);
  };
  add_from(name);
  for (const std::string& a : ancestors(name)) add_from(a);
  return out;
}

std::vector<std::string> concept_registry::meet(const std::string& a,
                                                const std::string& b) const {
  // Common ancestors (inclusive), minus any that are refined by another
  // common ancestor — i.e. the maximal elements of the intersection.
  std::set<std::string> ca;
  const auto closure = [&](const std::string& n) {
    std::set<std::string> s;
    if (contains(n)) s.insert(n);
    for (const std::string& x : ancestors(n)) s.insert(x);
    return s;
  };
  const std::set<std::string> sa = closure(a);
  const std::set<std::string> sb = closure(b);
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::inserter(ca, ca.begin()));
  std::vector<std::string> out;
  for (const std::string& c : ca) {
    const bool refined_by_other =
        std::any_of(ca.begin(), ca.end(), [&](const std::string& o) {
          return o != c && refines(o, c);
        });
    if (!refined_by_other) out.push_back(c);
  }
  return out;
}

void concept_registry::declare_model(model_declaration m) {
  if (!contains(m.concept_name))
    throw std::invalid_argument("model declared for unknown concept '" +
                                m.concept_name + "'");
  models_.push_back(std::move(m));
}

bool concept_registry::models(const std::string& concept_name,
                              const std::vector<std::string>& args) const {
  return find_model(concept_name, args).has_value();
}

std::optional<model_declaration> concept_registry::find_model(
    const std::string& concept_name,
    const std::vector<std::string>& args) const {
  const model_declaration* best = nullptr;
  for (const model_declaration& m : models_) {
    if (m.arguments != args) continue;
    if (!refines(m.concept_name, concept_name)) continue;
    // Prefer the most refined witnessing declaration.
    if (best == nullptr || refines(m.concept_name, best->concept_name))
      best = &m;
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::vector<model_declaration> concept_registry::models_of(
    const std::string& concept_name) const {
  std::vector<model_declaration> out;
  for (const model_declaration& m : models_)
    if (refines(m.concept_name, concept_name)) out.push_back(m);
  return out;
}

std::vector<std::string> concept_registry::concepts_of(
    const std::vector<std::string>& args) const {
  std::set<std::string> out;
  for (const model_declaration& m : models_) {
    if (m.arguments != args) continue;
    out.insert(m.concept_name);
    for (const std::string& a : ancestors(m.concept_name)) out.insert(a);
  }
  return {out.begin(), out.end()};
}

std::vector<std::string> concept_registry::concept_names() const {
  std::vector<std::string> out;
  out.reserve(concepts_.size());
  for (const auto& [n, d] : concepts_) out.push_back(n);
  return out;
}

std::string concept_registry::describe(const std::string& name) const {
  const concept_descriptor* d = find(name);
  if (d == nullptr) return "<unknown concept '" + name + "'>";
  std::ostringstream out;
  out << "concept " << d->name;
  if (!d->refines.empty()) {
    out << " refines ";
    for (std::size_t i = 0; i < d->refines.size(); ++i) {
      if (i > 0) out << ", ";
      out << d->refines[i];
    }
  }
  out << "\n";
  if (!d->description.empty()) out << "  " << d->description << "\n";
  for (const associated_type_req& t : d->associated_types)
    out << "  associated type " << t.name
        << (t.constraint.empty() ? "" : " : " + t.constraint) << "\n";
  for (const valid_expression& e : d->expressions)
    out << "  " << e.expression << " -> " << e.result << "\n";
  for (const axiom& a : d->axioms)
    out << "  axiom " << a.name << ": " << a.to_string() << "\n";
  for (const std::string& l : d->laws) out << "  law: " << l << "\n";
  for (const complexity_guarantee& c : d->complexity)
    out << "  complexity " << c.operation << ": " << c.bound.to_string()
        << "\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// Built-in hierarchy
// ---------------------------------------------------------------------------

namespace {

axiom make_axiom(std::string name, std::vector<std::string> vars, term lhs,
                 term rhs, std::string note = {}) {
  return axiom{std::move(name), std::move(vars), std::move(lhs),
               std::move(rhs), std::move(note)};
}

}  // namespace

void register_builtin_concepts(concept_registry& r) {
  using T = term;
  const term x = T::var("x"), y = T::var("y"), z = T::var("z");
  const term e = T::cst("e");

  // --- algebraic hierarchy -------------------------------------------------
  r.define({.name = "Magma",
            .expressions = {{"op(x, y)", "T"}},
            .description = "closed binary operation"});
  r.define({.name = "Semigroup",
            .refines = {"Magma"},
            .axioms = {make_axiom("associativity", {"x", "y", "z"},
                                  T::app("op", {T::app("op", {x, y}), z}),
                                  T::app("op", {x, T::app("op", {y, z})}))},
            .description = "associative magma"});
  r.define(
      {.name = "Monoid",
       .refines = {"Semigroup"},
       .expressions = {{"identity()", "T"}},
       .axioms = {make_axiom("right_identity", {"x"}, T::app("op", {x, e}), x,
                             "guard of Fig. 5 rule 1: x + 0 -> x"),
                  make_axiom("left_identity", {"x"}, T::app("op", {e, x}), x)},
       .description = "semigroup with two-sided identity"});
  r.define({.name = "Group",
            .refines = {"Monoid"},
            .expressions = {{"inverse(x)", "T"}},
            .axioms = {make_axiom(
                           "right_inverse", {"x"},
                           T::app("op", {x, T::app("inv", {x})}), e,
                           "guard of Fig. 5 rule 2: x + (-x) -> 0"),
                       make_axiom("left_inverse", {"x"},
                                  T::app("op", {T::app("inv", {x}), x}), e)},
            .description = "monoid with inverses"});
  r.define({.name = "CommutativeMonoid",
            .refines = {"Monoid"},
            .axioms = {make_axiom("commutativity", {"x", "y"},
                                  T::app("op", {x, y}), T::app("op", {y, x}))},
            .description = "monoid with commutative operation"});
  r.define({.name = "AbelianGroup",
            .refines = {"Group", "CommutativeMonoid"},
            .description = "commutative group"});
  r.define(
      {.name = "Ring",
       .refines = {"AbelianGroup"},
       .expressions = {{"mul(x, y)", "T"}, {"one()", "T"}},
       .axioms =
           {make_axiom("mul_associativity", {"x", "y", "z"},
                       T::app("mul", {T::app("mul", {x, y}), z}),
                       T::app("mul", {x, T::app("mul", {y, z})})),
            make_axiom("left_distributivity", {"x", "y", "z"},
                       T::app("mul", {x, T::app("op", {y, z})}),
                       T::app("op", {T::app("mul", {x, y}),
                                     T::app("mul", {x, z})})),
            make_axiom("right_distributivity", {"x", "y", "z"},
                       T::app("mul", {T::app("op", {x, y}), z}),
                       T::app("op", {T::app("mul", {x, z}),
                                     T::app("mul", {y, z})})),
            make_axiom("mul_right_identity", {"x"},
                       T::app("mul", {x, T::cst("one")}), x),
            make_axiom("mul_left_identity", {"x"},
                       T::app("mul", {T::cst("one"), x}), x)},
       .description = "abelian group (op) + monoid (mul) + distributivity"});
  r.define({.name = "IntegralDomain",
            .refines = {"Ring"},
            .laws = {"no zero divisors: mul(x, y) = e implies x = e or y = e"},
            .description = "commutative ring without zero divisors"});
  r.define({.name = "Field",
            .refines = {"IntegralDomain"},
            .expressions = {{"reciprocal(x)", "T, for x != e"}},
            .laws = {"mul(x, reciprocal(x)) = one for x != e"},
            .description = "commutative ring with multiplicative inverses"});

  // --- Vector Space (Fig. 3): a two-type concept ---------------------------
  r.define({.name = "VectorSpace",
            .refines = {},
            .expressions = {{"mult(v, s)", "V"}, {"mult(s, v)", "V"}},
            .laws = {"V models AdditiveAbelianGroup",
                     "S models Field",
                     "mult(v, 1) = v",
                     "mult(mult(v, s1), s2) = mult(v, mul(s1, s2))",
                     "mult(op(v1, v2), s) = op(mult(v1, s), mult(v2, s))"},
            .description =
                "Fig. 3: scalar type is an independent constrained type, "
                "NOT an associated type of the vector type",
            .type_arity = 2});

  // --- order concepts (Fig. 6) ---------------------------------------------
  r.define({.name = "Relation",
            .expressions = {{"lt(x, y)", "bool"}},
            .description = "binary relation"});
  r.define(
      {.name = "StrictWeakOrder",
       .refines = {"Relation"},
       .laws = {"irreflexivity: !lt(x, x)",
                "transitivity: lt(x, y) && lt(y, z) implies lt(x, z)",
                "E(x, y) := !lt(x, y) && !lt(y, x)",
                "transitivity of equivalence: E(x, y) && E(y, z) implies "
                "E(x, z)"},
       .description =
           "Fig. 6: minimal requirements on < for correctness of "
           "max_element, binary_search, sort, ...; symmetry and reflexivity "
           "of E are derivable theorems (machine-checked in src/proof)"});
  r.define({.name = "TotalOrder",
            .refines = {"StrictWeakOrder"},
            .laws = {"trichotomy: exactly one of lt(x, y), lt(y, x), x == y"},
            .description = "strict weak order whose equivalence is equality"});

  // --- iterator hierarchy (Section 3.1's multipass distinction) ------------
  const big_o o1 = big_o::one();
  r.define({.name = "Iterator",
            .associated_types = {{"value_type", ""}},
            .expressions = {{"*i", "value_type"}, {"++i", "Iterator&"}},
            .description = "dereference + advance"});
  r.define({.name = "InputIterator",
            .refines = {"Iterator"},
            .laws = {"single-pass: after ++i, previous copies of i are "
                     "invalidated"},
            .complexity = {{"*i", o1}, {"++i", o1}},
            .description = "single-pass read"});
  r.define({.name = "ForwardIterator",
            .refines = {"InputIterator"},
            .laws = {"multipass: a == b implies ++a == ++b; traversals can "
                     "be repeated (the 'somewhat subtle' requirement "
                     "max_element depends on, Section 3.1)"},
            .description = "multipass traversal"});
  r.define({.name = "BidirectionalIterator",
            .refines = {"ForwardIterator"},
            .expressions = {{"--i", "BidirectionalIterator&"}},
            .complexity = {{"--i", o1}}});
  r.define({.name = "RandomAccessIterator",
            .refines = {"BidirectionalIterator"},
            .expressions = {{"i + n", "RandomAccessIterator"},
                            {"i - j", "difference_type"},
                            {"i[n]", "value_type"}},
            .complexity = {{"i + n", o1}, {"i - j", o1}},
            .description = "constant-time indexed access (enables quicksort "
                           "selection, Section 2.1)"});

  // --- container / sequence concepts ---------------------------------------
  r.define({.name = "Container",
            .associated_types = {{"value_type", ""},
                                 {"iterator", "models ForwardIterator"}},
            .expressions = {{"c.begin()", "iterator"},
                            {"c.end()", "iterator"},
                            {"c.size()", "size_type"}}});
  r.define({.name = "Sequence",
            .refines = {"Container"},
            .expressions = {{"c.insert(p, x)", "iterator"},
                            {"c.erase(p)", "iterator"}}});
  r.define({.name = "RandomAccessContainer",
            .refines = {"Sequence"},
            .associated_types = {{"iterator",
                                  "models RandomAccessIterator"}},
            .expressions = {{"c[n]", "value_type&"}},
            .complexity = {{"c[n]", o1}}});

  // --- graph concepts (Figs. 1 and 2) --------------------------------------
  r.define({.name = "GraphEdge",
            .associated_types = {{"vertex_type", ""}},
            .expressions = {{"source(e)", "Edge::vertex_type"},
                            {"target(e)", "Edge::vertex_type"}},
            .description = "Fig. 1"});
  r.define({.name = "IncidenceGraph",
            .associated_types =
                {{"vertex_type", ""},
                 {"edge_type", "models GraphEdge"},
                 {"out_edge_iterator",
                  "models Iterator; value_type == edge_type"}},
            .expressions = {{"out_edges(v,g)", "out_edge_iterator pair"},
                            {"out_degree(v,g)", "size"}},
            .description = "Fig. 2"});
  r.define({.name = "VertexListGraph",
            .refines = {"IncidenceGraph"},
            .expressions = {{"vertices(g)", "vertex range"},
                            {"num_vertices(g)", "size"}}});
  r.define({.name = "EdgeListGraph",
            .expressions = {{"edges(g)", "edge range"},
                            {"num_edges(g)", "size"}}});

  // --- built-in models with symbol bindings for the rewrite engine ---------
  const auto declare = [&](const std::string& c,
                           std::vector<std::string> args,
                           std::map<std::string, std::string> binding) {
    r.declare_model({c, std::move(args), std::move(binding)});
  };
  // Fig. 5's instance column, as model declarations:
  declare("AbelianGroup", {"int", "+"}, {{"op", "+"}, {"e", "0"}, {"inv", "-"}});
  declare("CommutativeMonoid", {"int", "*"}, {{"op", "*"}, {"e", "1"}});
  declare("AbelianGroup", {"double", "+"},
          {{"op", "+"}, {"e", "0.0"}, {"inv", "-"}});
  // Nonzero floating point under * forms a group (1/f is Fig. 5's f*(1/f)->1).
  declare("AbelianGroup", {"double", "*"},
          {{"op", "*"}, {"e", "1.0"}, {"inv", "reciprocal"}});
  declare("CommutativeMonoid", {"bool", "&&"}, {{"op", "&&"}, {"e", "true"}});
  declare("CommutativeMonoid", {"bool", "||"}, {{"op", "||"}, {"e", "false"}});
  declare("CommutativeMonoid", {"unsigned", "&"},
          {{"op", "&"}, {"e", "0xFFFFFFFF"}});
  declare("CommutativeMonoid", {"unsigned", "|"}, {{"op", "|"}, {"e", "0"}});
  declare("AbelianGroup", {"unsigned", "^"},
          {{"op", "^"}, {"e", "0"}, {"inv", "id"}});
  declare("Monoid", {"string", "concat"}, {{"op", "concat"}, {"e", "\"\""}});
  // All square matrices form a monoid under matmul; Fig. 5's A * A^-1 -> I
  // instance additionally presupposes invertibility (the general linear
  // group), so the expression `inverse(A)` carries the Group binding.
  declare("Group", {"matrix", "matmul"},
          {{"op", "matmul"}, {"e", "I"}, {"inv", "inverse"}});
  declare("Group", {"rational", "*"},
          {{"op", "*"}, {"e", "1"}, {"inv", "reciprocal"}});
  declare("StrictWeakOrder", {"int", "<"}, {{"lt", "<"}});
  declare("StrictWeakOrder", {"string", "<"}, {{"lt", "<"}});
  declare("Field", {"double", "+*"}, {{"op", "+"}, {"mul", "*"}});
  declare("Field", {"complex<float>", "+*"}, {{"op", "+"}, {"mul", "*"}});
  declare("VectorSpace", {"vector<complex<float>>", "float"}, {});
  declare("VectorSpace", {"vector<double>", "double"}, {});
}

}  // namespace cgp::core
