// Concept archetypes: minimal models used to verify that generic algorithms
// do not require more than their stated concept constraints (Section 2.1),
// extended to *semantic* archetypes that emulate "the behavior of the most
// restrictive model of a particular concept" (Section 3.1).
//
// The flagship semantic archetype here is the single-pass input sequence:
// its iterators share one underlying cursor, so any algorithm that performs
// a second traversal — or dereferences a saved iterator after the cursor
// moved on — trips a `semantic_archetype_violation`.  This is exactly how
// the paper describes catching `max_element`'s undocumented dependence on
// the Forward Iterator multipass property.
#pragma once

#include <cstddef>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <vector>

namespace cgp::core {

/// Thrown when a generic algorithm exceeds the semantic guarantees of the
/// archetype it was instantiated with.
class semantic_archetype_violation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

// ---------------------------------------------------------------------------
// Syntactic archetypes
// ---------------------------------------------------------------------------

/// Minimal syntactic model of ForwardIterator over T.  Instantiating an
/// algorithm with this type proves the algorithm uses no syntax beyond the
/// Forward Iterator concept (e.g. no `--`, no `+ n`, no `<`).
template <class T>
class forward_iterator_archetype {
 public:
  using value_type = T;
  using difference_type = std::ptrdiff_t;
  using reference = const T&;
  using pointer = const T*;
  using iterator_category = std::forward_iterator_tag;

  forward_iterator_archetype() = default;
  explicit forward_iterator_archetype(const T* p) : p_(p) {}

  reference operator*() const { return *p_; }
  pointer operator->() const { return p_; }
  forward_iterator_archetype& operator++() {
    ++p_;
    return *this;
  }
  forward_iterator_archetype operator++(int) {
    auto old = *this;
    ++p_;
    return old;
  }
  friend bool operator==(const forward_iterator_archetype&,
                         const forward_iterator_archetype&) = default;

 private:
  const T* p_ = nullptr;
};

// ---------------------------------------------------------------------------
// Semantic archetype: the most restrictive Input Iterator
// ---------------------------------------------------------------------------

/// A single-pass sequence over a vector<T>.  All iterators obtained from one
/// sequence share a cursor; each iterator is valid only while it coincides
/// with the cursor.  Dereferencing or advancing a stale iterator — the thing
/// a multipass algorithm inevitably does — throws.
///
/// Deliberately, the iterator *claims* forward_iterator_tag: its syntax is a
/// perfectly good Forward Iterator, and no compiler or type check can tell
/// otherwise.  Only the multipass *semantic* requirement is violated — which
/// is the paper's argument for semantic concepts: instantiating
/// `max_element` with this type compiles cleanly and fails only the
/// archetype's dynamic semantic checks (Section 3.1).
template <class T>
class single_pass_sequence {
  struct stream_state {
    std::vector<T> data;
    std::size_t cursor = 0;   ///< next unconsumed position
    std::size_t passes = 0;   ///< completed traversals (must stay <= 1)
  };

 public:
  explicit single_pass_sequence(std::vector<T> data)
      : state_(std::make_shared<stream_state>(
            stream_state{std::move(data), 0, 0})) {}

  class iterator {
   public:
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using reference = const T&;
    using pointer = const T*;
    // Syntactically Forward; semantically single-pass (see class comment).
    using iterator_category = std::forward_iterator_tag;

    iterator() = default;

    reference operator*() const {
      require_fresh("dereference");
      return state_->data[pos_];
    }
    pointer operator->() const { return &**this; }

    iterator& operator++() {
      require_fresh("increment");
      ++pos_;
      state_->cursor = pos_;
      return *this;
    }
    iterator operator++(int) {
      auto old = *this;
      ++*this;
      return old;
    }

    friend bool operator==(const iterator& a, const iterator& b) {
      const bool a_end = a.is_end();
      const bool b_end = b.is_end();
      if (a_end || b_end) return a_end == b_end;
      return a.pos_ == b.pos_;
    }

   private:
    friend class single_pass_sequence;
    iterator(std::shared_ptr<stream_state> s, std::size_t pos)
        : state_(std::move(s)), pos_(pos) {}

    [[nodiscard]] bool is_end() const {
      return state_ == nullptr || pos_ >= state_->data.size();
    }

    void require_fresh(const char* what) const {
      if (state_ == nullptr || pos_ >= state_->data.size())
        throw semantic_archetype_violation(
            std::string("input-iterator archetype: ") + what +
            " past the end");
      if (pos_ != state_->cursor)
        throw semantic_archetype_violation(
            std::string("input-iterator archetype: ") + what +
            " of a stale iterator (multipass use of a single-pass "
            "sequence; the algorithm requires ForwardIterator)");
    }

    std::shared_ptr<stream_state> state_;
    std::size_t pos_ = 0;
  };

  /// Starts (or restarts) a traversal.  A second call after a completed
  /// traversal throws: single-pass means ONE pass.
  [[nodiscard]] iterator begin() {
    if (state_->cursor > 0 || state_->passes > 0) {
      ++state_->passes;
      throw semantic_archetype_violation(
          "input-iterator archetype: second traversal of a single-pass "
          "sequence");
    }
    return iterator(state_, 0);
  }
  [[nodiscard]] iterator end() {
    return iterator(state_, state_->data.size());
  }

 private:
  std::shared_ptr<stream_state> state_;
};

// ---------------------------------------------------------------------------
// Semantic archetype: instrumented Strict Weak Order
// ---------------------------------------------------------------------------

/// Wraps a comparator and dynamically spot-checks the Fig. 6 axioms on every
/// call: irreflexivity when both arguments compare equal both ways is free;
/// antisymmetry (lt(a,b) and lt(b,a) cannot both hold) is checked on each
/// invocation.  Counts calls so complexity guarantees can be audited.
template <class T, class Cmp>
class checked_strict_weak_order {
 public:
  explicit checked_strict_weak_order(Cmp cmp = {}) : cmp_(std::move(cmp)) {}

  bool operator()(const T& a, const T& b) const {
    ++calls_;
    const bool ab = cmp_(a, b);
    const bool ba = cmp_(b, a);
    if (ab && ba)
      throw semantic_archetype_violation(
          "strict-weak-order archetype: asymmetry violated (lt(a,b) and "
          "lt(b,a) both hold)");
    return ab;
  }

  [[nodiscard]] std::size_t calls() const noexcept { return calls_; }

 private:
  Cmp cmp_;
  mutable std::size_t calls_ = 0;
};

}  // namespace cgp::core
