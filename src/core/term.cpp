#include "core/term.hpp"

#include <algorithm>

namespace cgp::core {
namespace {

bool is_infix_symbol(std::string_view s) {
  static constexpr std::string_view infix[] = {
      "+", "-", "*", "/", "<", "<=", ">", ">=", "==", "!=", "&", "|", "^",
      "&&", "||", "."};
  return std::find(std::begin(infix), std::end(infix), s) != std::end(infix);
}

void collect_vars(const term& t, std::vector<std::string>& out) {
  if (t.is_variable()) {
    if (std::find(out.begin(), out.end(), t.symbol()) == out.end())
      out.push_back(t.symbol());
    return;
  }
  for (const term& a : t.args()) collect_vars(a, out);
}

bool match_impl(const term& subject, const term& pattern,
                std::map<std::string, term>& binding) {
  switch (pattern.node_kind()) {
    case term::kind::variable: {
      auto [it, inserted] = binding.emplace(pattern.symbol(), subject);
      return inserted || it->second == subject;
    }
    case term::kind::constant:
      return subject.is_constant() && subject.symbol() == pattern.symbol();
    case term::kind::apply: {
      if (!subject.is_apply() || subject.symbol() != pattern.symbol() ||
          subject.arity() != pattern.arity())
        return false;
      for (std::size_t i = 0; i < pattern.arity(); ++i)
        if (!match_impl(subject.args()[i], pattern.args()[i], binding))
          return false;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string term::to_string() const {
  switch (node_kind()) {
    case kind::variable:
    case kind::constant:
      return symbol();
    case kind::apply: {
      if (arity() == 2 && is_infix_symbol(symbol())) {
        return "(" + args()[0].to_string() + " " + symbol() + " " +
               args()[1].to_string() + ")";
      }
      std::string out = symbol() + "(";
      for (std::size_t i = 0; i < arity(); ++i) {
        if (i > 0) out += ", ";
        out += args()[i].to_string();
      }
      return out + ")";
    }
  }
  return {};
}

term term::substitute(const std::map<std::string, term>& s) const {
  switch (node_kind()) {
    case kind::variable: {
      auto it = s.find(symbol());
      return it == s.end() ? *this : it->second;
    }
    case kind::constant:
      return *this;
    case kind::apply: {
      std::vector<term> new_args;
      new_args.reserve(arity());
      for (const term& a : args()) new_args.push_back(a.substitute(s));
      return app(symbol(), std::move(new_args));
    }
  }
  return *this;
}

term term::rename_symbols(const std::map<std::string, std::string>& m) const {
  const auto renamed = [&](const std::string& s) {
    auto it = m.find(s);
    return it == m.end() ? s : it->second;
  };
  switch (node_kind()) {
    case kind::variable:
      return *this;  // variables are bound names, not signature symbols
    case kind::constant:
      return cst(renamed(symbol()));
    case kind::apply: {
      std::vector<term> new_args;
      new_args.reserve(arity());
      for (const term& a : args()) new_args.push_back(a.rename_symbols(m));
      return app(renamed(symbol()), std::move(new_args));
    }
  }
  return *this;
}

std::vector<std::string> term::variables() const {
  std::vector<std::string> out;
  collect_vars(*this, out);
  return out;
}

std::optional<std::map<std::string, term>> term::match(
    const term& pattern) const {
  std::map<std::string, term> binding;
  if (match_impl(*this, pattern, binding)) return binding;
  return std::nullopt;
}

std::size_t term::size() const noexcept {
  std::size_t n = 1;
  for (const term& a : args()) n += a.size();
  return n;
}

}  // namespace cgp::core
