// Symbolic asymptotic-complexity algebra.
//
// Section 1 and Section 4 of the paper argue that concepts should carry
// *performance constraints* — complexity guarantees precise enough to make
// "useful distinctions" between algorithms (e.g. LCR's Theta(n^2) messages vs
// HS's Theta(n log n) on a ring).  This module provides the small algebra the
// taxonomies need: multivariate big-O expressions closed under +, *, and max,
// with a dominance partial order and numeric evaluation for crossover
// analysis.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cgp::core {

/// One monomial `n^p * log(n)^q * m^r * ...` with a leading coefficient.
/// The variable map is keyed by variable name; each variable carries a
/// polynomial power and a log power (both small non-negative integers in
/// practice, but signed to allow e.g. O(1/n) if ever needed).
struct monomial {
  struct var_power {
    int poly = 0;  ///< exponent of the variable itself
    int log = 0;   ///< exponent of log(variable)
    friend bool operator==(const var_power&, const var_power&) = default;
  };

  double coefficient = 1.0;
  std::map<std::string, var_power> vars;

  friend bool operator==(const monomial&, const monomial&) = default;

  /// Product of two monomials: coefficients multiply, exponents add.
  [[nodiscard]] monomial operator*(const monomial& o) const;

  /// Asymptotic dominance: does this monomial grow at least as fast as `o`
  /// in every variable (ignoring coefficients)?  Partial order.
  [[nodiscard]] bool dominates(const monomial& o) const;

  /// Numeric evaluation with the given variable assignment (missing
  /// variables default to 1).  Logs are natural.
  [[nodiscard]] double eval(const std::map<std::string, double>& env) const;

  [[nodiscard]] std::string to_string() const;
};

/// A big-O expression: the max (sum, asymptotically) of monomials.
/// Canonical form keeps only non-dominated monomials.
class big_o {
 public:
  big_o() = default;  ///< O(0): the identity of `+`/max

  /// O(1).
  [[nodiscard]] static big_o one();
  /// O(v) for variable `v`.
  [[nodiscard]] static big_o n(const std::string& v = "n");
  /// O(log v).
  [[nodiscard]] static big_o log_n(const std::string& v = "n");
  /// O(v^p * log(v)^q).
  [[nodiscard]] static big_o power(const std::string& v, int p, int q = 0);
  /// O(c) with an explicit constant; asymptotically equal to one() but kept
  /// distinct for cost-model evaluation.
  [[nodiscard]] static big_o constant(double c);

  /// Sum (asymptotically: max) of two complexities.
  [[nodiscard]] big_o operator+(const big_o& o) const;
  /// Product of two complexities (e.g. iterations * body cost).
  [[nodiscard]] big_o operator*(const big_o& o) const;

  friend bool operator==(const big_o&, const big_o&) = default;

  /// True when every monomial of `o` is dominated by some monomial here.
  /// `a.dominates(b) && b.dominates(a)` means Theta-equivalence.
  [[nodiscard]] bool dominates(const big_o& o) const;

  /// Strict asymptotic ordering: this grows strictly slower than `o`.
  [[nodiscard]] bool strictly_below(const big_o& o) const {
    return o.dominates(*this) && !dominates(o);
  }

  [[nodiscard]] double eval(const std::map<std::string, double>& env) const;

  /// "O(n log n + m)"-style rendering of the canonical form.
  [[nodiscard]] std::string to_string() const;

  /// Smallest integer value of `var` in [lo, hi] at which `*this`
  /// evaluates at or above `other` (other variables fixed by `env`);
  /// nullopt if this stays below other on the whole range.  Used by the
  /// taxonomies to report where algorithm selection flips.
  [[nodiscard]] std::optional<double> crossover_against(
      const big_o& other, const std::string& var, double lo, double hi,
      std::map<std::string, double> env = {}) const;

  [[nodiscard]] const std::vector<monomial>& terms() const noexcept {
    return terms_;
  }

 private:
  void add_term(monomial m);
  std::vector<monomial> terms_;
};

}  // namespace cgp::core
