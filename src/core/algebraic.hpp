// Algebraic concepts: Semigroup, Monoid, Group, AbelianGroup, Ring, Field,
// and the multi-type VectorSpace concept of Fig. 3.
//
// Design notes (mirroring the paper):
//  * Syntactic requirements (valid expressions, associated types) are checked
//    structurally by C++20 `requires` clauses — what the paper asks for in
//    Section 2 and what the language has since gained.
//  * Semantic requirements (associativity, identity laws, distributivity)
//    cannot be deduced from syntax.  As with Haskell type class instances
//    (Section 2.1: "the modeling relation ... is by nominal conformance"),
//    a type/operation pair becomes a model only when explicitly *declared*
//    via a traits specialization that also supplies the semantic witnesses
//    (identity element, inverse function).  The axioms a declaration promises
//    are the equational axioms registered in `core::registries` and are
//    exercised by the property tests.
#pragma once

#include <complex>
#include <concepts>
#include <functional>
#include <string>

#include "core/term.hpp"

namespace cgp::core {

// ---------------------------------------------------------------------------
// Syntactic layer
// ---------------------------------------------------------------------------

/// A closed binary operation on T — the syntactic skeleton every algebraic
/// concept refines.
template <class T, class Op>
concept BinaryOperation =
    std::regular<T> && requires(const T& a, const T& b, const Op& op) {
      { op(a, b) } -> std::convertible_to<T>;
    };

// ---------------------------------------------------------------------------
// Semantic declarations (nominal conformance)
// ---------------------------------------------------------------------------

/// Specialize and derive from std::true_type to declare that (T, Op) is
/// associative — the Semigroup axiom.
template <class T, class Op>
struct declares_associative : std::false_type {};

/// Specialize and derive from std::true_type to declare commutativity.
template <class T, class Op>
struct declares_commutative : std::false_type {};

/// Specialize to declare the Monoid identity element for (T, Op).
/// Must provide `static T identity()`.
template <class T, class Op>
struct monoid_traits;

/// Specialize to declare the Group inverse for (T, Op).
/// Must provide `static T inverse(const T&)`.
template <class T, class Op>
struct group_traits;

/// Specialize to declare that (T, Add, Mul) satisfies the ring
/// distributivity axioms (an empty tag specialization is enough).
template <class T, class Add, class Mul>
struct declares_distributive : std::false_type {};

/// Specialize to declare that T is a field under its canonical +, * with
/// multiplicative inverses for nonzero elements.
template <class T>
struct declares_field : std::false_type {};

// ---------------------------------------------------------------------------
// The algebraic concept hierarchy
// ---------------------------------------------------------------------------

/// Semigroup: closed associative binary operation.
template <class T, class Op>
concept Semigroup = BinaryOperation<T, Op> && declares_associative<T, Op>::value;

/// Monoid refines Semigroup with a declared two-sided identity.
/// This is exactly the guard of Fig. 5's `x + 0 -> x` rewrite rule.
template <class T, class Op>
concept Monoid = Semigroup<T, Op> && requires {
  { monoid_traits<T, Op>::identity() } -> std::convertible_to<T>;
};

/// Group refines Monoid with a declared inverse.
/// Guard of Fig. 5's `x + (-x) -> 0` rule.
template <class T, class Op>
concept Group = Monoid<T, Op> && requires(const T& a) {
  { group_traits<T, Op>::inverse(a) } -> std::convertible_to<T>;
};

/// Commutative variants.
template <class T, class Op>
concept CommutativeMonoid = Monoid<T, Op> && declares_commutative<T, Op>::value;

template <class T, class Op>
concept AbelianGroup = Group<T, Op> && declares_commutative<T, Op>::value;

/// Ring: abelian group under Add, monoid under Mul, declared distributivity.
template <class T, class Add = std::plus<>, class Mul = std::multiplies<>>
concept Ring = AbelianGroup<T, Add> && Monoid<T, Mul> &&
               declares_distributive<T, Add, Mul>::value;

/// Field: commutative ring with declared multiplicative inverses.
template <class T>
concept Field =
    Ring<T, std::plus<>, std::multiplies<>> &&
    declares_commutative<T, std::multiplies<>>::value && declares_field<T>::value;

/// Additive abelian group under the canonical `+` (the refinement named in
/// Fig. 3's caption).
template <class T>
concept AdditiveAbelianGroup = AbelianGroup<T, std::plus<>>;

// ---------------------------------------------------------------------------
// Vector Space: a genuinely multi-type concept (Fig. 3)
// ---------------------------------------------------------------------------

/// The scalar type S of a vector space is *not* an associated type of the
/// vector type V (Section 2.4's CLACRM argument: complex vectors over real
/// scalars must stay mixed-precision).  VectorSpace therefore constrains the
/// pair (V, S) directly: V models Additive Abelian Group, S models Field,
/// and the two `mult` expressions of Fig. 3 are valid.
template <class V, class S>
concept VectorSpace =
    AdditiveAbelianGroup<V> && Field<S> && requires(const V& v, const S& s) {
      { mult(v, s) } -> std::convertible_to<V>;
      { mult(s, v) } -> std::convertible_to<V>;
    };

// ---------------------------------------------------------------------------
// Extra operation function objects used across the library and in Fig. 5
// ---------------------------------------------------------------------------

/// min / max as semigroup operations.
struct min_op {
  template <class T>
  constexpr T operator()(const T& a, const T& b) const {
    return b < a ? b : a;
  }
};
struct max_op {
  template <class T>
  constexpr T operator()(const T& a, const T& b) const {
    return a < b ? b : a;
  }
};

// ---------------------------------------------------------------------------
// Built-in model declarations
// ---------------------------------------------------------------------------

namespace detail {
template <class T>
concept BuiltinArithmetic = std::integral<T> || std::floating_point<T>;
}

// (arithmetic, +): abelian group.
template <detail::BuiltinArithmetic T>
struct declares_associative<T, std::plus<>> : std::true_type {};
template <detail::BuiltinArithmetic T>
struct declares_commutative<T, std::plus<>> : std::true_type {};
template <detail::BuiltinArithmetic T>
struct monoid_traits<T, std::plus<>> {
  static constexpr T identity() { return T{0}; }
};
template <detail::BuiltinArithmetic T>
struct group_traits<T, std::plus<>> {
  static constexpr T inverse(const T& a) { return static_cast<T>(-a); }
};

// (arithmetic, *): commutative monoid; fields additionally get inverses.
template <detail::BuiltinArithmetic T>
struct declares_associative<T, std::multiplies<>> : std::true_type {};
template <detail::BuiltinArithmetic T>
struct declares_commutative<T, std::multiplies<>> : std::true_type {};
template <detail::BuiltinArithmetic T>
struct monoid_traits<T, std::multiplies<>> {
  static constexpr T identity() { return T{1}; }
};
template <detail::BuiltinArithmetic T>
struct declares_distributive<T, std::plus<>, std::multiplies<>>
    : std::true_type {};
template <std::floating_point T>
struct declares_field<T> : std::true_type {};
template <std::floating_point T>
struct group_traits<T, std::multiplies<>> {
  static constexpr T inverse(const T& a) { return T{1} / a; }
};

// std::complex<F>: field.
template <std::floating_point F>
struct declares_associative<std::complex<F>, std::plus<>> : std::true_type {};
template <std::floating_point F>
struct declares_commutative<std::complex<F>, std::plus<>> : std::true_type {};
template <std::floating_point F>
struct monoid_traits<std::complex<F>, std::plus<>> {
  static constexpr std::complex<F> identity() { return {}; }
};
template <std::floating_point F>
struct group_traits<std::complex<F>, std::plus<>> {
  static constexpr std::complex<F> inverse(const std::complex<F>& a) {
    return -a;
  }
};
template <std::floating_point F>
struct declares_associative<std::complex<F>, std::multiplies<>>
    : std::true_type {};
template <std::floating_point F>
struct declares_commutative<std::complex<F>, std::multiplies<>>
    : std::true_type {};
template <std::floating_point F>
struct monoid_traits<std::complex<F>, std::multiplies<>> {
  static constexpr std::complex<F> identity() { return {F{1}, F{0}}; }
};
template <std::floating_point F>
struct group_traits<std::complex<F>, std::multiplies<>> {
  static std::complex<F> inverse(const std::complex<F>& a) {
    return std::complex<F>{F{1}, F{0}} / a;
  }
};
template <std::floating_point F>
struct declares_distributive<std::complex<F>, std::plus<>, std::multiplies<>>
    : std::true_type {};
template <std::floating_point F>
struct declares_field<std::complex<F>> : std::true_type {};

// (bool, &&) and (bool, ||): commutative monoids (Fig. 5: `b && true -> b`).
template <>
struct declares_associative<bool, std::logical_and<>> : std::true_type {};
template <>
struct declares_commutative<bool, std::logical_and<>> : std::true_type {};
template <>
struct monoid_traits<bool, std::logical_and<>> {
  static constexpr bool identity() { return true; }
};
template <>
struct declares_associative<bool, std::logical_or<>> : std::true_type {};
template <>
struct declares_commutative<bool, std::logical_or<>> : std::true_type {};
template <>
struct monoid_traits<bool, std::logical_or<>> {
  static constexpr bool identity() { return false; }
};

// (unsigned integral, &) and (|): commutative monoids
// (Fig. 5: `i & 0xFFF... -> i`).
template <std::unsigned_integral T>
struct declares_associative<T, std::bit_and<>> : std::true_type {};
template <std::unsigned_integral T>
struct declares_commutative<T, std::bit_and<>> : std::true_type {};
template <std::unsigned_integral T>
struct monoid_traits<T, std::bit_and<>> {
  static constexpr T identity() { return static_cast<T>(~T{0}); }
};
template <std::unsigned_integral T>
struct declares_associative<T, std::bit_or<>> : std::true_type {};
template <std::unsigned_integral T>
struct declares_commutative<T, std::bit_or<>> : std::true_type {};
template <std::unsigned_integral T>
struct monoid_traits<T, std::bit_or<>> {
  static constexpr T identity() { return T{0}; }
};
// (unsigned integral, ^): abelian group (self-inverse).
template <std::unsigned_integral T>
struct declares_associative<T, std::bit_xor<>> : std::true_type {};
template <std::unsigned_integral T>
struct declares_commutative<T, std::bit_xor<>> : std::true_type {};
template <std::unsigned_integral T>
struct monoid_traits<T, std::bit_xor<>> {
  static constexpr T identity() { return T{0}; }
};
template <std::unsigned_integral T>
struct group_traits<T, std::bit_xor<>> {
  static constexpr T inverse(const T& a) { return a; }
};

// (std::string, +): non-commutative monoid (Fig. 5: `concat(s, "") -> s`).
template <>
struct declares_associative<std::string, std::plus<>> : std::true_type {};
template <>
struct monoid_traits<std::string, std::plus<>> {
  static std::string identity() { return {}; }
};

// (totally ordered arithmetic, min/max): commutative semigroups; max over
// unsigned and min over unsigned get identities (0 / max value) so they are
// monoids where an identity exists.
template <detail::BuiltinArithmetic T>
struct declares_associative<T, min_op> : std::true_type {};
template <detail::BuiltinArithmetic T>
struct declares_commutative<T, min_op> : std::true_type {};
template <detail::BuiltinArithmetic T>
struct declares_associative<T, max_op> : std::true_type {};
template <detail::BuiltinArithmetic T>
struct declares_commutative<T, max_op> : std::true_type {};
template <std::unsigned_integral T>
struct monoid_traits<T, max_op> {
  static constexpr T identity() { return T{0}; }
};

// ---------------------------------------------------------------------------
// Order concepts (Fig. 6's Strict Weak Order)
// ---------------------------------------------------------------------------

/// Declare that Cmp is a strict weak order on T (irreflexive, transitive,
/// with transitive incomparability).  The axioms themselves live in
/// `core::registries` and are machine-checked in the proof module; the
/// property tests sample-check concrete declarations.
template <class T, class Cmp>
struct declares_strict_weak_order : std::false_type {};

template <detail::BuiltinArithmetic T>
struct declares_strict_weak_order<T, std::less<>> : std::true_type {};
template <detail::BuiltinArithmetic T>
struct declares_strict_weak_order<T, std::less<T>> : std::true_type {};
template <>
struct declares_strict_weak_order<std::string, std::less<>> : std::true_type {};
template <>
struct declares_strict_weak_order<std::string, std::less<std::string>>
    : std::true_type {};

/// Syntactic relation requirement plus the nominal SWO declaration.
template <class Cmp, class T>
concept StrictWeakOrder =
    std::strict_weak_order<Cmp, T, T> && declares_strict_weak_order<T, Cmp>::value;

/// The equivalence induced by a strict weak order:
/// E(a, b) iff !(a < b) && !(b < a).  Fig. 6 derives (and our proof module
/// machine-checks) that E is reflexive, symmetric, and transitive.
template <class T, class Cmp = std::less<>>
[[nodiscard]] constexpr bool equivalent_under(const T& a, const T& b,
                                              Cmp cmp = {}) {
  return !cmp(a, b) && !cmp(b, a);
}

// ---------------------------------------------------------------------------
// Convenience witnesses
// ---------------------------------------------------------------------------

/// The identity element of a Monoid model.
template <class T, class Op>
  requires Monoid<T, Op>
[[nodiscard]] constexpr T identity_element() {
  return monoid_traits<T, Op>::identity();
}

/// The inverse in a Group model.
template <class T, class Op>
  requires Group<T, Op>
[[nodiscard]] constexpr T inverse_element(const T& a) {
  return group_traits<T, Op>::inverse(a);
}

}  // namespace cgp::core
