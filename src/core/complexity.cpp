#include "core/complexity.hpp"

#include <algorithm>
#include <sstream>

namespace cgp::core {

monomial monomial::operator*(const monomial& o) const {
  monomial out = *this;
  out.coefficient *= o.coefficient;
  for (const auto& [v, p] : o.vars) {
    auto& vp = out.vars[v];
    vp.poly += p.poly;
    vp.log += p.log;
  }
  // Drop zeroed-out variables so equality stays structural.
  for (auto it = out.vars.begin(); it != out.vars.end();) {
    if (it->second.poly == 0 && it->second.log == 0)
      it = out.vars.erase(it);
    else
      ++it;
  }
  return out;
}

bool monomial::dominates(const monomial& o) const {
  // Variable-wise comparison: (poly, log) lexicographically, since n^p
  // dominates n^p' log^q for p > p' regardless of q.
  for (const auto& [v, theirs] : o.vars) {
    auto it = vars.find(v);
    const var_power ours = it == vars.end() ? var_power{} : it->second;
    if (ours.poly < theirs.poly) return false;
    if (ours.poly == theirs.poly && ours.log < theirs.log) return false;
  }
  return true;
}

double monomial::eval(const std::map<std::string, double>& env) const {
  double r = coefficient;
  for (const auto& [v, p] : vars) {
    auto it = env.find(v);
    const double x = it == env.end() ? 1.0 : it->second;
    if (p.poly != 0) r *= std::pow(x, p.poly);
    if (p.log != 0) r *= std::pow(std::log(std::max(x, 2.0)), p.log);
  }
  return r;
}

std::string monomial::to_string() const {
  std::ostringstream out;
  bool wrote = false;
  if (coefficient != 1.0 || vars.empty()) {
    if (coefficient == static_cast<std::int64_t>(coefficient))
      out << static_cast<std::int64_t>(coefficient);
    else
      out << coefficient;
    wrote = true;
  }
  for (const auto& [v, p] : vars) {
    for (int rep = 0; rep < 2; ++rep) {
      const int e = rep == 0 ? p.poly : p.log;
      if (e == 0) continue;
      if (wrote) out << " ";
      if (rep == 0)
        out << v;
      else
        out << "log(" << v << ")";
      if (e != 1) out << "^" << e;
      wrote = true;
    }
  }
  return out.str();
}

big_o big_o::one() { return constant(1.0); }

big_o big_o::constant(double c) {
  big_o b;
  b.terms_.push_back(monomial{c, {}});
  return b;
}

big_o big_o::n(const std::string& v) { return power(v, 1, 0); }

big_o big_o::log_n(const std::string& v) { return power(v, 0, 1); }

big_o big_o::power(const std::string& v, int p, int q) {
  big_o b;
  monomial m;
  if (p != 0 || q != 0) m.vars[v] = monomial::var_power{p, q};
  b.terms_.push_back(std::move(m));
  return b;
}

void big_o::add_term(monomial m) {
  for (auto& t : terms_) {
    if (t.vars == m.vars) {  // Theta-equal monomials: keep the larger constant
      t.coefficient = std::max(t.coefficient, m.coefficient);
      return;
    }
    if (t.dominates(m)) return;  // already subsumed
  }
  // Remove terms the newcomer dominates, then insert.
  std::erase_if(terms_, [&](const monomial& t) { return m.dominates(t); });
  terms_.push_back(std::move(m));
}

big_o big_o::operator+(const big_o& o) const {
  big_o out = *this;
  for (const monomial& m : o.terms_) out.add_term(m);
  return out;
}

big_o big_o::operator*(const big_o& o) const {
  big_o out;
  for (const monomial& a : terms_)
    for (const monomial& b : o.terms_) out.add_term(a * b);
  return out;
}

bool big_o::dominates(const big_o& o) const {
  return std::all_of(o.terms_.begin(), o.terms_.end(), [&](const monomial& m) {
    return std::any_of(terms_.begin(), terms_.end(),
                       [&](const monomial& t) { return t.dominates(m); });
  });
}

double big_o::eval(const std::map<std::string, double>& env) const {
  double r = 0.0;
  for (const monomial& m : terms_) r += m.eval(env);
  return r;
}

std::optional<double> big_o::crossover_against(
    const big_o& other, const std::string& var, double lo, double hi,
    std::map<std::string, double> env) const {
  const auto at_or_above = [&](double x) {
    env[var] = x;
    return eval(env) >= other.eval(env);
  };
  if (!at_or_above(hi)) return std::nullopt;
  if (at_or_above(lo)) return lo;
  // Monotone growth difference is assumed (true for our monomials with
  // non-negative exponents): binary search on integers.
  double a = lo, b = hi;
  while (b - a > 1.0) {
    const double mid = std::floor((a + b) / 2.0);
    if (at_or_above(mid))
      b = mid;
    else
      a = mid;
  }
  return b;
}

std::string big_o::to_string() const {
  if (terms_.empty()) return "O(0)";
  // Deterministic output: sort term renderings.
  std::vector<std::string> parts;
  parts.reserve(terms_.size());
  for (const monomial& m : terms_) parts.push_back(m.to_string());
  std::sort(parts.begin(), parts.end(),
            [](const std::string& a, const std::string& b) {
              return a.size() != b.size() ? a.size() > b.size() : a < b;
            });
  std::string out = "O(";
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += " + ";
    out += parts[i];
  }
  return out + ")";
}

}  // namespace cgp::core
