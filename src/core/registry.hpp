// A runtime registry that makes concepts *first-class entities*: named,
// inspectable values carrying all four kinds of requirements the paper lists
// in Section 2 — associated types, function signatures / valid expressions,
// semantic constraints (axioms), and complexity guarantees.
//
// C++20 `concept`s (used throughout src/) give compile-time checking and
// concept-based overloading; this registry is the complementary reflection
// layer the language still lacks.  It is what couples the library to the
// "compiler-side" tools built in this repository: the rewrite engine asks it
// which (types, operation) tuples model Monoid/Group before firing a rule,
// STLlint reads iterator-concept refinements from it, the proof module pulls
// concept axioms from it, and the taxonomies (Section 4) are built on top of
// its refinement lattice.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/complexity.hpp"
#include "core/term.hpp"

namespace cgp::core {

/// A valid-expression requirement row, exactly as in Figs. 1-3:
/// e.g. { "out_edges(v,g)", "out_edge_iterator" }.
struct valid_expression {
  std::string expression;
  std::string result;  ///< return type or description
};

/// An associated-type requirement row: name plus constraint text,
/// e.g. { "edge_type", "models Graph Edge" }.
struct associated_type_req {
  std::string name;
  std::string constraint;
};

/// A complexity guarantee attached to a concept or algorithm:
/// e.g. { "out_edges", O(1) } or { "messages", O(n log n) }.
struct complexity_guarantee {
  std::string operation;
  big_o bound;
};

/// Everything the paper says a concept is (Section 2, first paragraph):
/// associated types, function signatures, semantic constraints, and
/// complexity guarantees, plus the refinement relation.
struct concept_descriptor {
  std::string name;
  std::vector<std::string> refines;  ///< direct refinements (concept names)
  std::vector<associated_type_req> associated_types;
  std::vector<valid_expression> expressions;
  std::vector<axiom> axioms;  ///< equational semantic constraints
  std::vector<std::string> laws;  ///< non-equational constraints, prose/FOL
  std::vector<complexity_guarantee> complexity;
  std::string description;

  /// Number of constrained types (1 for single-type concepts; 2 for
  /// Vector Space, Section 2.4).
  int type_arity = 1;
};

/// A model declaration: the tuple of type (and operation) names that models a
/// concept, e.g. Monoid modeled by {"int", "+"}; VectorSpace modeled by
/// {"vec<complex<float>>", "float"}.
struct model_declaration {
  std::string concept_name;
  std::vector<std::string> arguments;
  /// Symbol bindings for the concept's axiom signature, e.g. op->"+",
  /// e->"0".  Used by the rewrite engine to instantiate generic rules.
  std::map<std::string, std::string> symbol_binding;
};

/// The registry: definitions, the refinement lattice, and the model database.
class concept_registry {
 public:
  /// The process-wide registry, pre-populated with the paper's concepts
  /// (algebraic hierarchy, iterator hierarchy, graph concepts of Figs. 1-2,
  /// Strict Weak Order of Fig. 6) and built-in models.
  [[nodiscard]] static concept_registry& global();

  /// Empty registry (useful for tests and for domain-specific taxonomies).
  concept_registry() = default;

  /// Defines (or redefines) a concept.  All concepts named in `refines` must
  /// already exist; throws std::invalid_argument otherwise.
  void define(concept_descriptor d);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] const concept_descriptor* find(const std::string& name) const;

  /// Transitive-reflexive refinement query: does `derived` refine `base`?
  [[nodiscard]] bool refines(const std::string& derived,
                             const std::string& base) const;

  /// All ancestors (concepts transitively refined by `name`), excluding
  /// `name` itself, in deterministic order.
  [[nodiscard]] std::vector<std::string> ancestors(
      const std::string& name) const;

  /// All registered concepts that transitively refine `name`.
  [[nodiscard]] std::vector<std::string> descendants(
      const std::string& name) const;

  /// Axioms of a concept including those inherited through refinement —
  /// the full semantic contract a model signs up for.
  [[nodiscard]] std::vector<axiom> all_axioms(const std::string& name) const;

  /// The most-refined common ancestor(s) of two concepts (the meet in the
  /// refinement lattice); used for concept-based overload resolution.
  [[nodiscard]] std::vector<std::string> meet(const std::string& a,
                                              const std::string& b) const;

  // --- model database -----------------------------------------------------

  /// Declares that the argument tuple models the concept.  Modeling a
  /// refinement implies modeling everything it refines (with the same
  /// symbol binding), per the definition of refinement.
  void declare_model(model_declaration m);

  /// Does `arguments` model `concept_name`, directly or via a declared model
  /// of some refinement of it?
  [[nodiscard]] bool models(const std::string& concept_name,
                            const std::vector<std::string>& arguments) const;

  /// The declaration witnessing `models(...)`, if any.  Prefers the most
  /// refined declaration so the strongest symbol binding is available.
  [[nodiscard]] std::optional<model_declaration> find_model(
      const std::string& concept_name,
      const std::vector<std::string>& arguments) const;

  /// All declared models of a concept (including via refinements).
  [[nodiscard]] std::vector<model_declaration> models_of(
      const std::string& concept_name) const;

  /// All concept names `arguments` models.
  [[nodiscard]] std::vector<std::string> concepts_of(
      const std::vector<std::string>& arguments) const;

  [[nodiscard]] std::vector<std::string> concept_names() const;

  /// Renders a concept as a requirements table in the style of Figs. 1-3.
  [[nodiscard]] std::string describe(const std::string& name) const;

 private:
  std::map<std::string, concept_descriptor> concepts_;
  std::vector<model_declaration> models_;
};

/// Registers the paper's built-in concept hierarchy and models into `r`.
/// Called once for `concept_registry::global()`; exposed for tests.
void register_builtin_concepts(concept_registry& r);

}  // namespace cgp::core
