// Tiny first-order term language shared by the concept registry, the
// Simplicissimus-style rewrite engine, and the Athena-style proof checker.
//
// The paper's Section 3.2 observes that concept-based rewrite rules are
// "directly related to and derivable from the axioms governing the Monoid and
// Group concepts".  To make that derivability real rather than rhetorical,
// axioms are stated once, here, over abstract operator symbols; the rewrite
// engine turns an equational axiom into a guarded rewrite rule, and the proof
// module turns it into a universally quantified proposition.
#pragma once

#include <cassert>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cgp::core {

/// An immutable first-order term: a variable, a constant symbol, or an
/// application of a function symbol to argument terms.  Terms are shared via
/// `shared_ptr` internally, so copies are cheap and values behave like an
/// immutable tree.
class term {
 public:
  enum class kind { variable, constant, apply };

  /// Universally quantified variable (e.g. `x` in `op(x, e) = x`).
  [[nodiscard]] static term var(std::string name) {
    return term(kind::variable, std::move(name), {});
  }

  /// Constant symbol (e.g. the identity element `e`).
  [[nodiscard]] static term cst(std::string name) {
    return term(kind::constant, std::move(name), {});
  }

  /// Application of function symbol `fn` to `args`.
  [[nodiscard]] static term app(std::string fn, std::vector<term> args) {
    return term(kind::apply, std::move(fn), std::move(args));
  }

  [[nodiscard]] kind node_kind() const noexcept { return node_->k; }
  [[nodiscard]] const std::string& symbol() const noexcept {
    return node_->symbol;
  }
  [[nodiscard]] const std::vector<term>& args() const noexcept {
    return node_->args;
  }
  [[nodiscard]] std::size_t arity() const noexcept {
    return node_->args.size();
  }

  [[nodiscard]] bool is_variable() const noexcept {
    return node_->k == kind::variable;
  }
  [[nodiscard]] bool is_constant() const noexcept {
    return node_->k == kind::constant;
  }
  [[nodiscard]] bool is_apply() const noexcept {
    return node_->k == kind::apply;
  }

  /// Structural equality.
  [[nodiscard]] friend bool operator==(const term& a, const term& b) {
    if (a.node_ == b.node_) return true;
    if (a.node_->k != b.node_->k || a.node_->symbol != b.node_->symbol ||
        a.node_->args.size() != b.node_->args.size())
      return false;
    for (std::size_t i = 0; i < a.node_->args.size(); ++i)
      if (!(a.node_->args[i] == b.node_->args[i])) return false;
    return true;
  }
  [[nodiscard]] friend bool operator!=(const term& a, const term& b) {
    return !(a == b);
  }

  /// Renders `op(x, e)`-style syntax, with infix sugar for common binary
  /// operator symbols (`+`, `*`, `<`, ...).
  [[nodiscard]] std::string to_string() const;

  /// Simultaneously substitutes variables by terms.
  [[nodiscard]] term substitute(const std::map<std::string, term>& s) const;

  /// Renames function/constant symbols according to `m` (a signature
  /// morphism).  Symbols absent from `m` are kept.  This is how one generic
  /// axiom (over the abstract `op`/`e`) is instantiated for a concrete model
  /// (e.g. `op -> +`, `e -> 0`).
  [[nodiscard]] term rename_symbols(
      const std::map<std::string, std::string>& m) const;

  /// Collects the free variables in order of first occurrence.
  [[nodiscard]] std::vector<std::string> variables() const;

  /// First-order syntactic matching: finds a substitution `s` with
  /// `pattern.substitute(s) == *this`, treating the pattern's variables as
  /// match holes.  Returns nullopt when no such substitution exists.
  [[nodiscard]] std::optional<std::map<std::string, term>> match(
      const term& pattern) const;

  /// Total number of nodes; used by the rewrite engine as a crude cost proxy.
  [[nodiscard]] std::size_t size() const noexcept;

 private:
  struct node {
    kind k;
    std::string symbol;
    std::vector<term> args;
  };

  term(kind k, std::string symbol, std::vector<term> args)
      : node_(std::make_shared<node>(
            node{k, std::move(symbol), std::move(args)})) {}

  std::shared_ptr<const node> node_;
};

/// An equational axiom `forall vars . lhs = rhs`, attached to a concept.
///
/// Example (Monoid right identity, the guard of Fig. 5's first rewrite rule):
///   axiom{"right_identity", {"x"}, app("op", {var("x"), cst("e")}), var("x")}
struct axiom {
  std::string name;                ///< e.g. "right_identity"
  std::vector<std::string> vars;   ///< universally quantified variables
  term lhs;                        ///< left-hand side of the equation
  term rhs;                        ///< right-hand side of the equation
  std::string note;                ///< free-form commentary

  /// `op(x, e) = x` rendered for diagnostics and docs.
  [[nodiscard]] std::string to_string() const {
    return lhs.to_string() + " = " + rhs.to_string();
  }
};

}  // namespace cgp::core
