// Algorithm concept taxonomies (Sections 1 and 4).
//
// A taxonomy organizes algorithm concepts along *orthogonal dimensions*,
// each dimension being a refinement tree of concepts.  Algorithms are
// classified by naming, for every dimension, the most refined concept they
// model; queries ask for algorithms whose classification refines a set of
// requirements; selection additionally minimizes a complexity guarantee
// (messages, time, local computation) evaluated for the deployment's
// parameters.  "A comprehensive ... concept taxonomy thus ... helps a
// system designer to pick the correct algorithm for a particular
// application."
//
// The refinement machinery is the concept registry from src/core — the same
// lattice that drives the rewrite engine and STLlint.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/complexity.hpp"
#include "core/registry.hpp"

namespace cgp::taxonomy {

/// One classified algorithm.
struct algorithm_record {
  std::string name;
  /// dimension name -> concept (must exist in the taxonomy's registry).
  std::map<std::string, std::string> classification;
  /// metric name ("messages", "time", "local_computation", "comparisons")
  /// -> asymptotic guarantee over variables like n (nodes), E (edges),
  /// D (diameter).
  std::map<std::string, core::big_o> costs;
  /// Which of this repository's modules implements it.
  std::string implemented_by;
  std::string notes;
};

/// Requirements: per-dimension concept the algorithm's classification must
/// refine.  Dimensions absent from the map are unconstrained.
using requirements = std::map<std::string, std::string>;

class taxonomy {
 public:
  explicit taxonomy(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Declares a dimension rooted at `root` (the root concept is defined
  /// implicitly).
  void add_dimension(const std::string& dimension, const std::string& root);

  /// Adds `concept_name` under `parent` in `dimension`'s refinement tree.
  void refine(const std::string& dimension, const std::string& concept_name,
              const std::string& parent);

  [[nodiscard]] std::vector<std::string> dimensions() const;
  [[nodiscard]] std::vector<std::string> concepts_in(
      const std::string& dimension) const;

  /// Registers an algorithm; throws if a classification names an unknown
  /// dimension or concept.
  void add_algorithm(algorithm_record rec);

  [[nodiscard]] const std::vector<algorithm_record>& algorithms() const {
    return records_;
  }
  [[nodiscard]] const algorithm_record* find(const std::string& name) const;

  /// True when `rec` satisfies `req`: for every required dimension, the
  /// record's concept refines the required concept.  Records that do not
  /// classify a required dimension do not match.
  [[nodiscard]] bool matches(const algorithm_record& rec,
                             const requirements& req) const;

  /// All algorithms matching the requirements.
  [[nodiscard]] std::vector<algorithm_record> query(
      const requirements& req) const;

  /// Picks the matching algorithm minimizing `metric` evaluated at `env`
  /// (e.g. metric "messages", env {n: 1024}).  Algorithms without the
  /// metric are skipped.  nullopt when nothing matches.
  [[nodiscard]] std::optional<algorithm_record> select(
      const requirements& req, const std::string& metric,
      const std::map<std::string, double>& env) const;

  /// Where, along `var` in [lo, hi], does `name_a`'s `metric` guarantee
  /// first reach `name_b`'s — i.e. from where on should a designer switch
  /// from a to b?  nullopt when a stays cheaper on the whole range or
  /// either record/metric is missing.
  [[nodiscard]] std::optional<double> crossover(
      const std::string& name_a, const std::string& name_b,
      const std::string& metric, const std::string& var, double lo,
      double hi, std::map<std::string, double> env = {}) const;

  /// Human-readable table of all records (one line per algorithm).
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] const core::concept_registry& registry() const {
    return registry_;
  }

 private:
  [[nodiscard]] std::string qualified(const std::string& dimension,
                                      const std::string& concept_name) const {
    return dimension + "/" + concept_name;
  }

  std::string name_;
  core::concept_registry registry_;
  std::map<std::string, std::string> dimension_roots_;
  std::vector<algorithm_record> records_;
};

/// The distributed-algorithm taxonomy of Section 4, with its seven
/// orthogonal dimensions (problem, topology, fault tolerance, information
/// sharing, strategy, timing, process management) and this repository's
/// implemented algorithms classified and annotated with their complexity
/// guarantees.
[[nodiscard]] taxonomy distributed_taxonomy();

/// The sequential sequence-algorithm taxonomy (STL domain): searching and
/// sorting algorithms with iterator-concept requirements and comparison
/// bounds.
[[nodiscard]] taxonomy sequence_taxonomy();

/// The graph-algorithm taxonomy (BGL domain).
[[nodiscard]] taxonomy graph_taxonomy();

}  // namespace cgp::taxonomy
