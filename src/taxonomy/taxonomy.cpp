#include "taxonomy/taxonomy.hpp"

#include <sstream>
#include <stdexcept>

namespace cgp::taxonomy {

void taxonomy::add_dimension(const std::string& dimension,
                             const std::string& root) {
  if (dimension_roots_.contains(dimension))
    throw std::invalid_argument("dimension '" + dimension +
                                "' already exists");
  dimension_roots_[dimension] = root;
  registry_.define({.name = qualified(dimension, root),
                    .description = "root of dimension " + dimension});
}

void taxonomy::refine(const std::string& dimension,
                      const std::string& concept_name,
                      const std::string& parent) {
  if (!dimension_roots_.contains(dimension))
    throw std::invalid_argument("unknown dimension '" + dimension + "'");
  registry_.define({.name = qualified(dimension, concept_name),
                    .refines = {qualified(dimension, parent)}});
}

std::vector<std::string> taxonomy::dimensions() const {
  std::vector<std::string> out;
  out.reserve(dimension_roots_.size());
  for (const auto& [d, r] : dimension_roots_) out.push_back(d);
  return out;
}

std::vector<std::string> taxonomy::concepts_in(
    const std::string& dimension) const {
  std::vector<std::string> out;
  const std::string prefix = dimension + "/";
  for (const std::string& n : registry_.concept_names())
    if (n.starts_with(prefix)) out.push_back(n.substr(prefix.size()));
  return out;
}

void taxonomy::add_algorithm(algorithm_record rec) {
  for (const auto& [dim, c] : rec.classification) {
    if (!dimension_roots_.contains(dim))
      throw std::invalid_argument("algorithm '" + rec.name +
                                  "' classifies unknown dimension '" + dim +
                                  "'");
    if (!registry_.contains(qualified(dim, c)))
      throw std::invalid_argument("algorithm '" + rec.name +
                                  "' uses unknown concept '" + c +
                                  "' in dimension '" + dim + "'");
  }
  records_.push_back(std::move(rec));
}

const algorithm_record* taxonomy::find(const std::string& name) const {
  for (const algorithm_record& r : records_)
    if (r.name == name) return &r;
  return nullptr;
}

bool taxonomy::matches(const algorithm_record& rec,
                       const requirements& req) const {
  for (const auto& [dim, required] : req) {
    const auto it = rec.classification.find(dim);
    if (it == rec.classification.end()) return false;
    if (!registry_.refines(qualified(dim, it->second),
                           qualified(dim, required)))
      return false;
  }
  return true;
}

std::vector<algorithm_record> taxonomy::query(const requirements& req) const {
  std::vector<algorithm_record> out;
  for (const algorithm_record& r : records_)
    if (matches(r, req)) out.push_back(r);
  return out;
}

std::optional<algorithm_record> taxonomy::select(
    const requirements& req, const std::string& metric,
    const std::map<std::string, double>& env) const {
  std::optional<algorithm_record> best;
  double best_cost = 0.0;
  for (const algorithm_record& r : records_) {
    if (!matches(r, req)) continue;
    const auto it = r.costs.find(metric);
    if (it == r.costs.end()) continue;
    const double cost = it->second.eval(env);
    if (!best || cost < best_cost) {
      best = r;
      best_cost = cost;
    }
  }
  return best;
}

std::optional<double> taxonomy::crossover(
    const std::string& name_a, const std::string& name_b,
    const std::string& metric, const std::string& var, double lo, double hi,
    std::map<std::string, double> env) const {
  const algorithm_record* a = find(name_a);
  const algorithm_record* b = find(name_b);
  if (a == nullptr || b == nullptr) return std::nullopt;
  const auto ca = a->costs.find(metric);
  const auto cb = b->costs.find(metric);
  if (ca == a->costs.end() || cb == b->costs.end()) return std::nullopt;
  return ca->second.crossover_against(cb->second, var, lo, hi,
                                      std::move(env));
}

std::string taxonomy::describe() const {
  std::ostringstream out;
  out << "taxonomy '" << name_ << "'\n";
  for (const auto& [dim, root] : dimension_roots_) {
    out << "  dimension " << dim << " (root: " << root << "): ";
    bool first = true;
    for (const std::string& c : concepts_in(dim)) {
      if (!first) out << ", ";
      out << c;
      first = false;
    }
    out << "\n";
  }
  for (const algorithm_record& r : records_) {
    out << "  algorithm " << r.name;
    if (!r.implemented_by.empty()) out << " [" << r.implemented_by << "]";
    out << "\n";
    for (const auto& [dim, c] : r.classification)
      out << "    " << dim << ": " << c << "\n";
    for (const auto& [metric, bound] : r.costs)
      out << "    " << metric << ": " << bound.to_string() << "\n";
  }
  return out.str();
}

// ===========================================================================
// Built-in taxonomies
// ===========================================================================

taxonomy distributed_taxonomy() {
  using core::big_o;
  taxonomy t("distributed-algorithms");

  // The seven orthogonal dimensions of Section 4.
  t.add_dimension("problem", "any");
  for (const char* p : {"leader-election", "broadcast", "spanning-tree",
                        "failure-detection", "consensus", "mutual-exclusion"})
    t.refine("problem", p, "any");
  // Convergecast aggregation builds on a spanning structure.
  t.refine("problem", "aggregation", "any");

  t.add_dimension("topology", "arbitrary");
  for (const char* p : {"ring", "complete", "tree", "star", "grid"})
    t.refine("topology", p, "arbitrary");

  // Fault tolerance: tolerating more refines tolerating less.  Omission
  // (the runtime's drop/duplicate/delay knobs in net_options::faults) sits
  // between crash-stop and Byzantine: a crashed node is one that omits
  // everything, and a Byzantine node may omit arbitrarily.
  t.add_dimension("fault-tolerance", "none");
  t.refine("fault-tolerance", "crash", "none");
  t.refine("fault-tolerance", "omission", "crash");
  t.refine("fault-tolerance", "byzantine", "omission");

  t.add_dimension("information-sharing", "any");
  t.refine("information-sharing", "message-passing", "any");
  t.refine("information-sharing", "shared-memory", "any");

  t.add_dimension("strategy", "any");
  for (const char* p : {"centralized-control", "distributed-control",
                        "randomized", "compositional", "heart-beat",
                        "probe-echo", "wave"})
    t.refine("strategy", p, "any");
  // Gossip is the epidemic refinement of the heart-beat strategy: the same
  // liveness signal, disseminated transitively instead of only pairwise.
  t.refine("strategy", "gossip", "heart-beat");

  // Timing: an algorithm correct under weaker assumptions refines one that
  // needs stronger ones: asynchronous -> partially-synchronous ->
  // synchronous.
  t.add_dimension("timing", "synchronous");
  t.refine("timing", "partially-synchronous", "synchronous");
  t.refine("timing", "asynchronous", "partially-synchronous");

  t.add_dimension("process-management", "static");
  t.refine("process-management", "dynamic-join", "static");

  const big_o n = big_o::n("n");
  const big_o logn = big_o::log_n("n");
  const big_o E = big_o::n("E");
  const big_o D = big_o::n("D");

  t.add_algorithm(
      {.name = "lcr-leader-election",
       .classification = {{"problem", "leader-election"},
                          {"topology", "ring"},
                          {"fault-tolerance", "none"},
                          {"information-sharing", "message-passing"},
                          {"strategy", "distributed-control"},
                          {"timing", "asynchronous"},
                          {"process-management", "static"}},
       .costs = {{"messages", n * n},
                 {"time", n},
                 {"local_computation", n * n}},
       .implemented_by = "distributed::lcr_leader_election",
       .notes = "Theta(n^2) worst-case messages; O(n log n) expected"});
  t.add_algorithm(
      {.name = "hs-leader-election",
       .classification = {{"problem", "leader-election"},
                          {"topology", "ring"},
                          {"fault-tolerance", "none"},
                          {"information-sharing", "message-passing"},
                          {"strategy", "distributed-control"},
                          {"timing", "asynchronous"},
                          {"process-management", "static"}},
       .costs = {{"messages", big_o::constant(12.0) * n * logn},
                 {"time", n},
                 {"local_computation", big_o::constant(12.0) * n * logn}},
       .implemented_by = "distributed::hs_leader_election",
       .notes = "Theta(n log n) messages via doubling probes"});
  t.add_algorithm(
      {.name = "peterson-leader-election",
       .classification = {{"problem", "leader-election"},
                          {"topology", "ring"},
                          {"fault-tolerance", "none"},
                          {"information-sharing", "message-passing"},
                          {"strategy", "distributed-control"},
                          {"timing", "asynchronous"},
                          {"process-management", "static"}},
       .costs = {{"messages", big_o::constant(6.0) * n * logn},
                 {"time", n},
                 {"local_computation", big_o::constant(6.0) * n * logn}},
       .implemented_by = "distributed::peterson_leader_election",
       .notes = "unidirectional ring; needs FIFO links; <= 2n log n + O(n) "
                "messages"});
  t.add_algorithm(
      {.name = "itai-rodeh-randomized-election",
       .classification = {{"problem", "leader-election"},
                          {"topology", "ring"},
                          {"fault-tolerance", "none"},
                          {"information-sharing", "message-passing"},
                          {"strategy", "randomized"},
                          {"timing", "synchronous"},
                          {"process-management", "static"}},
       .costs = {{"messages", n * n}, {"time", n}},
       .implemented_by = "distributed::randomized_anonymous_election",
       .notes = "anonymous ring; terminates with probability 1"});
  t.add_algorithm(
      {.name = "flooding-broadcast",
       .classification = {{"problem", "broadcast"},
                          {"topology", "arbitrary"},
                          {"fault-tolerance", "crash"},
                          {"information-sharing", "message-passing"},
                          {"strategy", "wave"},
                          {"timing", "asynchronous"},
                          {"process-management", "static"}},
       .costs = {{"messages", big_o::constant(2.0) * E}, {"time", D}},
       .implemented_by = "distributed::flooding_broadcast",
       .notes = "tolerates crashes outside the broadcast path"});
  t.add_algorithm(
      {.name = "echo-wave",
       .classification = {{"problem", "spanning-tree"},
                          {"topology", "arbitrary"},
                          {"fault-tolerance", "none"},
                          {"information-sharing", "message-passing"},
                          {"strategy", "probe-echo"},
                          {"timing", "asynchronous"},
                          {"process-management", "static"}},
       .costs = {{"messages", big_o::constant(2.0) * E}, {"time", D}},
       .implemented_by = "distributed::echo_wave",
       .notes = "exactly 2|E| messages; root detects termination"});
  t.add_algorithm(
      {.name = "bfs-spanning-tree",
       .classification = {{"problem", "spanning-tree"},
                          {"topology", "arbitrary"},
                          {"fault-tolerance", "none"},
                          {"information-sharing", "message-passing"},
                          {"strategy", "wave"},
                          {"timing", "synchronous"},
                          {"process-management", "static"}},
       .costs = {{"messages", big_o::constant(2.0) * E}, {"time", D}},
       .implemented_by = "distributed::bfs_spanning_tree",
       .notes = "synchronous flooding yields BFS layers"});
  t.add_algorithm(
      {.name = "convergecast-aggregate-sum",
       .classification = {{"problem", "aggregation"},
                          {"topology", "arbitrary"},
                          {"fault-tolerance", "none"},
                          {"information-sharing", "message-passing"},
                          {"strategy", "probe-echo"},
                          {"timing", "asynchronous"},
                          {"process-management", "static"}},
       .costs = {{"messages", big_o::constant(2.0) * E}, {"time", D}},
       .implemented_by = "distributed::aggregate_sum",
       .notes = "echo wave carrying a commutative-monoid combine; root "
                "decides the aggregate in exactly 2|E| messages"});
  t.add_algorithm(
      {.name = "heartbeat-failure-detector",
       .classification = {{"problem", "failure-detection"},
                          {"topology", "arbitrary"},
                          {"fault-tolerance", "crash"},
                          {"information-sharing", "message-passing"},
                          {"strategy", "heart-beat"},
                          {"timing", "synchronous"},
                          {"process-management", "static"}},
       .costs = {{"messages", big_o::constant(2.0) * E * big_o::n("R")},
                 {"time", big_o::n("R")}},
       .implemented_by = "distributed::heartbeat_detector",
       .notes = "2E messages per round for R rounds"});
  t.add_algorithm(
      {.name = "gossip-membership",
       .classification = {{"problem", "failure-detection"},
                          {"topology", "arbitrary"},
                          {"fault-tolerance", "crash"},
                          {"information-sharing", "message-passing"},
                          {"strategy", "gossip"},
                          {"timing", "synchronous"},
                          {"process-management", "dynamic-join"}},
       .costs = {{"messages", big_o::constant(3.0) * n * big_o::n("R")},
                 {"time", big_o::n("R")}},
       .implemented_by = "distributed::gossip_membership",
       .notes = "SWIM-style heartbeat-counter tables gossiped to a fanout-3 "
                "neighbor sample each round; churned-down members are "
                "suspected after a counter-staleness timeout and re-admitted "
                "on recovery (the churn soak tests' subject)"});
  return t;
}

taxonomy sequence_taxonomy() {
  using core::big_o;
  taxonomy t("sequence-algorithms");
  t.add_dimension("problem", "any");
  for (const char* p : {"searching", "sorting", "reduction", "extremum"})
    t.refine("problem", p, "any");
  // Iterator requirement: weaker requirements refine stronger availability:
  // an algorithm usable with input iterators is usable everywhere.
  t.add_dimension("iterator", "random-access");
  t.refine("iterator", "bidirectional", "random-access");
  t.refine("iterator", "forward", "bidirectional");
  t.refine("iterator", "input", "forward");
  // Preconditions: the caller names the strongest property they can
  // guarantee; an algorithm demanding nothing ("none") is usable anywhere,
  // so "none" refines "sorted".
  t.add_dimension("precondition", "sorted");
  t.refine("precondition", "none", "sorted");

  const big_o n = big_o::n("n");
  const big_o logn = big_o::log_n("n");

  t.add_algorithm({.name = "find",
                   .classification = {{"problem", "searching"},
                                      {"iterator", "input"},
                                      {"precondition", "none"}},
                   .costs = {{"comparisons", n}},
                   .implemented_by = "sequences::find"});
  t.add_algorithm({.name = "lower_bound",
                   .classification = {{"problem", "searching"},
                                      {"iterator", "forward"},
                                      {"precondition", "sorted"}},
                   .costs = {{"comparisons", logn}},
                   .implemented_by = "sequences::lower_bound",
                   .notes = "O(n) iterator steps on non-random-access"});
  t.add_algorithm({.name = "binary_search",
                   .classification = {{"problem", "searching"},
                                      {"iterator", "forward"},
                                      {"precondition", "sorted"}},
                   .costs = {{"comparisons", logn}},
                   .implemented_by = "sequences::binary_search"});
  t.add_algorithm({.name = "max_element",
                   .classification = {{"problem", "extremum"},
                                      {"iterator", "forward"},
                                      {"precondition", "none"}},
                   .costs = {{"comparisons", n}},
                   .implemented_by = "sequences::max_element",
                   .notes = "needs multipass (Forward), not Input"});
  t.add_algorithm({.name = "introsort",
                   .classification = {{"problem", "sorting"},
                                      {"iterator", "random-access"},
                                      {"precondition", "none"}},
                   .costs = {{"comparisons", n * logn}},
                   .implemented_by = "sequences::intro_sort"});
  t.add_algorithm({.name = "forward_merge_sort",
                   .classification = {{"problem", "sorting"},
                                      {"iterator", "forward"},
                                      {"precondition", "none"}},
                   .costs = {{"comparisons", n * logn * logn}},
                   .implemented_by = "sequences::forward_merge_sort"});
  t.add_algorithm({.name = "reduce",
                   .classification = {{"problem", "reduction"},
                                      {"iterator", "input"},
                                      {"precondition", "none"}},
                   .costs = {{"comparisons", n}},
                   .implemented_by = "sequences::reduce",
                   .notes = "Monoid-constrained"});
  return t;
}

taxonomy graph_taxonomy() {
  using core::big_o;
  taxonomy t("graph-algorithms");
  t.add_dimension("problem", "any");
  for (const char* p :
       {"traversal", "shortest-paths", "ordering", "components",
        "spanning-tree"})
    t.refine("problem", p, "any");
  t.add_dimension("graph-concept", "incidence");
  t.refine("graph-concept", "vertex-list", "incidence");
  t.refine("graph-concept", "edge-list", "incidence");

  const big_o V = big_o::n("V");
  const big_o E = big_o::n("E");
  const big_o logV = big_o::log_n("V");

  t.add_algorithm({.name = "breadth-first-search",
                   .classification = {{"problem", "traversal"},
                                      {"graph-concept", "vertex-list"}},
                   .costs = {{"time", V + E}},
                   .implemented_by = "graph::breadth_first_search"});
  t.add_algorithm({.name = "depth-first-search",
                   .classification = {{"problem", "traversal"},
                                      {"graph-concept", "vertex-list"}},
                   .costs = {{"time", V + E}},
                   .implemented_by = "graph::dfs_finish_order"});
  t.add_algorithm({.name = "topological-sort",
                   .classification = {{"problem", "ordering"},
                                      {"graph-concept", "vertex-list"}},
                   .costs = {{"time", V + E}},
                   .implemented_by = "graph::topological_sort"});
  t.add_algorithm({.name = "dijkstra",
                   .classification = {{"problem", "shortest-paths"},
                                      {"graph-concept", "vertex-list"}},
                   .costs = {{"time", (V + E) * logV}},
                   .implemented_by = "graph::dijkstra_shortest_paths",
                   .notes = "non-negative weights"});
  t.add_algorithm({.name = "connected-components",
                   .classification = {{"problem", "components"},
                                      {"graph-concept", "edge-list"}},
                   .costs = {{"time", V + E}},
                   .implemented_by = "graph::connected_components"});
  t.add_algorithm({.name = "kruskal-mst",
                   .classification = {{"problem", "spanning-tree"},
                                      {"graph-concept", "edge-list"}},
                   .costs = {{"time", E * big_o::log_n("E")}},
                   .implemented_by = "graph::kruskal_mst"});
  return t;
}

}  // namespace cgp::taxonomy
