// Rewrite rules for the Simplicissimus-style engine.
//
// Two rule species, mirroring Section 3.2:
//
//  * `concept_rule` — a *generic* rule derived from a concept axiom (e.g.
//    Monoid::right_identity gives `op(x, e) -> x`).  It fires on any
//    (type, operation) pair the concept registry says models the concept;
//    the model's symbol binding instantiates the abstract `op`/`e`/`inv`
//    to the concrete operator and identity literal.  Two such rules cover
//    all ten instances in Fig. 5.
//
//  * `expr_rule` — a concrete expression-level rule, used for (a) the
//    enumerated per-type instances a traditional simplifier would need
//    (the baseline in bench/fig5_rewrite) and (b) user/library-specific
//    rules like LiDIA's `1.0 / f  ->  f.Inverse()`.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "rewrite/expr.hpp"

namespace cgp::rewrite {

/// Generic rule: orient a concept axiom left-to-right.
struct concept_rule {
  std::string concept_name;  ///< e.g. "Monoid"
  std::string axiom_name;    ///< e.g. "right_identity"
  /// Apply only when the rewrite reduces node count (guards against using
  /// e.g. associativity as a non-terminating rule).
  bool require_shrink = true;
};

/// Concrete rule over the expression IR.  Metavariables in `pattern` are
/// match holes; an optional guard further restricts applicability.
struct expr_rule {
  std::string name;
  expr pattern;
  expr replacement;
  std::string provenance;  ///< "instance", "user", "derived-theorem", ...
  std::function<bool(const std::map<std::string, expr>& binding)> guard;
};

/// Converts an (already symbol-renamed) axiom term into an expression
/// pattern for expressions of type `type`.
///
/// Conversion rules:
///  * term variables become typed metavariables;
///  * constants become literals parsed for `type` (or symbolic constants,
///    e.g. the identity matrix `I`);
///  * arity-2 applications of operator-like symbols become binary nodes,
///    arity-1 applications of `-`/`!`/`~` become unary nodes, everything
///    else becomes a call node;
///  * the special symbol `id` applied to one argument collapses to the
///    argument itself (for self-inverse operations such as xor).
[[nodiscard]] expr pattern_from_term(const core::term& t,
                                     const std::string& type);

/// One record of a rule application, for diagnostics, tests, and the bench.
struct rewrite_step {
  std::string rule;        ///< rule or axiom name
  std::string provenance;  ///< concept name or expr_rule provenance
  std::string before;
  std::string after;
};

}  // namespace cgp::rewrite
