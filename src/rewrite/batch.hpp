// Data-parallel batch rewriting: simplify a workload of expressions over
// any Executor, sharing ONE simplifier — and therefore one instantiation
// memo.  This is the concurrent_map payoff: the per-(rule, type, operator)
// axiom instantiations are computed once by whichever worker gets there
// first and read lock-cheaply (one shard mutex) by everyone else, so a
// batch touching the same algebraic shapes pays the registry lookup +
// pattern construction once, not once per thread.
//
// `simplify` is const and the memo is insert-only, so the fan-out needs no
// coordination beyond the barrier `parallel_for` already provides.  Rule
// registration (add_concept_rule) clears the memo and must happen before
// the batch — the simplifier's quiescence contract, unchanged.
#pragma once

#include <cstddef>
#include <vector>

#include "parallel/algorithms.hpp"
#include "parallel/executor.hpp"
#include "parallel/thread_pool.hpp"
#include "rewrite/engine.hpp"
#include "telemetry/telemetry.hpp"

namespace cgp::rewrite {

/// Simplifies every expression of `batch` in parallel on `exec` (any
/// Executor), returning results in input order.  All workers share the
/// simplifier's instantiation memo.  Traces are not collected — batch
/// callers that want per-expression traces should call simplify directly.
template <parallel::Executor E = parallel::thread_pool>
[[nodiscard]] std::vector<expr> simplify_batch(
    const simplifier& s, const std::vector<expr>& batch,
    E& exec = parallel::thread_pool::default_pool(), std::size_t grain = 8) {
  telemetry::span span("rewrite.simplify_batch");
  span.charge(batch.size());
  // expr has no default constructor (factory-only); seed the output with
  // the inputs (cheap shared-node copies) and overwrite slot by slot.
  std::vector<expr> out(batch);
  parallel::parallel_for(
      batch.size(), [&](std::size_t i) { out[i] = s.simplify(batch[i]); },
      exec, grain);
  return out;
}

}  // namespace cgp::rewrite
