// The concept-based simplifier (Simplicissimus, Section 3.2).
//
// The engine walks an expression bottom-up and, at every operator node,
// consults the concept registry: if the node's (type, operation) pair models
// the concept guarding a generic rule, the rule's axiom is instantiated via
// the model's symbol binding and applied.  Concrete `expr_rule`s (library-
// specific specializations, Section 3.2's LiDIA example) are tried first so
// a library can override the generic algebra with a faster call.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/registry.hpp"
#include "parallel/concurrent_map.hpp"
#include "rewrite/rules.hpp"

namespace cgp::rewrite {

class simplifier {
 public:
  /// Uses the given registry for model lookups (defaults to the global one).
  explicit simplifier(const core::concept_registry& reg =
                          core::concept_registry::global())
      : registry_(&reg) {}

  /// Movable (factory functions return simplifiers by value); the
  /// instantiation memo is not carried across — it is a pure cache, and
  /// the concurrent map pins its shards in place, so the moved-to
  /// simplifier simply rewarms.  Moving a simplifier other threads are
  /// using is a bug with or without the memo.
  simplifier(simplifier&& other) noexcept
      : registry_(other.registry_),
        concept_rules_(std::move(other.concept_rules_)),
        expr_rules_(std::move(other.expr_rules_)),
        fold_constants_(other.fold_constants_) {}
  simplifier& operator=(simplifier&& other) noexcept {
    registry_ = other.registry_;
    concept_rules_ = std::move(other.concept_rules_);
    expr_rules_ = std::move(other.expr_rules_);
    fold_constants_ = other.fold_constants_;
    instantiation_cache_.clear();
    return *this;
  }

  /// Registers a generic concept-guarded rule.
  void add_concept_rule(concept_rule r) {
    concept_rules_.push_back(std::move(r));
    instantiation_cache_.clear();
  }
  /// Registers a concrete expression rule (user extension point).
  void add_expr_rule(expr_rule r) { expr_rules_.push_back(std::move(r)); }

  /// Folds operator applications whose operands are all literals by running
  /// the evaluator at compile^H^H^H rewrite time (e.g. `2 * 3 -> 6`).
  void enable_constant_folding(bool on = true) { fold_constants_ = on; }

  /// Installs the default generic rule set derived from the built-in
  /// algebra: Monoid identities, Group inverses, and the machine-provable
  /// derived theorems (annihilation, double inverse).  This is the
  /// "two concept-based rules" configuration of Fig. 5 (plus companions).
  void add_default_concept_rules();

  [[nodiscard]] std::size_t concept_rule_count() const noexcept {
    return concept_rules_.size();
  }
  [[nodiscard]] std::size_t expr_rule_count() const noexcept {
    return expr_rules_.size();
  }

  /// Simplifies to fixpoint (bounded), appending applied steps to `trace`.
  [[nodiscard]] expr simplify(const expr& e,
                              std::vector<rewrite_step>* trace = nullptr) const;

  /// Single top-level attempt: returns the rewritten node if some rule fires
  /// at the *root* of `e`, nullopt otherwise.  Used by tests.
  [[nodiscard]] std::optional<expr> rewrite_at_root(
      const expr& e, std::vector<rewrite_step>* trace = nullptr) const;

 private:
  [[nodiscard]] expr simplify_once(const expr& e, bool& changed,
                                   std::vector<rewrite_step>* trace) const;

  const core::concept_registry* registry_;
  std::vector<concept_rule> concept_rules_;
  std::vector<expr_rule> expr_rules_;
  bool fold_constants_ = false;
  /// Memoizes axiom instantiation per (rule index, type, operator): the
  /// registry lookup + term renaming + pattern construction happen once per
  /// concrete shape instead of at every node visit.  A striped insert-only
  /// concurrent map, so `simplify` (const) is safe to call from many
  /// threads at once — `simplify_batch` (batch.hpp) fans a workload over
  /// one shared simplifier and all threads share the memo.  Mutation of
  /// the rule set (add_concept_rule) clears it and must be quiescent.
  mutable parallel::concurrent_map<std::string,
                                   std::optional<std::pair<expr, expr>>>
      instantiation_cache_;
};

/// Rules licensed by machine-checked theorems rather than raw axioms
/// (provenance "derived-theorem"):
///   x * 0 -> 0      by theories::ring_annihilation()
///   -(-x) -> x      by theories::group_double_inverse()
/// Instantiated for the built-in int/double rings.
[[nodiscard]] std::vector<expr_rule> derived_theorem_rules();

/// Builds the ten enumerated instance rules from Fig. 5's "Instances"
/// column, the way a traditional (non-concept-aware) simplifier would have
/// to state them.  Used as the baseline in bench/fig5_rewrite.
[[nodiscard]] std::vector<expr_rule> fig5_instance_rules();

/// The LiDIA-style user rule of Section 3.2: `1.0 / f -> f.Inverse()` for
/// the arbitrary-precision type "bigfloat".
[[nodiscard]] expr_rule lidia_inverse_rule();

/// Normalization rule `1.0 / x -> reciprocal(x)` for field types, which
/// lets the generic Group right-inverse rule recognize `f * (1.0 / f)`.
[[nodiscard]] expr_rule reciprocal_normalization_rule(const std::string& type);

}  // namespace cgp::rewrite
