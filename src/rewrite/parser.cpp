#include "rewrite/parser.hpp"

#include <cctype>
#include <charconv>
#include <vector>

namespace cgp::rewrite {
namespace {

struct rtoken {
  enum class kind { number, string_lit, ident, meta, punct, eof };
  kind k = kind::eof;
  std::string text;
  bool is_float = false;
};

std::vector<rtoken> lex(std::string_view src) {
  std::vector<rtoken> out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      bool is_float = false;
      bool is_hex = j + 1 < n && src[j] == '0' &&
                    (src[j + 1] == 'x' || src[j + 1] == 'X');
      if (is_hex) j += 2;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '.')) {
        if (src[j] == '.') is_float = true;
        ++j;
      }
      out.push_back({rtoken::kind::number, std::string(src.substr(i, j - i)),
                     is_float});
      i = j;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '_'))
        ++j;
      out.push_back({rtoken::kind::ident, std::string(src.substr(i, j - i)),
                     false});
      i = j;
      continue;
    }
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < n && src[j] != '"') ++j;
      if (j >= n) throw parse_error("unterminated string literal");
      out.push_back({rtoken::kind::string_lit,
                     std::string(src.substr(i + 1, j - i - 1)), false});
      i = j + 1;
      continue;
    }
    if (c == '?') {
      std::size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '_'))
        ++j;
      if (j == i + 1) throw parse_error("'?' must introduce a metavariable");
      out.push_back({rtoken::kind::meta, std::string(src.substr(i, j - i)),
                     false});
      i = j;
      continue;
    }
    // Two-char operators first.
    for (std::string_view two : {"==", "!=", "<=", ">=", "&&", "||"}) {
      if (src.substr(i, 2) == two) {
        out.push_back({rtoken::kind::punct, std::string(two), false});
        i += 2;
        goto next;
      }
    }
    if (std::string_view("+-*/%&|^!~<>(),").find(c) !=
        std::string_view::npos) {
      out.push_back({rtoken::kind::punct, std::string(1, c), false});
      ++i;
      continue;
    }
    throw parse_error(std::string("unexpected character '") + c + "'");
  next:;
  }
  out.push_back({});
  return out;
}

class parser {
 public:
  parser(std::vector<rtoken> toks,
         const std::map<std::string, std::string>& types)
      : toks_(std::move(toks)), types_(types) {}

  expr parse() {
    expr e = parse_or();
    if (!peek().text.empty() || peek().k != rtoken::kind::eof)
      throw parse_error("trailing input after expression: '" + peek().text +
                        "'");
    return e;
  }

 private:
  const rtoken& peek() const { return toks_[pos_]; }
  rtoken take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool accept(std::string_view p) {
    if (peek().k == rtoken::kind::punct && peek().text == p) {
      (void)take();
      return true;
    }
    return false;
  }

  std::string type_of(const std::string& name, const char* what) const {
    auto it = types_.find(name);
    if (it == types_.end())
      throw parse_error(std::string("no type given for ") + what + " '" +
                        name + "'");
    return it->second;
  }

  expr parse_binary_level(int level) {
    static const std::vector<std::vector<std::string>> ops = {
        {"||"}, {"&&"}, {"==", "!=", "<", "<=", ">", ">="},
        {"+", "-"}, {"*", "/", "%", "&", "|", "^"}};
    if (level >= static_cast<int>(ops.size())) return parse_unary();
    expr lhs = parse_binary_level(level + 1);
    for (;;) {
      bool matched = false;
      for (const std::string& op : ops[level]) {
        if (peek().k == rtoken::kind::punct && peek().text == op) {
          (void)take();
          expr rhs = parse_binary_level(level + 1);
          const bool boolean =
              level <= 1 || (level == 2);  // logic and comparisons
          lhs = expr::binary_op(op, std::move(lhs), std::move(rhs),
                                boolean && level == 2 ? "bool" : "");
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  expr parse_or() { return parse_binary_level(0); }

  expr parse_unary() {
    for (const char* op : {"-", "!", "~"}) {
      if (peek().k == rtoken::kind::punct && peek().text == op) {
        (void)take();
        return expr::unary_op(op, parse_unary());
      }
    }
    return parse_primary();
  }

  expr parse_primary() {
    const rtoken t = take();
    switch (t.k) {
      case rtoken::kind::number: {
        if (t.is_float) {
          return expr::double_lit(std::strtod(t.text.c_str(), nullptr));
        }
        if (t.text.size() > 2 && t.text[0] == '0' &&
            (t.text[1] == 'x' || t.text[1] == 'X')) {
          std::uint64_t v = 0;
          std::from_chars(t.text.data() + 2, t.text.data() + t.text.size(),
                          v, 16);
          return expr::uint_lit(v);
        }
        std::int64_t v = 0;
        std::from_chars(t.text.data(), t.text.data() + t.text.size(), v);
        return expr::int_lit(v);
      }
      case rtoken::kind::string_lit:
        return expr::string_lit(t.text);
      case rtoken::kind::meta:
        return expr::meta(t.text.substr(1), type_of(t.text, "metavariable"));
      case rtoken::kind::ident: {
        if (t.text == "true") return expr::bool_lit(true);
        if (t.text == "false") return expr::bool_lit(false);
        if (accept("(")) {
          std::vector<expr> args;
          if (!accept(")")) {
            do {
              args.push_back(parse_or());
            } while (accept(","));
            if (!accept(")")) throw parse_error("expected ')' in call");
          }
          std::string type;
          if (auto it = types_.find(t.text); it != types_.end())
            type = it->second;
          else if (!args.empty())
            type = args[0].type();
          return expr::call_fn(t.text, std::move(args), std::move(type));
        }
        if (auto it = types_.find(t.text); it != types_.end())
          return expr::var(t.text, it->second);
        // Unmapped identifier: a named constant; type inferred by context
        // is not available here, so leave it untyped-ish with its name.
        return expr::constant(t.text, types_.count("$const")
                                          ? types_.at("$const")
                                          : "matrix");
      }
      case rtoken::kind::punct:
        if (t.text == "(") {
          expr inner = parse_or();
          if (!accept(")")) throw parse_error("expected ')'");
          return inner;
        }
        throw parse_error("unexpected token '" + t.text + "'");
      case rtoken::kind::eof:
        throw parse_error("unexpected end of input");
    }
    throw parse_error("unreachable");
  }

  std::vector<rtoken> toks_;
  const std::map<std::string, std::string>& types_;
  std::size_t pos_ = 0;
};

}  // namespace

expr parse_expr(std::string_view source,
                const std::map<std::string, std::string>& types) {
  parser p(lex(source), types);
  return p.parse();
}

expr_rule parse_rule(const std::string& name, std::string_view pattern,
                     std::string_view replacement,
                     const std::map<std::string, std::string>& types,
                     std::string provenance) {
  return {name, parse_expr(pattern, types), parse_expr(replacement, types),
          std::move(provenance), {}};
}

}  // namespace cgp::rewrite
