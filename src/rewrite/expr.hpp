// Typed expression IR for the Simplicissimus-style optimizer (Section 3.2).
//
// A traditional compiler simplifier rewrites `x + 0 -> x` only for built-in
// integers.  Simplicissimus instead guards rules by *concepts of the data
// types*; this IR therefore carries a type name on every node so the engine
// can ask the concept registry whether (type, operation) models Monoid,
// Group, etc. before firing a rule.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace cgp::rewrite {

/// Dense double matrix literal for evaluating Fig. 5's `A . I -> A` and
/// `A . A^-1 -> I` instances with real arithmetic.
struct matrix_value {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> data;  ///< row-major, rows*cols

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data[r * cols + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data[r * cols + c];
  }
  [[nodiscard]] static matrix_value identity(std::size_t n);
  friend bool operator==(const matrix_value&, const matrix_value&) = default;
};

/// Runtime value of an expression.  `monostate` = no value (pure symbol).
using value = std::variant<std::monostate, std::int64_t, std::uint64_t,
                           double, bool, std::string,
                           std::shared_ptr<const matrix_value>>;

[[nodiscard]] std::string value_to_string(const value& v);
[[nodiscard]] bool value_equal(const value& a, const value& b);

/// Immutable typed expression tree.
class expr {
 public:
  enum class kind {
    variable,     ///< named program variable, e.g. `i : int`
    metavariable, ///< rule pattern hole, matches any subexpression
    literal,      ///< concrete constant with a runtime value
    named_const,  ///< symbolic constant, e.g. the identity matrix `I`
    unary,        ///< prefix operator application, e.g. `-x`, `!b`
    binary,       ///< infix operator application, e.g. `x + y`
    call,         ///< named function call, e.g. `concat(s, t)`, `f.Inverse()`
  };

  // -- constructors ---------------------------------------------------------
  [[nodiscard]] static expr var(std::string name, std::string type);
  [[nodiscard]] static expr meta(std::string name, std::string type = "");
  [[nodiscard]] static expr lit(value v, std::string type);
  [[nodiscard]] static expr constant(std::string name, std::string type);
  [[nodiscard]] static expr unary_op(std::string op, expr operand,
                                     std::string type = "");
  [[nodiscard]] static expr binary_op(std::string op, expr lhs, expr rhs,
                                      std::string type = "");
  [[nodiscard]] static expr call_fn(std::string fn, std::vector<expr> args,
                                    std::string type);

  // convenience literals
  [[nodiscard]] static expr int_lit(std::int64_t v) {
    return lit(v, "int");
  }
  [[nodiscard]] static expr uint_lit(std::uint64_t v) {
    return lit(v, "unsigned");
  }
  [[nodiscard]] static expr double_lit(double v) { return lit(v, "double"); }
  [[nodiscard]] static expr bool_lit(bool v) { return lit(v, "bool"); }
  [[nodiscard]] static expr string_lit(std::string v) {
    return lit(std::move(v), "string");
  }

  // -- observers ------------------------------------------------------------
  [[nodiscard]] kind node_kind() const noexcept { return node_->k; }
  [[nodiscard]] const std::string& symbol() const noexcept {
    return node_->symbol;
  }
  [[nodiscard]] const std::string& type() const noexcept {
    return node_->type;
  }
  [[nodiscard]] const value& literal_value() const noexcept {
    return node_->val;
  }
  [[nodiscard]] const std::vector<expr>& children() const noexcept {
    return node_->children;
  }
  [[nodiscard]] std::size_t size() const noexcept;

  [[nodiscard]] bool is(kind k) const noexcept { return node_->k == k; }

  friend bool operator==(const expr& a, const expr& b);
  friend bool operator!=(const expr& a, const expr& b) { return !(a == b); }

  [[nodiscard]] std::string to_string() const;

  /// Matches `*this` against `pattern`, binding the pattern's metavariables.
  /// A metavariable with a nonempty type only matches subexpressions of that
  /// type.  Repeated metavariables must bind structurally equal expressions.
  [[nodiscard]] std::optional<std::map<std::string, expr>> match(
      const expr& pattern) const;

  /// Replaces metavariables by their bindings.
  [[nodiscard]] expr substitute(const std::map<std::string, expr>& b) const;

 private:
  struct node {
    kind k;
    std::string symbol;  ///< var/meta/const name, operator, or function name
    std::string type;    ///< type name, e.g. "int", "matrix", "bigfloat"
    value val;           ///< only for kind::literal
    std::vector<expr> children;
  };

  explicit expr(std::shared_ptr<const node> n) : node_(std::move(n)) {}
  [[nodiscard]] static expr make(node n) {
    return expr(std::make_shared<const node>(std::move(n)));
  }

  std::shared_ptr<const node> node_;
};

/// Parses a literal spelling (as found in model symbol bindings, e.g. "0",
/// "1.0", "true", "0xFFFFFFFF", "\"\"", "I") into an expression of `type`.
/// Returns nullopt for spellings that are not literals of that type.
[[nodiscard]] std::optional<expr> parse_literal(const std::string& spelling,
                                                const std::string& type);

}  // namespace cgp::rewrite
