// A small textual front end for the rewrite IR, so expressions and user
// rules can be written as strings:
//
//   parse_expr("(i + 0) * 1", {{"i", "int"}})          // typed variables
//   parse_expr("concat(s, \"\")", {{"s", "string"}})
//   parse_expr("?x + 0", {{"?x", "int"}})              // metavariables
//
// Grammar (C-like precedence):
//   expr     := or
//   or       := and    { "||" and }
//   and      := cmp    { "&&" cmp }
//   cmp      := add    { ("=="|"!="|"<"|"<="|">"|">=") add }
//   add      := mul    { ("+"|"-") mul }
//   mul      := unary  { ("*"|"/"|"%"|"&"|"|"|"^") unary }
//   unary    := ("-"|"!"|"~") unary | postfix
//   postfix  := primary
//   primary  := number | string | "true" | "false" | ident
//             | ident "(" args ")" | "(" expr ")" | "?" ident
//
// Identifier types come from the `types` map; unmapped identifiers become
// named constants of the expected type (e.g. `I` in a matrix context).
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>

#include "rewrite/rules.hpp"

namespace cgp::rewrite {

class parse_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses `source` into an expression.  `types` maps variable and
/// metavariable names (metavariables keep their leading '?') to type names;
/// numeric literal types are inferred (int vs double), and function-call
/// result types default to the first argument's type unless the function
/// name appears in `types`.
[[nodiscard]] expr parse_expr(std::string_view source,
                              const std::map<std::string, std::string>& types);

/// Convenience: builds an expr_rule from two strings sharing one type map.
[[nodiscard]] expr_rule parse_rule(const std::string& name,
                                   std::string_view pattern,
                                   std::string_view replacement,
                                   const std::map<std::string, std::string>&
                                       types,
                                   std::string provenance = "user");

}  // namespace cgp::rewrite
