// Evaluation and cost modelling for the rewrite IR.
//
// The evaluator gives the ground truth the property tests check rewrites
// against: for every rule application, evaluating the expression before and
// after the rewrite (over randomized environments) must give equal values —
// i.e. rewrites are semantics-preserving exactly because the model declared
// the concept whose axiom generated the rule.
//
// The cost model supplies the "optimization" in the optimizer: each operator
// carries an abstract cost (division and matrix products are expensive,
// identities are free), so `cost(simplify(e)) <= cost(e)` quantifies the
// benefit in bench/fig5_rewrite.
#pragma once

#include <map>
#include <stdexcept>
#include <string>

#include "rewrite/expr.hpp"

namespace cgp::rewrite {

/// Thrown on evaluation of an ill-formed expression (unknown variable,
/// operator/type mismatch, non-square matrix inverse, ...).
class eval_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Variable / named-constant environment.
using environment = std::map<std::string, value>;

/// Evaluates `e` under `env`.  Supports: int/unsigned/double/bool/string
/// arithmetic and logic, `concat`, `reciprocal`, `Inverse` (bigfloat),
/// `matmul`/`inverse` on matrices, and the named constant `I` (resolved to
/// an identity matrix matching its context, or taken from `env`).
[[nodiscard]] value evaluate(const expr& e, const environment& env);

/// Abstract per-operation cost model.  Costs compose additively over the
/// tree; leaves are free.
class cost_model {
 public:
  /// Defaults: +,-,logic = 1; * = 2; / = 12; concat = 6; matmul = 250;
  /// matrix inverse = 900; reciprocal = 12; Inverse (bigfloat) = 4;
  /// unknown calls = 4.
  cost_model();

  void set_cost(const std::string& op, double c) { costs_[op] = c; }
  [[nodiscard]] double op_cost(const std::string& op) const;
  [[nodiscard]] double total(const expr& e) const;

 private:
  std::map<std::string, double> costs_;
  double default_call_cost_ = 4.0;
};

}  // namespace cgp::rewrite
