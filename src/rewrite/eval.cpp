#include "rewrite/eval.hpp"

#include <cmath>

namespace cgp::rewrite {
namespace {

using matrix_ptr = std::shared_ptr<const matrix_value>;

matrix_ptr as_matrix(const value& v, const char* ctx) {
  if (const auto* m = std::get_if<matrix_ptr>(&v); m != nullptr && *m)
    return *m;
  throw eval_error(std::string("expected matrix operand in ") + ctx);
}

value matmul(const value& a, const value& b) {
  const matrix_ptr ma = as_matrix(a, "matmul");
  const matrix_ptr mb = as_matrix(b, "matmul");
  if (ma->cols != mb->rows) throw eval_error("matmul: dimension mismatch");
  matrix_value out{ma->rows, mb->cols,
                   std::vector<double>(ma->rows * mb->cols, 0.0)};
  for (std::size_t i = 0; i < ma->rows; ++i)
    for (std::size_t k = 0; k < ma->cols; ++k) {
      const double aik = ma->at(i, k);
      for (std::size_t j = 0; j < mb->cols; ++j)
        out.at(i, j) += aik * mb->at(k, j);
    }
  return std::make_shared<const matrix_value>(std::move(out));
}

/// Gauss-Jordan inverse (square, well-conditioned inputs only; this is an
/// evaluator for rewrite testing, not a numerics library — see src/linalg).
value matinv(const value& a) {
  const matrix_ptr m = as_matrix(a, "inverse");
  if (m->rows != m->cols) throw eval_error("inverse: non-square matrix");
  const std::size_t n = m->rows;
  matrix_value aug{n, 2 * n, std::vector<double>(n * 2 * n, 0.0)};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) aug.at(i, j) = m->at(i, j);
    aug.at(i, n + i) = 1.0;
  }
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(aug.at(r, col)) > std::abs(aug.at(pivot, col))) pivot = r;
    if (std::abs(aug.at(pivot, col)) < 1e-12)
      throw eval_error("inverse: singular matrix");
    if (pivot != col)
      for (std::size_t j = 0; j < 2 * n; ++j)
        std::swap(aug.at(pivot, j), aug.at(col, j));
    const double d = aug.at(col, col);
    for (std::size_t j = 0; j < 2 * n; ++j) aug.at(col, j) /= d;
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = aug.at(r, col);
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < 2 * n; ++j)
        aug.at(r, j) -= f * aug.at(col, j);
    }
  }
  matrix_value out{n, n, std::vector<double>(n * n)};
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) out.at(i, j) = aug.at(i, n + j);
  return std::make_shared<const matrix_value>(std::move(out));
}

template <class T>
value arith_binary(const std::string& op, T a, T b) {
  if (op == "+") return static_cast<T>(a + b);
  if (op == "-") return static_cast<T>(a - b);
  if (op == "*") return static_cast<T>(a * b);
  if (op == "/") {
    if constexpr (std::is_integral_v<T>) {
      if (b == T{0}) throw eval_error("integer division by zero");
    }
    return static_cast<T>(a / b);
  }
  if constexpr (std::is_integral_v<T>) {
    if (op == "%") {
      if (b == T{0}) throw eval_error("integer modulo by zero");
      return static_cast<T>(a % b);
    }
    if (op == "&") return static_cast<T>(a & b);
    if (op == "|") return static_cast<T>(a | b);
    if (op == "^") return static_cast<T>(a ^ b);
  }
  if (op == "<") return a < b;
  if (op == "<=") return a <= b;
  if (op == ">") return a > b;
  if (op == ">=") return a >= b;
  if (op == "==") return a == b;
  if (op == "!=") return a != b;
  throw eval_error("unsupported arithmetic operator '" + op + "'");
}

}  // namespace

value evaluate(const expr& e, const environment& env) {
  switch (e.node_kind()) {
    case expr::kind::literal:
      return e.literal_value();
    case expr::kind::metavariable:
      throw eval_error("cannot evaluate unbound metavariable ?" + e.symbol());
    case expr::kind::variable:
    case expr::kind::named_const: {
      auto it = env.find(e.symbol());
      if (it != env.end()) return it->second;
      throw eval_error("unbound name '" + e.symbol() + "'");
    }
    case expr::kind::unary: {
      const value v = evaluate(e.children()[0], env);
      if (e.symbol() == "-") {
        if (const auto* i = std::get_if<std::int64_t>(&v)) return -*i;
        if (const auto* d = std::get_if<double>(&v)) return -*d;
        throw eval_error("unary - on non-numeric value");
      }
      if (e.symbol() == "!") {
        if (const auto* b = std::get_if<bool>(&v)) return !*b;
        throw eval_error("! on non-bool value");
      }
      if (e.symbol() == "~") {
        if (const auto* u = std::get_if<std::uint64_t>(&v)) return ~*u;
        throw eval_error("~ on non-unsigned value");
      }
      throw eval_error("unsupported unary operator '" + e.symbol() + "'");
    }
    case expr::kind::binary: {
      const value a = evaluate(e.children()[0], env);
      const value b = evaluate(e.children()[1], env);
      if (e.symbol() == "&&" || e.symbol() == "||") {
        const auto* ba = std::get_if<bool>(&a);
        const auto* bb = std::get_if<bool>(&b);
        if (ba == nullptr || bb == nullptr)
          throw eval_error("logical operator on non-bool operands");
        return e.symbol() == "&&" ? (*ba && *bb) : (*ba || *bb);
      }
      if (std::holds_alternative<std::int64_t>(a) &&
          std::holds_alternative<std::int64_t>(b))
        return arith_binary(e.symbol(), std::get<std::int64_t>(a),
                            std::get<std::int64_t>(b));
      if (std::holds_alternative<std::uint64_t>(a) &&
          std::holds_alternative<std::uint64_t>(b))
        return arith_binary(e.symbol(), std::get<std::uint64_t>(a),
                            std::get<std::uint64_t>(b));
      if (std::holds_alternative<double>(a) &&
          std::holds_alternative<double>(b))
        return arith_binary(e.symbol(), std::get<double>(a),
                            std::get<double>(b));
      if (std::holds_alternative<std::string>(a) &&
          std::holds_alternative<std::string>(b) && e.symbol() == "+")
        return std::get<std::string>(a) + std::get<std::string>(b);
      if (std::holds_alternative<matrix_ptr>(a)) {
        if (e.symbol() == "*") return matmul(a, b);
      }
      throw eval_error("binary '" + e.symbol() +
                       "' on unsupported operand types");
    }
    case expr::kind::call: {
      std::vector<value> args;
      args.reserve(e.children().size());
      for (const expr& c : e.children()) args.push_back(evaluate(c, env));
      const std::string& fn = e.symbol();
      if (fn == "concat" && args.size() == 2)
        return std::get<std::string>(args[0]) + std::get<std::string>(args[1]);
      if (fn == "matmul" && args.size() == 2) return matmul(args[0], args[1]);
      if (fn == "inverse" && args.size() == 1) return matinv(args[0]);
      if ((fn == "reciprocal" || fn == "Inverse") && args.size() == 1) {
        if (const auto* d = std::get_if<double>(&args[0])) {
          if (*d == 0.0) throw eval_error("reciprocal of zero");
          return 1.0 / *d;
        }
        throw eval_error(fn + " on non-floating value");
      }
      throw eval_error("unknown function '" + fn + "'");
    }
  }
  throw eval_error("unreachable expression kind");
}

cost_model::cost_model() {
  costs_ = {{"+", 1},         {"-", 1},        {"!", 1},   {"~", 1},
            {"&&", 1},        {"||", 1},       {"&", 1},   {"|", 1},
            {"^", 1},         {"<", 1},        {"*", 2},   {"%", 12},
            {"/", 12},        {"concat", 6},   {"matmul", 250},
            {"inverse", 900}, {"reciprocal", 12}, {"Inverse", 4}};
}

double cost_model::op_cost(const std::string& op) const {
  auto it = costs_.find(op);
  return it == costs_.end() ? default_call_cost_ : it->second;
}

double cost_model::total(const expr& e) const {
  double c = 0.0;
  switch (e.node_kind()) {
    case expr::kind::unary:
    case expr::kind::binary:
    case expr::kind::call:
      c = op_cost(e.symbol());
      break;
    default:
      return 0.0;
  }
  for (const expr& ch : e.children()) c += total(ch);
  return c;
}

}  // namespace cgp::rewrite
