#include "rewrite/expr.hpp"

#include <charconv>
#include <cmath>
#include <sstream>

namespace cgp::rewrite {

matrix_value matrix_value::identity(std::size_t n) {
  matrix_value m{n, n, std::vector<double>(n * n, 0.0)};
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

std::string value_to_string(const value& v) {
  return std::visit(
      [](const auto& x) -> std::string {
        using X = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<X, std::monostate>) {
          return "<novalue>";
        } else if constexpr (std::is_same_v<X, bool>) {
          return x ? "true" : "false";
        } else if constexpr (std::is_same_v<X, std::string>) {
          return "\"" + x + "\"";
        } else if constexpr (std::is_same_v<
                                 X, std::shared_ptr<const matrix_value>>) {
          std::ostringstream out;
          out << "matrix[" << (x ? x->rows : 0) << "x" << (x ? x->cols : 0)
              << "]";
          return out.str();
        } else {
          std::ostringstream out;
          out << x;
          return out.str();
        }
      },
      v);
}

bool value_equal(const value& a, const value& b) {
  if (a.index() != b.index()) return false;
  if (std::holds_alternative<std::shared_ptr<const matrix_value>>(a)) {
    const auto& ma = std::get<std::shared_ptr<const matrix_value>>(a);
    const auto& mb = std::get<std::shared_ptr<const matrix_value>>(b);
    if (ma == mb) return true;
    return ma && mb && *ma == *mb;
  }
  return a == b;
}

expr expr::var(std::string name, std::string type) {
  return make({kind::variable, std::move(name), std::move(type), {}, {}});
}
expr expr::meta(std::string name, std::string type) {
  return make({kind::metavariable, std::move(name), std::move(type), {}, {}});
}
expr expr::lit(value v, std::string type) {
  return make({kind::literal, value_to_string(v), std::move(type),
               std::move(v), {}});
}
expr expr::constant(std::string name, std::string type) {
  return make({kind::named_const, std::move(name), std::move(type), {}, {}});
}
expr expr::unary_op(std::string op, expr operand, std::string type) {
  std::string t = type.empty() ? operand.type() : std::move(type);
  return make({kind::unary, std::move(op), std::move(t), {},
               {std::move(operand)}});
}
expr expr::binary_op(std::string op, expr lhs, expr rhs, std::string type) {
  std::string t = type.empty() ? lhs.type() : std::move(type);
  return make({kind::binary, std::move(op), std::move(t), {},
               {std::move(lhs), std::move(rhs)}});
}
expr expr::call_fn(std::string fn, std::vector<expr> args, std::string type) {
  return make({kind::call, std::move(fn), std::move(type), {},
               std::move(args)});
}

std::size_t expr::size() const noexcept {
  std::size_t n = 1;
  for (const expr& c : children()) n += c.size();
  return n;
}

bool operator==(const expr& a, const expr& b) {
  if (a.node_ == b.node_) return true;
  if (a.node_->k != b.node_->k || a.node_->symbol != b.node_->symbol ||
      a.node_->type != b.node_->type ||
      a.node_->children.size() != b.node_->children.size())
    return false;
  if (a.node_->k == expr::kind::literal &&
      !value_equal(a.node_->val, b.node_->val))
    return false;
  for (std::size_t i = 0; i < a.node_->children.size(); ++i)
    if (!(a.node_->children[i] == b.node_->children[i])) return false;
  return true;
}

std::string expr::to_string() const {
  switch (node_kind()) {
    case kind::variable:
    case kind::named_const:
      return symbol();
    case kind::metavariable:
      return "?" + symbol();
    case kind::literal:
      return value_to_string(literal_value());
    case kind::unary:
      return symbol() + "(" + children()[0].to_string() + ")";
    case kind::binary:
      return "(" + children()[0].to_string() + " " + symbol() + " " +
             children()[1].to_string() + ")";
    case kind::call: {
      std::string out = symbol() + "(";
      for (std::size_t i = 0; i < children().size(); ++i) {
        if (i > 0) out += ", ";
        out += children()[i].to_string();
      }
      return out + ")";
    }
  }
  return {};
}

namespace {

bool match_impl(const expr& subject, const expr& pattern,
                std::map<std::string, expr>& binding) {
  if (pattern.is(expr::kind::metavariable)) {
    if (!pattern.type().empty() && pattern.type() != subject.type())
      return false;
    auto [it, inserted] = binding.emplace(pattern.symbol(), subject);
    return inserted || it->second == subject;
  }
  if (pattern.node_kind() != subject.node_kind() ||
      pattern.symbol() != subject.symbol() ||
      pattern.children().size() != subject.children().size())
    return false;
  if (!pattern.type().empty() && pattern.type() != subject.type())
    return false;
  if (pattern.is(expr::kind::literal) &&
      !value_equal(pattern.literal_value(), subject.literal_value()))
    return false;
  for (std::size_t i = 0; i < pattern.children().size(); ++i)
    if (!match_impl(subject.children()[i], pattern.children()[i], binding))
      return false;
  return true;
}

}  // namespace

std::optional<std::map<std::string, expr>> expr::match(
    const expr& pattern) const {
  std::map<std::string, expr> binding;
  if (match_impl(*this, pattern, binding)) return binding;
  return std::nullopt;
}

expr expr::substitute(const std::map<std::string, expr>& b) const {
  switch (node_kind()) {
    case kind::metavariable: {
      auto it = b.find(symbol());
      return it == b.end() ? *this : it->second;
    }
    case kind::variable:
    case kind::literal:
    case kind::named_const:
      return *this;
    case kind::unary:
      return unary_op(symbol(), children()[0].substitute(b), type());
    case kind::binary:
      return binary_op(symbol(), children()[0].substitute(b),
                       children()[1].substitute(b), type());
    case kind::call: {
      std::vector<expr> args;
      args.reserve(children().size());
      for (const expr& c : children()) args.push_back(c.substitute(b));
      return call_fn(symbol(), std::move(args), type());
    }
  }
  return *this;
}

std::optional<expr> parse_literal(const std::string& s,
                                  const std::string& type) {
  if (s.empty()) return std::nullopt;
  if (type == "bool") {
    if (s == "true") return expr::bool_lit(true);
    if (s == "false") return expr::bool_lit(false);
    return std::nullopt;
  }
  if (type == "string") {
    if (s.size() >= 2 && s.front() == '"' && s.back() == '"')
      return expr::string_lit(s.substr(1, s.size() - 2));
    return std::nullopt;
  }
  if (type == "matrix" || type == "I") {
    // Symbolic constants of matrix type (the identity I).
    return expr::constant(s, "matrix");
  }
  if (type == "int") {
    std::int64_t v = 0;
    auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec == std::errc{} && p == s.data() + s.size()) return expr::lit(v, type);
    return std::nullopt;
  }
  if (type == "unsigned") {
    std::uint64_t v = 0;
    const bool hex = s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X');
    const char* first = hex ? s.data() + 2 : s.data();
    auto [p, ec] =
        std::from_chars(first, s.data() + s.size(), v, hex ? 16 : 10);
    if (ec == std::errc{} && p == s.data() + s.size()) return expr::lit(v, type);
    return std::nullopt;
  }
  if (type == "double" || type == "float" || type == "bigfloat" ||
      type == "rational") {
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() + s.size()) return expr::lit(v, type);
    return std::nullopt;
  }
  // Unknown type: treat the spelling as a symbolic constant.
  return expr::constant(s, type);
}

}  // namespace cgp::rewrite
