#include "rewrite/engine.hpp"

#include <algorithm>
#include <array>
#include <string_view>

#include "rewrite/eval.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace cgp::rewrite {
namespace {

// Resolved once; thereafter increments are lock-free (rule-hit counters are
// looked up per fire, which is rare next to the expr rebuilding a fire does).
telemetry::counter& cache_hit_counter() {
  static telemetry::counter& c = telemetry::registry::global().get_counter(
      "rewrite.simplifier.instantiation_cache_hits");
  return c;
}

telemetry::counter& cache_miss_counter() {
  static telemetry::counter& c = telemetry::registry::global().get_counter(
      "rewrite.simplifier.instantiation_cache_misses");
  return c;
}

void count_rule_hit(const std::string& rule_name) {
  telemetry::registry::global()
      .get_counter("rewrite.simplifier.rule." + rule_name)
      .add();
}

bool is_binary_op_symbol(std::string_view s) {
  static constexpr std::string_view ops[] = {"+",  "-",  "*",  "/",  "%",
                                             "&",  "|",  "^",  "&&", "||",
                                             "<",  "<=", ">",  ">=", "==",
                                             "!="};
  return std::find(std::begin(ops), std::end(ops), s) != std::end(ops);
}

bool is_unary_op_symbol(std::string_view s) {
  return s == "-" || s == "!" || s == "~";
}

}  // namespace

expr pattern_from_term(const core::term& t, const std::string& type) {
  using core::term;
  switch (t.node_kind()) {
    case term::kind::variable:
      return expr::meta(t.symbol(), type);
    case term::kind::constant: {
      if (auto lit = parse_literal(t.symbol(), type)) return *lit;
      return expr::constant(t.symbol(), type);
    }
    case term::kind::apply: {
      // `id(x)` collapses to `x`: self-inverse operations (e.g. xor).
      if (t.symbol() == "id" && t.arity() == 1)
        return pattern_from_term(t.args()[0], type);
      std::vector<expr> children;
      children.reserve(t.arity());
      for (const core::term& a : t.args())
        children.push_back(pattern_from_term(a, type));
      if (t.arity() == 2 && is_binary_op_symbol(t.symbol()))
        return expr::binary_op(t.symbol(), std::move(children[0]),
                               std::move(children[1]), type);
      if (t.arity() == 1 && is_unary_op_symbol(t.symbol()))
        return expr::unary_op(t.symbol(), std::move(children[0]), type);
      return expr::call_fn(t.symbol(), std::move(children), type);
    }
  }
  return expr::constant("<bad-term>", type);
}

void simplifier::add_default_concept_rules() {
  // The two rules of Fig. 5 ...
  add_concept_rule({.concept_name = "Monoid", .axiom_name = "right_identity"});
  add_concept_rule({.concept_name = "Group", .axiom_name = "right_inverse"});
  // ... plus their mirror images, available from the same axioms.
  add_concept_rule({.concept_name = "Monoid", .axiom_name = "left_identity"});
  add_concept_rule({.concept_name = "Group", .axiom_name = "left_inverse"});
}

std::optional<expr> simplifier::rewrite_at_root(
    const expr& e, std::vector<rewrite_step>* trace) const {
  // Library-specific expression rules take priority (Section 3.2: user
  // extensions often specialize general expressions to faster calls).
  for (const expr_rule& r : expr_rules_) {
    auto binding = e.match(r.pattern);
    if (!binding) continue;
    if (r.guard && !r.guard(*binding)) continue;
    telemetry::profile::probe rule_probe(
        std::string_view("rewrite.rule." + r.name));
    expr out = r.replacement.substitute(*binding);
    count_rule_hit(r.name);
    if (trace)
      trace->push_back({r.name, r.provenance, e.to_string(), out.to_string()});
    return out;
  }

  // Generic concept-guarded rules.
  if (!e.is(expr::kind::unary) && !e.is(expr::kind::binary) &&
      !e.is(expr::kind::call)) {
    return std::nullopt;
  }
  for (std::size_t ri = 0; ri < concept_rules_.size(); ++ri) {
    const concept_rule& r = concept_rules_[ri];
    // Memoized instantiation of the rule for this (type, operator) shape.
    const std::string key = std::to_string(ri) + "\x1f" + e.type() + "\x1f" +
                            e.symbol();
    const auto* cached = instantiation_cache_.find(key);
    if (cached != nullptr) {
      cache_hit_counter().add();
    } else {
      cache_miss_counter().add();
    }
    if (cached == nullptr) {
      std::optional<std::pair<expr, expr>> inst;
      if (const auto model =
              registry_->find_model(r.concept_name, {e.type(), e.symbol()})) {
        const auto axioms = registry_->all_axioms(r.concept_name);
        const auto ax = std::find_if(
            axioms.begin(), axioms.end(),
            [&](const core::axiom& a) { return a.name == r.axiom_name; });
        if (ax != axioms.end()) {
          // Instantiate the abstract axiom through the symbol binding.
          const std::map<std::string, std::string> rename(
              model->symbol_binding.begin(), model->symbol_binding.end());
          expr pattern =
              pattern_from_term(ax->lhs.rename_symbols(rename), e.type());
          expr replacement =
              pattern_from_term(ax->rhs.rename_symbols(rename), e.type());
          if (!r.require_shrink || replacement.size() < pattern.size())
            inst = std::pair{std::move(pattern), std::move(replacement)};
        }
      } else {
        // No model (yet): do NOT cache — declaring one later must take
        // effect immediately (the "for free" extensibility of Section 3.2).
        continue;
      }
      // Racing simplify() calls may both compute the instantiation; the
      // insert-only map keeps the winner and everyone shares its stable
      // address (losers recomputed equal values — instantiation is pure).
      cached = &instantiation_cache_.try_emplace(key, std::move(inst))
                    .first->second;
    }
    if (!cached->has_value()) continue;
    const auto& [pattern, replacement] = **cached;

    auto binding = e.match(pattern);
    if (!binding) continue;
    telemetry::profile::probe rule_probe(std::string_view(
        "rewrite.rule." + r.concept_name + "::" + r.axiom_name));
    expr out = replacement.substitute(*binding);
    count_rule_hit(r.concept_name + "::" + r.axiom_name);
    if (trace)
      trace->push_back({r.concept_name + "::" + r.axiom_name, r.concept_name,
                        e.to_string(), out.to_string()});
    return out;
  }

  // Constant folding: all-literal operands evaluate at rewrite time.
  if (fold_constants_ && !e.children().empty()) {
    const bool all_literal = std::all_of(
        e.children().begin(), e.children().end(),
        [](const expr& c) { return c.is(expr::kind::literal); });
    if (all_literal) {
      try {
        const value v = evaluate(e, {});
        expr out = expr::lit(v, e.type());
        if (!(out == e)) {
          static const auto kFoldFrame =
              telemetry::profile::intern("rewrite.rule.constant-fold");
          telemetry::profile::probe rule_probe(kFoldFrame);
          count_rule_hit("constant-fold");
          if (trace)
            trace->push_back(
                {"constant-fold", "evaluator", e.to_string(),
                 out.to_string()});
          return out;
        }
      } catch (const eval_error&) {
        // Not evaluable (division by zero, unknown call): leave it alone.
      }
    }
  }
  return std::nullopt;
}

expr simplifier::simplify_once(const expr& e, bool& changed,
                               std::vector<rewrite_step>* trace) const {
  // Bottom-up: simplify children first so identities cascade outward.
  expr cur = e;
  switch (e.node_kind()) {
    case expr::kind::unary:
      cur = expr::unary_op(e.symbol(),
                           simplify_once(e.children()[0], changed, trace),
                           e.type());
      break;
    case expr::kind::binary:
      cur = expr::binary_op(e.symbol(),
                            simplify_once(e.children()[0], changed, trace),
                            simplify_once(e.children()[1], changed, trace),
                            e.type());
      break;
    case expr::kind::call: {
      std::vector<expr> args;
      args.reserve(e.children().size());
      for (const expr& c : e.children())
        args.push_back(simplify_once(c, changed, trace));
      cur = expr::call_fn(e.symbol(), std::move(args), e.type());
      break;
    }
    default:
      break;
  }
  if (auto rewritten = rewrite_at_root(cur, trace)) {
    changed = true;
    return *rewritten;
  }
  return cur;
}

expr simplifier::simplify(const expr& e,
                          std::vector<rewrite_step>* trace) const {
  telemetry::trace::child_span tspan("rewrite.simplifier.simplify", "rewrite");
  static const auto kSimplifyFrame =
      telemetry::profile::intern("rewrite.simplifier.simplify");
  telemetry::profile::probe simplify_probe(kSimplifyFrame);
  // When the caller is tracing causally but did not ask for a step vector,
  // record into a local one so the derivation chain still reaches the trace.
  std::vector<rewrite_step> local_steps;
  const bool traced = telemetry::trace::current_context().active();
  std::vector<rewrite_step>* steps =
      trace != nullptr ? trace : (traced ? &local_steps : nullptr);
  const std::size_t first_step = steps != nullptr ? steps->size() : 0;
  expr cur = e;
  auto& reg = telemetry::registry::global();
  reg.get_counter("rewrite.simplifier.simplify_calls").add();
  // Node count strictly decreases on every effective pass for the shipped
  // shrink-checked rules, but user rules may grow terms; cap passes.
  constexpr int kMaxPasses = 64;
  int passes = 0;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    ++passes;
    bool changed = false;
    cur = simplify_once(cur, changed, steps);
    if (!changed) break;
  }
  reg.get_counter("rewrite.simplifier.passes").add(static_cast<std::uint64_t>(passes));
  reg.get_histogram("rewrite.simplifier.passes_per_call")
      .record(static_cast<std::uint64_t>(passes));
  // Live cache hit-rate series: the sampler snapshots this gauge (ppm,
  // avoiding float gauges) so a warming/thrashing instantiation cache is
  // visible while a long analysis run is still going.
  const std::uint64_t hits = cache_hit_counter().value();
  const std::uint64_t misses = cache_miss_counter().value();
  if (hits + misses != 0)
    reg.get_gauge("rewrite.simplifier.cache_hit_rate_ppm")
        .set(static_cast<std::int64_t>(hits * 1000000 / (hits + misses)));
  if (traced && steps != nullptr) {
    // The full derivation chain, one instant per applied rule, in order.
    for (std::size_t i = first_step; i < steps->size(); ++i) {
      const rewrite_step& s = (*steps)[i];
      telemetry::trace::instant("rewrite.step", "rewrite",
                                {{"rule", s.rule},
                                 {"guard", s.provenance},
                                 {"before", s.before},
                                 {"after", s.after}});
    }
    tspan.arg("input", e.to_string());
    tspan.arg("output", cur.to_string());
    tspan.arg("steps", std::to_string(steps->size() - first_step));
  }
  return cur;
}

// ---------------------------------------------------------------------------
// Fig. 5 instance rules (the traditional-simplifier baseline)
// ---------------------------------------------------------------------------

std::vector<expr_rule> fig5_instance_rules() {
  using E = expr;
  std::vector<expr_rule> rules;
  const auto add = [&](std::string name, expr pat, expr rep) {
    rules.push_back(
        {std::move(name), std::move(pat), std::move(rep), "instance", {}});
  };
  const expr i = E::meta("i", "int");
  const expr f = E::meta("f", "double");
  const expr b = E::meta("b", "bool");
  const expr u = E::meta("u", "unsigned");
  const expr s = E::meta("s", "string");
  const expr A = E::meta("A", "matrix");
  const expr r = E::meta("r", "rational");

  // Row 1 of Fig. 5: x + 0 -> x instances.
  add("i*1->i", E::binary_op("*", i, E::int_lit(1)), i);
  add("f*1.0->f", E::binary_op("*", f, E::double_lit(1.0)), f);
  add("b&&true->b", E::binary_op("&&", b, E::bool_lit(true)), b);
  add("u&0xFFFFFFFF->u",
      E::binary_op("&", u, E::uint_lit(0xFFFFFFFFull)), u);
  add("concat(s,\"\")->s",
      E::call_fn("concat", {s, E::string_lit("")}, "string"), s);
  add("A.I->A",
      E::call_fn("matmul", {A, E::constant("I", "matrix")}, "matrix"), A);

  // Row 2 of Fig. 5: x + (-x) -> 0 instances.
  add("i+(-i)->0", E::binary_op("+", i, E::unary_op("-", i)), E::int_lit(0));
  add("f*(1.0/f)->1.0",
      E::binary_op("*", f, E::binary_op("/", E::double_lit(1.0), f)),
      E::double_lit(1.0));
  add("r*reciprocal(r)->1",
      E::binary_op("*", r, E::call_fn("reciprocal", {r}, "rational")),
      E::lit(1.0, "rational"));
  add("A.inverse(A)->I",
      E::call_fn("matmul", {A, E::call_fn("inverse", {A}, "matrix")},
                 "matrix"),
      E::constant("I", "matrix"));
  return rules;
}

expr_rule lidia_inverse_rule() {
  const expr f = expr::meta("f", "bigfloat");
  return {"lidia:1.0/f->f.Inverse()",
          expr::binary_op("/", expr::lit(1.0, "bigfloat"), f),
          expr::call_fn("Inverse", {f}, "bigfloat"),
          "user",
          {}};
}

std::vector<expr_rule> derived_theorem_rules() {
  using E = expr;
  std::vector<expr_rule> rules;
  for (const char* type : {"int", "double"}) {
    const expr x = E::meta("x", type);
    const expr zero = parse_literal(type == std::string("int") ? "0" : "0.0",
                                    type)
                          .value();
    rules.push_back({std::string("annihilation[") + type + "]",
                     E::binary_op("*", x, zero), zero, "derived-theorem", {}});
    rules.push_back({std::string("annihilation-left[") + type + "]",
                     E::binary_op("*", zero, x), zero, "derived-theorem", {}});
    rules.push_back({std::string("double-negation[") + type + "]",
                     E::unary_op("-", E::unary_op("-", x)), x,
                     "derived-theorem",
                     {}});
  }
  return rules;
}

expr_rule reciprocal_normalization_rule(const std::string& type) {
  const expr x = expr::meta("x", type);
  auto one = parse_literal("1.0", type);
  return {"normalize:1/x->reciprocal(x) [" + type + "]",
          expr::binary_op("/", one.value(), x),
          expr::call_fn("reciprocal", {x}, type),
          "normalization",
          {}};
}

}  // namespace cgp::rewrite
