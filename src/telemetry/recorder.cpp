#include "telemetry/recorder.hpp"

#include <chrono>
#include <sstream>

namespace cgp::telemetry::live {

std::uint64_t steady_now_ms() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

const char* to_string(flight_entry::kind k) noexcept {
  switch (k) {
    case flight_entry::kind::span:
      return "span";
    case flight_entry::kind::counter:
      return "counter";
    case flight_entry::kind::watchdog:
      return "watchdog";
    case flight_entry::kind::marker:
      return "marker";
  }
  return "?";
}

flight_recorder::flight_recorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

flight_recorder& flight_recorder::global() {
  static flight_recorder r;
  return r;
}

void flight_recorder::set_capacity(std::size_t capacity) {
  const std::lock_guard lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_);
  head_ = 0;
}

std::size_t flight_recorder::capacity() const {
  const std::lock_guard lock(mu_);
  return capacity_;
}

void flight_recorder::note(flight_entry::kind k, std::string name,
                           double value, std::string detail) {
  if constexpr (!kEnabled) return;
  flight_entry e;
  e.k = k;
  e.name = std::move(name);
  e.value = value;
  e.detail = std::move(detail);
  const std::lock_guard lock(mu_);
  // Stamp under the lock: insertion order, time order, and sequence order
  // all coincide, which validate_flight_dump checks.
  e.t_ms = steady_now_ms();
  ++recorded_;
  e.seq = recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
  ++overwritten_;
}

std::uint64_t flight_recorder::recorded() const {
  const std::lock_guard lock(mu_);
  return recorded_;
}

std::uint64_t flight_recorder::overwritten() const {
  const std::lock_guard lock(mu_);
  return overwritten_;
}

std::vector<flight_entry> flight_recorder::snapshot() const {
  const std::lock_guard lock(mu_);
  std::vector<flight_entry> out;
  out.reserve(ring_.size());
  // head_ is the oldest slot once the ring has lapped; 0 before that.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

std::string flight_recorder::dump_json() const {
  // Snapshot first (its own lock), then serialize lock-free: a dump taken
  // from a fault path must not hold the ring lock while building strings.
  const std::vector<flight_entry> entries = snapshot();
  std::uint64_t rec, over;
  std::size_t cap;
  {
    const std::lock_guard lock(mu_);
    rec = recorded_;
    over = overwritten_;
    cap = capacity_;
  }
  std::ostringstream os;
  os << "{\"schema\":\"cgp.flight.v1\",\"capacity\":" << cap
     << ",\"recorded\":" << rec << ",\"overwritten\":" << over
     << ",\"entries\":[";
  bool first = true;
  for (const flight_entry& e : entries) {
    if (!first) os << ",";
    first = false;
    os << "{\"t_ms\":" << e.t_ms << ",\"seq\":" << e.seq
       << ",\"kind\":" << json_quote(to_string(e.k))
       << ",\"name\":" << json_quote(e.name) << ",\"value\":" << e.value
       << ",\"detail\":" << json_quote(e.detail) << "}";
  }
  os << "]}";
  return os.str();
}

void flight_recorder::clear() {
  const std::lock_guard lock(mu_);
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
  overwritten_ = 0;
}

std::string flight_validation::error_text() const {
  std::string out;
  for (const std::string& e : errors) out += e + "\n";
  return out;
}

flight_validation validate_flight_dump(const json_value& doc) {
  flight_validation r;
  const auto fail = [&r](std::string msg) {
    r.ok = false;
    r.errors.push_back(std::move(msg));
  };
  if (!doc.has("schema") || doc.at("schema").str != "cgp.flight.v1") {
    fail("document is not a cgp.flight.v1 dump");
    return r;
  }
  for (const char* key : {"capacity", "recorded", "overwritten"})
    if (!doc.has(key) || !doc.at(key).is(json_value::kind::number))
      fail(std::string("missing numeric '") + key + "'");
  if (!doc.has("entries") || !doc.at("entries").is(json_value::kind::array)) {
    fail("missing entries array");
    return r;
  }
  const auto& entries = doc.at("entries").arr;
  if (r.ok) {
    const double cap = doc.at("capacity").num;
    const double rec = doc.at("recorded").num;
    const double over = doc.at("overwritten").num;
    if (static_cast<double>(entries.size()) > cap)
      fail("more entries than capacity");
    if (over > rec) fail("overwrote more entries than were ever recorded");
    if (rec - over != static_cast<double>(entries.size()))
      fail("recorded - overwritten does not match the entry count");
  }
  double prev_t = -1.0;
  double prev_seq = 0.0;
  for (const json_value& e : entries) {
    ++r.entries;
    if (!e.has("t_ms") || !e.has("seq") || !e.has("kind") || !e.has("name") ||
        !e.has("value") || !e.has("detail")) {
      fail("entry " + std::to_string(r.entries - 1) + " is missing a field");
      continue;
    }
    const double t = e.at("t_ms").num;
    if (t < prev_t)
      fail("entry " + std::to_string(r.entries - 1) +
           " goes backwards in time");
    prev_t = t;
    // seq must be STRICTLY increasing: equal or reordered stamps mean two
    // writers tore the ring.
    const double sq = e.at("seq").num;
    if (sq <= prev_seq)
      fail("entry " + std::to_string(r.entries - 1) +
           " has a non-increasing seq");
    prev_seq = sq;
    const std::string& k = e.at("kind").str;
    if (k == "span")
      ++r.spans;
    else if (k == "counter")
      ++r.counters;
    else if (k == "watchdog")
      ++r.watchdog_verdicts;
    else if (k == "marker")
      ++r.markers;
    else
      fail("entry " + std::to_string(r.entries - 1) + " has unknown kind '" +
           k + "'");
  }
  return r;
}

}  // namespace cgp::telemetry::live
