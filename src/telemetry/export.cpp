#include "telemetry/export.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace cgp::telemetry {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

const json_value& json_value::at(const std::string& key) const {
  if (k != kind::object) throw json_error("at(): not a JSON object");
  const auto it = obj.find(key);
  if (it == obj.end()) throw json_error("at(): missing key '" + key + "'");
  return it->second;
}

bool json_value::has(const std::string& key) const noexcept {
  return k == kind::object && obj.contains(key);
}

namespace {

class parser {
 public:
  explicit parser(std::string_view text) : text_(text) {}

  json_value parse_document() {
    json_value v = parse_value();
    skip_ws();
    if (pos_ != text_.size())
      throw json_error("trailing garbage at offset " + std::to_string(pos_));
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) throw json_error("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c)
      throw json_error(std::string("expected '") + c + "' at offset " +
                       std::to_string(pos_));
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  json_value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      json_value v;
      v.k = json_value::kind::string;
      v.str = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      json_value v;
      v.k = json_value::kind::boolean;
      v.b = true;
      return v;
    }
    if (consume_literal("false")) {
      json_value v;
      v.k = json_value::kind::boolean;
      return v;
    }
    if (consume_literal("null")) return {};
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) throw json_error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) throw json_error("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) throw json_error("bad \\u escape");
          unsigned code = 0;
          const auto res = std::from_chars(text_.data() + pos_,
                                           text_.data() + pos_ + 4, code, 16);
          if (res.ec != std::errc{} || res.ptr != text_.data() + pos_ + 4)
            throw json_error("bad \\u escape");
          pos_ += 4;
          // Telemetry names are ASCII; decode BMP code points to UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          throw json_error(std::string("unknown escape \\") + esc);
      }
    }
  }

  json_value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start)
      throw json_error("expected a value at offset " + std::to_string(start));
    json_value v;
    v.k = json_value::kind::number;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, v.num);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_)
      throw json_error("bad number at offset " + std::to_string(start));
    return v;
  }

  json_value parse_array() {
    expect('[');
    json_value v;
    v.k = json_value::kind::array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') throw json_error("expected ',' or ']' in array");
    }
  }

  json_value parse_object() {
    expect('{');
    json_value v;
    v.k = json_value::kind::object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') throw json_error("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

json_value parse_json(std::string_view text) {
  return parser(text).parse_document();
}

namespace {

void dump_to(const json_value& v, std::string* out) {
  switch (v.k) {
    case json_value::kind::null:
      *out += "null";
      break;
    case json_value::kind::boolean:
      *out += v.b ? "true" : "false";
      break;
    case json_value::kind::number: {
      if (!std::isfinite(v.num)) {
        *out += "null";  // JSON has no NaN/inf
        break;
      }
      char buf[32];
      const auto res = std::to_chars(buf, buf + sizeof buf, v.num);
      out->append(buf, res.ptr);
      break;
    }
    case json_value::kind::string:
      *out += json_quote(v.str);
      break;
    case json_value::kind::array: {
      *out += '[';
      bool first = true;
      for (const json_value& e : v.arr) {
        if (!first) *out += ',';
        first = false;
        dump_to(e, out);
      }
      *out += ']';
      break;
    }
    case json_value::kind::object: {
      *out += '{';
      bool first = true;
      for (const auto& [key, val] : v.obj) {
        if (!first) *out += ',';
        first = false;
        *out += json_quote(key);
        *out += ':';
        dump_to(val, out);
      }
      *out += '}';
      break;
    }
  }
}

}  // namespace

std::string dump_json(const json_value& v) {
  std::string out;
  dump_to(v, &out);
  return out;
}

}  // namespace cgp::telemetry
