#include "telemetry/complexity_check.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace cgp::telemetry {

check_report complexity_check(std::string name,
                              const std::vector<sample>& samples,
                              const core::big_o& bound,
                              double slope_tolerance, const std::string& var) {
  check_report report;
  report.name = std::move(name);
  report.bound = bound.to_string();
  report.tolerance = slope_tolerance;
  report.samples = samples.size();

  if (samples.size() < 3) {
    report.ok = false;
    report.inconclusive = true;
    report.detail =
        "inconclusive: need at least 3 samples to fit a growth exponent";
    return report;
  }
  const auto [min_it, max_it] = std::minmax_element(
      samples.begin(), samples.end(),
      [](const sample& a, const sample& b) { return a.n < b.n; });
  if (min_it->n <= 0.0 || max_it->n < 4.0 * min_it->n) {
    report.ok = false;
    report.inconclusive = true;
    report.detail =
        "inconclusive: samples must span at least a 4x range of positive n";
    return report;
  }

  // Least-squares fit of log(ops / bound(n)) against log(n).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  double max_ratio = 0.0;
  for (const sample& s : samples) {
    const double predicted = std::max(bound.eval({{var, s.n}}), 1e-12);
    const double ratio = std::max(s.ops, 1e-12) / predicted;
    max_ratio = std::max(max_ratio, ratio);
    const double x = std::log(s.n);
    const double y = std::log(ratio);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double m = static_cast<double>(samples.size());
  const double denom = m * sxx - sx * sx;
  const double slope = denom == 0.0 ? 0.0 : (m * sxy - sx * sy) / denom;

  report.growth_slope = slope;
  report.max_ratio = max_ratio;
  report.ok = slope <= slope_tolerance;

  std::ostringstream os;
  if (report.ok) {
    os << "observed ops grow no faster than " << report.bound
       << " (excess exponent " << slope << " <= " << slope_tolerance << ")";
  } else {
    os << "observed ops outgrow " << report.bound << ": excess exponent "
       << slope << " > " << slope_tolerance
       << " — the performance concept is violated";
  }
  report.detail = os.str();
  return report;
}

check_report complexity_check_and_record(std::string name,
                                         const std::vector<sample>& samples,
                                         const core::big_o& bound,
                                         registry& reg, double slope_tolerance,
                                         const std::string& var) {
  check_report report =
      complexity_check(std::move(name), samples, bound, slope_tolerance, var);
  reg.record_check(report);
  return report;
}

}  // namespace cgp::telemetry
