// Live time-series sampler: continuous observation of the telemetry
// registry while a run is still serving load.
//
// Every exporter so far (registry::export_json, trace export, perf
// reports) speaks only after a run finishes.  The sampler closes the gap
// the ROADMAP's long-running items (STLlint-as-a-service, the autotuner)
// need: a dedicated background thread snapshots the registry at a
// configurable period and appends timestamped points to fixed-capacity
// per-metric ring buffers — counters and histogram totals as per-period
// DELTAS (rates), gauges as levels — so memory stays bounded no matter
// how long the process lives.  Storage is lock-sharded by metric name:
// the sampling thread and a concurrent scraper contend per shard, not on
// one global lock.
//
// Two consumers, two formats:
//   * export_prometheus(): latest values in Prometheus text exposition
//     (scrape endpoint material; `cgp_`-prefixed, sanitized names);
//   * export_json(): the full retained series as a `cgp.live.v1`
//     document, built through json_value/dump_json so output is
//     deterministic (sorted series, shortest number round-trip) — under a
//     manual clock two identical runs export byte-identical documents,
//     which the determinism test gates on.
//
// Each tick also drives the stall watchdog (watchdog.hpp) and feeds the
// flight recorder (recorder.hpp), so liveness verdicts land on the same
// timeline as the series.  A manual mode (sample_at) takes the thread and
// the real clock out of the loop entirely for deterministic tests.
// Defining CGP_TELEMETRY_DISABLED compiles sampling down to no-ops.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/watchdog.hpp"

namespace cgp::telemetry::live {

/// One retained observation.
struct series_point {
  std::uint64_t t_ms = 0;
  double value = 0.0;
};

/// One metric's retained ring, as returned by sampler::series().
struct series_view {
  std::string name;
  std::string kind;  ///< counter_delta | gauge | hist_count_delta | hist_sum_delta
  std::uint64_t total_points = 0;  ///< ever appended (>= points.size())
  std::vector<series_point> points;  ///< oldest first
};

struct sample_options {
  std::uint64_t period_ms = 100;  ///< background sampling period
  std::size_t capacity = 256;     ///< per-metric ring capacity
  bool watch = true;              ///< drive the stall watchdog each tick
  std::size_t miss_threshold = 2; ///< busy + silent > threshold*period = stall
};

class sampler {
 public:
  static constexpr std::size_t kShards = 8;

  explicit sampler(sample_options opts = {},
                   registry& reg = registry::global());
  ~sampler();  ///< stops the background thread if running
  sampler(const sampler&) = delete;
  sampler& operator=(const sampler&) = delete;

  /// Spawns the background sampling thread (no-op if already running).
  void start();
  /// Stops and joins it (no-op if not running).  start() may be called
  /// again afterwards — the retained series persist across restarts.
  void stop();
  [[nodiscard]] bool running() const;

  /// Manual mode: takes exactly one sample stamped `now_ms`.  Used with an
  /// injected clock by the determinism tests and callable alongside the
  /// background thread (ticks serialize on the shard locks).
  void sample_at(std::uint64_t now_ms);

  /// Ticks taken so far (background + manual).
  [[nodiscard]] std::uint64_t samples_taken() const;

  [[nodiscard]] const sample_options& options() const noexcept {
    return opts_;
  }

  /// All retained series, name-sorted, points oldest-first.
  [[nodiscard]] std::vector<series_view> series() const;

  /// Latest values in Prometheus text exposition format: counters and
  /// histogram totals as cumulative `cgp_*` counters, gauges as gauges.
  /// Samples are grouped by sanitized exposition name (one `# TYPE` line
  /// per family, `untyped` when colliding members disagree on kind) and
  /// each carries the original registry name as an escaped
  /// `{metric="..."}` label.
  [[nodiscard]] std::string export_prometheus() const;

  /// Full retained series as a `cgp.live.v1` JSON document (schema,
  /// period, tick count, series[], and — when the watchdog is driven —
  /// its verdicts).  Deterministic: built via dump_json over sorted keys.
  [[nodiscard]] std::string export_json() const;

  /// Drops retained points and delta baselines (test isolation).
  void clear();

 private:
  struct series_state {
    char kind = 'c';  // c=counter g=gauge n=hist-count s=hist-sum
    std::uint64_t last_raw = 0;  // previous absolute value (delta kinds)
    double last_value = 0.0;     // latest exported value
    std::uint64_t total_points = 0;
    std::vector<series_point> ring;
    std::size_t head = 0;  // oldest slot once the ring is full
  };
  struct alignas(64) shard {
    mutable std::mutex mu;
    std::map<std::string, series_state> metrics;
  };

  void run_loop();
  void append(const std::string& name, char kind, std::uint64_t t_ms,
              std::uint64_t raw, std::int64_t gauge_level);
  [[nodiscard]] shard& shard_of(const std::string& name);
  [[nodiscard]] const shard& shard_of(const std::string& name) const;

  sample_options opts_;
  registry* reg_;
  std::array<shard, kShards> shards_;

  mutable std::mutex run_mu_;
  std::condition_variable run_cv_;
  std::thread thread_;
  bool stop_requested_ = false;
  bool running_ = false;

  std::atomic<std::uint64_t> samples_{0};
};

/// Structural check of a dumped (re-parsed) cgp.live.v1 document: schema
/// tag, numeric period/samples, well-formed series with known kinds and
/// non-decreasing point times, per-series point count within capacity.
struct live_validation {
  bool ok = true;
  std::vector<std::string> errors;
  std::size_t series = 0;
  std::size_t points = 0;
  std::size_t counters = 0;    ///< counter_delta series
  std::size_t gauges = 0;      ///< gauge series
  std::size_t histograms = 0;  ///< hist_count_delta + hist_sum_delta series
  std::size_t stalls = 0;      ///< watchdog verdicts carried in the doc

  [[nodiscard]] std::string error_text() const;
};

[[nodiscard]] live_validation validate_live_export(const json_value& doc);

/// Sanitizes a registry metric name into a Prometheus metric name:
/// `cgp_` prefix, every non-[a-zA-Z0-9_] byte replaced with '_'.
[[nodiscard]] std::string prometheus_name(const std::string& metric);

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double quote, and newline become `\\`, `\"`, and `\n`.
[[nodiscard]] std::string prometheus_escape_label(const std::string& value);

}  // namespace cgp::telemetry::live
