#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

namespace cgp::telemetry::trace {

namespace {

std::atomic<std::uint64_t> id_counter{1};

/// Small sequential per-thread lane id (stable for the thread's lifetime;
/// nicer Perfetto tracks than hashed std::thread::id values).
std::uint32_t thread_lane() noexcept {
  static std::atomic<std::uint32_t> next{1};
  static thread_local const std::uint32_t lane =
      next.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

struct tls_context {
  span_context ctx{};
  bool adopted = false;  ///< ctx was installed by context_scope
  int rank = 0;
};
thread_local tls_context tls;

counter& events_counter() {
  static counter& c =
      registry::global().get_counter("telemetry.trace.events");
  return c;
}

counter& dropped_counter() {
  static counter& c =
      registry::global().get_counter("telemetry.trace.dropped_events");
  return c;
}

const char* link_name(event::link_kind k) {
  switch (k) {
    case event::link_kind::root:
      return "root";
    case event::link_kind::scope:
      return "scope";
    case event::link_kind::async:
      return "async";
  }
  return "?";
}

}  // namespace

std::uint64_t next_id() noexcept {
  return id_counter.fetch_add(1, std::memory_order_relaxed);
}

span_context current_context() noexcept {
  if constexpr (!kEnabled) return {};
  return tls.ctx;
}

int current_rank() noexcept {
  if constexpr (!kEnabled) return 0;
  return tls.rank;
}

// --- rank_scope -------------------------------------------------------------

rank_scope::rank_scope(int rank) noexcept {
  if constexpr (kEnabled) {
    prev_ = tls.rank;
    tls.rank = rank;
  }
}

rank_scope::~rank_scope() {
  if constexpr (kEnabled) tls.rank = prev_;
}

// --- context_scope ----------------------------------------------------------

context_scope::context_scope(span_context ctx) noexcept {
  if constexpr (kEnabled) {
    prev_ = tls.ctx;
    prev_adopted_ = tls.adopted;
    tls.ctx = ctx;
    tls.adopted = true;
  }
}

context_scope::~context_scope() {
  if constexpr (kEnabled) {
    tls.ctx = prev_;
    tls.adopted = prev_adopted_;
  }
}

// --- sink -------------------------------------------------------------------

sink::sink() : epoch_(std::chrono::steady_clock::now()) {}

sink& sink::global() {
  static sink s;
  return s;
}

void sink::set_max_events(std::size_t max_events) noexcept {
  max_events_.store(max_events, std::memory_order_relaxed);
  registry::global()
      .get_gauge("telemetry.trace.max_events")
      .set(static_cast<std::int64_t>(max_events));
}

std::size_t sink::max_events() const noexcept {
  return max_events_.load(std::memory_order_relaxed);
}

std::uint64_t sink::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void sink::record(event e) {
  if constexpr (!kEnabled) return;
  const std::size_t per_shard =
      std::max<std::size_t>(1, max_events_.load(std::memory_order_relaxed) /
                                   kShards);
  shard& sh = shards_[thread_lane() % kShards];
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard lock(sh.mu);
    if (sh.events.size() >= per_shard) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      dropped_counter().add();
      return;
    }
    sh.events.push_back(std::move(e));
  }
  events_counter().add();
}

std::uint64_t sink::dropped() const noexcept {
  return dropped_.load(std::memory_order_relaxed);
}

std::size_t sink::size() const {
  std::size_t total = 0;
  for (const shard& sh : shards_) {
    const std::lock_guard lock(sh.mu);
    total += sh.events.size();
  }
  return total;
}

std::vector<event> sink::snapshot() const {
  std::vector<event> out;
  for (const shard& sh : shards_) {
    const std::lock_guard lock(sh.mu);
    out.insert(out.end(), sh.events.begin(), sh.events.end());
  }
  std::sort(out.begin(), out.end(), [](const event& a, const event& b) {
    return std::tie(a.ts_ns, a.seq) < std::tie(b.ts_ns, b.seq);
  });
  return out;
}

void sink::clear() {
  for (shard& sh : shards_) {
    const std::lock_guard lock(sh.mu);
    sh.events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

std::string sink::export_chrome_trace() const {
  const std::vector<event> events = snapshot();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  char ts_buf[32];
  for (const event& e : events) {
    if (!first) os << ",\n";
    first = false;
    // Chrome wants microseconds; keep ns resolution in the fraction.
    std::snprintf(ts_buf, sizeof ts_buf, "%llu.%03u",
                  static_cast<unsigned long long>(e.ts_ns / 1000),
                  static_cast<unsigned>(e.ts_ns % 1000));
    os << "{\"name\":" << json_quote(e.name) << ",\"cat\":"
       << json_quote(e.cat) << ",\"ph\":\"" << static_cast<char>(e.ph)
       << "\",\"ts\":" << ts_buf << ",\"pid\":" << e.pid
       << ",\"tid\":" << e.tid;
    if (e.ph == event::phase::counter) {
      // Counter tracks carry ONLY the plotted series: extra args keys
      // would each become their own Perfetto series and bury the metric.
      os << ",\"args\":{\"value\":" << e.value << "}}";
      continue;
    }
    if (e.ph == event::phase::instant) os << ",\"s\":\"t\"";
    if (e.ph == event::phase::flow_start ||
        e.ph == event::phase::flow_finish) {
      os << ",\"id\":" << e.flow_id;
      if (e.ph == event::phase::flow_finish) os << ",\"bt\":\"e\"";
    }
    os << ",\"args\":{\"trace_id\":" << e.trace_id
       << ",\"span_id\":" << e.span_id << ",\"parent_span\":" << e.parent_span
       << ",\"seq\":" << e.seq << ",\"link\":\"" << link_name(e.link) << "\"";
    for (const auto& [k, v] : e.args)
      os << "," << json_quote(k) << ":" << json_quote(v);
    os << "}}";
  }
  os << "],\"otherData\":{\"dropped_events\":" << dropped()
     << ",\"max_events\":" << max_events() << "}}";
  return os.str();
}

// --- trace_span -------------------------------------------------------------

trace_span::trace_span(std::string name, std::string cat, sink& s)
    : sink_(&s), name_(std::move(name)), cat_(std::move(cat)) {
  if constexpr (!kEnabled) return;
  prev_ = tls.ctx;
  prev_adopted_ = tls.adopted;
  ctx_.trace_id = prev_.active() ? prev_.trace_id : next_id();
  ctx_.span_id = next_id();
  event e;
  e.ph = event::phase::begin;
  e.link = !prev_.active()
               ? event::link_kind::root
               : (prev_adopted_ ? event::link_kind::async
                                : event::link_kind::scope);
  e.ts_ns = sink_->now_ns();
  e.pid = tls.rank;
  e.tid = thread_lane();
  e.trace_id = ctx_.trace_id;
  e.span_id = ctx_.span_id;
  e.parent_span = prev_.active() ? prev_.span_id : 0;
  e.name = name_;
  e.cat = cat_;
  sink_->record(std::move(e));
  tls.ctx = ctx_;
  tls.adopted = false;
}

trace_span::~trace_span() {
  if constexpr (!kEnabled) return;
  tls.ctx = prev_;
  tls.adopted = prev_adopted_;
  event e;
  e.ph = event::phase::end;
  e.ts_ns = sink_->now_ns();
  e.pid = tls.rank;
  e.tid = thread_lane();
  e.trace_id = ctx_.trace_id;
  e.span_id = ctx_.span_id;
  e.name = name_;
  e.cat = cat_;
  e.args = std::move(args_);
  sink_->record(std::move(e));
}

void trace_span::arg(std::string key, std::string value) {
  if constexpr (kEnabled)
    args_.emplace_back(std::move(key), std::move(value));
}

// --- child_span -------------------------------------------------------------

child_span::child_span(const char* name, const char* cat) {
  if constexpr (kEnabled)
    if (tls.ctx.active()) inner_.emplace(name, cat);
}

span_context child_span::context() const noexcept {
  return inner_ ? inner_->context() : current_context();
}

void child_span::arg(std::string key, std::string value) {
  if (inner_) inner_->arg(std::move(key), std::move(value));
}

// --- instant / flow ---------------------------------------------------------

void instant(std::string name, std::string cat,
             std::vector<std::pair<std::string, std::string>> args) {
  if constexpr (!kEnabled) return;
  if (!tls.ctx.active()) return;
  sink& s = sink::global();
  event e;
  e.ph = event::phase::instant;
  e.link = event::link_kind::scope;
  e.ts_ns = s.now_ns();
  e.pid = tls.rank;
  e.tid = thread_lane();
  e.trace_id = tls.ctx.trace_id;
  e.span_id = next_id();
  e.parent_span = tls.ctx.span_id;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.args = std::move(args);
  s.record(std::move(e));
}

void counter_sample(const std::string& name, double value,
                    const std::string& cat) {
  if constexpr (!kEnabled) return;
  if (!tls.ctx.active()) return;
  sink& s = sink::global();
  event e;
  e.ph = event::phase::counter;
  e.link = event::link_kind::scope;
  e.ts_ns = s.now_ns();
  e.pid = tls.rank;
  e.tid = thread_lane();
  e.trace_id = tls.ctx.trace_id;
  e.span_id = next_id();
  e.parent_span = tls.ctx.span_id;
  e.value = value;
  e.name = name;
  e.cat = cat;
  s.record(std::move(e));
}

void sample_registry_counters(const std::string& prefix, registry& reg) {
  if constexpr (!kEnabled) return;
  if (!tls.ctx.active()) return;
  for (const auto& [name, v] : reg.counter_values())
    if (name.compare(0, prefix.size(), prefix) == 0)
      counter_sample(name, static_cast<double>(v));
}

std::uint64_t flow_begin(const std::string& name, const std::string& cat) {
  if constexpr (!kEnabled) return 0;
  if (!tls.ctx.active()) return 0;
  sink& s = sink::global();
  const std::uint64_t id = next_id();
  event e;
  e.ph = event::phase::flow_start;
  e.link = event::link_kind::scope;
  e.ts_ns = s.now_ns();
  e.pid = tls.rank;
  e.tid = thread_lane();
  e.trace_id = tls.ctx.trace_id;
  e.span_id = next_id();
  e.parent_span = tls.ctx.span_id;
  e.flow_id = id;
  e.name = name;
  e.cat = cat;
  s.record(std::move(e));
  return id;
}

void flow_end(std::uint64_t flow_id, const std::string& name,
              const std::string& cat) {
  if constexpr (!kEnabled) return;
  if (flow_id == 0 || !tls.ctx.active()) return;
  sink& s = sink::global();
  event e;
  e.ph = event::phase::flow_finish;
  e.link = event::link_kind::scope;
  e.ts_ns = s.now_ns();
  e.pid = tls.rank;
  e.tid = thread_lane();
  e.trace_id = tls.ctx.trace_id;
  e.span_id = next_id();
  e.parent_span = tls.ctx.span_id;
  e.flow_id = flow_id;
  e.name = name;
  e.cat = cat;
  s.record(std::move(e));
}

// --- validation -------------------------------------------------------------

std::string validation_result::error_text() const {
  std::string out;
  for (const std::string& e : errors) out += e + "\n";
  return out;
}

namespace {

struct parsed_event {
  char ph = '?';
  double ts = 0.0;
  std::uint64_t seq = 0;
  long pid = 0;
  long tid = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  std::uint64_t flow_id = 0;
  std::string name;
  std::string link;
};

struct parsed_span {
  double begin_ts = 0.0;
  double end_ts = 0.0;
  bool closed = false;
  std::uint64_t trace_id = 0;
  std::uint64_t parent = 0;
  std::string link;
  std::string name;
  long pid = 0;
  long tid = 0;
};

std::uint64_t u64_of(const json_value& v) {
  return static_cast<std::uint64_t>(v.num);
}

}  // namespace

validation_result validate_chrome_trace(const json_value& doc) {
  validation_result r;
  const auto fail = [&r](std::string msg) {
    r.ok = false;
    r.errors.push_back(std::move(msg));
  };

  if (!doc.has("traceEvents") ||
      !doc.at("traceEvents").is(json_value::kind::array)) {
    fail("document has no traceEvents array");
    return r;
  }

  std::vector<parsed_event> events;
  for (const json_value& jv : doc.at("traceEvents").arr) {
    parsed_event e;
    e.ph = jv.at("ph").str.empty() ? '?' : jv.at("ph").str[0];
    if (e.ph == 'C') {
      // Counter-track samples stand outside the span structure; validate
      // their own contract (a named series with a numeric value) here.
      ++r.counters;
      if (jv.at("name").str.empty())
        fail("counter event with an empty series name");
      const json_value& args = jv.at("args");
      if (!args.has("value") ||
          !args.at("value").is(json_value::kind::number))
        fail("counter '" + jv.at("name").str +
             "' has no numeric args.value to plot");
      continue;
    }
    e.ts = jv.at("ts").num;
    e.pid = static_cast<long>(jv.at("pid").num);
    e.tid = static_cast<long>(jv.at("tid").num);
    e.name = jv.at("name").str;
    if (jv.has("id")) e.flow_id = u64_of(jv.at("id"));
    const json_value& args = jv.at("args");
    e.seq = u64_of(args.at("seq"));
    e.trace_id = u64_of(args.at("trace_id"));
    e.span_id = u64_of(args.at("span_id"));
    e.parent_span = u64_of(args.at("parent_span"));
    e.link = args.at("link").str;
    events.push_back(std::move(e));
  }

  // Per-lane stack discipline for duration events.
  std::map<std::pair<long, long>, std::vector<const parsed_event*>> lanes;
  for (const parsed_event& e : events)
    if (e.ph == 'B' || e.ph == 'E') lanes[{e.pid, e.tid}].push_back(&e);

  std::map<std::uint64_t, parsed_span> spans;
  for (auto& [lane, evs] : lanes) {
    std::sort(evs.begin(), evs.end(),
              [](const parsed_event* a, const parsed_event* b) {
                return std::tie(a->ts, a->seq) < std::tie(b->ts, b->seq);
              });
    std::vector<const parsed_event*> stack;
    for (const parsed_event* e : evs) {
      if (e->ph == 'B') {
        if (spans.contains(e->span_id)) {
          fail("duplicate span id " + std::to_string(e->span_id));
          continue;
        }
        parsed_span s;
        s.begin_ts = e->ts;
        s.trace_id = e->trace_id;
        s.parent = e->parent_span;
        s.link = e->link;
        s.name = e->name;
        s.pid = lane.first;
        s.tid = lane.second;
        spans[e->span_id] = s;
        stack.push_back(e);
      } else {
        if (stack.empty()) {
          fail("unbalanced: end event '" + e->name + "' on lane (pid=" +
               std::to_string(lane.first) + ",tid=" +
               std::to_string(lane.second) + ") with no open begin");
          continue;
        }
        const parsed_event* open = stack.back();
        stack.pop_back();
        if (open->span_id != e->span_id)
          fail("unbalanced: end of span " + std::to_string(e->span_id) +
               " ('" + e->name + "') crosses open span " +
               std::to_string(open->span_id) + " ('" + open->name + "')");
        auto it = spans.find(e->span_id);
        if (it != spans.end()) {
          it->second.end_ts = e->ts;
          it->second.closed = true;
        }
      }
    }
    for (const parsed_event* e : stack)
      fail("unbalanced: span " + std::to_string(e->span_id) + " ('" +
           e->name + "') never ended");
  }

  // Parenting: orphans, trace ids, and scope containment.
  std::set<long> pids, tids;
  std::set<std::uint64_t> traces;
  for (const auto& [id, s] : spans) {
    pids.insert(s.pid);
    tids.insert(s.tid);
    traces.insert(s.trace_id);
    if (s.parent == 0) {
      ++r.roots;
      continue;
    }
    const auto pit = spans.find(s.parent);
    if (pit == spans.end()) {
      fail("orphaned: span " + std::to_string(id) + " ('" + s.name +
           "') has unknown parent " + std::to_string(s.parent));
      continue;
    }
    const parsed_span& p = pit->second;
    if (p.trace_id != s.trace_id)
      fail("span " + std::to_string(id) + " crosses traces (" +
           std::to_string(s.trace_id) + " under " +
           std::to_string(p.trace_id) + ")");
    if (s.begin_ts < p.begin_ts)
      fail("out of parent scope: span " + std::to_string(id) + " ('" +
           s.name + "') begins before its parent '" + p.name + "'");
    if (s.link == "scope" && p.closed && s.closed &&
        s.end_ts > p.end_ts)
      fail("out of parent scope: span " + std::to_string(id) + " ('" +
           s.name + "') outlives its scope parent '" + p.name + "'");
  }

  // Instants must hang off known spans; flows must pair up in order.
  std::map<std::uint64_t, double> flow_starts;
  for (const parsed_event& e : events) {
    if (e.ph == 'i') {
      ++r.instants;
      if (e.parent_span != 0 && !spans.contains(e.parent_span))
        fail("orphaned: instant '" + e.name + "' references unknown span " +
             std::to_string(e.parent_span));
    } else if (e.ph == 's') {
      flow_starts.emplace(e.flow_id, e.ts);
    }
  }
  for (const parsed_event& e : events) {
    if (e.ph != 'f') continue;
    const auto it = flow_starts.find(e.flow_id);
    if (it == flow_starts.end())
      fail("orphaned: flow finish " + std::to_string(e.flow_id) + " ('" +
           e.name + "') has no start");
    else if (e.ts < it->second)
      fail("flow " + std::to_string(e.flow_id) + " finishes before it starts");
    else
      ++r.flows;
  }

  r.spans = spans.size();
  r.ranks = pids.size();
  r.threads = tids.size();
  r.traces = traces.size();
  return r;
}

}  // namespace cgp::telemetry::trace
