#include "telemetry/watchdog.hpp"

#include <algorithm>
#include <utility>

#include "telemetry/recorder.hpp"
#include "telemetry/trace.hpp"

namespace cgp::telemetry::live {
namespace {

counter& stalls_counter() {
  static counter& c =
      registry::global().get_counter("telemetry.watchdog.stalls_detected");
  return c;
}

// A watchdog verdict must land in the trace even when the sampler thread
// has no active trace context (trace::instant would silently skip it), so
// build a root instant event by hand.
void record_stall_instant(const stall_event& ev) {
  trace::sink& s = trace::sink::global();
  trace::event e;
  e.ph = trace::event::phase::instant;
  e.link = trace::event::link_kind::root;
  e.ts_ns = s.now_ns();
  e.trace_id = trace::next_id();
  e.span_id = trace::next_id();
  e.name = "watchdog.stall: " + ev.participant;
  e.cat = "telemetry.watchdog";
  e.args.emplace_back("silent_ms", std::to_string(ev.silent_ms));
  s.record(std::move(e));
}

}  // namespace

heartbeat::heartbeat(std::string name) : name_(std::move(name)) {
  last_beat_ms_.store(steady_now_ms(), std::memory_order_relaxed);
}

void heartbeat::beat() noexcept {
  if constexpr (!kEnabled) return;
  last_beat_ms_.store(steady_now_ms(), std::memory_order_relaxed);
}

void heartbeat::beat_at(std::uint64_t now_ms) noexcept {
  if constexpr (!kEnabled) return;
  last_beat_ms_.store(now_ms, std::memory_order_relaxed);
}

void heartbeat::begin_work() noexcept {
  if constexpr (!kEnabled) return;
  last_beat_ms_.store(steady_now_ms(), std::memory_order_relaxed);
  busy_.store(true, std::memory_order_relaxed);
}

void heartbeat::end_work() noexcept {
  if constexpr (!kEnabled) return;
  last_beat_ms_.store(steady_now_ms(), std::memory_order_relaxed);
  busy_.store(false, std::memory_order_relaxed);
  // A completed unit of work ends any stall episode: the next silent busy
  // stretch earns a fresh verdict.
  flagged_.store(false, std::memory_order_relaxed);
}

watchdog& watchdog::global() {
  static watchdog w;
  return w;
}

std::shared_ptr<heartbeat> watchdog::register_heartbeat(std::string name) {
  auto hb = std::make_shared<heartbeat>(std::move(name));
  if constexpr (kEnabled) {
    const std::lock_guard lock(mu_);
    beats_.push_back(hb);
  }
  return hb;
}

void watchdog::on_stall(std::function<void(const stall_event&)> cb) {
  const std::lock_guard lock(mu_);
  cb_ = std::move(cb);
}

std::size_t watchdog::check(std::uint64_t now_ms, std::uint64_t period_ms,
                            std::size_t miss_threshold) {
  if constexpr (!kEnabled) return 0;
  const std::uint64_t budget_ms =
      period_ms * static_cast<std::uint64_t>(miss_threshold);
  std::vector<stall_event> fresh;
  std::function<void(const stall_event&)> cb;
  {
    const std::lock_guard lock(mu_);
    // Prune registrations whose owner dropped the shared_ptr.
    beats_.erase(std::remove_if(beats_.begin(), beats_.end(),
                                [](const std::weak_ptr<heartbeat>& w) {
                                  return w.expired();
                                }),
                 beats_.end());
    for (const std::weak_ptr<heartbeat>& w : beats_) {
      const std::shared_ptr<heartbeat> hb = w.lock();
      if (!hb) continue;
      if (!hb->busy_.load(std::memory_order_relaxed)) continue;
      const std::uint64_t last = hb->last_beat_ms_.load(std::memory_order_relaxed);
      if (now_ms < last || now_ms - last <= budget_ms) continue;
      // One verdict per stall episode: flagged_ clears when the
      // participant completes the unit of work (end_work).
      if (hb->flagged_.exchange(true, std::memory_order_relaxed)) continue;
      stall_event ev;
      ev.participant = hb->name();
      ev.last_beat_ms = last;
      ev.detected_at_ms = now_ms;
      ev.silent_ms = now_ms - last;
      fresh.push_back(ev);
      stalls_.push_back(std::move(ev));
    }
    cb = cb_;
  }
  for (const stall_event& ev : fresh) {
    stalls_counter().add(1);
    flight_recorder::global().note(
        flight_entry::kind::watchdog, ev.participant,
        static_cast<double>(ev.silent_ms),
        "stall: silent " + std::to_string(ev.silent_ms) + "ms while busy");
    record_stall_instant(ev);
    if (cb) cb(ev);
  }
  return fresh.size();
}

std::vector<stall_event> watchdog::stalls() const {
  const std::lock_guard lock(mu_);
  return stalls_;
}

std::size_t watchdog::stall_count() const {
  const std::lock_guard lock(mu_);
  return stalls_.size();
}

std::size_t watchdog::heartbeat_count() const {
  const std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const std::weak_ptr<heartbeat>& w : beats_)
    if (!w.expired()) ++n;
  return n;
}

std::size_t watchdog::prune_expired() {
  const std::lock_guard lock(mu_);
  const std::size_t before = beats_.size();
  beats_.erase(std::remove_if(beats_.begin(), beats_.end(),
                              [](const std::weak_ptr<heartbeat>& w) {
                                return w.expired();
                              }),
               beats_.end());
  return before - beats_.size();
}

void watchdog::reset() {
  const std::lock_guard lock(mu_);
  stalls_.clear();
  cb_ = nullptr;
  beats_.erase(std::remove_if(beats_.begin(), beats_.end(),
                              [](const std::weak_ptr<heartbeat>& w) {
                                return w.expired();
                              }),
               beats_.end());
}

}  // namespace cgp::telemetry::live
