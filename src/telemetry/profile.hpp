// Span-attributed deterministic profiler: per-thread shadow call stacks
// fed by RAII probes, aggregated into an interned call graph.
//
// The observatory (DESIGN.md §9) can say *that* a benchmark regressed;
// this layer says *where*.  Every `probe` pushes one frame onto the
// calling thread's shadow stack; on destruction it charges the elapsed
// time to the call-graph node keyed by (parent node, frame), so the
// aggregate is a tree of call *paths* — gprof-style attribution without
// compiler instrumentation.  Frames reuse span identity from trace.hpp:
// a probe captures `trace::current_context()` at entry, and each node
// counts how many of its invocations ran under an active trace, tying
// profile hot paths back to the causal trees PR 2 records.
//
// Concurrency model (the reason this is TSan-clean at ~no cost):
//   - each thread owns a `thread_state`; only the owner pushes/pops the
//     shadow stack or inserts nodes, so the hot-path node lookup is a
//     plain hash-map find with no lock;
//   - node accumulators are relaxed atomics written only by the owner
//     and read by snapshotting threads;
//   - a per-state mutex is taken only on node *creation* and during
//     `snapshot()`, never on the probe fast path;
//   - states are `shared_ptr`s held by both the thread_local handle and
//     a global registry, so data survives thread exit (worker pools are
//     torn down before their profiles are exported).
//
// Determinism contract (what makes `cgp.prof.v1` byte-identical): in
// manual-clock mode each thread advances a *thread-local* tick counter
// on every clock read, so elapsed "time" is a pure function of the
// probes executed on that thread.  Aggregation is keyed by call path
// (frame names), not by thread or intern id, so merging per-thread trees
// erases scheduling nondeterminism: as long as the same set of probe
// activations happens — on whichever worker — the merged tree, and
// therefore the sorted-key JSON from dump_json, is byte-identical.
//
// Cross-thread attribution: `current_path()` captures the submitting
// thread's stack as interned frame ids and `adopt_scope` re-roots a
// worker's probes under that path (thread_pool::submit does this the
// same way it propagates trace contexts), so a flamegraph shows pool
// tasks under the benchmark that submitted them.  Adopted waypoint
// frames have no timed invocations of their own; export reconstitutes
// their inclusive time bottom-up (excl + Σ children incl), which is the
// invariant validate_profile checks.
//
// CGP_TELEMETRY_DISABLED compiles probes, adoption, and path capture
// down to no-ops (dead branches on a constexpr false).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace cgp::telemetry::profile {

// ---------------------------------------------------------------------------
// Frame interning
// ---------------------------------------------------------------------------

/// Index into the process-wide frame-name table.  Intern ids are assigned
/// first-come-first-served and therefore NOT deterministic across runs;
/// exports always key by name, never by id.
using frame_id = std::uint32_t;

inline constexpr frame_id kNoFrame = 0xffff'ffffu;

/// Interns `name`, returning a stable id (idempotent per name).  Hot call
/// sites should intern once: `static const auto f = intern("...");`.
[[nodiscard]] frame_id intern(std::string_view name);

/// The interned name for `id`; throws std::out_of_range on a bad id.
[[nodiscard]] std::string frame_name(frame_id id);

/// A call path from root to innermost frame, as interned ids.  Inline
/// fixed storage: capturing and copying a path never allocates, which
/// keeps the submit-side cost of cross-thread attribution inside the
/// probe-overhead budget.  Stacks deeper than kMaxDepth keep their
/// root-side frames and set `truncated` (attribution then stops at depth
/// kMaxDepth instead of misparenting).
struct call_path {
  static constexpr std::size_t kMaxDepth = 16;

  std::array<frame_id, kMaxDepth> frames{};
  std::uint8_t depth = 0;
  bool truncated = false;

  [[nodiscard]] bool empty() const noexcept { return depth == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return depth; }
  [[nodiscard]] frame_id operator[](std::size_t i) const noexcept {
    return frames[i];
  }
  void push(frame_id f) noexcept {
    if (depth < kMaxDepth)
      frames[depth++] = f;
    else
      truncated = true;
  }
  [[nodiscard]] friend bool operator==(const call_path& a,
                                       const call_path& b) noexcept {
    if (a.depth != b.depth) return false;
    for (std::uint8_t i = 0; i < a.depth; ++i)
      if (a.frames[i] != b.frames[i]) return false;
    return true;
  }
};

// ---------------------------------------------------------------------------
// The profiler singleton
// ---------------------------------------------------------------------------

struct thread_state;  // internal (profile.cpp)

/// One merged call-graph node in a snapshot.  `incl` covers this frame
/// and everything below it; `excl` is `incl` minus the children's `incl`
/// (so Σ excl over the tree = total attributed time); `traced` counts
/// invocations that ran under an active trace::span_context.
struct profile_node {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t incl = 0;
  std::uint64_t excl = 0;
  std::uint64_t traced = 0;
  std::vector<profile_node> children;  ///< sorted by name, names unique
};

/// A merged, thread-erased snapshot of the call graph.
struct profile_snapshot {
  std::string unit;  ///< "ns" (wall clock) or "ticks" (manual clock)
  std::vector<profile_node> roots;  ///< sorted by name, names unique
};

class profiler {
 public:
  /// The process-wide profiler all probes feed.
  [[nodiscard]] static profiler& global();

  /// Starts collection.  Probes constructed while disabled record
  /// nothing for their whole lifetime (enable/disable mid-probe is safe).
  void enable() noexcept;
  void disable() noexcept;
  [[nodiscard]] bool enabled() const noexcept;

  /// Manual-clock mode: every clock read advances a thread-local tick
  /// counter instead of reading steady_clock, making exports a pure
  /// function of the probe sequence (byte-identical across runs).  Only
  /// meaningful to change while disabled and quiescent.
  void set_manual_clock(bool manual) noexcept;
  [[nodiscard]] bool manual_clock() const noexcept;

  /// Zeroes every accumulator while keeping interned frames and node
  /// storage (so cached ids stay valid).  Like registry::reset, callers
  /// must be quiescent: no probe may be open anywhere.
  void reset() noexcept;

  /// Merges all per-thread trees into one name-keyed snapshot.  Safe to
  /// call while probes run (totals for open probes are approximate); for
  /// deterministic exports, snapshot when quiescent.
  [[nodiscard]] profile_snapshot snapshot() const;

 private:
  profiler() = default;
};

// ---------------------------------------------------------------------------
// Probes and cross-thread adoption
// ---------------------------------------------------------------------------

namespace detail {
struct probe_rec {
  thread_state* st = nullptr;
  std::uint32_t node = 0xffff'ffffu;  ///< kNoNode ⇒ this probe records nothing
  std::uint32_t prev = 0xffff'ffffu;
  std::uint64_t t0 = 0;
  bool traced = false;
};
void probe_enter(probe_rec& r, frame_id f) noexcept;
void probe_exit(probe_rec& r) noexcept;
[[nodiscard]] call_path capture_path() noexcept;
[[nodiscard]] thread_state* adopt_enter(const call_path& p,
                                        std::uint32_t& prev) noexcept;
void adopt_exit(thread_state* st, std::uint32_t prev) noexcept;
}  // namespace detail

/// RAII shadow-stack frame.  Cheap when the profiler is disabled (one
/// relaxed atomic load); a no-op type when CGP_TELEMETRY_DISABLED.
class probe {
 public:
  /// Hot-path form: intern once at the call site, pass the id.
  explicit probe(frame_id f) noexcept {
    if constexpr (kEnabled) {
      detail::probe_enter(rec_, f);
      if (recording()) {
        ctx_ = trace::current_context();
        rec_.traced = ctx_.active();
      }
    }
  }
  /// Convenience form for dynamic names (per-rule, per-bench); interns on
  /// every recording construction — fine off the hot path.
  explicit probe(std::string_view name) {
    if constexpr (kEnabled) {
      if (profiler::global().enabled()) {
        detail::probe_enter(rec_, intern(name));
        if (recording()) {
          ctx_ = trace::current_context();
          rec_.traced = ctx_.active();
        }
      }
    }
  }
  ~probe() {
    if constexpr (kEnabled) detail::probe_exit(rec_);
  }

  probe(const probe&) = delete;
  probe& operator=(const probe&) = delete;

  /// True when this probe is actually accumulating.
  [[nodiscard]] bool recording() const noexcept {
    return rec_.node != 0xffff'ffffu;
  }
  /// The enclosing trace context captured at entry ({0,0} when untraced
  /// or not recording).
  [[nodiscard]] trace::span_context context() const noexcept { return ctx_; }

 private:
  detail::probe_rec rec_{};
  trace::span_context ctx_{};
};

/// The calling thread's current shadow-stack path (empty when the
/// profiler is disabled or no probe is open).  Capture this at a
/// work-submission site and hand it to adopt_scope on the far side.
[[nodiscard]] inline call_path current_path() noexcept {
  if constexpr (kEnabled) return detail::capture_path();
  return {};
}

/// Re-roots the calling thread's probes under `path` for the scope's
/// lifetime — the profile analogue of trace::context_scope.  Waypoint
/// frames created this way carry structure, not time.
class adopt_scope {
 public:
  explicit adopt_scope(const call_path& path) noexcept {
    if constexpr (kEnabled)
      if (!path.empty()) st_ = detail::adopt_enter(path, prev_);
  }
  ~adopt_scope() {
    if constexpr (kEnabled)
      if (st_ != nullptr) detail::adopt_exit(st_, prev_);
  }
  adopt_scope(const adopt_scope&) = delete;
  adopt_scope& operator=(const adopt_scope&) = delete;

 private:
  thread_state* st_ = nullptr;
  std::uint32_t prev_ = 0xffff'ffffu;
};

// ---------------------------------------------------------------------------
// Exports
// ---------------------------------------------------------------------------

/// flamegraph.pl-compatible collapsed stacks: one `a;b;c weight` line per
/// call path with positive exclusive time, sorted lexicographically.
[[nodiscard]] std::string collapsed(const profile_snapshot& s);

/// Deterministic `cgp.prof.v1` JSON document (see validate_profile for
/// the schema contract).  Byte-identical across runs in manual-clock
/// mode because dump_json sorts keys and children sort by name.
[[nodiscard]] std::string export_json(const profile_snapshot& s);

/// One row of the hot-path table: exclusive time summed per frame name
/// across all paths it appears in.
struct hot_frame {
  std::string name;
  std::uint64_t excl = 0;
  std::uint64_t incl = 0;
  std::uint64_t count = 0;
};

/// Top `n` frames by summed exclusive time (ties broken by name).
[[nodiscard]] std::vector<hot_frame> hot_frames(const profile_snapshot& s,
                                                std::size_t n);

/// Human-readable top-N table ("the exposition"): rank, exclusive,
/// inclusive, calls, % of total exclusive, frame name.
[[nodiscard]] std::string render_hot_table(const profile_snapshot& s,
                                           std::size_t n);

/// Structural validation of a parsed cgp.prof.v1 document:
///   - schema tag and unit ("ns" | "ticks");
///   - "frames" equals the recursive node count;
///   - every node: non-empty name, numeric count/incl/excl/traced,
///     traced <= count, excl <= incl, incl == excl + Σ children incl;
///   - sibling lists sorted by name with no duplicates.
struct profile_validation {
  bool ok = true;
  std::vector<std::string> errors;
  std::size_t nodes = 0;
  std::size_t roots = 0;
  std::size_t max_depth = 0;
};

[[nodiscard]] profile_validation validate_profile(const json_value& doc);

}  // namespace cgp::telemetry::profile
