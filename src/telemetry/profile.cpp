#include "telemetry/profile.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cgp::telemetry::profile {

namespace {

constexpr std::uint32_t kNoNode = 0xffff'ffffu;

[[nodiscard]] std::uint64_t wall_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Frame interning: one process-wide table; ids are first-come (and thus
// run-order dependent — exports key by name, never by id).
// ---------------------------------------------------------------------------

struct interner {
  std::mutex mu;
  std::unordered_map<std::string, frame_id> ids;
  std::deque<std::string> names;  // stable storage, indexed by frame_id
};

interner& interns() {
  static auto* i = new interner;  // leaked: probes may outlive main()
  return *i;
}

}  // namespace

frame_id intern(std::string_view name) {
  auto& in = interns();
  std::lock_guard lock(in.mu);
  std::string key(name);
  if (auto it = in.ids.find(key); it != in.ids.end()) return it->second;
  const auto id = static_cast<frame_id>(in.names.size());
  in.names.push_back(std::move(key));
  in.ids.emplace(in.names.back(), id);
  return id;
}

std::string frame_name(frame_id id) {
  auto& in = interns();
  std::lock_guard lock(in.mu);
  if (id >= in.names.size())
    throw std::out_of_range("profile::frame_name: unknown frame id");
  return in.names[id];
}

// ---------------------------------------------------------------------------
// Per-thread call-graph storage
// ---------------------------------------------------------------------------

namespace {

// One call-graph node, keyed within its thread_state by (parent, frame).
// Accumulators are relaxed atomics: written only by the owning thread,
// read by snapshotting threads.  node lives in a std::deque so addresses
// stay stable across growth (atomics are not movable anyway).
struct graph_node {
  graph_node(frame_id f, std::uint32_t p) noexcept : frame(f), parent(p) {}
  frame_id frame;
  std::uint32_t parent;  // node index or kNoNode
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> incl{0};
  std::atomic<std::uint64_t> child_incl{0};
  std::atomic<std::uint64_t> traced{0};
};

}  // namespace

struct thread_state {
  // Guards structural growth of `nodes` against snapshot iteration; the
  // probe fast path (find + accumulate) never takes it.
  std::mutex mu;
  std::deque<graph_node> nodes;
  // (parent << 32 | frame) -> node index.  Owner-only: reads are
  // lock-free because the sole writer is the owning thread.
  std::unordered_map<std::uint64_t, std::uint32_t> index;
  std::uint32_t cur = kNoNode;  // shadow-stack top; owner-only
  // Adoption memo (owner-only): a pool worker draining a fan-out adopts
  // the same submitter path for every task, so the chain walk is cached
  // and a repeat adoption is one path compare.  Node indices survive
  // profiler::reset (accumulators zero, storage stays), so the memo
  // never dangles.
  call_path adopt_cache_path;
  std::uint32_t adopt_cache_node = kNoNode;
  // Manual-clock tick counter.  Atomic (relaxed) so profiler::reset can
  // zero it from another thread without a data race.
  std::atomic<std::uint64_t> ticks{0};
};

namespace {

struct prof_global {
  std::atomic<bool> enabled{false};
  std::atomic<bool> manual{false};
  std::mutex mu;  // guards `states`
  std::vector<std::shared_ptr<thread_state>> states;
};

prof_global& g() {
  static auto* s = new prof_global;  // leaked: see interns()
  return *s;
}

thread_state& tls() {
  thread_local std::shared_ptr<thread_state> st = [] {
    auto p = std::make_shared<thread_state>();
    auto& s = g();
    std::lock_guard lock(s.mu);
    s.states.push_back(p);
    return p;
  }();
  return *st;
}

[[nodiscard]] std::uint64_t clock_now(thread_state& st) noexcept {
  if (g().manual.load(std::memory_order_relaxed))
    return st.ticks.fetch_add(1, std::memory_order_relaxed) + 1;
  return wall_now_ns();
}

std::uint32_t find_or_create(thread_state& st, std::uint32_t parent,
                             frame_id f) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(parent) << 32) | static_cast<std::uint64_t>(f);
  if (auto it = st.index.find(key); it != st.index.end()) return it->second;
  std::lock_guard lock(st.mu);
  st.nodes.emplace_back(f, parent);
  const auto idx = static_cast<std::uint32_t>(st.nodes.size() - 1);
  st.index.emplace(key, idx);
  return idx;
}

}  // namespace

// ---------------------------------------------------------------------------
// Probe fast path
// ---------------------------------------------------------------------------

namespace detail {

void probe_enter(probe_rec& r, frame_id f) noexcept {
  if (f == kNoFrame) return;  // un-resolved frame id: record nothing
  if (!g().enabled.load(std::memory_order_relaxed)) return;
  thread_state& st = tls();
  r.st = &st;
  r.prev = st.cur;
  r.node = find_or_create(st, st.cur, f);
  st.cur = r.node;
  r.t0 = clock_now(st);
}

void probe_exit(probe_rec& r) noexcept {
  if (r.node == kNoNode) return;
  thread_state& st = *r.st;
  const std::uint64_t t1 = clock_now(st);
  const std::uint64_t d = t1 >= r.t0 ? t1 - r.t0 : 0;
  graph_node& n = st.nodes[r.node];
  n.count.fetch_add(1, std::memory_order_relaxed);
  n.incl.fetch_add(d, std::memory_order_relaxed);
  if (r.traced) n.traced.fetch_add(1, std::memory_order_relaxed);
  if (r.prev != kNoNode)
    st.nodes[r.prev].child_incl.fetch_add(d, std::memory_order_relaxed);
  st.cur = r.prev;
}

call_path capture_path() noexcept {
  call_path p;
  if (!g().enabled.load(std::memory_order_relaxed)) return p;
  thread_state& st = tls();
  // Two walks: depth first, then write frames root-first in place.  A
  // stack deeper than kMaxDepth keeps its root-side frames (truncated
  // attribution beats misparented attribution).
  std::size_t depth = 0;
  for (std::uint32_t i = st.cur; i != kNoNode; i = st.nodes[i].parent) ++depth;
  if (depth == 0) return p;
  p.depth = static_cast<std::uint8_t>(
      depth < call_path::kMaxDepth ? depth : call_path::kMaxDepth);
  p.truncated = depth > call_path::kMaxDepth;
  std::size_t root_pos = depth;
  for (std::uint32_t i = st.cur; i != kNoNode; i = st.nodes[i].parent) {
    --root_pos;
    if (root_pos < call_path::kMaxDepth)
      p.frames[root_pos] = st.nodes[i].frame;
  }
  return p;
}

thread_state* adopt_enter(const call_path& p, std::uint32_t& prev) noexcept {
  if (!g().enabled.load(std::memory_order_relaxed)) return nullptr;
  thread_state& st = tls();
  prev = st.cur;
  if (st.adopt_cache_node != kNoNode && p == st.adopt_cache_path) {
    st.cur = st.adopt_cache_node;
    return &st;
  }
  std::uint32_t cur = kNoNode;
  for (std::size_t i = 0; i < p.size(); ++i)
    cur = find_or_create(st, cur, p[i]);
  st.cur = cur;
  st.adopt_cache_path = p;
  st.adopt_cache_node = cur;
  return &st;
}

void adopt_exit(thread_state* st, std::uint32_t prev) noexcept {
  st->cur = prev;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// profiler
// ---------------------------------------------------------------------------

profiler& profiler::global() {
  static profiler p;
  return p;
}

void profiler::enable() noexcept {
  g().enabled.store(true, std::memory_order_relaxed);
}

void profiler::disable() noexcept {
  g().enabled.store(false, std::memory_order_relaxed);
}

bool profiler::enabled() const noexcept {
  return g().enabled.load(std::memory_order_relaxed);
}

void profiler::set_manual_clock(bool manual) noexcept {
  g().manual.store(manual, std::memory_order_relaxed);
}

bool profiler::manual_clock() const noexcept {
  return g().manual.load(std::memory_order_relaxed);
}

void profiler::reset() noexcept {
  auto& s = g();
  std::lock_guard lock(s.mu);
  for (const auto& stp : s.states) {
    std::lock_guard st_lock(stp->mu);
    for (auto& n : stp->nodes) {
      n.count.store(0, std::memory_order_relaxed);
      n.incl.store(0, std::memory_order_relaxed);
      n.child_incl.store(0, std::memory_order_relaxed);
      n.traced.store(0, std::memory_order_relaxed);
    }
    stp->ticks.store(0, std::memory_order_relaxed);
  }
}

namespace {

// Intermediate merge node, keyed by frame *name* so per-thread trees
// collapse into one scheduling-independent tree.
struct merge_node {
  std::uint64_t count = 0;
  std::uint64_t incl = 0;        // measured inclusive (owner probes only)
  std::uint64_t child_incl = 0;  // measured time of direct probed children
  std::uint64_t traced = 0;
  std::map<std::string, merge_node> kids;
};

// Bottom-up conversion.  Adopted waypoint frames have structure but no
// timed invocations (incl == 0 while children carry time), so inclusive
// time is reconstituted as excl + Σ children incl; for ordinary measured
// nodes that equals the measured inclusive exactly.
profile_node to_profile_node(const std::string& name, const merge_node& m) {
  profile_node out;
  out.name = name;
  out.count = m.count;
  out.traced = m.traced;
  std::uint64_t child_sum = 0;
  for (const auto& [kid_name, kid] : m.kids) {
    profile_node c = to_profile_node(kid_name, kid);
    // Prune empty shells (e.g. waypoints whose subtree was reset away).
    if (c.count == 0 && c.incl == 0 && c.children.empty()) continue;
    child_sum += c.incl;
    out.children.push_back(std::move(c));
  }
  out.excl = m.incl > m.child_incl ? m.incl - m.child_incl : 0;
  out.incl = out.excl + child_sum;
  return out;
}

}  // namespace

profile_snapshot profiler::snapshot() const {
  auto& s = g();
  std::vector<std::shared_ptr<thread_state>> states;
  {
    std::lock_guard lock(s.mu);
    states = s.states;
  }

  merge_node root;
  for (const auto& stp : states) {
    thread_state& st = *stp;
    std::lock_guard lock(st.mu);
    const std::size_t n = st.nodes.size();
    std::vector<std::vector<std::uint32_t>> kids(n);
    std::vector<std::uint32_t> tops;
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t p = st.nodes[i].parent;
      if (p == kNoNode)
        tops.push_back(i);
      else
        kids[p].push_back(i);
    }
    auto merge = [&](auto&& self, std::uint32_t idx, merge_node& dst) -> void {
      const graph_node& nd = st.nodes[idx];
      merge_node& m = dst.kids[frame_name(nd.frame)];
      m.count += nd.count.load(std::memory_order_relaxed);
      m.incl += nd.incl.load(std::memory_order_relaxed);
      m.child_incl += nd.child_incl.load(std::memory_order_relaxed);
      m.traced += nd.traced.load(std::memory_order_relaxed);
      for (const std::uint32_t c : kids[idx]) self(self, c, m);
    };
    for (const std::uint32_t t : tops) merge(merge, t, root);
  }

  profile_snapshot snap;
  snap.unit = manual_clock() ? "ticks" : "ns";
  for (const auto& [name, m] : root.kids) {
    profile_node pn = to_profile_node(name, m);
    if (pn.count == 0 && pn.incl == 0 && pn.children.empty()) continue;
    snap.roots.push_back(std::move(pn));
  }
  return snap;
}

// ---------------------------------------------------------------------------
// Exports
// ---------------------------------------------------------------------------

namespace {

void collect_collapsed(const profile_node& n, std::string& path,
                       std::vector<std::string>& lines) {
  const std::size_t len = path.size();
  if (!path.empty()) path += ';';
  path += n.name;
  if (n.excl > 0) lines.push_back(path + ' ' + std::to_string(n.excl));
  for (const auto& c : n.children) collect_collapsed(c, path, lines);
  path.resize(len);
}

}  // namespace

std::string collapsed(const profile_snapshot& s) {
  std::vector<std::string> lines;
  std::string path;
  for (const auto& r : s.roots) collect_collapsed(r, path, lines);
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

namespace {

json_value num(std::uint64_t v) {
  json_value j;
  j.k = json_value::kind::number;
  j.num = static_cast<double>(v);
  return j;
}

json_value str(std::string s) {
  json_value j;
  j.k = json_value::kind::string;
  j.str = std::move(s);
  return j;
}

json_value node_json(const profile_node& n, std::size_t& frames) {
  ++frames;
  json_value j;
  j.k = json_value::kind::object;
  j.obj.emplace("name", str(n.name));
  j.obj.emplace("count", num(n.count));
  j.obj.emplace("incl", num(n.incl));
  j.obj.emplace("excl", num(n.excl));
  j.obj.emplace("traced", num(n.traced));
  json_value kids;
  kids.k = json_value::kind::array;
  for (const auto& c : n.children) kids.arr.push_back(node_json(c, frames));
  j.obj.emplace("children", std::move(kids));
  return j;
}

}  // namespace

std::string export_json(const profile_snapshot& s) {
  json_value doc;
  doc.k = json_value::kind::object;
  doc.obj.emplace("schema", str("cgp.prof.v1"));
  doc.obj.emplace("unit", str(s.unit));
  json_value roots;
  roots.k = json_value::kind::array;
  std::size_t frames = 0;
  for (const auto& r : s.roots) roots.arr.push_back(node_json(r, frames));
  doc.obj.emplace("roots", std::move(roots));
  doc.obj.emplace("frames", num(frames));
  return dump_json(doc);
}

namespace {

void accumulate_hot(const profile_node& n,
                    std::map<std::string, hot_frame>& by_name) {
  hot_frame& h = by_name[n.name];
  h.name = n.name;
  h.excl += n.excl;
  h.incl += n.incl;
  h.count += n.count;
  for (const auto& c : n.children) accumulate_hot(c, by_name);
}

}  // namespace

std::vector<hot_frame> hot_frames(const profile_snapshot& s, std::size_t n) {
  std::map<std::string, hot_frame> by_name;
  for (const auto& r : s.roots) accumulate_hot(r, by_name);
  std::vector<hot_frame> rows;
  rows.reserve(by_name.size());
  for (auto& [_, h] : by_name) rows.push_back(std::move(h));
  std::sort(rows.begin(), rows.end(), [](const hot_frame& a, const hot_frame& b) {
    if (a.excl != b.excl) return a.excl > b.excl;
    return a.name < b.name;
  });
  if (rows.size() > n) rows.resize(n);
  return rows;
}

std::string render_hot_table(const profile_snapshot& s, std::size_t n) {
  const auto rows = hot_frames(s, n);
  std::uint64_t total = 0;
  {
    std::map<std::string, hot_frame> by_name;
    for (const auto& r : s.roots) accumulate_hot(r, by_name);
    for (const auto& [_, h] : by_name) total += h.excl;
  }
  std::ostringstream out;
  out << "hot paths (top " << rows.size() << ", exclusive " << s.unit
      << "):\n";
  std::size_t rank = 1;
  for (const auto& h : rows) {
    const double pct =
        total > 0 ? 100.0 * static_cast<double>(h.excl) /
                        static_cast<double>(total)
                  : 0.0;
    char line[256];
    std::snprintf(line, sizeof line,
                  "  %2zu. %12llu excl (%5.1f%%)  %12llu incl  %10llu calls  %s\n",
                  rank, static_cast<unsigned long long>(h.excl), pct,
                  static_cast<unsigned long long>(h.incl),
                  static_cast<unsigned long long>(h.count), h.name.c_str());
    out << line;
    ++rank;
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

namespace {

bool is_count(const json_value& v) {
  return v.is(json_value::kind::number) && v.num >= 0.0;
}

void validate_node(const json_value& n, const std::string& where,
                   std::size_t depth, profile_validation& out) {
  out.nodes += 1;
  out.max_depth = std::max(out.max_depth, depth);
  auto fail = [&](const std::string& msg) {
    out.ok = false;
    if (out.errors.size() < 32) out.errors.push_back(where + ": " + msg);
  };
  if (!n.is(json_value::kind::object)) {
    fail("node is not an object");
    return;
  }
  for (const char* key : {"name", "count", "incl", "excl", "traced", "children"})
    if (!n.has(key)) {
      fail(std::string("missing field '") + key + "'");
      return;
    }
  if (!n.at("name").is(json_value::kind::string) || n.at("name").str.empty())
    fail("name must be a non-empty string");
  for (const char* key : {"count", "incl", "excl", "traced"})
    if (!is_count(n.at(key))) fail(std::string(key) + " must be a number >= 0");
  if (is_count(n.at("count")) && is_count(n.at("traced")) &&
      n.at("traced").num > n.at("count").num)
    fail("traced exceeds count");
  if (is_count(n.at("incl")) && is_count(n.at("excl")) &&
      n.at("excl").num > n.at("incl").num + 0.5)
    fail("excl exceeds incl");
  const json_value& kids = n.at("children");
  if (!kids.is(json_value::kind::array)) {
    fail("children must be an array");
    return;
  }
  double child_sum = 0.0;
  std::string prev_name;
  bool first = true;
  for (std::size_t i = 0; i < kids.arr.size(); ++i) {
    const json_value& c = kids.arr[i];
    std::string cname = "?";
    if (c.is(json_value::kind::object) && c.has("name") &&
        c.at("name").is(json_value::kind::string))
      cname = c.at("name").str;
    if (!first && cname <= prev_name)
      fail("children not strictly sorted by name at '" + cname + "'");
    first = false;
    prev_name = cname;
    if (c.is(json_value::kind::object) && c.has("incl") &&
        c.at("incl").is(json_value::kind::number))
      child_sum += c.at("incl").num;
    validate_node(c, where + "/" + cname, depth + 1, out);
  }
  if (is_count(n.at("incl")) && is_count(n.at("excl"))) {
    const double want = n.at("excl").num + child_sum;
    if (n.at("incl").num < want - 0.5 || n.at("incl").num > want + 0.5)
      fail("incl != excl + sum(children incl)");
  }
}

}  // namespace

profile_validation validate_profile(const json_value& doc) {
  profile_validation out;
  auto fail = [&](const std::string& msg) {
    out.ok = false;
    if (out.errors.size() < 32) out.errors.push_back(msg);
  };
  if (!doc.is(json_value::kind::object)) {
    fail("document is not an object");
    return out;
  }
  if (!doc.has("schema") || !doc.at("schema").is(json_value::kind::string) ||
      doc.at("schema").str != "cgp.prof.v1")
    fail("schema tag is not cgp.prof.v1");
  if (!doc.has("unit") || !doc.at("unit").is(json_value::kind::string) ||
      (doc.at("unit").str != "ns" && doc.at("unit").str != "ticks"))
    fail("unit must be \"ns\" or \"ticks\"");
  if (!doc.has("roots") || !doc.at("roots").is(json_value::kind::array)) {
    fail("roots must be an array");
    return out;
  }
  const json_value& roots = doc.at("roots");
  out.roots = roots.arr.size();
  std::string prev_name;
  bool first = true;
  for (const json_value& r : roots.arr) {
    std::string rname = "?";
    if (r.is(json_value::kind::object) && r.has("name") &&
        r.at("name").is(json_value::kind::string))
      rname = r.at("name").str;
    if (!first && rname <= prev_name)
      fail("roots not strictly sorted by name at '" + rname + "'");
    first = false;
    prev_name = rname;
    validate_node(r, rname, 1, out);
  }
  if (!doc.has("frames") || !doc.at("frames").is(json_value::kind::number) ||
      doc.at("frames").num != static_cast<double>(out.nodes))
    fail("frames does not equal the recursive node count");
  return out;
}

}  // namespace cgp::telemetry::profile
