// Flight recorder: a bounded, always-on ring of recent runtime events —
// finished spans, counter movements, watchdog verdicts, free-form markers
// — that can be dumped on demand or from a fault path.
//
// The trace sink (trace.hpp) keeps a *truncated head*: once max_events is
// reached, new events are dropped, which is the honest policy for an
// exported causal tree but useless for post-mortems — by the time a run
// dies mid-superstep, the interesting events are the most RECENT ones.
// The flight recorder is the complementary policy: a fixed-capacity ring
// that OVERWRITES the oldest entry, so whatever happened just before a
// fault is always on hand.  DESIGN.md §10 covers how the live sampler and
// the stall watchdog feed it.
//
// Cost discipline: one mutex, one clock read and one small struct copy per
// note; the ring never allocates after the first lap.  Defining
// CGP_TELEMETRY_DISABLED compiles every note down to a no-op.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace cgp::telemetry::live {

/// Milliseconds since the process's live-observability epoch (the first
/// call from any live component).  One shared monotonic timeline for the
/// sampler, the watchdog, and the recorder.
[[nodiscard]] std::uint64_t steady_now_ms() noexcept;

/// One recorded ring entry.
struct flight_entry {
  enum class kind : char {
    span = 's',      ///< a telemetry::span finished (value = duration us)
    counter = 'c',   ///< a registry counter moved (value = sampled delta)
    watchdog = 'w',  ///< a stall verdict (detail = participant, silent ms)
    marker = 'm',    ///< free-form driver annotation
  };

  std::uint64_t t_ms = 0;
  /// Strictly increasing stamp (1-based, assigned under the ring lock).
  /// t_ms has millisecond granularity, so bursts of entries share a
  /// timestamp; seq totally orders them and lets a dump prove no entry
  /// was torn or reordered by concurrent writers.
  std::uint64_t seq = 0;
  kind k = kind::marker;
  std::string name;
  double value = 0.0;
  std::string detail;
};

[[nodiscard]] const char* to_string(flight_entry::kind k) noexcept;

/// The bounded overwrite ring.  All methods are thread-safe.
class flight_recorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit flight_recorder(std::size_t capacity = kDefaultCapacity);
  flight_recorder(const flight_recorder&) = delete;
  flight_recorder& operator=(const flight_recorder&) = delete;

  [[nodiscard]] static flight_recorder& global();

  /// Resizes the ring (drops current contents; test/driver setup only).
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const;

  /// Appends one entry, overwriting the oldest when full.  The timestamp
  /// is stamped here, under the lock, so snapshot order == time order.
  void note(flight_entry::kind k, std::string name, double value = 0.0,
            std::string detail = "");

  /// Entries ever noted / entries that overwrote an older one.
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t overwritten() const;

  /// Current contents, oldest first.
  [[nodiscard]] std::vector<flight_entry> snapshot() const;

  /// One JSON document (schema cgp.flight.v1) with capacity, totals, and
  /// the entries oldest-first — the post-mortem artifact.
  [[nodiscard]] std::string dump_json() const;

  /// Empties the ring and zeroes the totals (test isolation).
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<flight_entry> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;   ///< next write slot once the ring is full
  std::uint64_t recorded_ = 0;
  std::uint64_t overwritten_ = 0;
};

/// Structural check of a dumped (and re-parsed) flight document: schema
/// tag, coherent totals, well-formed entries in non-decreasing time order.
struct flight_validation {
  bool ok = true;
  std::vector<std::string> errors;
  std::size_t entries = 0;
  std::size_t spans = 0;
  std::size_t counters = 0;
  std::size_t watchdog_verdicts = 0;
  std::size_t markers = 0;

  [[nodiscard]] std::string error_text() const;
};

[[nodiscard]] flight_validation validate_flight_dump(const json_value& doc);

}  // namespace cgp::telemetry::live
