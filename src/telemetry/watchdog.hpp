// Stall watchdog: liveness monitoring for the concurrent runtimes.
//
// Aggregate counters (telemetry.hpp) and causal traces (trace.hpp) both
// describe work that HAPPENED; neither can point at work that silently
// stopped happening — a thread-pool worker wedged in a task, a transport
// superstep that never reaches its barrier.  The watchdog closes that gap
// with heartbeats: participants register a `heartbeat` handle, stamp it
// while they make progress, and mark themselves busy/idle around units of
// work.  The live sampler (live.hpp) calls `check()` once per sample
// period; any participant that is BUSY and has been silent for more than
// `miss_threshold` periods is flagged exactly once per stall episode —
// a registry counter ticks, a trace instant is recorded, a flight-recorder
// verdict is noted, and an optional callback fires so drivers and tests
// can react (bench/live_export plants a stall and gates on detection).
//
// Idle participants are never flagged: a worker parked on its condition
// variable is healthy, not stalled — silence only indicts a participant
// that claimed to be working.
//
// Cost discipline: beat/begin/end are one clock read plus relaxed atomic
// stores; registration is a mutex + weak_ptr push.  The watchdog holds
// only weak references, so a participant's owner (a pool, a transport run)
// drops its shared_ptr and the slot self-prunes at the next check.
// Defining CGP_TELEMETRY_DISABLED compiles every hook down to a no-op.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace cgp::telemetry::live {

/// A registered participant's liveness handle.  Obtained from
/// watchdog::register_heartbeat; all methods are lock-free and safe to
/// call from the participant's own thread while check() runs elsewhere.
class heartbeat {
 public:
  explicit heartbeat(std::string name);

  /// Stamps "still making progress, now".
  void beat() noexcept;
  /// Stamps with an explicit timestamp (manual-clock tests).
  void beat_at(std::uint64_t now_ms) noexcept;
  /// Entering a unit of work: from here, silence counts as a stall.
  void begin_work() noexcept;
  /// Leaving the unit: silence is idleness again, and any stall episode
  /// ends (the next silent busy stretch is a fresh verdict).
  void end_work() noexcept;

  [[nodiscard]] bool busy() const noexcept {
    return busy_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t last_beat_ms() const noexcept {
    return last_beat_ms_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  friend class watchdog;

  std::string name_;
  std::atomic<std::uint64_t> last_beat_ms_{0};
  std::atomic<bool> busy_{false};
  std::atomic<bool> flagged_{false};  ///< one verdict per stall episode
};

/// One stall verdict.
struct stall_event {
  std::string participant;
  std::uint64_t last_beat_ms = 0;    ///< the participant's last sign of life
  std::uint64_t detected_at_ms = 0;  ///< the check() that flagged it
  std::uint64_t silent_ms = 0;       ///< detected_at - last_beat
};

class watchdog {
 public:
  watchdog() = default;
  watchdog(const watchdog&) = delete;
  watchdog& operator=(const watchdog&) = delete;

  [[nodiscard]] static watchdog& global();

  /// Registers a participant.  The returned shared_ptr is the OWNING
  /// reference: keep it alive for the participant's lifetime, drop it to
  /// deregister (the watchdog only holds a weak_ptr).
  [[nodiscard]] std::shared_ptr<heartbeat> register_heartbeat(
      std::string name);

  /// Installs the stall callback (invoked outside the watchdog lock, once
  /// per verdict).  Pass nullptr to remove.
  void on_stall(std::function<void(const stall_event&)> cb);

  /// One liveness sweep at `now_ms`: flags every busy participant silent
  /// for longer than `miss_threshold * period_ms`, prunes dropped
  /// registrations, returns the number of NEW verdicts.  Called by the
  /// live sampler each tick; callable directly with a manual clock.
  std::size_t check(std::uint64_t now_ms, std::uint64_t period_ms,
                    std::size_t miss_threshold);

  /// All verdicts so far, in detection order.
  [[nodiscard]] std::vector<stall_event> stalls() const;
  [[nodiscard]] std::size_t stall_count() const;

  /// Currently registered (live, non-expired) participants.
  [[nodiscard]] std::size_t heartbeat_count() const;

  /// Eagerly drops expired registrations, returning how many were
  /// removed.  check() prunes lazily on its next tick, but a long-lived
  /// sampler can go a whole period holding dangling weak_ptr slots from a
  /// torn-down pool — owners that deregister in bulk (thread_pool's
  /// destructor) call this so a stopped pool leaves nothing behind.
  std::size_t prune_expired();

  /// Drops verdicts and the callback, prunes expired registrations
  /// (test isolation; live handles stay registered).
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<std::weak_ptr<heartbeat>> beats_;
  std::vector<stall_event> stalls_;
  std::function<void(const stall_event&)> cb_;
};

}  // namespace cgp::telemetry::live
