#include "telemetry/telemetry.hpp"

#include <functional>
#include <sstream>
#include <thread>

#include "telemetry/export.hpp"
#include "telemetry/recorder.hpp"

namespace cgp::telemetry {

namespace detail {

std::size_t shard_index() noexcept {
  // Hash the thread id once per thread; distinct threads land on distinct
  // shards with high probability, so concurrent add()s do not contend.
  static thread_local const std::size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      counter::kShards;
  return slot;
}

}  // namespace detail

// --- check_report -----------------------------------------------------------

std::string check_report::to_string() const {
  std::ostringstream os;
  os << "check " << name << " "
     << (ok ? "ok" : (inconclusive ? "INCONCLUSIVE" : "VIOLATED"))
     << " bound=" << bound << " slope=" << growth_slope
     << " max_ratio=" << max_ratio << " samples=" << samples;
  if (!detail.empty()) os << " (" << detail << ")";
  return os.str();
}

// --- registry ---------------------------------------------------------------

registry& registry::global() {
  static registry r;
  return r;
}

counter& registry::get_counter(const std::string& name) {
  const std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<counter>();
  return *slot;
}

gauge& registry::get_gauge(const std::string& name) {
  const std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<gauge>();
  return *slot;
}

histogram& registry::get_histogram(const std::string& name) {
  const std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<histogram>();
  return *slot;
}

void registry::record_check(check_report report) {
  const std::lock_guard lock(mu_);
  checks_.push_back(std::move(report));
}

std::vector<std::pair<std::string, std::uint64_t>> registry::counter_values()
    const {
  const std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, std::int64_t>> registry::gauge_values()
    const {
  const std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::tuple<std::string, std::uint64_t, std::uint64_t>>
registry::histogram_totals() const {
  const std::lock_guard lock(mu_);
  std::vector<std::tuple<std::string, std::uint64_t, std::uint64_t>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    out.emplace_back(name, h->count(), h->sum());
  return out;
}

std::vector<registry::histogram_view> registry::histogram_views() const {
  const std::lock_guard lock(mu_);
  std::vector<histogram_view> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    histogram_view v;
    v.name = name;
    v.count = h->count();
    v.sum = h->sum();
    for (std::size_t i = 0; i < histogram::kBuckets; ++i)
      v.buckets[i] = h->bucket_count(i);
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<check_report> registry::check_reports() const {
  const std::lock_guard lock(mu_);
  return checks_;
}

std::uint64_t registry::counter_sum(const std::string& prefix) const {
  const std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    total += it->second->value();
  }
  return total;
}

void registry::reset() {
  const std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  checks_.clear();
}

std::string registry::export_text() const {
  const std::lock_guard lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_)
    os << "counter " << name << " " << c->value() << "\n";
  for (const auto& [name, g] : gauges_)
    os << "gauge " << name << " " << g->value() << "\n";
  for (const auto& [name, h] : histograms_) {
    os << "histogram " << name << " count=" << h->count()
       << " sum=" << h->sum() << " mean=" << h->mean();
    // Percentiles of zero samples do not exist; printing 0 would read as
    // "measured and instantaneous", so say null explicitly.
    if (h->count() == 0) {
      os << " p50=null p95=null p99=null";
    } else {
      os << " p50=" << h->percentile(50) << " p95=" << h->percentile(95)
         << " p99=" << h->percentile(99);
    }
    os << " max=" << h->max() << "\n";
  }
  for (const check_report& r : checks_) os << r.to_string() << "\n";
  return os.str();
}

std::string registry::export_json() const {
  const std::lock_guard lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << json_quote(name) << ":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << json_quote(name) << ":" << g->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << json_quote(name) << ":{\"count\":" << h->count()
       << ",\"sum\":" << h->sum() << ",\"mean\":" << h->mean();
    if (h->count() == 0) {
      // No samples means no percentiles: explicit nulls, not a fake 0.
      os << ",\"p50\":null,\"p95\":null,\"p99\":null";
    } else {
      os << ",\"p50\":" << h->percentile(50)
         << ",\"p95\":" << h->percentile(95)
         << ",\"p99\":" << h->percentile(99);
    }
    os << ",\"max\":" << h->max() << ",\"buckets\":[";
    bool first_b = true;
    for (std::size_t i = 0; i < histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket_count(i);
      if (n == 0) continue;  // sparse: only non-empty buckets exported
      const auto [lo, hi] = histogram::bucket_bounds(i);
      if (!first_b) os << ",";
      first_b = false;
      os << "{\"lo\":" << lo << ",\"hi\":" << hi << ",\"count\":" << n << "}";
    }
    os << "]}";
  }
  os << "},\"checks\":[";
  first = true;
  for (const check_report& r : checks_) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":" << json_quote(r.name)
       << ",\"bound\":" << json_quote(r.bound)
       << ",\"ok\":" << (r.ok ? "true" : "false")
       << ",\"inconclusive\":" << (r.inconclusive ? "true" : "false")
       << ",\"growth_slope\":" << r.growth_slope
       << ",\"max_ratio\":" << r.max_ratio << ",\"tolerance\":" << r.tolerance
       << ",\"samples\":" << r.samples
       << ",\"detail\":" << json_quote(r.detail) << "}";
  }
  os << "]}";
  return os.str();
}

// --- counter_snapshot -------------------------------------------------------

counter_snapshot::counter_snapshot(registry& reg) : reg_(&reg) {
  for (const auto& [name, v] : reg.counter_values()) base_.emplace(name, v);
}

std::vector<std::pair<std::string, std::uint64_t>> counter_snapshot::delta()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [name, v] : reg_->counter_values()) {
    const auto it = base_.find(name);
    const std::uint64_t before = it == base_.end() ? 0 : it->second;
    if (v > before) out.emplace_back(name, v - before);
  }
  return out;
}

std::uint64_t counter_snapshot::delta_sum(const std::string& prefix) const {
  std::uint64_t total = 0;
  for (const auto& [name, d] : delta())
    if (name.compare(0, prefix.size(), prefix) == 0) total += d;
  return total;
}

// --- span -------------------------------------------------------------------

namespace {
thread_local span* current_span = nullptr;
thread_local int span_depth = 0;
}  // namespace

span::span(std::string name, registry& reg)
    : reg_(&reg), name_(std::move(name)) {
  if constexpr (kEnabled) {
    start_ = std::chrono::steady_clock::now();
    parent_ = current_span;
    current_span = this;
    ++span_depth;
  }
}

span::~span() {
  if constexpr (kEnabled) {
    current_span = parent_;
    --span_depth;
    const std::uint64_t us = elapsed_us();
    reg_->get_counter(name_ + ".calls").add();
    reg_->get_histogram(name_ + ".duration_us").record(us);
    if (ops_ != 0) reg_->get_counter(name_ + ".ops").add(ops_);
    live::flight_recorder::global().note(live::flight_entry::kind::span,
                                         name_, static_cast<double>(us));
  }
}

std::uint64_t span::elapsed_us() const noexcept {
  if constexpr (!kEnabled) return 0;
  const auto dt = std::chrono::steady_clock::now() - start_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(dt).count());
}

int span::depth() noexcept { return span_depth; }
span* span::current() noexcept { return current_span; }

}  // namespace cgp::telemetry
