// Causal tracing: cross-subsystem trace propagation with Perfetto export.
//
// PR 1's aggregate metrics (telemetry.hpp) answer "how much"; this layer
// answers "why": which task, which rank, which rewrite chain, which
// symbolic-execution path produced a number or a diagnostic.  Every traced
// operation is a span with a 64-bit (trace_id, span_id) identity; spans
// nest through a thread-local context stack, and the context is captured
// and restored across asynchrony boundaries (thread_pool::submit wraps the
// task, distributed::network carries the context in the message envelope),
// so one driver-level root span grows into a single causally-linked tree
// spanning worker threads and simulated ranks.
//
// Recording goes to a lock-sharded, bounded ring-buffer sink: one mutex
// and one fixed-capacity buffer per shard (threads hash to shards, so
// concurrent recording does not contend), a hard `max_events` cap, and a
// dropped-events counter — the sink can never grow unbounded.
//
// Export is Chrome trace-event JSON (export_chrome_trace), loadable in
// Perfetto / chrome://tracing: duration events keyed by pid = simulated
// rank and tid = recording thread, instant events for diagnostics and
// rewrite steps, and flow events (s/f) drawing the causal arrows across
// lanes.  validate_chrome_trace() re-checks an exported trace for
// balance, orphaned parents, and parent-scope violations — the contract
// bench/trace_export and the trace tests gate on.
//
// Tracing is opt-in at the root: subsystem instrumentation (child_span,
// instant, flows) records only when the calling thread already has an
// active context, so untraced runs pay one thread-local load per hook.
// Defining CGP_TELEMETRY_DISABLED compiles every hook down to a no-op.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace cgp::telemetry::trace {

// ---------------------------------------------------------------------------
// Identity and context
// ---------------------------------------------------------------------------

/// The propagated identity: which causal tree (trace_id) and which node in
/// it (span_id).  {0, 0} means "not being traced".
struct span_context {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool active() const noexcept { return trace_id != 0; }
  friend bool operator==(const span_context&, const span_context&) = default;
};

/// Fresh process-unique 64-bit id (never 0).
[[nodiscard]] std::uint64_t next_id() noexcept;

/// The calling thread's innermost trace context ({0,0} when none).
[[nodiscard]] span_context current_context() noexcept;

/// The calling thread's current simulated rank (Perfetto pid lane; 0 =
/// driver / no rank).
[[nodiscard]] int current_rank() noexcept;

/// Scoped rank override: the network simulator brackets every per-node
/// handler invocation so that node's spans land on its own pid lane.
class rank_scope {
 public:
  explicit rank_scope(int rank) noexcept;
  ~rank_scope();
  rank_scope(const rank_scope&) = delete;
  rank_scope& operator=(const rank_scope&) = delete;

 private:
  int prev_ = 0;
};

/// Scoped adoption of a captured context on the far side of an asynchrony
/// boundary (worker thread, message delivery).  Spans opened underneath
/// parent into the adopted span with link="async" — causal order is
/// guaranteed, scope containment is not.
class context_scope {
 public:
  explicit context_scope(span_context ctx) noexcept;
  ~context_scope();
  context_scope(const context_scope&) = delete;
  context_scope& operator=(const context_scope&) = delete;

 private:
  span_context prev_{};
  bool prev_adopted_ = false;
};

// ---------------------------------------------------------------------------
// Events and the sink
// ---------------------------------------------------------------------------

/// One recorded event; `ph` follows the Chrome trace-event phase alphabet.
struct event {
  enum class phase : char {
    begin = 'B',        ///< duration start
    end = 'E',          ///< duration end
    instant = 'i',      ///< point event (diagnostic, rewrite step)
    counter = 'C',      ///< counter-track sample (metric on the timeline)
    flow_start = 's',   ///< causal arrow source (submit / send)
    flow_finish = 'f',  ///< causal arrow target (task start / delivery)
  };
  /// How this event relates to parent_span: "scope" = opened inside the
  /// parent on the same thread (containment holds), "async" = parent was
  /// adopted across an asynchrony boundary (only causal order holds),
  /// "root" = no parent.
  enum class link_kind : char { root = 'r', scope = 'c', async = 'a' };

  phase ph = phase::instant;
  link_kind link = link_kind::root;
  std::uint64_t ts_ns = 0;   ///< steady-clock ns since the sink's epoch
  std::uint64_t seq = 0;     ///< global record order (ties in ts)
  std::int32_t pid = 0;      ///< simulated rank lane
  std::uint32_t tid = 0;     ///< recording thread lane (small sequential id)
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;      ///< begin/end: the span; instant: owner
  std::uint64_t parent_span = 0;  ///< begin: parent span id (0 = root)
  std::uint64_t flow_id = 0;      ///< flow_start / flow_finish pairing
  double value = 0.0;             ///< counter sample value (phase::counter)
  std::string name;
  std::string cat;
  /// Extra key/value payload (diagnostic text, rewrite before/after, ...).
  std::vector<std::pair<std::string, std::string>> args;
};

/// Lock-sharded bounded event store.  Threads hash to shards (one mutex +
/// one fixed-capacity buffer each); when the per-shard slice of
/// `max_events` is full, new events are DROPPED (not overwritten — a
/// truncated tail is honest, a spliced one is not) and counted, here and
/// in the registry counter `telemetry.trace.dropped_events`.
class sink {
 public:
  static constexpr std::size_t kShards = 8;
  static constexpr std::size_t kDefaultMaxEvents = 1 << 16;

  sink();
  sink(const sink&) = delete;
  sink& operator=(const sink&) = delete;

  [[nodiscard]] static sink& global();

  /// Caps the total event count (`trace.max_events`); takes effect for
  /// subsequent records.  Also published as the registry gauge
  /// `telemetry.trace.max_events`.
  void set_max_events(std::size_t max_events) noexcept;
  [[nodiscard]] std::size_t max_events() const noexcept;

  void record(event e);

  [[nodiscard]] std::uint64_t dropped() const noexcept;
  [[nodiscard]] std::size_t size() const;

  /// All events, sorted by (ts, seq) — record order.
  [[nodiscard]] std::vector<event> snapshot() const;

  /// Chrome trace-event JSON: {"traceEvents": [...], "otherData": {...}}.
  /// Load in Perfetto (ui.perfetto.dev) or chrome://tracing.
  [[nodiscard]] std::string export_chrome_trace() const;

  /// Drops all events and zeroes the dropped counter (test isolation).
  void clear();

  /// Timestamp for events recorded now (ns since the sink's epoch).
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

 private:
  struct alignas(64) shard {
    mutable std::mutex mu;
    std::vector<event> events;  // bounded by max_events_ / kShards
  };
  std::array<shard, kShards> shards_;
  std::atomic<std::size_t> max_events_{kDefaultMaxEvents};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> seq_{0};
  std::chrono::steady_clock::time_point epoch_;
};

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII traced span: records a begin event on construction (parenting
/// under the thread's current context; starting a NEW trace when there is
/// none) and an end event on destruction, and makes itself the thread's
/// current context in between.  Drivers open one of these as the root;
/// subsystems use child_span so untraced runs stay silent.
class trace_span {
 public:
  explicit trace_span(std::string name, std::string cat = "span",
                      sink& s = sink::global());
  ~trace_span();
  trace_span(const trace_span&) = delete;
  trace_span& operator=(const trace_span&) = delete;

  /// Attaches a key/value to the span (emitted with the end event; Chrome
  /// viewers merge begin/end args onto the slice).
  void arg(std::string key, std::string value);

  [[nodiscard]] span_context context() const noexcept { return ctx_; }

 private:
  sink* sink_ = nullptr;
  span_context ctx_{};
  span_context prev_{};
  bool prev_adopted_ = false;
  std::string name_;
  std::string cat_;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Conditional span for subsystem instrumentation points: records only
/// when the calling thread already has an active trace context.  One
/// thread-local load when tracing is off.
class child_span {
 public:
  explicit child_span(const char* name, const char* cat = "span");

  /// Context of the underlying span, or the (inactive) current context.
  [[nodiscard]] span_context context() const noexcept;
  [[nodiscard]] bool recording() const noexcept { return inner_.has_value(); }
  void arg(std::string key, std::string value);

 private:
  std::optional<trace_span> inner_;
};

// ---------------------------------------------------------------------------
// Instant and flow events
// ---------------------------------------------------------------------------

/// Point event under the current context (no-op when untraced): rewrite
/// derivation steps, STLlint diagnostics, superstep markers.
void instant(std::string name, std::string cat = "instant",
             std::vector<std::pair<std::string, std::string>> args = {});

/// One Perfetto counter-track sample ('C' event) under the current trace,
/// so metrics and spans share a single timeline: Perfetto renders every
/// distinct `name` as its own counter track plotting `value` over time.
/// No-op when the calling thread is untraced.
void counter_sample(const std::string& name, double value,
                    const std::string& cat = "counter");

/// Samples every registry counter whose name starts with `prefix` as a
/// counter track (one 'C' event per counter, all at the current
/// timestamp).  Drivers call this at phase boundaries to stitch the
/// metric trajectory into the trace.  No-op when untraced.
void sample_registry_counters(const std::string& prefix,
                              registry& reg = registry::global());

/// Emits a flow-start arrowtail at the current position and returns the
/// flow id to carry across the boundary (0 when untraced — pass it along
/// anyway; flow_finish(0, ...) is a no-op).
[[nodiscard]] std::uint64_t flow_begin(const std::string& name,
                                       const std::string& cat = "flow");

/// Emits the matching arrowhead at the adopting site.  `name`/`cat` must
/// equal the flow_begin ones (Chrome matches flows on (name, cat, id)).
void flow_end(std::uint64_t flow_id, const std::string& name,
              const std::string& cat = "flow");

// ---------------------------------------------------------------------------
// Validation (shared by bench/trace_export and the trace tests)
// ---------------------------------------------------------------------------

struct validation_result {
  bool ok = true;
  std::vector<std::string> errors;
  std::size_t spans = 0;         ///< matched begin/end pairs
  std::size_t instants = 0;
  std::size_t counters = 0;      ///< counter-track samples ('C' events)
  std::size_t flows = 0;         ///< matched s/f pairs
  std::size_t ranks = 0;         ///< distinct pids owning spans
  std::size_t threads = 0;       ///< distinct tids owning spans
  std::size_t roots = 0;         ///< spans with no parent
  std::size_t traces = 0;        ///< distinct trace ids

  [[nodiscard]] std::string error_text() const;
};

/// Structural check of an exported Chrome trace document (as re-parsed by
/// telemetry::parse_json):
///  * per (pid, tid) lane, begin/end events obey stack discipline and
///    match by span id ("balanced");
///  * every non-root parent_span exists in the trace ("orphaned") and
///    shares the child's trace_id;
///  * link="scope" children lie within the parent's [begin, end] interval,
///    link="async" children begin no earlier than the parent begins
///    ("out of parent scope");
///  * every flow-finish has a flow-start with the same id, no later;
///  * every counter event ('C') has a non-empty name and a numeric
///    args.value (the series Perfetto plots).
[[nodiscard]] validation_result validate_chrome_trace(const json_value& doc);

}  // namespace cgp::telemetry::trace
