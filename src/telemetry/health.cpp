#include "telemetry/health.hpp"

#include <algorithm>
#include <chrono>
#include <set>

#include "telemetry/recorder.hpp"
#include "telemetry/trace.hpp"

namespace cgp::telemetry::health {
namespace {

// splitmix64 — the same hash family the runtime's fault plan uses, so
// reservoir admission is a pure function of (seed, shard, stream index)
// and identical on every backend and every run.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

[[nodiscard]] json_value jnum(double v) {
  json_value j;
  j.k = json_value::kind::number;
  j.num = v;
  return j;
}
[[nodiscard]] json_value jnum(std::uint64_t v) {
  return jnum(static_cast<double>(v));
}
[[nodiscard]] json_value jstr(std::string s) {
  json_value j;
  j.k = json_value::kind::string;
  j.str = std::move(s);
  return j;
}
[[nodiscard]] json_value jobj() {
  json_value j;
  j.k = json_value::kind::object;
  return j;
}
[[nodiscard]] json_value jarr() {
  json_value j;
  j.k = json_value::kind::array;
  return j;
}

/// Nonzero log2 buckets as [index, count] pairs — compact and lossless.
[[nodiscard]] json_value jbuckets(
    const std::array<std::uint64_t, histogram::kBuckets>& buckets) {
  json_value out = jarr();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    json_value pair = jarr();
    pair.arr.push_back(jnum(static_cast<std::uint64_t>(i)));
    pair.arr.push_back(jnum(buckets[i]));
    out.arr.push_back(std::move(pair));
  }
  return out;
}

[[nodiscard]] json_value jhist(
    std::uint64_t count, std::uint64_t sum,
    const std::array<std::uint64_t, histogram::kBuckets>& buckets) {
  json_value out = jobj();
  out.obj["count"] = jnum(count);
  out.obj["sum"] = jnum(sum);
  out.obj["buckets"] = jbuckets(buckets);
  return out;
}

[[nodiscard]] json_value jrollup(const shard_rollup& r) {
  json_value out = jobj();
  out.obj["routed"] = jnum(r.routed);
  out.obj["delivered"] = jnum(r.delivered);
  out.obj["dropped"] = jnum(r.dropped);
  out.obj["duplicated"] = jnum(r.duplicated);
  out.obj["last_active_round"] = jnum(r.last_active_round);
  out.obj["rounds_active"] = jnum(r.rounds_active);
  out.obj["latency"] = jhist(r.latency_count, r.latency_sum, r.latency_buckets);
  out.obj["depth"] = jhist(r.depth_count, r.depth_sum, r.depth_buckets);
  return out;
}

/// A verdict must land in the trace even when the evaluating thread (the
/// sampler, or a post-run driver) has no active context: build a root
/// instant by hand, exactly like the watchdog does for stalls.
void record_verdict_instant(const slo_verdict& v) {
  trace::sink& s = trace::sink::global();
  trace::event e;
  e.ph = trace::event::phase::instant;
  e.link = trace::event::link_kind::root;
  e.ts_ns = s.now_ns();
  e.trace_id = trace::next_id();
  e.span_id = trace::next_id();
  e.name = "health." + v.rule + ": " + v.target;
  e.cat = "telemetry.health";
  e.args.emplace_back("kind", to_string(v.kind));
  e.args.emplace_back("value", std::to_string(v.value));
  e.args.emplace_back("threshold", std::to_string(v.threshold));
  e.args.emplace_back("tick", std::to_string(v.tick));
  s.record(std::move(e));
}

void emit_verdict(const slo_verdict& v) {
  registry::global().get_counter("telemetry.health.verdicts").add(1);
  registry::global().get_counter("telemetry.health.verdicts." + v.rule).add(1);
  live::flight_recorder::global().note(
      live::flight_entry::kind::marker, "health." + v.rule, v.value,
      v.target + ": " + to_string(v.kind) + " " + std::to_string(v.value) +
          " over " + std::to_string(v.threshold));
  record_verdict_instant(v);
}

/// Exemplar instants join the run's causal tree: use the barrier thread's
/// own context when it has one (the sim coordinator runs inside the round
/// span), else adopt the engine's captured phase context (the inproc
/// completion step fires on a bare worker thread).  Untraced runs stay
/// silent.
void record_exemplar_instant(const std::string& backend, const exemplar& ex,
                             std::uint64_t trace_id,
                             std::uint64_t parent_span) {
  std::vector<std::pair<std::string, std::string>> args;
  args.emplace_back("backend", backend);
  args.emplace_back("shard", std::to_string(ex.shard));
  args.emplace_back("round", std::to_string(ex.round));
  args.emplace_back("delivered", std::to_string(ex.delivered));
  args.emplace_back("latency", std::to_string(ex.latency));
  if (trace::current_context().active()) {
    trace::instant("health.exemplar", "telemetry.health", std::move(args));
  } else if (trace_id != 0) {
    const trace::context_scope adopt({trace_id, parent_span});
    trace::instant("health.exemplar", "telemetry.health", std::move(args));
  }
}

[[nodiscard]] double threshold_of(const slo_rule& rule) noexcept {
  switch (rule.kind) {
    case rule_kind::skew_ratio:
    case rule_kind::drop_rate:
      return rule.threshold;
    case rule_kind::stall_budget:
    case rule_kind::convergence_deadline:
      return static_cast<double>(rule.budget);
  }
  return 0.0;
}

}  // namespace

const char* to_string(rule_kind k) noexcept {
  switch (k) {
    case rule_kind::skew_ratio: return "skew_ratio";
    case rule_kind::stall_budget: return "stall_budget";
    case rule_kind::drop_rate: return "drop_rate";
    case rule_kind::convergence_deadline: return "convergence_deadline";
  }
  return "unknown";
}

bool parse_rule_kind(std::string_view s, rule_kind& out) noexcept {
  if (s == "skew_ratio") out = rule_kind::skew_ratio;
  else if (s == "stall_budget") out = rule_kind::stall_budget;
  else if (s == "drop_rate") out = rule_kind::drop_rate;
  else if (s == "convergence_deadline") out = rule_kind::convergence_deadline;
  else return false;
  return true;
}

std::vector<slo_rule> default_rules() {
  return {
      {.kind = rule_kind::skew_ratio,
       .name = "shard_skew",
       .threshold = 4.0,
       .min_activity = 1024},
      {.kind = rule_kind::stall_budget, .name = "shard_stall", .budget = 3},
      {.kind = rule_kind::drop_rate,
       .name = "drop_ceiling",
       .threshold = 0.05,
       .min_activity = 1024},
      {.kind = rule_kind::convergence_deadline,
       .name = "gossip_convergence",
       .budget = 8,
       .metric = "distributed.gossip.unconverged"},
  };
}

void shard_rollup::fold(const shard_rollup& other) {
  routed += other.routed;
  delivered += other.delivered;
  dropped += other.dropped;
  duplicated += other.duplicated;
  last_active_round = std::max(last_active_round, other.last_active_round);
  rounds_active += other.rounds_active;
  latency_count += other.latency_count;
  latency_sum += other.latency_sum;
  depth_count += other.depth_count;
  depth_sum += other.depth_sum;
  for (std::size_t i = 0; i < latency_buckets.size(); ++i) {
    latency_buckets[i] += other.latency_buckets[i];
    depth_buckets[i] += other.depth_buckets[i];
  }
}

// ---------------------------------------------------------------------------
// backend_track
// ---------------------------------------------------------------------------

backend_track::backend_track(std::string name, const health_options& opts)
    : name_(std::move(name)),
      opts_(opts),
      slots_(opts.shards == 0 ? 1 : opts.shards),
      rows_(opts.shards == 0 ? 1 : opts.shards) {
  // Pre-size the reservoirs so end_round stays allocation-free on the
  // admission path (it runs inside a noexcept barrier completion step).
  for (round_row& r : rows_) r.reservoir.reserve(opts_.reservoir_k);
}

void backend_track::begin_run(std::size_t nodes) {
  const std::lock_guard lock(mu_);
  nodes_ = nodes;
  const std::size_t h = slots_.size();
  width_ = nodes == 0 ? 1 : (nodes + h - 1) / h;
  if (width_ == 0) width_ = 1;
  shards_used_ = nodes == 0 ? 0 : (nodes + width_ - 1) / width_;
  last_round_ns_ = 0;
}

void backend_track::end_round(std::size_t round, std::uint64_t trace_id,
                              std::uint64_t parent_span) {
  if constexpr (!kEnabled) return;
  std::vector<exemplar> admitted;
  {
    const std::lock_guard lock(mu_);
    std::uint64_t wall_us = 0;
    if (!opts_.manual_clock) {
      const auto now = std::chrono::steady_clock::now().time_since_epoch();
      const std::uint64_t now_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
      if (last_round_ns_ != 0 && now_ns > last_round_ns_)
        wall_us = (now_ns - last_round_ns_) / 1000;
      last_round_ns_ = now_ns;
    }
    if (round + 1 > rounds_) rounds_ = round + 1;
    for (std::size_t s = 0; s < shards_used_; ++s) {
      round_row& row = rows_[s];
      const std::uint64_t routed =
          slots_[s].routed.load(std::memory_order_relaxed);
      const std::uint64_t delivered =
          slots_[s].delivered.load(std::memory_order_relaxed);
      const std::uint64_t routed_delta = routed - row.prev_routed;
      const std::uint64_t delivered_delta = delivered - row.prev_delivered;
      row.prev_routed = routed;
      row.prev_delivered = delivered;
      // Inbox depth: mail this round scheduled into the next round.
      row.depth_buckets[histogram::bucket_of(delivered_delta)] += 1;
      row.depth_count += 1;
      row.depth_sum += delivered_delta;
      if (routed_delta == 0 && delivered_delta == 0) continue;
      // Superstep latency: under the manual clock a pure function of the
      // deterministic run (delivered + 1, so an active-but-quiet round
      // still lands in bucket 1); wall time otherwise.
      const std::uint64_t latency =
          opts_.manual_clock ? delivered_delta + 1 : wall_us + 1;
      row.latency_buckets[histogram::bucket_of(latency)] += 1;
      row.latency_count += 1;
      row.latency_sum += latency;
      // Progress is SENDS: a crashed shard keeps receiving gossip from its
      // neighbors long after it stopped doing anything, so a shard only
      // counts as active — and only offers exemplars — in rounds where it
      // routed traffic of its own.  This is what lets the stall rule see a
      // wedged shard inside a still-chattering run.
      if (routed_delta == 0) continue;
      row.last_active_round = static_cast<std::uint64_t>(round) + 1;
      row.rounds_active += 1;
      // Reservoir offer (algorithm R): item i survives iff its seeded
      // draw over [0, i) lands below k.
      const std::uint64_t seen = ++row.seen;
      const exemplar ex{static_cast<std::uint32_t>(s),
                        static_cast<std::uint64_t>(round),
                        delivered_delta,
                        routed_delta,
                        latency,
                        seen};
      if (opts_.reservoir_k == 0) continue;
      if (row.reservoir.size() < opts_.reservoir_k) {
        row.reservoir.push_back(ex);
        admitted.push_back(ex);
      } else {
        const std::uint64_t draw =
            mix64(opts_.seed ^ mix64(static_cast<std::uint64_t>(s) + 1) ^
                  mix64(seen));
        const std::uint64_t j = draw % seen;
        if (j < opts_.reservoir_k) {
          row.reservoir[static_cast<std::size_t>(j)] = ex;
          admitted.push_back(ex);
        }
      }
    }
  }
  // Outside the lock: admissions become trace instants in the phase tree.
  for (const exemplar& ex : admitted)
    record_exemplar_instant(name_, ex, trace_id, parent_span);
}

backend_snapshot backend_track::snapshot() const {
  backend_snapshot out;
  out.name = name_;
  const std::lock_guard lock(mu_);
  out.nodes = nodes_;
  out.shards_used = shards_used_;
  out.rounds = rounds_;
  out.shards.resize(shards_used_);
  for (std::size_t s = 0; s < shards_used_; ++s) {
    shard_rollup& r = out.shards[s];
    r.routed = slots_[s].routed.load(std::memory_order_relaxed);
    r.delivered = slots_[s].delivered.load(std::memory_order_relaxed);
    r.dropped = slots_[s].dropped.load(std::memory_order_relaxed);
    r.duplicated = slots_[s].duplicated.load(std::memory_order_relaxed);
    const round_row& row = rows_[s];
    r.last_active_round = row.last_active_round;
    r.rounds_active = row.rounds_active;
    r.latency_count = row.latency_count;
    r.latency_sum = row.latency_sum;
    r.depth_count = row.depth_count;
    r.depth_sum = row.depth_sum;
    r.latency_buckets = row.latency_buckets;
    r.depth_buckets = row.depth_buckets;
    out.rollup.fold(r);
    for (const exemplar& ex : row.reservoir) out.reservoir.push_back(ex);
    out.reservoir_seen += row.seen;
  }
  return out;
}

// ---------------------------------------------------------------------------
// observatory
// ---------------------------------------------------------------------------

observatory& observatory::global() {
  static observatory o;
  return o;
}

void observatory::enable(health_options opts) {
  const std::lock_guard lock(mu_);
  if (opts.shards == 0) opts.shards = 1;
  if (opts.rules.empty()) opts.rules = default_rules();
  opts_ = std::move(opts);
  tracks_.clear();
  verdicts_.clear();
  episodes_.clear();
  mirrored_.clear();
  ticks_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void observatory::disable() {
  const std::lock_guard lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
}

void observatory::reset() {
  const std::lock_guard lock(mu_);
  tracks_.clear();
  verdicts_.clear();
  episodes_.clear();
  mirrored_.clear();
  ticks_ = 0;
}

health_options observatory::options() const {
  const std::lock_guard lock(mu_);
  return opts_;
}

backend_track* observatory::begin_run(const char* backend,
                                      std::size_t nodes) {
  if constexpr (!kEnabled) return nullptr;
  if (!enabled()) return nullptr;
  const std::lock_guard lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return nullptr;
  auto it = tracks_.find(backend);
  if (it == tracks_.end())
    it = tracks_
             .emplace(backend, std::unique_ptr<backend_track>(
                                   new backend_track(backend, opts_)))
             .first;
  it->second->begin_run(nodes);
  return it->second.get();
}

std::uint64_t observatory::ticks() const {
  const std::lock_guard lock(mu_);
  return ticks_;
}

std::vector<slo_verdict> observatory::verdicts() const {
  const std::lock_guard lock(mu_);
  return verdicts_;
}

std::vector<backend_snapshot> observatory::snapshots() const {
  const std::lock_guard lock(mu_);
  std::vector<backend_snapshot> out;
  out.reserve(tracks_.size());
  for (const auto& [name, track] : tracks_) out.push_back(track->snapshot());
  return out;
}

std::size_t observatory::tick(std::uint64_t now_ms) {
  if constexpr (!kEnabled) return 0;
  if (!enabled()) return 0;
  const std::lock_guard lock(mu_);
  ++ticks_;
  std::vector<backend_snapshot> snaps;
  snaps.reserve(tracks_.size());
  for (const auto& [name, track] : tracks_) snaps.push_back(track->snapshot());
  mirror_locked(snaps);
  return evaluate_rules_locked(now_ms, snaps);
}

void observatory::mirror_locked(const std::vector<backend_snapshot>& snaps) {
  registry& reg = registry::global();
  // Counters are add-only: push the growth since the last mirror so the
  // registry value tracks the cumulative roll-up exactly.
  const auto mirror = [&](const std::string& name, std::uint64_t absolute) {
    std::uint64_t& last = mirrored_[name];
    if (absolute > last) {
      reg.get_counter(name).add(absolute - last);
      last = absolute;
    }
  };
  // Histograms replay bucket-count deltas at each bucket's lower bound:
  // bucket-faithful (counts and percentile estimates match the roll-up),
  // sums approximated at bucket floors.
  const auto replay =
      [&](const std::string& hname,
          const std::array<std::uint64_t, histogram::kBuckets>& buckets) {
        histogram& h = reg.get_histogram(hname);
        for (std::size_t i = 0; i < buckets.size(); ++i) {
          if (buckets[i] == 0) continue;
          std::uint64_t& last = mirrored_[hname + ".b" + std::to_string(i)];
          if (buckets[i] > last) {
            h.record_n(histogram::bucket_bounds(i).first, buckets[i] - last);
            last = buckets[i];
          }
        }
      };
  for (const backend_snapshot& b : snaps) {
    const std::string base = "distributed.health." + b.name;
    for (std::size_t s = 0; s < b.shards.size(); ++s) {
      const shard_rollup& r = b.shards[s];
      const std::string sb = base + ".shard" + std::to_string(s);
      mirror(sb + ".routed", r.routed);
      mirror(sb + ".delivered", r.delivered);
      mirror(sb + ".dropped", r.dropped);
      mirror(sb + ".duplicated", r.duplicated);
    }
    mirror(base + ".routed", b.rollup.routed);
    mirror(base + ".delivered", b.rollup.delivered);
    mirror(base + ".dropped", b.rollup.dropped);
    mirror(base + ".duplicated", b.rollup.duplicated);
    replay(base + ".superstep_latency", b.rollup.latency_buckets);
    replay(base + ".inbox_depth", b.rollup.depth_buckets);
  }
}

std::size_t observatory::evaluate_rules_locked(
    std::uint64_t now_ms, const std::vector<backend_snapshot>& snaps) {
  struct violation {
    const slo_rule* rule;
    std::string target;
    double value;
  };
  std::vector<violation> violations;
  registry& reg = registry::global();
  for (const slo_rule& rule : opts_.rules) {
    switch (rule.kind) {
      case rule_kind::skew_ratio:
        for (const backend_snapshot& b : snaps) {
          std::uint64_t total = 0, best = 0;
          std::size_t best_shard = 0, active = 0;
          for (std::size_t s = 0; s < b.shards.size(); ++s) {
            const std::uint64_t t = b.shards[s].routed + b.shards[s].delivered;
            if (t == 0) continue;
            ++active;
            total += t;
            if (t > best) {
              best = t;
              best_shard = s;
            }
          }
          if (active < 2 || total < rule.min_activity) continue;
          const double mean =
              static_cast<double>(total) / static_cast<double>(active);
          const double ratio = static_cast<double>(best) / mean;
          if (ratio > rule.threshold)
            violations.push_back({&rule,
                                  "distributed." + b.name + ".shard" +
                                      std::to_string(best_shard),
                                  ratio});
        }
        break;
      case rule_kind::stall_budget:
        for (const backend_snapshot& b : snaps) {
          const std::uint64_t newest = b.rollup.last_active_round;
          for (std::size_t s = 0; s < b.shards.size(); ++s) {
            const shard_rollup& r = b.shards[s];
            if (r.last_active_round == 0 || newest <= r.last_active_round)
              continue;
            const std::uint64_t lag = newest - r.last_active_round;
            if (lag > rule.budget)
              violations.push_back(
                  {&rule,
                   "distributed." + b.name + ".shard" + std::to_string(s),
                   static_cast<double>(lag)});
          }
        }
        break;
      case rule_kind::drop_rate:
        for (const backend_snapshot& b : snaps) {
          if (b.rollup.routed == 0 || b.rollup.routed < rule.min_activity)
            continue;
          const double rate = static_cast<double>(b.rollup.dropped) /
                              static_cast<double>(b.rollup.routed);
          if (rate > rule.threshold)
            violations.push_back({&rule, "distributed." + b.name, rate});
        }
        break;
      case rule_kind::convergence_deadline: {
        if (rule.metric.empty() || ticks_ < rule.budget) break;
        const std::int64_t level = reg.get_gauge(rule.metric).value();
        if (level > 0)
          violations.push_back(
              {&rule, rule.metric, static_cast<double>(level)});
        break;
      }
    }
  }
  // Episode bookkeeping (watchdog semantics): one verdict per (rule,
  // target) episode; the episode re-arms when the condition clears.
  std::vector<slo_verdict> fresh;
  std::set<std::pair<std::string, std::string>> current;
  for (const violation& v : violations) {
    const auto key = std::make_pair(v.rule->name, v.target);
    current.insert(key);
    bool& flagged = episodes_[key];
    if (flagged) continue;
    flagged = true;
    slo_verdict verdict;
    verdict.rule = v.rule->name;
    verdict.kind = v.rule->kind;
    verdict.target = v.target;
    verdict.value = v.value;
    verdict.threshold = threshold_of(*v.rule);
    verdict.tick = ticks_;
    verdict.now_ms = now_ms;
    verdicts_.push_back(verdict);
    fresh.push_back(std::move(verdict));
  }
  for (auto& [key, flagged] : episodes_)
    if (flagged && current.find(key) == current.end()) flagged = false;
  // Side effects outside our own data structures; the registry, the
  // flight recorder, and the trace sink carry their own locks.
  for (const slo_verdict& v : fresh) emit_verdict(v);
  return fresh.size();
}

std::string observatory::export_json() const {
  const std::lock_guard lock(mu_);
  json_value doc = jobj();
  doc.obj["schema"] = jstr("cgp.health.v1");
  doc.obj["clock"] = jstr(opts_.manual_clock ? "manual" : "steady");
  doc.obj["ticks"] = jnum(ticks_);
  doc.obj["seed"] = jnum(opts_.seed);
  doc.obj["shards"] = jnum(static_cast<std::uint64_t>(opts_.shards));
  doc.obj["reservoir_k"] =
      jnum(static_cast<std::uint64_t>(opts_.reservoir_k));
  json_value backends = jarr();
  shard_rollup run_rollup;
  for (const auto& [name, track] : tracks_) {
    const backend_snapshot b = track->snapshot();
    json_value jb = jobj();
    jb.obj["name"] = jstr(b.name);
    jb.obj["nodes"] = jnum(static_cast<std::uint64_t>(b.nodes));
    jb.obj["shards_used"] = jnum(static_cast<std::uint64_t>(b.shards_used));
    jb.obj["rounds"] = jnum(b.rounds);
    json_value rows = jarr();
    for (std::size_t s = 0; s < b.shards.size(); ++s) {
      json_value row = jrollup(b.shards[s]);
      row.obj["index"] = jnum(static_cast<std::uint64_t>(s));
      rows.arr.push_back(std::move(row));
    }
    jb.obj["shards"] = std::move(rows);
    jb.obj["rollup"] = jrollup(b.rollup);
    json_value reservoir = jarr();
    for (const exemplar& ex : b.reservoir) {
      json_value je = jobj();
      je.obj["shard"] = jnum(static_cast<std::uint64_t>(ex.shard));
      je.obj["round"] = jnum(ex.round);
      je.obj["delivered"] = jnum(ex.delivered);
      je.obj["routed"] = jnum(ex.routed);
      je.obj["latency"] = jnum(ex.latency);
      je.obj["seen"] = jnum(ex.seen);
      reservoir.arr.push_back(std::move(je));
    }
    jb.obj["reservoir"] = std::move(reservoir);
    jb.obj["reservoir_seen"] = jnum(b.reservoir_seen);
    run_rollup.fold(b.rollup);
    backends.arr.push_back(std::move(jb));
  }
  doc.obj["backends"] = std::move(backends);
  doc.obj["rollup"] = jrollup(run_rollup);
  json_value rules = jarr();
  for (const slo_rule& r : opts_.rules) {
    json_value jr = jobj();
    jr.obj["name"] = jstr(r.name);
    jr.obj["kind"] = jstr(to_string(r.kind));
    jr.obj["threshold"] = jnum(r.threshold);
    jr.obj["budget"] = jnum(r.budget);
    jr.obj["metric"] = jstr(r.metric);
    jr.obj["min_activity"] = jnum(r.min_activity);
    rules.arr.push_back(std::move(jr));
  }
  doc.obj["rules"] = std::move(rules);
  json_value verdicts = jarr();
  for (const slo_verdict& v : verdicts_) {
    json_value jv = jobj();
    jv.obj["rule"] = jstr(v.rule);
    jv.obj["kind"] = jstr(to_string(v.kind));
    jv.obj["target"] = jstr(v.target);
    jv.obj["value"] = jnum(v.value);
    jv.obj["threshold"] = jnum(v.threshold);
    jv.obj["tick"] = jnum(v.tick);
    jv.obj["now_ms"] = jnum(v.now_ms);
    verdicts.arr.push_back(std::move(jv));
  }
  doc.obj["verdicts"] = std::move(verdicts);
  return dump_json(doc);
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

namespace {

struct checker {
  health_validation* out;

  void fail(std::string msg) {
    out->ok = false;
    out->errors.push_back(std::move(msg));
  }
  [[nodiscard]] bool num_field(const json_value& v, const std::string& key,
                               const std::string& where, double& dst) {
    if (!v.has(key) || !v.at(key).is(json_value::kind::number)) {
      fail(where + ": missing numeric '" + key + "'");
      return false;
    }
    dst = v.at(key).num;
    return true;
  }
  [[nodiscard]] bool u64_field(const json_value& v, const std::string& key,
                               const std::string& where, std::uint64_t& dst) {
    double d = 0.0;
    if (!num_field(v, key, where, d)) return false;
    if (d < 0.0) {
      fail(where + ": negative '" + key + "'");
      return false;
    }
    dst = static_cast<std::uint64_t>(d);
    return true;
  }
  [[nodiscard]] bool str_field(const json_value& v, const std::string& key,
                               const std::string& where, std::string& dst) {
    if (!v.has(key) || !v.at(key).is(json_value::kind::string)) {
      fail(where + ": missing string '" + key + "'");
      return false;
    }
    dst = v.at(key).str;
    return true;
  }

  /// Reads one histogram object; returns false (with errors) when
  /// malformed or when the bucket counts do not sum to `count`.
  bool read_hist(const json_value& v, const std::string& key,
                 const std::string& where, shard_rollup& r, bool latency) {
    if (!v.has(key) || !v.at(key).is(json_value::kind::object)) {
      fail(where + ": missing histogram '" + key + "'");
      return false;
    }
    const json_value& h = v.at(key);
    std::uint64_t count = 0, sum = 0;
    if (!u64_field(h, "count", where + "." + key, count) ||
        !u64_field(h, "sum", where + "." + key, sum))
      return false;
    std::array<std::uint64_t, histogram::kBuckets> buckets{};
    std::uint64_t bucket_total = 0;
    if (!h.has("buckets") || !h.at("buckets").is(json_value::kind::array)) {
      fail(where + "." + key + ": missing 'buckets'");
      return false;
    }
    for (const json_value& pair : h.at("buckets").arr) {
      if (!pair.is(json_value::kind::array) || pair.arr.size() != 2 ||
          !pair.arr[0].is(json_value::kind::number) ||
          !pair.arr[1].is(json_value::kind::number)) {
        fail(where + "." + key + ": malformed bucket pair");
        return false;
      }
      const auto idx = static_cast<std::size_t>(pair.arr[0].num);
      if (idx >= histogram::kBuckets) {
        fail(where + "." + key + ": bucket index " + std::to_string(idx) +
             " out of range");
        return false;
      }
      buckets[idx] += static_cast<std::uint64_t>(pair.arr[1].num);
      bucket_total += static_cast<std::uint64_t>(pair.arr[1].num);
    }
    if (bucket_total != count) {
      fail(where + "." + key + ": buckets sum to " +
           std::to_string(bucket_total) + ", count says " +
           std::to_string(count));
      return false;
    }
    if (latency) {
      r.latency_count = count;
      r.latency_sum = sum;
      r.latency_buckets = buckets;
    } else {
      r.depth_count = count;
      r.depth_sum = sum;
      r.depth_buckets = buckets;
    }
    return true;
  }

  bool read_rollup(const json_value& v, const std::string& where,
                   shard_rollup& r) {
    bool ok = u64_field(v, "routed", where, r.routed);
    ok = u64_field(v, "delivered", where, r.delivered) && ok;
    ok = u64_field(v, "dropped", where, r.dropped) && ok;
    ok = u64_field(v, "duplicated", where, r.duplicated) && ok;
    ok = u64_field(v, "last_active_round", where, r.last_active_round) && ok;
    ok = u64_field(v, "rounds_active", where, r.rounds_active) && ok;
    ok = read_hist(v, "latency", where, r, true) && ok;
    ok = read_hist(v, "depth", where, r, false) && ok;
    return ok;
  }

  void check_fold(const shard_rollup& rollup, const shard_rollup& folded,
                  const std::string& where) {
    const auto miscount = [&](const char* what, std::uint64_t got,
                              std::uint64_t want) {
      if (got != want)
        fail(where + ": rollup." + what + " is " + std::to_string(got) +
             ", rows fold to " + std::to_string(want));
    };
    miscount("routed", rollup.routed, folded.routed);
    miscount("delivered", rollup.delivered, folded.delivered);
    miscount("dropped", rollup.dropped, folded.dropped);
    miscount("duplicated", rollup.duplicated, folded.duplicated);
    miscount("last_active_round", rollup.last_active_round,
             folded.last_active_round);
    miscount("rounds_active", rollup.rounds_active, folded.rounds_active);
    miscount("latency.count", rollup.latency_count, folded.latency_count);
    miscount("latency.sum", rollup.latency_sum, folded.latency_sum);
    miscount("depth.count", rollup.depth_count, folded.depth_count);
    miscount("depth.sum", rollup.depth_sum, folded.depth_sum);
  }
};

}  // namespace

std::string health_validation::error_text() const {
  std::string out;
  for (const std::string& e : errors) {
    out += e;
    out += '\n';
  }
  return out;
}

health_validation validate_health_export(const json_value& doc) {
  health_validation v;
  checker c{&v};
  if (!doc.is(json_value::kind::object)) {
    c.fail("document is not an object");
    return v;
  }
  std::string schema;
  if (c.str_field(doc, "schema", "document", schema) &&
      schema != "cgp.health.v1")
    c.fail("schema is '" + schema + "', expected 'cgp.health.v1'");
  std::string clock;
  if (c.str_field(doc, "clock", "document", clock) && clock != "manual" &&
      clock != "steady")
    c.fail("clock is '" + clock + "', expected 'manual' or 'steady'");
  std::uint64_t ticks = 0, reservoir_k = 0, shards_cfg = 0, seed = 0;
  (void)c.u64_field(doc, "ticks", "document", ticks);
  (void)c.u64_field(doc, "reservoir_k", "document", reservoir_k);
  (void)c.u64_field(doc, "shards", "document", shards_cfg);
  (void)c.u64_field(doc, "seed", "document", seed);

  // Rules: unique names, known kinds; verdicts reference them.
  std::map<std::string, rule_kind> rules;
  if (doc.has("rules") && doc.at("rules").is(json_value::kind::array)) {
    for (const json_value& jr : doc.at("rules").arr) {
      std::string name, kind_s;
      if (!c.str_field(jr, "name", "rule", name) ||
          !c.str_field(jr, "kind", "rule", kind_s))
        continue;
      rule_kind kind;
      if (!parse_rule_kind(kind_s, kind)) {
        c.fail("rule '" + name + "': unknown kind '" + kind_s + "'");
        continue;
      }
      if (!rules.emplace(name, kind).second)
        c.fail("rule '" + name + "': duplicate name");
    }
  } else {
    c.fail("document: missing 'rules' array");
  }

  shard_rollup run_fold;
  if (doc.has("backends") && doc.at("backends").is(json_value::kind::array)) {
    for (const json_value& jb : doc.at("backends").arr) {
      ++v.backends;
      std::string name;
      if (!c.str_field(jb, "name", "backend", name)) continue;
      const std::string where = "backend '" + name + "'";
      std::uint64_t shards_used = 0, seen = 0;
      (void)c.u64_field(jb, "shards_used", where, shards_used);
      (void)c.u64_field(jb, "reservoir_seen", where, seen);
      if (shards_used > shards_cfg)
        c.fail(where + ": shards_used " + std::to_string(shards_used) +
               " exceeds configured " + std::to_string(shards_cfg));
      shard_rollup folded;
      if (jb.has("shards") && jb.at("shards").is(json_value::kind::array)) {
        const auto& rows = jb.at("shards").arr;
        if (rows.size() != shards_used)
          c.fail(where + ": " + std::to_string(rows.size()) +
                 " shard rows, shards_used says " +
                 std::to_string(shards_used));
        for (const json_value& row : rows) {
          ++v.shards;
          shard_rollup r;
          if (c.read_rollup(row, where + " shard row", r)) folded.fold(r);
        }
      } else {
        c.fail(where + ": missing 'shards' array");
      }
      shard_rollup rollup;
      if (jb.has("rollup") &&
          c.read_rollup(jb.at("rollup"), where + " rollup", rollup)) {
        c.check_fold(rollup, folded, where);
        run_fold.fold(rollup);
      }
      // Reservoir: per-shard retention within k, plausible admissions.
      std::map<std::uint32_t, std::uint64_t> kept;
      std::uint64_t max_seen = 0;
      if (jb.has("reservoir") &&
          jb.at("reservoir").is(json_value::kind::array)) {
        for (const json_value& je : jb.at("reservoir").arr) {
          ++v.exemplars;
          std::uint64_t shard = 0, ex_seen = 0;
          if (!c.u64_field(je, "shard", where + " exemplar", shard) ||
              !c.u64_field(je, "seen", where + " exemplar", ex_seen))
            continue;
          if (shard >= shards_used)
            c.fail(where + ": exemplar shard " + std::to_string(shard) +
                   " out of range");
          if (ex_seen == 0)
            c.fail(where + ": exemplar admission index 0 (must be 1-based)");
          max_seen = std::max(max_seen, ex_seen);
          ++kept[static_cast<std::uint32_t>(shard)];
        }
      } else {
        c.fail(where + ": missing 'reservoir' array");
      }
      for (const auto& [shard, count] : kept)
        if (count > reservoir_k)
          c.fail(where + ": shard " + std::to_string(shard) + " kept " +
                 std::to_string(count) + " exemplars, k is " +
                 std::to_string(reservoir_k));
      if (max_seen > seen)
        c.fail(where + ": exemplar admission index " +
               std::to_string(max_seen) + " exceeds reservoir_seen " +
               std::to_string(seen));
    }
  } else {
    c.fail("document: missing 'backends' array");
  }
  shard_rollup top;
  if (doc.has("rollup") && c.read_rollup(doc.at("rollup"), "run rollup", top))
    c.check_fold(top, run_fold, "run");

  if (doc.has("verdicts") && doc.at("verdicts").is(json_value::kind::array)) {
    for (const json_value& jv : doc.at("verdicts").arr) {
      ++v.verdicts;
      std::string rule, kind_s, target;
      std::uint64_t tick = 0;
      if (!c.str_field(jv, "rule", "verdict", rule) ||
          !c.str_field(jv, "kind", "verdict", kind_s) ||
          !c.str_field(jv, "target", "verdict", target) ||
          !c.u64_field(jv, "tick", "verdict", tick))
        continue;
      const auto it = rules.find(rule);
      if (it == rules.end()) {
        c.fail("verdict references unknown rule '" + rule + "'");
        continue;
      }
      rule_kind kind;
      if (!parse_rule_kind(kind_s, kind) || kind != it->second)
        c.fail("verdict '" + rule + "': kind '" + kind_s +
               "' does not match the rule");
      if (tick == 0 || tick > ticks)
        c.fail("verdict '" + rule + "': tick " + std::to_string(tick) +
               " outside [1, " + std::to_string(ticks) + "]");
    }
  } else {
    c.fail("document: missing 'verdicts' array");
  }
  return v;
}

}  // namespace cgp::telemetry::health
