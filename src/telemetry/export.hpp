// JSON helpers for the telemetry exporters: string escaping on the way
// out and a minimal recursive-descent parser on the way in, so tests can
// round-trip registry::export_json() and bench/ tools can consume it
// without an external dependency.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cgp::telemetry {

/// Escapes and double-quotes `s` for inclusion in a JSON document.
[[nodiscard]] std::string json_quote(std::string_view s);

/// Thrown by parse_json on malformed input.
class json_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed JSON value (numbers are doubles; objects preserve key order
/// not at all — std::map keeps them sorted, which is fine for lookups).
struct json_value {
  enum class kind { null, boolean, number, string, array, object };

  kind k = kind::null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<json_value> arr;
  std::map<std::string, json_value> obj;

  [[nodiscard]] bool is(kind want) const noexcept { return k == want; }

  /// Object member access; throws json_error when absent or not an object.
  [[nodiscard]] const json_value& at(const std::string& key) const;
  /// True when this is an object containing `key`.
  [[nodiscard]] bool has(const std::string& key) const noexcept;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error).
[[nodiscard]] json_value parse_json(std::string_view text);

/// Serializes a parsed value back to a compact JSON document.  Numbers use
/// the shortest round-tripping representation (std::to_chars), objects
/// serialize in key order, so dump∘parse is a fixed point:
/// `dump_json(parse_json(dump_json(v))) == dump_json(v)` for any `v`
/// (non-finite numbers, which valid JSON cannot carry, serialize as null).
[[nodiscard]] std::string dump_json(const json_value& v);

}  // namespace cgp::telemetry
