// Empirical performance-concept checking.
//
// Section 2's performance concepts attach complexity guarantees (e.g.
// ComplexityO(n log n)) to concepts; core/complexity.hpp gives those
// guarantees a symbolic algebra.  This module closes the loop at runtime:
// given observed operation counts at a series of problem sizes (typically
// doubling n), complexity_check() decides whether the observations are
// consistent with the declared bound, turning the guarantee from
// documentation into a checkable assertion.
//
// Method: for each sample compute the ratio r = ops / bound(n).  If the
// bound holds, r stays bounded as n grows; if the true growth exceeds the
// bound, r grows polynomially.  We fit a least-squares line to log(r)
// against log(n): the slope is the *excess growth exponent* (observed
// exponent minus the bound's).  A slope within `slope_tolerance` of zero
// accepts; more rejects.  E.g. a quadratic sort checked against
// O(n log n) shows slope ~= 1 - o(1) and is rejected decisively, while a
// conforming introsort shows slope ~= 0.
#pragma once

#include <string>
#include <vector>

#include "core/complexity.hpp"
#include "telemetry/telemetry.hpp"

namespace cgp::telemetry {

/// One observation: `ops` operations measured at problem size `n`.
struct sample {
  double n = 0.0;
  double ops = 0.0;
};

/// Default acceptance threshold on the excess growth exponent.  0.35 is
/// far above measurement noise for doubling-n sweeps (conforming
/// algorithms fit within +-0.1) and far below the +1 excess of the
/// classic O(n^2)-passed-off-as-O(n log n) failure.
inline constexpr double kDefaultSlopeTolerance = 0.35;

/// Checks `samples` against the declared bound.  Requires >= 3 samples
/// spanning at least a factor of 4 in `n`; otherwise the fit is
/// meaningless and the report comes back INCONCLUSIVE (`inconclusive ==
/// true`, and ok == false — an unverifiable claim never passes).  The
/// bound is evaluated with `var` as its single free variable.
[[nodiscard]] check_report complexity_check(
    std::string name, const std::vector<sample>& samples,
    const core::big_o& bound, double slope_tolerance = kDefaultSlopeTolerance,
    const std::string& var = "n");

/// As above, and records the report into `reg` so exporters and
/// check_reports() see it.
check_report complexity_check_and_record(
    std::string name, const std::vector<sample>& samples,
    const core::big_o& bound, registry& reg = registry::global(),
    double slope_tolerance = kDefaultSlopeTolerance,
    const std::string& var = "n");

/// Convenience harness: runs `measure(n)` (returning an operation count)
/// at each size in `sizes` and checks the collected samples.
template <class MeasureFn>
check_report check_scaling(std::string name, const std::vector<std::size_t>& sizes,
                           const core::big_o& bound, MeasureFn&& measure,
                           registry& reg = registry::global(),
                           double slope_tolerance = kDefaultSlopeTolerance) {
  std::vector<sample> samples;
  samples.reserve(sizes.size());
  for (const std::size_t n : sizes)
    samples.push_back({static_cast<double>(n),
                       static_cast<double>(measure(n))});
  return complexity_check_and_record(std::move(name), samples, bound, reg,
                                     slope_tolerance);
}

}  // namespace cgp::telemetry
