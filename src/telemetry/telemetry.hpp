// Unified telemetry: process-wide counters, gauges, log-scale histograms,
// and RAII scoped spans, behind one thread-safe registry.
//
// Section 2's "performance concepts" attach complexity guarantees to
// concepts; Section 4 argues taxonomies should organize algorithms by
// *measured* message counts, rounds, and local computation.  This module is
// the measurement substrate both need: every subsystem reports through the
// same named-metric registry, so one exporter (text or JSON) shows the
// whole system, and complexity_check.hpp can turn a declared big-O bound
// into a runtime-checkable assertion over observed operation counts.
//
// Cost discipline: counters are sharded per-thread-slot atomics (no
// contended cache line on the hot path), histograms bucket by bit-width
// (one shift, one relaxed fetch_add), and metric objects are looked up by
// name ONCE (the returned reference is stable for the registry's lifetime)
// so instrumented loops never touch the registry mutex.  Defining
// CGP_TELEMETRY_DISABLED compiles every mutation hook down to a no-op.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace cgp::telemetry {

#ifdef CGP_TELEMETRY_DISABLED
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

namespace detail {
/// Stable per-thread shard slot (hashed thread id, cached thread_local).
[[nodiscard]] std::size_t shard_index() noexcept;
}  // namespace detail

// ---------------------------------------------------------------------------
// counter: monotonic, sharded to keep concurrent increments uncontended
// ---------------------------------------------------------------------------

class counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t delta = 1) noexcept {
    if constexpr (kEnabled)
      shards_[detail::shard_index()].v.fetch_add(delta,
                                                 std::memory_order_relaxed);
  }

  /// Pull-time aggregation across shards.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const cell& c : shards_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (cell& c : shards_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) cell {  // one cache line per shard: no false sharing
    std::atomic<std::uint64_t> v{0};
  };
  std::array<cell, kShards> shards_{};
};

// ---------------------------------------------------------------------------
// gauge: a settable signed level (queue depths, in-flight work)
// ---------------------------------------------------------------------------

class gauge {
 public:
  void set(std::int64_t v) noexcept {
    if constexpr (kEnabled) v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta = 1) noexcept {
    if constexpr (kEnabled) v_.fetch_add(delta, std::memory_order_relaxed);
  }
  void sub(std::int64_t delta = 1) noexcept { add(-delta); }

  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// ---------------------------------------------------------------------------
// histogram: log2-scale buckets for latencies and sizes
// ---------------------------------------------------------------------------

/// Bucket i >= 1 holds values v with bit_width(v) == i, i.e. the interval
/// [2^(i-1), 2^i - 1]; bucket 0 holds exactly v == 0.  64 buckets cover the
/// full uint64 range with one `std::bit_width` and one relaxed fetch_add
/// per record.
class histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bucket 0 + bit widths 1..64

  void record(std::uint64_t v) noexcept {
    if constexpr (kEnabled) {
      buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
      count_.fetch_add(1, std::memory_order_relaxed);
      sum_.fetch_add(v, std::memory_order_relaxed);
      std::uint64_t seen = max_.load(std::memory_order_relaxed);
      while (v > seen &&
             !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
      }
    }
  }

  /// Bulk record: `n` observations of value `v` in one shot (the health
  /// observatory replays per-shard bucket deltas through this).  Same
  /// ordering guarantees as n calls to record().
  void record_n(std::uint64_t v, std::uint64_t n) noexcept {
    if constexpr (kEnabled) {
      if (n == 0) return;
      buckets_[bucket_of(v)].fetch_add(n, std::memory_order_relaxed);
      count_.fetch_add(n, std::memory_order_relaxed);
      sum_.fetch_add(v * n, std::memory_order_relaxed);
      std::uint64_t seen = max_.load(std::memory_order_relaxed);
      while (v > seen &&
             !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
      }
    }
  }

  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t v) {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  /// Inclusive [lo, hi] range of values landing in bucket i.
  [[nodiscard]] static constexpr std::pair<std::uint64_t, std::uint64_t>
  bucket_bounds(std::size_t i) {
    if (i == 0) return {0, 0};
    const std::uint64_t lo = std::uint64_t{1} << (i - 1);
    const std::uint64_t hi =
        i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
    return {lo, hi};
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Interpolated percentile estimate (p in [0, 100]): walks the log2
  /// buckets to the one containing the target rank and interpolates
  /// linearly inside its [lo, hi] value range, so the estimation error is
  /// bounded by one bucket width.  Returns 0 for an empty histogram.
  [[nodiscard]] double percentile(double p) const noexcept {
    const std::uint64_t total = count();
    if (total == 0) return 0.0;
    double target = (p / 100.0) * static_cast<double>(total);
    if (target < 1.0) target = 1.0;
    if (target > static_cast<double>(total))
      target = static_cast<double>(total);
    double cum = 0.0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const double c = static_cast<double>(bucket_count(i));
      if (c == 0.0) continue;
      if (cum + c >= target) {
        const auto [lo, hi] = bucket_bounds(i);
        const double frac = (target - cum) / c;
        return static_cast<double>(lo) +
               (static_cast<double>(hi) - static_cast<double>(lo)) * frac;
      }
      cum += c;
    }
    // Concurrent mutation can leave the bucket walk one short of count();
    // the max is the honest upper estimate then.
    return static_cast<double>(max());
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

// ---------------------------------------------------------------------------
// check_report: the result of an empirical performance-concept check
// (produced by complexity_check.hpp, stored here so exporters see it)
// ---------------------------------------------------------------------------

struct check_report {
  std::string name;     ///< metric name, `subsystem.object.event` style
  std::string bound;    ///< the declared bound, e.g. "O(n log n)"
  bool ok = false;      ///< observed ops stayed within the bound
  /// True when the sample set could not support a fit at all (too few
  /// samples or too narrow an n-range): the check is INCONCLUSIVE, which
  /// is still not a pass (ok stays false) — an unverifiable performance
  /// concept must not gate as verified.
  bool inconclusive = false;
  double growth_slope = 0.0;  ///< fitted excess growth exponent (log-log)
  double max_ratio = 0.0;     ///< max over samples of ops / bound(n)
  double tolerance = 0.0;     ///< slope above this rejects
  std::size_t samples = 0;
  std::string detail;   ///< human-readable explanation

  [[nodiscard]] std::string to_string() const;
};

// ---------------------------------------------------------------------------
// registry: the process-wide name -> metric table
// ---------------------------------------------------------------------------

/// Metric names follow the `subsystem.object.event` convention documented
/// in README.md (e.g. "parallel.thread_pool.tasks_completed").  Lookup
/// takes a mutex; the returned reference is stable for the registry's
/// lifetime, so hot paths resolve each name once and increment lock-free.
class registry {
 public:
  registry() = default;
  registry(const registry&) = delete;
  registry& operator=(const registry&) = delete;

  [[nodiscard]] static registry& global();

  [[nodiscard]] counter& get_counter(const std::string& name);
  [[nodiscard]] gauge& get_gauge(const std::string& name);
  [[nodiscard]] histogram& get_histogram(const std::string& name);

  void record_check(check_report report);

  /// Snapshots (stable name order) for exporters and tests.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counter_values() const;
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>>
  gauge_values() const;
  /// (name, count, sum) per histogram — the cheap totals the live sampler
  /// turns into per-period rate series without walking buckets.
  [[nodiscard]] std::vector<std::tuple<std::string, std::uint64_t,
                                       std::uint64_t>>
  histogram_totals() const;

  /// Full per-bucket snapshot of one histogram, as exporters that need
  /// real distributions (Prometheus `_bucket` series) consume it.
  struct histogram_view {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, histogram::kBuckets> buckets{};
  };
  /// Every registered histogram with its buckets, name-sorted.
  [[nodiscard]] std::vector<histogram_view> histogram_views() const;
  [[nodiscard]] std::vector<check_report> check_reports() const;

  /// Sum of all counters whose name starts with `prefix` (test helper:
  /// "did subsystem X report anything?").
  [[nodiscard]] std::uint64_t counter_sum(const std::string& prefix) const;

  /// One line per metric, human-readable.
  [[nodiscard]] std::string export_text() const;
  /// One JSON object with "counters", "gauges", "histograms", "checks".
  [[nodiscard]] std::string export_json() const;

  /// Zeroes every metric and drops check reports (metric objects stay
  /// registered so cached references remain valid).  Test isolation only.
  void reset();

 private:
  mutable std::mutex mu_;
  // node-based maps: element addresses are stable across later insertions.
  std::map<std::string, std::unique_ptr<counter>> counters_;
  std::map<std::string, std::unique_ptr<gauge>> gauges_;
  std::map<std::string, std::unique_ptr<histogram>> histograms_;
  std::vector<check_report> checks_;
};

// ---------------------------------------------------------------------------
// counter_snapshot: per-scope counter deltas
// ---------------------------------------------------------------------------

/// Captures every counter's value at construction so a scope's counter
/// *growth* can be read back later: `delta()` subtracts the captured
/// values (counters created after the snapshot count from zero).  The
/// performance observatory (src/perf) brackets each measured benchmark
/// with one of these, so every timing result carries the operation counts
/// — comparisons, messages, rewrites — that explain it.
class counter_snapshot {
 public:
  explicit counter_snapshot(registry& reg = registry::global());

  /// Counters that grew since construction, with their growth; name-sorted.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> delta()
      const;
  /// Growth summed over all counters whose name starts with `prefix`.
  [[nodiscard]] std::uint64_t delta_sum(const std::string& prefix) const;

 private:
  registry* reg_;
  std::map<std::string, std::uint64_t> base_;
};

// ---------------------------------------------------------------------------
// span: RAII scoped measurement (nestable)
// ---------------------------------------------------------------------------

/// On destruction records, under its name:
///   <name>.calls        counter   (one per span)
///   <name>.duration_us  histogram (wall time, microseconds)
///   <name>.ops          counter   (user-charged operation count, if any)
/// Spans nest per thread; depth() reports the current nesting level and a
/// child's charges do NOT propagate to the parent (each span owns its own
/// operation count, mirroring how the network simulator charges local
/// steps per node).
class span {
 public:
  explicit span(std::string name, registry& reg = registry::global());
  ~span();

  span(const span&) = delete;
  span& operator=(const span&) = delete;

  /// Charges `n` operations to this span ("local computation" in Section
  /// 4's sense).
  void charge(std::uint64_t n) noexcept {
    if constexpr (kEnabled) ops_ += n;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t charged() const noexcept { return ops_; }
  [[nodiscard]] std::uint64_t elapsed_us() const noexcept;

  /// Nesting depth of the calling thread's innermost open span (0 = none).
  [[nodiscard]] static int depth() noexcept;
  /// Innermost open span of the calling thread, or nullptr.
  [[nodiscard]] static span* current() noexcept;

 private:
  registry* reg_;
  std::string name_;
  std::chrono::steady_clock::time_point start_{};
  std::uint64_t ops_ = 0;
  span* parent_ = nullptr;
};

}  // namespace cgp::telemetry
