#include "telemetry/live.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <set>
#include <sstream>
#include <utility>

#include "telemetry/health.hpp"
#include "telemetry/recorder.hpp"

namespace cgp::telemetry::live {
namespace {

counter& samples_counter() {
  static counter& c = registry::global().get_counter("telemetry.live.samples");
  return c;
}

gauge& series_gauge() {
  static gauge& g = registry::global().get_gauge("telemetry.live.series");
  return g;
}

const char* kind_name(char k) noexcept {
  switch (k) {
    case 'c':
      return "counter_delta";
    case 'g':
      return "gauge";
    case 'n':
      return "hist_count_delta";
    case 's':
      return "hist_sum_delta";
  }
  return "?";
}

}  // namespace

std::string prometheus_name(const std::string& metric) {
  std::string out = "cgp_";
  out.reserve(metric.size() + 4);
  for (const char ch : metric) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_';
    out.push_back(ok ? ch : '_');
  }
  return out;
}

std::string prometheus_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char ch : value) {
    switch (ch) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(ch);
    }
  }
  return out;
}

sampler::sampler(sample_options opts, registry& reg)
    : opts_(opts), reg_(&reg) {
  if (opts_.period_ms == 0) opts_.period_ms = 1;
  if (opts_.capacity == 0) opts_.capacity = 1;
  // Register the sampler's own meta-metrics up front: created lazily at the
  // end of the first tick they would be missing from that tick's snapshot,
  // making the first-ever run's export differ from every later one (the
  // manual-clock determinism test gates on byte-identical documents).
  if constexpr (kEnabled) {
    (void)samples_counter();
    (void)series_gauge();
  }
}

sampler::~sampler() { stop(); }

void sampler::start() {
  if constexpr (!kEnabled) return;
  const std::lock_guard lock(run_mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { run_loop(); });
}

void sampler::stop() {
  std::thread t;
  {
    const std::lock_guard lock(run_mu_);
    if (!running_) return;
    stop_requested_ = true;
    t = std::move(thread_);
    running_ = false;
  }
  run_cv_.notify_all();
  if (t.joinable()) t.join();
}

bool sampler::running() const {
  const std::lock_guard lock(run_mu_);
  return running_;
}

void sampler::run_loop() {
  std::unique_lock lock(run_mu_);
  while (!stop_requested_) {
    lock.unlock();
    sample_at(steady_now_ms());
    lock.lock();
    run_cv_.wait_for(lock, std::chrono::milliseconds(opts_.period_ms),
                     [this] { return stop_requested_; });
  }
}

sampler::shard& sampler::shard_of(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kShards];
}

const sampler::shard& sampler::shard_of(const std::string& name) const {
  return shards_[std::hash<std::string>{}(name) % kShards];
}

void sampler::append(const std::string& name, char kind, std::uint64_t t_ms,
                     std::uint64_t raw, std::int64_t gauge_level) {
  shard& sh = shard_of(name);
  const std::lock_guard lock(sh.mu);
  series_state& st = sh.metrics[name];
  st.kind = kind;
  double v;
  if (kind == 'g') {
    v = static_cast<double>(gauge_level);
    st.last_value = v;
  } else {
    // Per-period delta; a registry reset mid-flight makes raw < last_raw,
    // in which case the honest delta restarts from the new absolute value.
    v = raw >= st.last_raw ? static_cast<double>(raw - st.last_raw)
                           : static_cast<double>(raw);
    st.last_raw = raw;
  }
  ++st.total_points;
  if (st.ring.size() < opts_.capacity) {
    st.ring.push_back({t_ms, v});
    return;
  }
  st.ring[st.head] = {t_ms, v};
  st.head = (st.head + 1) % opts_.capacity;
}

void sampler::sample_at(std::uint64_t now_ms) {
  if constexpr (!kEnabled) return;
  // Drive the health observatory first: its tick mirrors the per-shard
  // roll-ups into the registry (and evaluates the SLO rules), so the
  // registry walk below samples this tick's fresh values.  One relaxed
  // load when the observatory is disabled.
  health::observatory::global().tick(now_ms);
  std::size_t metric_count = 0;
  for (const auto& [name, v] : reg_->counter_values()) {
    // Read the pre-append baseline so nonzero movement can feed the
    // flight recorder without re-deriving the delta.
    std::uint64_t prev;
    {
      shard& sh = shard_of(name);
      const std::lock_guard lock(sh.mu);
      prev = sh.metrics[name].last_raw;
    }
    append(name, 'c', now_ms, v, 0);
    if (v > prev)
      flight_recorder::global().note(flight_entry::kind::counter, name,
                                     static_cast<double>(v - prev));
    ++metric_count;
  }
  for (const auto& [name, v] : reg_->gauge_values()) {
    append(name, 'g', now_ms, 0, v);
    ++metric_count;
  }
  for (const auto& [name, cnt, sum] : reg_->histogram_totals()) {
    append(name + ".count", 'n', now_ms, cnt, 0);
    append(name + ".sum", 's', now_ms, sum, 0);
    metric_count += 2;
  }
  if (opts_.watch)
    watchdog::global().check(now_ms, opts_.period_ms, opts_.miss_threshold);
  samples_.fetch_add(1, std::memory_order_relaxed);
  samples_counter().add(1);
  series_gauge().set(static_cast<std::int64_t>(metric_count));
}

std::uint64_t sampler::samples_taken() const {
  return samples_.load(std::memory_order_relaxed);
}

std::vector<series_view> sampler::series() const {
  std::map<std::string, series_view> out;
  for (const shard& sh : shards_) {
    const std::lock_guard lock(sh.mu);
    for (const auto& [name, st] : sh.metrics) {
      series_view v;
      v.name = name;
      v.kind = kind_name(st.kind);
      v.total_points = st.total_points;
      v.points.reserve(st.ring.size());
      for (std::size_t i = 0; i < st.ring.size(); ++i)
        v.points.push_back(st.ring[(st.head + i) % st.ring.size()]);
      out.emplace(name, std::move(v));
    }
  }
  std::vector<series_view> result;
  result.reserve(out.size());
  for (auto& [name, v] : out) result.push_back(std::move(v));
  return result;
}

std::string sampler::export_prometheus() const {
  std::ostringstream os;
  // One pull over the retained state: counters expose their cumulative
  // absolute value (what a Prometheus scraper rate()s over), gauges their
  // latest level.  Sanitization can collide — "a.b" and "a:b" both map to
  // cgp_a_b — and the text format allows exactly one # TYPE line per
  // family, so samples are grouped by exposition name and keep the
  // original registry name as an escaped {metric="..."} label.
  struct prom_sample {
    std::string metric;
    bool is_gauge = false;
    std::uint64_t raw = 0;
    double level = 0.0;
  };
  // Registered histograms export as full `histogram`-typed families below
  // (_bucket/_sum/_count); their ring-derived <name>.count / <name>.sum
  // series are suppressed here, because those would sanitize to the very
  // cgp_<name>_count / cgp_<name>_sum sample names the histogram family
  // owns, and the format forbids one name under two types.
  const std::vector<registry::histogram_view> hists = reg_->histogram_views();
  std::set<std::string> hist_names;
  for (const registry::histogram_view& h : hists) hist_names.insert(h.name);
  std::map<std::string, std::vector<prom_sample>> families;
  for (const shard& sh : shards_) {
    const std::lock_guard lock(sh.mu);
    for (const auto& [name, st] : sh.metrics) {
      if (st.kind == 'n' || st.kind == 's') {
        const std::size_t dot = name.rfind('.');
        if (dot != std::string::npos &&
            hist_names.count(name.substr(0, dot)) != 0)
          continue;
      }
      prom_sample s;
      s.metric = name;
      s.is_gauge = st.kind == 'g';
      s.raw = st.last_raw;
      s.level = st.last_value;
      families[prometheus_name(name)].push_back(std::move(s));
    }
  }
  for (auto& [pname, samples] : families) {
    std::sort(samples.begin(), samples.end(),
              [](const prom_sample& a, const prom_sample& b) {
                return a.metric < b.metric;
              });
    // A family whose colliding members disagree on kind has no honest
    // single type; the spec's escape hatch for that is "untyped".
    bool any_gauge = false;
    bool any_counter = false;
    for (const prom_sample& s : samples) (s.is_gauge ? any_gauge : any_counter) = true;
    const char* type = any_gauge && any_counter ? "untyped"
                       : any_gauge              ? "gauge"
                                                : "counter";
    os << "# TYPE " << pname << " " << type << "\n";
    for (const prom_sample& s : samples) {
      os << pname << "{metric=\"" << prometheus_escape_label(s.metric)
         << "\"} ";
      if (s.is_gauge)
        os << static_cast<long long>(s.level);
      else
        os << s.raw;
      os << "\n";
    }
  }
  // Full log2-histogram families: cumulative `le`-bucketed series (each
  // bucket's le is its inclusive upper value bound), then _sum and
  // _count, per the text exposition format.  Concurrent recording can
  // leave the bucket walk ahead of the count snapshot; the +Inf bucket
  // takes the max so the cumulative series stays monotone.
  for (const registry::histogram_view& h : hists) {
    const std::string pname = prometheus_name(h.name);
    const std::string label = prometheus_escape_label(h.name);
    os << "# TYPE " << pname << " histogram\n";
    std::size_t max_bucket = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i)
      if (h.buckets[i] != 0) max_bucket = i;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= max_bucket; ++i) {
      cumulative += h.buckets[i];
      os << pname << "_bucket{metric=\"" << label << "\",le=\""
         << histogram::bucket_bounds(i).second << "\"} " << cumulative
         << "\n";
    }
    const std::uint64_t total = std::max(cumulative, h.count);
    os << pname << "_bucket{metric=\"" << label << "\",le=\"+Inf\"} " << total
       << "\n";
    os << pname << "_sum{metric=\"" << label << "\"} " << h.sum << "\n";
    os << pname << "_count{metric=\"" << label << "\"} " << total << "\n";
  }
  return os.str();
}

std::string sampler::export_json() const {
  json_value doc;
  doc.k = json_value::kind::object;
  auto& obj = doc.obj;
  {
    json_value schema;
    schema.k = json_value::kind::string;
    schema.str = "cgp.live.v1";
    obj["schema"] = std::move(schema);
  }
  const auto num = [](double v) {
    json_value j;
    j.k = json_value::kind::number;
    j.num = v;
    return j;
  };
  const auto str = [](std::string s) {
    json_value j;
    j.k = json_value::kind::string;
    j.str = std::move(s);
    return j;
  };
  obj["period_ms"] = num(static_cast<double>(opts_.period_ms));
  obj["capacity"] = num(static_cast<double>(opts_.capacity));
  obj["samples"] = num(static_cast<double>(samples_taken()));
  json_value series_arr;
  series_arr.k = json_value::kind::array;
  for (series_view& v : series()) {
    json_value s;
    s.k = json_value::kind::object;
    s.obj["name"] = str(std::move(v.name));
    s.obj["kind"] = str(std::move(v.kind));
    s.obj["total_points"] = num(static_cast<double>(v.total_points));
    json_value pts;
    pts.k = json_value::kind::array;
    for (const series_point& p : v.points) {
      json_value pt;
      pt.k = json_value::kind::object;
      pt.obj["t_ms"] = num(static_cast<double>(p.t_ms));
      pt.obj["v"] = num(p.value);
      pts.arr.push_back(std::move(pt));
    }
    s.obj["points"] = std::move(pts);
    series_arr.arr.push_back(std::move(s));
  }
  obj["series"] = std::move(series_arr);
  if (opts_.watch) {
    json_value wd;
    wd.k = json_value::kind::object;
    json_value stalls;
    stalls.k = json_value::kind::array;
    for (const stall_event& ev : watchdog::global().stalls()) {
      json_value s;
      s.k = json_value::kind::object;
      s.obj["participant"] = str(ev.participant);
      s.obj["last_beat_ms"] = num(static_cast<double>(ev.last_beat_ms));
      s.obj["detected_at_ms"] = num(static_cast<double>(ev.detected_at_ms));
      s.obj["silent_ms"] = num(static_cast<double>(ev.silent_ms));
      stalls.arr.push_back(std::move(s));
    }
    wd.obj["stalls"] = std::move(stalls);
    obj["watchdog"] = std::move(wd);
  }
  return dump_json(doc);
}

void sampler::clear() {
  for (shard& sh : shards_) {
    const std::lock_guard lock(sh.mu);
    sh.metrics.clear();
  }
  samples_.store(0, std::memory_order_relaxed);
}

std::string live_validation::error_text() const {
  std::string out;
  for (const std::string& e : errors) out += e + "\n";
  return out;
}

live_validation validate_live_export(const json_value& doc) {
  live_validation r;
  const auto fail = [&r](std::string msg) {
    r.ok = false;
    r.errors.push_back(std::move(msg));
  };
  if (!doc.has("schema") || doc.at("schema").str != "cgp.live.v1") {
    fail("document is not a cgp.live.v1 export");
    return r;
  }
  for (const char* key : {"period_ms", "capacity", "samples"})
    if (!doc.has(key) || !doc.at(key).is(json_value::kind::number))
      fail(std::string("missing numeric '") + key + "'");
  if (!doc.has("series") || !doc.at("series").is(json_value::kind::array)) {
    fail("missing series array");
    return r;
  }
  const double cap =
      doc.has("capacity") && doc.at("capacity").is(json_value::kind::number)
          ? doc.at("capacity").num
          : 0.0;
  for (const json_value& s : doc.at("series").arr) {
    ++r.series;
    if (!s.has("name") || !s.has("kind") || !s.has("points") ||
        !s.at("points").is(json_value::kind::array)) {
      fail("series " + std::to_string(r.series - 1) +
           " is missing name/kind/points");
      continue;
    }
    const std::string& kind = s.at("kind").str;
    if (kind == "counter_delta")
      ++r.counters;
    else if (kind == "gauge")
      ++r.gauges;
    else if (kind == "hist_count_delta" || kind == "hist_sum_delta")
      ++r.histograms;
    else
      fail("series '" + s.at("name").str + "' has unknown kind '" + kind +
           "'");
    const auto& pts = s.at("points").arr;
    if (cap > 0.0 && static_cast<double>(pts.size()) > cap)
      fail("series '" + s.at("name").str + "' retains more points than " +
           "capacity");
    double prev_t = -1.0;
    for (const json_value& p : pts) {
      ++r.points;
      if (!p.has("t_ms") || !p.has("v")) {
        fail("series '" + s.at("name").str + "' has a malformed point");
        break;
      }
      const double t = p.at("t_ms").num;
      if (t < prev_t) {
        fail("series '" + s.at("name").str + "' goes backwards in time");
        break;
      }
      prev_t = t;
    }
  }
  if (doc.has("watchdog")) {
    const json_value& wd = doc.at("watchdog");
    if (!wd.has("stalls") || !wd.at("stalls").is(json_value::kind::array)) {
      fail("watchdog block has no stalls array");
    } else {
      for (const json_value& s : wd.at("stalls").arr) {
        ++r.stalls;
        for (const char* key :
             {"participant", "last_beat_ms", "detected_at_ms", "silent_ms"})
          if (!s.has(key)) fail(std::string("stall missing '") + key + "'");
      }
    }
  }
  return r;
}

}  // namespace cgp::telemetry::live
