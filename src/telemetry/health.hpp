// Distributed health observatory: per-shard metric roll-ups, reservoir
// trace sampling, and declarative SLO alert rules for the million-node
// runtime (DESIGN.md §14).
//
// At 1M nodes per-node telemetry is unaffordable and flat aggregates hide
// exactly the failures that matter — one hot shard, one stalled shard.
// This layer keeps O(shards) state per backend, independent of node count:
//
//   * roll-ups — every backend run folds its traffic into a fixed set of
//     HEALTH shards (contiguous node ranges, decoupled from the engine's
//     execution shards so the sequential simulator is observable at the
//     same granularity as the threaded backends).  Per shard: routed /
//     delivered / dropped / duplicated counts (relaxed atomics, safe from
//     concurrent send sites), plus inbox-depth and superstep-latency
//     log2-histograms recorded single-threaded at the round barrier.
//     Shard rows fold into a backend rollup and backends fold into a run
//     rollup; `observatory::tick` mirrors everything into the registry.
//   * reservoir sampling — per-shard size-k reservoirs (algorithm R with
//     splitmix64 draws, same hash family as the fault plan) keep exemplar
//     shard-rounds instead of tracing everything.  Admissions emit
//     `health.exemplar` trace instants under the run's phase context, so
//     sampled supersteps still land inside a valid Perfetto tree.
//   * SLO rules — declarative rules (max-shard/mean skew ratio, stall
//     budget in rounds, drop-rate ceiling, convergence deadline over a
//     registry gauge) evaluated at every tick.  Each violation opens an
//     EPISODE keyed by (rule, target) and emits exactly one verdict —
//     counter + flight-recorder note + trace instant — mirroring the
//     watchdog's semantics; the episode re-arms when the condition clears.
//   * export — `export_json()` emits a `cgp.health.v1` document through
//     dump_json (sorted keys, shortest number round-trip), so under
//     health_options::manual_clock two identical runs export
//     byte-identical documents; `validate_health_export` is the
//     structural gate bench/health_export runs against it.
//
// Cost discipline: a disabled observatory costs one pointer test per hook
// (net_base::run() gets a nullptr track); an enabled one costs a few
// relaxed fetch_adds per message and O(health shards) work per round.
// Synchronous engine only — the asynchronous event queue (sim backend)
// does not drive the round hooks.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace cgp::telemetry::health {

// ---------------------------------------------------------------------------
// SLO rules
// ---------------------------------------------------------------------------

enum class rule_kind : char {
  /// max over shards of (routed + delivered) vs the mean over active
  /// shards; fires past `threshold`, names the hottest shard.
  skew_ratio = 'k',
  /// a shard whose last active round lags the backend's newest round by
  /// more than `budget` rounds; names the stalled shard.
  stall_budget = 's',
  /// cumulative dropped / routed past `threshold`; names the backend.
  drop_rate = 'd',
  /// registry gauge `metric` still nonzero once `budget` ticks have
  /// elapsed; names the gauge.
  convergence_deadline = 'c',
};

[[nodiscard]] const char* to_string(rule_kind k) noexcept;
/// Parses the wire spelling used by the export; false on unknown input.
[[nodiscard]] bool parse_rule_kind(std::string_view s, rule_kind& out) noexcept;

struct slo_rule {
  rule_kind kind = rule_kind::skew_ratio;
  std::string name;           ///< unique rule id, `subsystem.event` style
  double threshold = 0.0;     ///< skew ratio / drop-rate ceiling
  std::uint64_t budget = 0;   ///< stall budget (rounds) / deadline (ticks)
  std::string metric;         ///< convergence_deadline: the watched gauge
  /// Ratio rules stay silent until the backend has routed at least this
  /// many messages (a two-message run is not a skew anomaly).
  std::uint64_t min_activity = 0;
};

/// The stock rule set the bench gate and the sampler tick use when
/// health_options::rules is left empty.
[[nodiscard]] std::vector<slo_rule> default_rules();

struct health_options {
  std::size_t shards = 16;        ///< health shards per backend (fixed)
  std::size_t reservoir_k = 8;    ///< exemplars retained per shard
  std::uint64_t seed = 42;        ///< reservoir admission hash key
  /// Deterministic mode: superstep latency is derived from the round's
  /// delivered count (a pure function of the deterministic run) instead
  /// of the steady clock, so exports are byte-identical across runs.
  bool manual_clock = false;
  std::vector<slo_rule> rules;    ///< empty = default_rules()
};

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// One retained exemplar: a shard-round the reservoir kept.
struct exemplar {
  std::uint32_t shard = 0;
  std::uint64_t round = 0;      ///< engine round index (0 = start phase)
  std::uint64_t delivered = 0;  ///< deliveries scheduled out of this round
  std::uint64_t routed = 0;     ///< send attempts routed this round
  std::uint64_t latency = 0;    ///< superstep latency (see manual_clock)
  std::uint64_t seen = 0;       ///< 1-based admission index in the stream
};

/// One shard's cumulative roll-up row (also used for backend and run
/// folds, where the per-shard fields sum and last_active_round maxes).
struct shard_rollup {
  std::uint64_t routed = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t last_active_round = 0;  ///< 1 + last round the shard SENT
  std::uint64_t rounds_active = 0;
  std::uint64_t latency_count = 0;
  std::uint64_t latency_sum = 0;
  std::uint64_t depth_count = 0;
  std::uint64_t depth_sum = 0;
  std::array<std::uint64_t, histogram::kBuckets> latency_buckets{};
  std::array<std::uint64_t, histogram::kBuckets> depth_buckets{};

  void fold(const shard_rollup& other);
};

struct backend_snapshot {
  std::string name;
  std::size_t nodes = 0;
  std::size_t shards_used = 0;
  std::uint64_t rounds = 0;  ///< 1 + newest round observed
  std::vector<shard_rollup> shards;
  shard_rollup rollup;
  std::vector<exemplar> reservoir;  ///< all shards, (shard, seen) order
  std::uint64_t reservoir_seen = 0; ///< offers across all shards
};

/// One emitted SLO violation.
struct slo_verdict {
  std::string rule;
  rule_kind kind = rule_kind::skew_ratio;
  std::string target;  ///< e.g. "distributed.inproc.shard3"
  double value = 0.0;
  double threshold = 0.0;
  std::uint64_t tick = 0;    ///< 1-based observatory tick that caught it
  std::uint64_t now_ms = 0;  ///< the tick's timestamp
};

// ---------------------------------------------------------------------------
// backend_track: one backend's accumulators (engine-facing surface)
// ---------------------------------------------------------------------------

class observatory;

/// Owned by the observatory, handed to `net_base::run()` as a raw pointer
/// (nullptr when disabled).  Message hooks are relaxed atomics, callable
/// from concurrent shard threads; `end_round` must be called from a
/// single-threaded barrier context (the coordinator or a barrier
/// completion step).
class backend_track {
 public:
  backend_track(const backend_track&) = delete;
  backend_track& operator=(const backend_track&) = delete;

  /// A send attempt routed from node `src` (call once per attempt, with
  /// the fault draw's verdicts).
  void on_send(std::size_t src, bool dropped, bool duplicated) noexcept {
    if constexpr (!kEnabled) return;
    slot& s = slots_[shard_of(src)];
    s.routed.fetch_add(1, std::memory_order_relaxed);
    if (dropped) s.dropped.fetch_add(1, std::memory_order_relaxed);
    if (duplicated) s.duplicated.fetch_add(1, std::memory_order_relaxed);
  }
  /// A delivery scheduled to node `dst` (once per copy — a duplicated
  /// message counts twice, a dropped one never).
  void on_delivered(std::size_t dst) noexcept {
    if constexpr (!kEnabled) return;
    slots_[shard_of(dst)].delivered.fetch_add(1, std::memory_order_relaxed);
  }

  /// Round barrier: folds the round's per-shard deltas into the depth and
  /// latency histograms, advances activity tracking, and offers active
  /// shard-rounds to the reservoirs.  `trace_id`/`parent_span` (the
  /// engine's phase context) let exemplar instants join the run's causal
  /// tree when the barrier thread has no active trace scope of its own.
  void end_round(std::size_t round, std::uint64_t trace_id = 0,
                 std::uint64_t parent_span = 0);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t shards_used() const noexcept {
    return shards_used_;
  }
  [[nodiscard]] std::size_t shard_of(std::size_t node) const noexcept {
    const std::size_t s = node / width_;
    return s < slots_.size() ? s : slots_.size() - 1;
  }

  /// Coherent copy of the cumulative state (locks out end_round briefly).
  [[nodiscard]] backend_snapshot snapshot() const;

 private:
  friend class observatory;
  backend_track(std::string name, const health_options& opts);
  /// Re-derives the node -> health-shard mapping for a run of `nodes`
  /// nodes; accumulators persist across runs on the same backend.
  void begin_run(std::size_t nodes);

  struct alignas(64) slot {  // one cache line per shard: no false sharing
    std::atomic<std::uint64_t> routed{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> duplicated{0};
    std::atomic<std::uint64_t> delivered{0};
  };

  // Round-barrier state, guarded against concurrent snapshot() readers.
  struct round_row {
    std::uint64_t last_active_round = 0;
    std::uint64_t rounds_active = 0;
    std::uint64_t latency_count = 0;
    std::uint64_t latency_sum = 0;
    std::uint64_t depth_count = 0;
    std::uint64_t depth_sum = 0;
    std::array<std::uint64_t, histogram::kBuckets> latency_buckets{};
    std::array<std::uint64_t, histogram::kBuckets> depth_buckets{};
    std::uint64_t prev_routed = 0;
    std::uint64_t prev_delivered = 0;
    std::vector<exemplar> reservoir;
    std::uint64_t seen = 0;
  };

  std::string name_;
  health_options opts_;
  std::size_t nodes_ = 0;
  std::size_t width_ = 1;        ///< nodes per health shard (>= 1)
  std::size_t shards_used_ = 0;  ///< shards with at least one node
  std::vector<slot> slots_;      ///< fixed at opts_.shards, never resized
  mutable std::mutex mu_;
  std::vector<round_row> rows_;  ///< fixed at opts_.shards
  std::uint64_t rounds_ = 0;
  std::uint64_t last_round_ns_ = 0;  ///< steady-clock latency baseline
};

// ---------------------------------------------------------------------------
// observatory: the process-wide singleton
// ---------------------------------------------------------------------------

class observatory {
 public:
  observatory() = default;
  observatory(const observatory&) = delete;
  observatory& operator=(const observatory&) = delete;

  [[nodiscard]] static observatory& global();

  /// Turns the health layer on (idempotent; replaces options and drops
  /// accumulated state).  Empty opts.rules installs default_rules().
  void enable(health_options opts = {});
  /// Turns it off: subsequent runs get a nullptr track and tick() is a
  /// no-op.  Accumulated state stays readable until reset().
  void disable();
  /// Drops tracks, verdicts, episodes, mirror baselines, and the tick
  /// count; keeps enabled/options (test isolation).
  void reset();

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] health_options options() const;

  /// Engine entry: returns the (created-on-first-use) track for `backend`
  /// sized for `nodes`, or nullptr when disabled.  The pointer is stable
  /// until reset()/enable().
  [[nodiscard]] backend_track* begin_run(const char* backend,
                                         std::size_t nodes);

  /// One evaluation tick at `now_ms`: mirrors every track's roll-ups into
  /// the registry (counters per shard + backend, histograms per backend),
  /// then evaluates the SLO rules over the fresh snapshots and emits one
  /// verdict per newly violated (rule, target) episode.  Returns the
  /// number of fresh verdicts.  Driven by the live sampler each sample
  /// period, and directly by deterministic drivers.
  std::size_t tick(std::uint64_t now_ms);

  [[nodiscard]] std::uint64_t ticks() const;
  [[nodiscard]] std::vector<slo_verdict> verdicts() const;
  [[nodiscard]] std::vector<backend_snapshot> snapshots() const;

  /// The `cgp.health.v1` document: options, per-backend shard rows +
  /// rollups + reservoirs, the run-level fold, the rule set, and every
  /// verdict.  Byte-identical across identical manual-clock runs.
  [[nodiscard]] std::string export_json() const;

 private:
  std::size_t evaluate_rules_locked(std::uint64_t now_ms,
                                    const std::vector<backend_snapshot>& snaps);
  void mirror_locked(const std::vector<backend_snapshot>& snaps);

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  health_options opts_;
  std::map<std::string, std::unique_ptr<backend_track>> tracks_;
  std::vector<slo_verdict> verdicts_;
  std::uint64_t ticks_ = 0;
  /// (rule, target) -> currently flagged: one verdict per episode, armed
  /// again when the condition clears (watchdog semantics).
  std::map<std::pair<std::string, std::string>, bool> episodes_;
  /// Mirror baselines: last absolute value pushed per registry metric.
  std::map<std::string, std::uint64_t> mirrored_;
};

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

/// Structural check of a dumped (re-parsed) cgp.health.v1 document:
/// schema tag, rollups that equal the sum of their rows (per backend and
/// run-wide), histograms whose buckets sum to their counts, reservoirs
/// within capacity with plausible admission indices, and verdicts that
/// reference declared rules with known kinds and in-range ticks.
struct health_validation {
  bool ok = true;
  std::vector<std::string> errors;
  std::size_t backends = 0;
  std::size_t shards = 0;
  std::size_t exemplars = 0;
  std::size_t verdicts = 0;

  [[nodiscard]] std::string error_text() const;
};

[[nodiscard]] health_validation validate_health_export(const json_value& doc);

}  // namespace cgp::telemetry::health
