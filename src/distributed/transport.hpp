// The Transport concept: the driver-facing boundary of the distributed
// runtime (Section 4 methodology — a multi-type concept carving the
// library at its orthogonal dimensions, in the spirit of Siek &
// Lumsdaine's "language for generic programming in the large").
//
// A Transport is anything that can host a distributed algorithm run:
// construct from `net_options`, spawn one process per node, expose the
// wiring (node_count / neighbors_of / uid_of / edge_count), accept the
// unified fault surface (crash, corrupt; drop/duplicate/delay/churn ride
// in via net_options::faults), run to quiescence, and report decisions
// and measured statistics.  Algorithm drivers constrained on this concept
// — `run_ring_election`, the benchmarks, the backend-parity tests — run
// unchanged on any backend: the deterministic `sim_transport`, the
// executor-fan-out `parallel_transport`, the shared-memory mailbox
// `inproc_transport`, or the archetype below.
//
// `transport_archetype` is the syntactic archetype (core/archetypes.hpp
// style): the MINIMAL model of the concept, with do-nothing semantics.
// Instantiating a driver with it proves the driver requires no syntax
// beyond the concept — the static_asserts at the bottom of this header
// and the instantiation in tests/transport_test.cpp are the proof
// obligations.
#pragma once

#include <concepts>
#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "distributed/network.hpp"

namespace cgp::distributed {

// clang-format off
template <class T>
concept Transport =
    std::constructible_from<T, const net_options&> &&
    requires(T t, const T ct, const process_factory& factory,
             std::vector<long> uids, int node, std::size_t rounds,
             std::function<void(message&)> hook, const std::string& key) {
      // Algorithm installation and execution.
      { t.spawn(factory) };
      { t.set_uids(std::move(uids)) };
      { t.run(rounds) } -> std::same_as<run_stats>;
      // The unified fault surface (message-level faults arrive via
      // net_options::faults at construction).
      { t.crash(node, rounds) };
      { t.corrupt(node, std::move(hook)) };
      // Wiring introspection.
      { ct.node_count() } -> std::convertible_to<std::size_t>;
      { ct.edge_count() } -> std::convertible_to<std::size_t>;
      // `neighbor_span` (std::span<const int>): CSR backends return a view
      // into the shared edges array; `const std::vector<int>&` converts,
      // so pre-CSR models (the archetype below) conform unchanged — the
      // concept's OPERATIONS did not move when the representation did.
      { ct.neighbors_of(node) } -> std::convertible_to<neighbor_span>;
      { ct.uid_of(node) } -> std::convertible_to<long>;
      { ct.options() } -> std::convertible_to<const net_options&>;
      // Outcomes.
      { ct.decision(node, key) } -> std::same_as<std::optional<long>>;
      { ct.deciders(key) } -> std::same_as<std::vector<int>>;
    };
// clang-format on

/// Minimal syntactic model of Transport.  Every operation is the weakest
/// legal implementation (no nodes beyond the requested count, empty runs,
/// no decisions); drivers instantiated with it must compile — and may run
/// — without reaching beyond the concept.
class transport_archetype {
 public:
  explicit transport_archetype(const net_options& opts)
      : opts_(opts), neighbors_(opts.nodes) {
    stats_.local_steps_per_node.assign(opts.nodes, 0);
    stats_.messages_sent_per_node.assign(opts.nodes, 0);
    stats_.messages_received_per_node.assign(opts.nodes, 0);
  }

  void spawn(const process_factory& factory) { (void)factory; }
  void set_uids(std::vector<long> uids) { (void)uids; }
  run_stats run(std::size_t max_rounds = 100000) {
    (void)max_rounds;
    return stats_;
  }
  void crash(int node, std::size_t at_round = 0) { (void)node, (void)at_round; }
  void corrupt(int node, std::function<void(message&)> hook) {
    (void)node, (void)hook;
  }

  [[nodiscard]] std::size_t node_count() const noexcept { return opts_.nodes; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return 0; }
  [[nodiscard]] const std::vector<int>& neighbors_of(int id) const {
    return neighbors_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] long uid_of(int id) const { return static_cast<long>(id) + 1; }
  [[nodiscard]] const net_options& options() const noexcept { return opts_; }
  [[nodiscard]] std::optional<long> decision(int node,
                                             const std::string& key) const {
    (void)node, (void)key;
    return std::nullopt;
  }
  [[nodiscard]] std::vector<int> deciders(const std::string& key) const {
    (void)key;
    return {};
  }

 private:
  net_options opts_;
  std::vector<std::vector<int>> neighbors_;
  run_stats stats_;
};

// Proof obligations: the archetype models the concept, and the real
// backends satisfy it structurally (parallel_transport asserts its own
// conformance in parallel_transport.cpp to keep this header light).
static_assert(Transport<transport_archetype>);
static_assert(Transport<sim_transport>);

}  // namespace cgp::distributed
