// Shared immutable CSR topologies for the distributed runtime (DESIGN.md
// §13).
//
// The pre-scale engine stored adjacency as one `std::vector<int>` per node
// — a million nodes meant a million separately allocated vectors and a
// pointer chase per neighbor scan.  `csr_topology` is the compressed
// sparse row replacement: one offsets array (n+1 entries) and one edges
// array (2·E entries, each undirected edge appearing in both endpoint
// rows), rows sorted and deduplicated, self-loop-free by construction.
// Neighbor access is a contiguous `std::span<const int>`; adjacency tests
// are a binary search in the row.
//
// Construction is split in two so the fuzzer can diff them:
//   * `build_edge_list` — the deterministic generator per (topology, n,
//     rng): the ring/line/complete/star/grid/random_connected wiring is
//     bit-compatible with the legacy per-node-vector construction (same
//     rng consumption, same final graph), plus the scale-era additions
//     torus / random_regular / power_law;
//   * `csr_topology::from_edges` — CSR-ification of any edge list
//     (counting sort, row sort, dedupe, self-loop removal);
//   * `build_adjacency_reference` — the straightforward per-node-vector
//     construction from the same edge list.  The conformance fuzzer
//     asserts CSR rows are permutation-equal to this reference on every
//     seed (see tests/conformance_topology_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <span>
#include <utility>
#include <vector>

namespace cgp::distributed {

/// Topologies for the taxonomy's Topology dimension.  The last three are
/// the scale-era builders: `torus` (grid with wraparound, degree ~4,
/// diameter Theta(sqrt n)), `random_regular` (stub-pairing, degree <= 4,
/// diameter Theta(log n) — the small-diameter workhorse for large-n
/// differential runs), `power_law` (preferential attachment, m = 2:
/// hub-and-spoke degree distributions like real service meshes).
enum class topology {
  ring,
  complete,
  star,
  grid,
  random_connected,
  line,
  torus,
  random_regular,
  power_law
};

[[nodiscard]] const char* to_string(topology t);

/// All enum values, for generators that draw a random topology.
[[nodiscard]] std::span<const topology> all_topologies() noexcept;

/// Immutable compressed-sparse-row adjacency: `offsets_[v]..offsets_[v+1]`
/// indexes `edges_` for node v's sorted, deduplicated, self-loop-free
/// neighbor row.  Shared by every node of a run — there is exactly one
/// allocation pair per network regardless of node count.
class csr_topology {
 public:
  csr_topology() : offsets_(1, 0) {}

  /// Builds from an undirected edge list.  Duplicate edges (in either
  /// orientation) collapse to one; self-loops are removed; endpoints out
  /// of [0, nodes) throw std::invalid_argument.
  [[nodiscard]] static csr_topology from_edges(
      std::size_t nodes, std::span<const std::pair<int, int>> edge_list);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return offsets_.size() - 1;
  }
  /// Undirected edge count (each edge stored twice in `edges()`).
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size() / 2;
  }
  [[nodiscard]] std::size_t degree(std::size_t v) const noexcept {
    return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
  }
  [[nodiscard]] std::span<const int> neighbors(std::size_t v) const noexcept {
    return {edges_.data() + offsets_[v], edges_.data() + offsets_[v + 1]};
  }
  /// O(log degree) adjacency test (rows are sorted).
  [[nodiscard]] bool is_adjacent(int a, int b) const noexcept;

  /// Raw arrays, for invariant checks and serialization.
  [[nodiscard]] const std::vector<std::uint64_t>& offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] const std::vector<int>& edges() const noexcept {
    return edges_;
  }

 private:
  std::vector<std::uint64_t> offsets_;  ///< n+1 entries, offsets_[0] == 0
  std::vector<int> edges_;              ///< sorted within each row
};

/// The deterministic edge list for `topo` on n nodes.  For the legacy
/// topologies this consumes `rng` exactly as the pre-CSR constructor did,
/// so a (seed, topology, n) triple builds the same graph — and leaves the
/// generator in the same state for the uid shuffle that follows.
[[nodiscard]] std::vector<std::pair<int, int>> build_edge_list(
    topology topo, std::size_t n, std::mt19937& rng);

/// Edge list -> CSR, the production path.
[[nodiscard]] csr_topology build_topology(topology topo, std::size_t n,
                                          std::mt19937& rng);

/// Edge list -> legacy per-node vectors (push both directions, sort each
/// row, dedupe) — the reference the fuzzer diffs CSR against.
[[nodiscard]] std::vector<std::vector<int>> build_adjacency_reference(
    std::size_t nodes, std::span<const std::pair<int, int>> edge_list);

}  // namespace cgp::distributed
