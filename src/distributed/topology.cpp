#include "distributed/topology.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

namespace cgp::distributed {

const char* to_string(topology t) {
  switch (t) {
    case topology::ring:
      return "ring";
    case topology::complete:
      return "complete";
    case topology::star:
      return "star";
    case topology::grid:
      return "grid";
    case topology::random_connected:
      return "random_connected";
    case topology::line:
      return "line";
    case topology::torus:
      return "torus";
    case topology::random_regular:
      return "random_regular";
    case topology::power_law:
      return "power_law";
  }
  return "?";
}

std::span<const topology> all_topologies() noexcept {
  static constexpr std::array<topology, 9> all = {
      topology::ring,         topology::complete,
      topology::star,         topology::grid,
      topology::random_connected, topology::line,
      topology::torus,        topology::random_regular,
      topology::power_law};
  return all;
}

// --- CSR construction -------------------------------------------------------

csr_topology csr_topology::from_edges(
    std::size_t nodes, std::span<const std::pair<int, int>> edge_list) {
  csr_topology out;
  for (const auto& [a, b] : edge_list) {
    if (a < 0 || b < 0 || static_cast<std::size_t>(a) >= nodes ||
        static_cast<std::size_t>(b) >= nodes)
      throw std::invalid_argument(
          "csr_topology::from_edges: edge (" + std::to_string(a) + ", " +
          std::to_string(b) + ") out of range for " + std::to_string(nodes) +
          " nodes");
  }
  // Counting sort into rows: degree pass, exclusive prefix, scatter both
  // directions of every non-loop edge.
  out.offsets_.assign(nodes + 1, 0);
  for (const auto& [a, b] : edge_list) {
    if (a == b) continue;  // self-loop-free invariant
    ++out.offsets_[static_cast<std::size_t>(a) + 1];
    ++out.offsets_[static_cast<std::size_t>(b) + 1];
  }
  for (std::size_t v = 0; v < nodes; ++v)
    out.offsets_[v + 1] += out.offsets_[v];
  out.edges_.resize(out.offsets_[nodes]);
  std::vector<std::uint64_t> cursor(out.offsets_.begin(),
                                    out.offsets_.end() - 1);
  for (const auto& [a, b] : edge_list) {
    if (a == b) continue;
    out.edges_[cursor[static_cast<std::size_t>(a)]++] = b;
    out.edges_[cursor[static_cast<std::size_t>(b)]++] = a;
  }
  // Sort and dedupe each row in place, then compact the arrays.
  std::uint64_t write = 0;
  std::uint64_t row_begin = 0;
  for (std::size_t v = 0; v < nodes; ++v) {
    const std::uint64_t row_end = out.offsets_[v + 1];
    const auto first = out.edges_.begin() + static_cast<std::ptrdiff_t>(row_begin);
    const auto last = out.edges_.begin() + static_cast<std::ptrdiff_t>(row_end);
    std::sort(first, last);
    const auto unique_end = std::unique(first, last);
    const std::uint64_t kept =
        static_cast<std::uint64_t>(unique_end - first);
    std::move(first, unique_end,
              out.edges_.begin() + static_cast<std::ptrdiff_t>(write));
    write += kept;
    row_begin = row_end;  // next row starts where the unsorted one ended
    out.offsets_[v + 1] = write;
  }
  out.edges_.resize(write);
  out.edges_.shrink_to_fit();
  return out;
}

bool csr_topology::is_adjacent(int a, int b) const noexcept {
  if (a < 0 || static_cast<std::size_t>(a) >= node_count()) return false;
  const auto row = neighbors(static_cast<std::size_t>(a));
  return std::binary_search(row.begin(), row.end(), b);
}

// --- edge-list builders -----------------------------------------------------

std::vector<std::pair<int, int>> build_edge_list(topology topo, std::size_t n,
                                                 std::mt19937& rng) {
  std::vector<std::pair<int, int>> edges;
  const auto link = [&](std::size_t a, std::size_t b) {
    edges.emplace_back(static_cast<int>(a), static_cast<int>(b));
  };
  switch (topo) {
    case topology::ring:
      // n == 1 produces the self-loop (0, 0), which CSR-ification strips —
      // matching the legacy constructor's explicit 1-node clear.
      for (std::size_t i = 0; i < n; ++i) link(i, (i + 1) % n);
      break;
    case topology::line:
      for (std::size_t i = 0; i + 1 < n; ++i) link(i, i + 1);
      break;
    case topology::complete:
      edges.reserve(n * (n - 1) / 2);
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) link(i, j);
      break;
    case topology::star:
      for (std::size_t i = 1; i < n; ++i) link(0, i);
      break;
    case topology::grid: {
      const std::size_t side =
          static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t r = i / side, c = i % side;
        if (c + 1 < side && i + 1 < n) link(i, i + 1);
        if ((r + 1) * side + c < n) link(i, (r + 1) * side + c);
      }
      break;
    }
    case topology::random_connected: {
      // Random spanning tree + extra random edges: connected by
      // construction.  Consumes rng identically to the legacy builder
      // (duplicate extras are appended instead of skipped — the dedupe in
      // from_edges makes the final graph identical).
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::shuffle(order.begin(), order.end(), rng);
      for (std::size_t i = 1; i < n; ++i) {
        std::uniform_int_distribution<std::size_t> pick(0, i - 1);
        link(order[i], order[pick(rng)]);
      }
      std::uniform_int_distribution<std::size_t> any(0, n - 1);
      for (std::size_t extra = 0; extra < n / 2; ++extra) {
        const std::size_t a = any(rng);
        const std::size_t b = any(rng);
        if (a == b) continue;
        link(a, b);
      }
      break;
    }
    case topology::torus: {
      // Row-major grid with wraparound in both directions.  Partial last
      // rows wrap within their own length (horizontally) and past
      // themselves to the top row (vertically); degenerate wraps become
      // self-loops or duplicates and are stripped by CSR-ification.
      const std::size_t side = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::sqrt(static_cast<double>(n))));
      const std::size_t rows = (n + side - 1) / side;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t r = i / side, c = i % side;
        const std::size_t row_len = std::min(side, n - r * side);
        link(i, r * side + (c + 1) % row_len);
        std::size_t down = (r + 1 < rows) ? (r + 1) * side + c : c;
        if (down >= n) down = c;  // past a short last row: wrap to the top
        link(i, down);
      }
      break;
    }
    case topology::random_regular: {
      // Stub pairing with target degree 4: four stubs per node, shuffled,
      // paired consecutively.  Self-loop pairs and duplicate pairs are
      // stripped by CSR-ification, so realized degrees are <= 4 and
      // concentrate at 4; the diameter is Theta(log n) with high
      // probability — the topology the large-n differential oracles use.
      constexpr std::size_t kDegree = 4;
      std::vector<int> stubs;
      stubs.reserve(n * kDegree);
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t d = 0; d < kDegree; ++d)
          stubs.push_back(static_cast<int>(i));
      std::shuffle(stubs.begin(), stubs.end(), rng);
      for (std::size_t i = 0; i + 1 < stubs.size(); i += 2)
        edges.emplace_back(stubs[i], stubs[i + 1]);
      break;
    }
    case topology::power_law: {
      // Barabási–Albert preferential attachment, m = 2: each new node
      // links to two endpoints sampled with probability proportional to
      // their current degree.  Early nodes become hubs.
      constexpr std::size_t kAttach = 2;
      std::vector<int> endpoints;  // every edge endpoint, repeated by degree
      endpoints.reserve(2 * kAttach * n);
      for (std::size_t i = 1; i < n; ++i) {
        const std::size_t links = std::min(kAttach, i);
        for (std::size_t k = 0; k < links; ++k) {
          int target;
          if (endpoints.empty()) {
            target = 0;
          } else {
            std::uniform_int_distribution<std::size_t> pick(
                0, endpoints.size() - 1);
            target = endpoints[pick(rng)];
          }
          edges.emplace_back(static_cast<int>(i), target);
          endpoints.push_back(static_cast<int>(i));
          endpoints.push_back(target);
        }
      }
      break;
    }
  }
  return edges;
}

csr_topology build_topology(topology topo, std::size_t n, std::mt19937& rng) {
  return csr_topology::from_edges(n, build_edge_list(topo, n, rng));
}

std::vector<std::vector<int>> build_adjacency_reference(
    std::size_t nodes, std::span<const std::pair<int, int>> edge_list) {
  std::vector<std::vector<int>> adjacency(nodes);
  for (const auto& [a, b] : edge_list) {
    if (a == b) continue;
    adjacency[static_cast<std::size_t>(a)].push_back(b);
    adjacency[static_cast<std::size_t>(b)].push_back(a);
  }
  for (auto& adj : adjacency) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
  return adjacency;
}

}  // namespace cgp::distributed
