#include "distributed/inproc_transport.hpp"

#include <algorithm>
#include <barrier>
#include <exception>
#include <span>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "distributed/transport.hpp"
#include "telemetry/health.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/watchdog.hpp"

namespace cgp::distributed {

// Proof obligation: the mailbox backend models the Transport concept, so
// every concept-bounded driver runs on it unchanged.
static_assert(Transport<inproc_transport>);

namespace {

/// net_options::workers -> shard count: 0 = auto resolves to at least 2 so
/// cross-thread sends are exercised even on one-core machines.
std::size_t resolved_workers(const net_options& opts) {
  return opts.workers != 0
             ? opts.workers
             : std::max(2u, std::thread::hardware_concurrency());
}

}  // namespace

inproc_transport::inproc_transport(const net_options& opts)
    : net_base(opts, resolved_workers(opts)) {
  if (opts.mode == timing::asynchronous)
    throw std::invalid_argument(
        "inproc_transport implements only timing::synchronous supersteps; "
        "use sim_transport for timing::asynchronous runs");
  mailboxes_.reserve(shard_count());
  for (std::size_t s = 0; s < shard_count(); ++s)
    mailboxes_.push_back(std::make_unique<mailbox>());
  accums_.resize(shard_count());
}

void inproc_transport::for_each_shard(
    const std::function<void(std::size_t)>& fn) {
  for (std::size_t s = 0; s < shard_count(); ++s) fn(s);
}

void inproc_transport::enqueue_sync(std::size_t src, std::uint64_t seq,
                                    message&& m) {
  // Runs on the SENDER's shard thread.  The statistics slots are the
  // sender's own (shard accumulator, per-node sent count), the fault plan
  // is the order-independent hash, and only the final mailbox append takes
  // a lock — the destination shard's, never a global one.
  shard_accum& acc = accums_[shard_of(src)];
  ++acc.total;
  ++acc.by_tag[m.tag];
  ++stats_.messages_sent_per_node[src];
  const fault_draw d = draw_faults(src, seq);
  if (d.drop) {
    ++acc.dropped;
    if (health_) health_->on_send(src, true, false);
    return;
  }
  // Health hooks at the send site (relaxed atomics, same slot layout the
  // routing-barrier backends bump — the hash fault plan keeps the counts
  // identical across backends for a fixed seed).
  if (health_) {
    health_->on_send(src, false, d.dup);
    health_->on_delivered(static_cast<std::size_t>(m.dst));
    if (d.dup) health_->on_delivered(static_cast<std::size_t>(m.dst));
  }
  mailbox& box = *mailboxes_[shard_of(static_cast<std::size_t>(m.dst))];
  const std::uint64_t original_key = (seq << 1) | 1u;
  if (d.dup) {
    ++acc.duplicated;
    message copy(m);
    std::scoped_lock lock(box.mu);
    box.items.push_back(
        routed{static_cast<std::uint32_t>(src), seq << 1, std::move(copy)});
    box.items.push_back(
        routed{static_cast<std::uint32_t>(src), original_key, std::move(m)});
    routed_phase_.fetch_add(2, std::memory_order_relaxed);
    return;
  }
  {
    std::scoped_lock lock(box.mu);
    box.items.push_back(
        routed{static_cast<std::uint32_t>(src), original_key, std::move(m)});
  }
  routed_phase_.fetch_add(1, std::memory_order_relaxed);
}

void inproc_transport::execute_synchronous(std::size_t max_rounds) {
  for (shard_accum& acc : accums_) {
    acc.total = acc.dropped = acc.duplicated = 0;
    acc.by_tag.clear();
  }
  routed_phase_.store(0, std::memory_order_relaxed);
  round_ = 0;

  std::mutex err_mu;
  std::exception_ptr first_error;
  bool error = false;
  const auto record_error = [&](std::exception_ptr e) {
    const std::scoped_lock lock(err_mu);
    if (!first_error) first_error = std::move(e);
    error = true;
  };

  // Round bookkeeping, mirroring the base engine's loop exactly (including
  // its rounds-accounting: a quiescent or all-down stop after round r
  // records r; running out the budget records max_rounds + 1; a zero
  // budget records 1).  Runs single-threaded in the barrier's completion
  // step; the barrier orders it against every worker's phase.
  bool stop = false;
  bool had_due = false;
  std::size_t live_routed = 0;
  const auto on_phase_done = [&]() noexcept {
    const std::size_t routed =
        routed_phase_.exchange(0, std::memory_order_relaxed);
    if (run_heartbeat_) run_heartbeat_->beat();
    if (error) {
      stop = true;
      return;
    }
    // Single-threaded barrier point: fold the round into the health
    // roll-ups BEFORE round_ advances, so round indices match the base
    // engine exactly (0 = start phase, then 1..max_rounds).
    if (health_)
      health_->end_round(round_, phase_trace_id_, phase_parent_span_);
    if (round_ == 0) {  // the start phase just completed
      had_due = routed > 0;
      round_ = 1;
      if (max_rounds == 0) stop = true;
      return;
    }
    live_routed += routed;
    if (all_down()) {
      stop = true;
      return;
    }
    if (!had_due && routed == 0) {  // quiescent
      stop = true;
      return;
    }
    if (round_ == max_rounds) {
      ++round_;  // budget exhausted without quiescence
      stop = true;
      return;
    }
    had_due = routed > 0;
    ++round_;
  };
  const auto on_swap_done = [&]() noexcept {
    // Every mailbox is swapped out and no send is in flight: crash-stop
    // whose time has come, draw this round's churn.
    apply_round_faults();
  };

  const auto parties = static_cast<std::ptrdiff_t>(shard_count());
  std::barrier bar_main(parties, on_phase_done);
  std::barrier bar_swap(parties, on_swap_done);

  const auto worker = [&](std::size_t s) {
    const auto [lo, hi] = shard_range(s);
    try {
      for (std::size_t i = lo; i < hi; ++i) run_node_start(i);
    } catch (...) {
      record_error(std::current_exception());
    }
    bar_main.arrive_and_wait();
    std::vector<routed> local;   // this shard's round-r mail, recycled
    std::vector<message> arena;  // bucketed per node, recycled
    while (!stop) {
      {
        const std::scoped_lock lock(mailboxes_[s]->mu);
        local.swap(mailboxes_[s]->items);
      }
      bar_swap.arrive_and_wait();
      try {
        // Recover canonical order from the racy arrival order: sort by
        // (destination, sender, sequence-with-duplicate-bit).  Each node's
        // run is then exactly the mailbox the single-threaded router would
        // have handed it.
        std::sort(local.begin(), local.end(),
                  [](const routed& a, const routed& b) {
                    return std::tie(a.msg.dst, a.src, a.key) <
                           std::tie(b.msg.dst, b.src, b.key);
                  });
        arena.clear();
        arena.reserve(local.size());
        for (routed& r : local) arena.push_back(std::move(r.msg));
        std::size_t pos = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          const std::size_t begin = pos;
          while (pos < arena.size() &&
                 static_cast<std::size_t>(arena[pos].dst) == i)
            ++pos;
          node_superstep(i, std::span<const message>(arena.data() + begin,
                                                     pos - begin));
        }
      } catch (...) {
        record_error(std::current_exception());
      }
      local.clear();
      bar_main.arrive_and_wait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(shard_count());
  for (std::size_t s = 0; s < shard_count(); ++s)
    threads.emplace_back(worker, s);
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
  stats_.rounds = round_;

  // Merge the shard-local send ledgers; the per-node and per-receiver
  // arrays were written node-locally and need no merge.
  for (const shard_accum& acc : accums_) {
    stats_.messages_total += acc.total;
    stats_.messages_dropped += acc.dropped;
    stats_.messages_duplicated += acc.duplicated;
    for (const auto& [tag, count] : acc.by_tag)
      stats_.messages_by_tag[tag] += count;
  }
  // Feed the live sampler the same totals the other backends report
  // (start-phase sends are excluded from the routed counter there too).
  auto& reg = telemetry::registry::global();
  reg.get_counter("distributed.network.live_messages_routed")
      .add(live_routed);
  reg.get_counter("distributed.network.live_faults")
      .add(stats_.messages_dropped + stats_.messages_duplicated);
}

}  // namespace cgp::distributed
