// The parallel backend of the Transport concept: each synchronous
// superstep fans the per-SHARD slices (mailbox bucketing + deliveries +
// on_round for the shard's contiguous node range) out across a parallel
// Executor and joins them at the round barrier.  One shard per worker:
// a million-node superstep is `workers` tasks over recycled arenas, not
// a million task submissions.
//
// The executor is a template parameter bounded by the Executor concept —
// the two concept-bounded module boundaries of this library compose:
// `basic_parallel_transport<E>` is a Transport for EVERY Executor E, so
// superstep fan-out runs over the legacy shared-queue pool, the
// work-stealing pool, or any future scheduler without touching the
// distributed layer.  `parallel_transport` (legacy pool) and
// `stealing_transport` (work-stealing) are the named instantiations.
//
// Determinism: identical to sim_transport by construction.  Shard tasks
// touch only shard-local state (the shard's arena slice and its nodes'
// rngs, stats slots and decision maps); message routing, statistics, and
// the hash fault plan run single-threaded at the barrier in canonical
// sender order (see network.hpp).  For a fixed seed, decisions and
// run_stats match the sequential simulator bit for bit — on either
// executor, at any shard count.
//
// Timing: implements `timing::synchronous` only — asynchronous event
// interleaving is the deterministic simulator's job (see the backend
// matrix in DESIGN.md §7); constructing this backend with
// timing::asynchronous throws.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "distributed/network.hpp"
#include "parallel/executor.hpp"
#include "parallel/options.hpp"
#include "parallel/task_group.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing_pool.hpp"

namespace cgp::distributed {

namespace detail {

/// net_options::workers -> pool_options: 0 = auto resolves to at least 2
/// so concurrency is always exercised even on one-core machines.
inline parallel::pool_options superstep_pool_options(const net_options& opts) {
  const unsigned workers =
      opts.workers != 0 ? opts.workers
                        : std::max(2u, std::thread::hardware_concurrency());
  return parallel::pool_options{.workers = workers};
}

}  // namespace detail

template <parallel::Executor E>
class basic_parallel_transport final : public net_base {
 public:
  /// Workers: net_options::workers threads (0 = auto: hardware
  /// concurrency, at least 2 so concurrency is always exercised).
  explicit basic_parallel_transport(const net_options& opts)
      : net_base(opts, detail::superstep_pool_options(opts).workers),
        pool_(detail::superstep_pool_options(opts)) {
    if (opts.mode == timing::asynchronous)
      throw std::invalid_argument(
          "parallel_transport implements only timing::synchronous "
          "supersteps; use sim_transport for timing::asynchronous runs");
  }

  /// Worker threads executing supersteps.
  [[nodiscard]] unsigned workers() const noexcept {
    return pool_.worker_count();
  }

  /// The underlying executor (e.g. to share it with algorithm calls).
  [[nodiscard]] E& executor() noexcept { return pool_; }

 protected:
  void for_each_shard(const std::function<void(std::size_t)>& fn) override {
    parallel::task_group<E> group(pool_);
    for (std::size_t s = 0; s < shard_count(); ++s)
      group.run([&fn, s] { fn(s); });
    group.wait();
  }
  [[nodiscard]] const char* backend_name() const noexcept override {
    return "parallel";
  }

 private:
  E pool_;
};

/// Legacy-pool instantiation: the name every existing call site uses.
using parallel_transport = basic_parallel_transport<parallel::thread_pool>;
/// Work-stealing instantiation for irregular per-node workloads.
using stealing_transport =
    basic_parallel_transport<parallel::work_stealing_pool>;

}  // namespace cgp::distributed
