// The parallel backend of the Transport concept: each synchronous
// superstep fans the per-node handlers (mailbox deliveries + on_round)
// out across a parallel::thread_pool and joins them at the round barrier,
// so a 64-node wave actually uses the machine's cores.
//
// Determinism: identical to sim_transport by construction.  Worker tasks
// touch only node-local state (the node's inbox, outbox, rng, stats slots
// and decision map); message routing, statistics, and the fault plan run
// single-threaded at the barrier in canonical sender order (see
// network.hpp).  For a fixed seed, decisions and run_stats match the
// sequential simulator bit for bit.
//
// Timing: implements `timing::synchronous` only — asynchronous event
// interleaving is the deterministic simulator's job (see the backend
// matrix in DESIGN.md §7); constructing this backend with
// timing::asynchronous throws.
#pragma once

#include "distributed/network.hpp"
#include "parallel/thread_pool.hpp"

namespace cgp::distributed {

class parallel_transport final : public net_base {
 public:
  /// Workers: net_options::workers threads (0 = auto: hardware
  /// concurrency, at least 2 so concurrency is always exercised).
  explicit parallel_transport(const net_options& opts);

  /// Worker threads executing supersteps.
  [[nodiscard]] unsigned workers() const noexcept { return pool_.size(); }

 protected:
  void for_each_node(const std::function<void(std::size_t)>& fn) override;
  [[nodiscard]] const char* backend_name() const noexcept override {
    return "parallel";
  }

 private:
  parallel::thread_pool pool_;
};

}  // namespace cgp::distributed
