// Distributed algorithms for the Section 4 taxonomy, implemented against
// the runtime's process/context surface — transport-agnostic by
// construction, so the same algorithm code runs on every backend modeling
// the Transport concept.  Each algorithm's taxonomy classification and
// claimed complexity live in src/taxonomy; the tests and
// bench/sec4_distributed verify the claimed message bounds against the
// runtime's measured counts.
#pragma once

#include <functional>
#include <memory>

#include "distributed/transport.hpp"

namespace cgp::distributed {

// ---------------------------------------------------------------------------
// Leader election on a ring
// ---------------------------------------------------------------------------

/// LCR (LeLann–Chang–Roberts): each node sends its uid clockwise; a node
/// forwards uids larger than its own and elects itself when its own uid
/// returns.  Messages: Theta(n^2) worst case, O(n log n) expected for random
/// uid placement.  Strategy: distributed control; works asynchronously.
[[nodiscard]] process_factory lcr_leader_election();

/// HS (Hirschberg–Sinclair): phased bidirectional probes to distance 2^k
/// with echoes.  Messages: Theta(n log n) worst case.  Synchronous phases.
[[nodiscard]] process_factory hs_leader_election();

/// Peterson's UNIDIRECTIONAL election: active nodes adopt the id of their
/// nearest active predecessor when it is a local maximum, halving the
/// active set each phase.  Messages: <= 2 n log n + O(n); needs only
/// one-way links and per-link FIFO delivery (the network's default).
[[nodiscard]] process_factory peterson_leader_election();

/// Randomized leader election for ANONYMOUS rings (Itai–Rodeh flavour):
/// nodes draw random identifiers and re-draw on collision of the maximum.
/// Terminates with probability 1; rounds are geometric.
[[nodiscard]] process_factory randomized_anonymous_election();

// ---------------------------------------------------------------------------
// Broadcast / spanning structures on arbitrary topologies
// ---------------------------------------------------------------------------

/// Flooding broadcast from `root`: every node forwards the first copy to
/// all other neighbors.  Messages: Theta(E).
[[nodiscard]] process_factory flooding_broadcast(int root);

/// Echo (probe-echo wave): flooding probe + convergecast echo; the root
/// terminates knowing the wave covered the graph.  Messages: exactly 2*E.
[[nodiscard]] process_factory echo_wave(int root);

/// Asynchronous BFS-flavoured spanning tree: nodes adopt the first probe's
/// sender as parent (on a synchronous network this IS the BFS tree).
[[nodiscard]] process_factory bfs_spanning_tree(int root);

/// Convergecast aggregation over the echo wave's spanning tree: every node
/// contributes a value (its uid by default) and the root decides
/// ("aggregate") the combined result.  The combiner must be associative and
/// commutative (children echo in arbitrary order) — the distributed twin of
/// the data-parallel library's CommutativeMonoid-constrained reduce.
[[nodiscard]] process_factory aggregate_sum(int root);

// ---------------------------------------------------------------------------
// Failure detection
// ---------------------------------------------------------------------------

/// Heartbeat failure detector: every node beats to all neighbors each
/// round; a neighbor silent for `timeout_rounds` is suspected (decision
/// "suspects:<id>").  Tolerates crash faults; strategy: heart beat.
[[nodiscard]] process_factory heartbeat_detector(std::size_t timeout_rounds);

/// SWIM-style gossip membership: every node keeps a heartbeat-counter
/// table over the whole membership, bumps its own counter each round, and
/// gossips the table to a small random subset of its neighbors (fanout 3).
/// A member whose counter has not advanced for `suspect_timeout` rounds is
/// declared down.  Each round every node (re)decides "member:<j>" = 1/0
/// for every member it knows of, so the FINAL round's decisions are its
/// membership view — the churn soak tests compare that view against the
/// runtime's ground truth (`net_base::is_down`) once the churn schedule
/// ends.  Tolerates crash AND recovery (a restarted node's counter resumes
/// advancing and it is re-admitted).  Tables are O(n) per node, so this is
/// a small-to-medium-n protocol — the taxonomy's failure-detection row for
/// dynamic membership, not a million-node algorithm.
[[nodiscard]] process_factory gossip_membership(std::size_t suspect_timeout);

// ---------------------------------------------------------------------------
// Convenience drivers
// ---------------------------------------------------------------------------

struct election_outcome {
  int leader_node = -1;    ///< index of the elected node (-1: none)
  long leader_uid = -1;
  std::size_t leaders = 0; ///< how many nodes claimed leadership (must be 1)
  run_stats stats;
};

/// Runs a leader election algorithm on a fresh ring built from `opts`
/// (the topology is forced to ring), on any Transport backend.  The
/// driver is constrained on the concept only — instantiating it with
/// `transport_archetype` is the proof it needs nothing more.
template <Transport T = sim_transport>
[[nodiscard]] election_outcome run_ring_election(const process_factory& algo,
                                                 net_options opts) {
  opts.topo = topology::ring;
  T net(opts);
  net.spawn(algo);
  election_outcome out;
  out.stats = net.run();
  for (int node : net.deciders("leader")) {
    ++out.leaders;
    out.leader_node = node;
    out.leader_uid = *net.decision(node, "leader");
  }
  return out;
}

}  // namespace cgp::distributed
