// The third backend of the Transport concept: a shared-memory mailbox
// transport with REAL cross-thread sends (DESIGN.md §13).
//
// sim_transport and parallel_transport both funnel every message through a
// single-threaded routing barrier; the parallelism (if any) is confined to
// handler execution.  inproc_transport removes that funnel: each shard of
// contiguous nodes is owned by a dedicated thread, and a send appends
// directly to the DESTINATION shard's mailbox under that mailbox's mutex —
// there is no global superstep lock and no coordinator-side routing pass.
//
// The round protocol is two barrier phases:
//
//   deliver phase   every shard thread drains its round-r mailbox (sorted
//                   into canonical order, bucketed per node) and runs its
//                   nodes' supersteps; handler sends land in the
//                   destination shards' mailboxes for round r+1;
//   main barrier    completion step (single-threaded, noexcept): round
//                   bookkeeping — quiescence / all-down / max-rounds stop
//                   decision, heartbeat beat;
//   swap phase      every thread moves its own mailbox buffer out under
//                   the mutex (no send is in flight between the barriers);
//   swap barrier    completion step: deferred crash-stops and the churn
//                   hash draws for the round about to execute.
//
// Determinism despite racing sends: arrival order in a mailbox is
// nondeterministic, but each entry carries its canonical identity
// (sender index, send sequence, duplicate-before-original bit), so a sort
// at the round boundary recovers EXACTLY the order the single-threaded
// router would have produced.  Fault decisions are the same pure hash of
// (seed, sender, sequence) the other backends use (network.hpp), drawn at
// the send site instead of a routing barrier — order-independence of the
// hash is precisely what makes the lock-free schedule agree bit for bit
// with the sequential simulator's.
//
// Timing: synchronous only, like parallel_transport; asynchronous event
// interleaving stays the deterministic simulator's job.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "distributed/network.hpp"

namespace cgp::distributed {

class inproc_transport final : public net_base {
 public:
  /// Shard-owning worker threads: net_options::workers of them (0 = auto:
  /// hardware concurrency, at least 2 so cross-thread sends are always
  /// exercised), capped at the node count.
  explicit inproc_transport(const net_options& opts);

  /// Shard-owning threads a run spawns.
  [[nodiscard]] unsigned workers() const noexcept {
    return static_cast<unsigned>(shard_count());
  }

 protected:
  // Only reached through the base engine, which this backend replaces;
  // kept correct (serial) for completeness.
  void for_each_shard(const std::function<void(std::size_t)>& fn) override;
  [[nodiscard]] const char* backend_name() const noexcept override {
    return "inproc";
  }
  /// The thread-owning mailbox engine described above.
  void execute_synchronous(std::size_t max_rounds) override;
  /// Cross-thread send sink: draws the hash fault plan inline, accumulates
  /// shard-local statistics, and appends survivors to the destination
  /// shard's mailbox.
  void enqueue_sync(std::size_t src, std::uint64_t seq, message&& m) override;

 private:
  /// A mailbox entry: the message plus its canonical identity.  `key` is
  /// (send sequence << 1 | original-bit) — a duplicated copy carries the
  /// even key so that sorting by (src, key) puts it BEFORE its original,
  /// matching the routing barrier's copy-first delivery order.
  struct routed {
    std::uint32_t src;
    std::uint64_t key;
    message msg;
  };
  /// One per shard, owned by that shard's thread between barriers and
  /// shared with senders during deliver phases.  Padded so two shards'
  /// mailbox locks never share a cache line.
  struct alignas(64) mailbox {
    std::mutex mu;
    std::vector<routed> items;
  };
  /// Send-side statistics, accumulated lock-free in the sender's shard
  /// slot and merged into run_stats after the threads join.
  struct alignas(64) shard_accum {
    std::size_t total = 0;
    std::size_t dropped = 0;
    std::size_t duplicated = 0;
    std::map<std::string, std::size_t> by_tag;
  };

  std::vector<std::unique_ptr<mailbox>> mailboxes_;  ///< per shard
  std::vector<shard_accum> accums_;                  ///< per sender shard
  /// Deliveries scheduled in the current phase (duplicates count twice) —
  /// the quiescence signal the main barrier's completion step reads.
  std::atomic<std::size_t> routed_phase_{0};
};

// Concept conformance is asserted in inproc_transport.cpp (transport.hpp
// includes this header's dependency, not the other way around).

}  // namespace cgp::distributed
