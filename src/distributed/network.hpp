// An in-process message-passing runtime — the experimental substrate for
// Section 4's distributed algorithm concept taxonomy, engineered for
// million-node simulations (DESIGN.md §13).
//
// Substitution note (see DESIGN.md §7): the paper's Section 4 classifies
// distributed algorithms along orthogonal dimensions (topology, timing,
// fault tolerance, communication).  This runtime mirrors that structure in
// its API instead of hard-wiring one simulator class:
//
//   * `net_options` is the aggregate of all orthogonal construction
//     dimensions (size, topology, timing, seed, channel order, fault
//     plan, worker count) — new dimensions extend the aggregate instead
//     of forcing positional-constructor churn;
//   * `net_base` is the shared engine: one immutable CSR topology
//     (topology.hpp) shared by every node, uids, batched arena-based
//     message routing, fault injection, and measured statistics
//     (messages, rounds, LOCAL COMPUTATION per node — the quantity the
//     paper says is "rarely accounted for");
//   * backends plug in an execution strategy: `sim_transport` runs
//     handlers sequentially and deterministically (and is the only
//     backend implementing `timing::asynchronous` via an event queue),
//     `parallel_transport` (parallel_transport.hpp) runs each shard's
//     synchronous superstep concurrently on an Executor, and
//     `inproc_transport` (inproc_transport.hpp) replaces the whole
//     engine with shard-owning threads and real cross-thread mailbox
//     sends;
//   * the driver-facing boundary is the `Transport` concept
//     (transport.hpp), checked with an archetype in the spirit of
//     core/archetypes.hpp, so algorithm drivers provably need nothing
//     beyond the concept and run unchanged on interchangeable backends.
//
// Fault injection is unified behind one surface on every backend: crash
// stops (`crash`), Byzantine corruption hooks (`corrupt`), the
// message-level drop / duplicate / delay knobs of `fault_options`, and the
// churn schedule (randomized crash/recover per round) the membership
// scenarios soak under.
//
// Determinism contract: for `timing::synchronous`, every backend delivers
// each node's round-r mailbox in CANONICAL ORDER — sorted by (sending
// round, sender index, per-sender send sequence, duplicate-before-original)
// — and every per-message fault decision is a pure hash of (seed, sender,
// send sequence), so the decision is the same whether it is drawn at a
// single-threaded routing barrier (sim/parallel) or at a cross-thread send
// site (inproc).  Handler invocations only touch node-local state, so a
// run's decisions and statistics are identical across backends for a
// fixed seed.
//
// Scale notes (the §13 batching protocol): senders append to per-shard
// outbox arenas; the router drains them in shard order into per-
// destination-shard incoming arenas (one contiguous append stream per
// shard, no per-message queue ops); each shard buckets its arena by
// destination with a stable counting sort at the round barrier and drains
// every node's span contiguously.  All arenas are recycled round over
// round, per-node RNGs are materialized lazily, and per-node state is
// flat arrays — a million-node ring is a handful of large allocations,
// not millions of small ones.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <random>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "distributed/topology.hpp"

namespace cgp::telemetry::live {
class heartbeat;
}  // namespace cgp::telemetry::live

namespace cgp::telemetry::health {
class backend_track;
}  // namespace cgp::telemetry::health

namespace cgp::distributed {

/// A message: source/destination node ids, a tag, and an integer payload.
/// The trailing trace envelope carries the sender's causal context across
/// the delivery boundary (see telemetry/trace.hpp): the receiver's handler
/// span parents under `parent_span`, so a whole superstep renders as one
/// causally-linked tree across all ranks, on every backend.  All three
/// fields are 0 when the run is not being traced.
struct message {
  int src = -1;
  int dst = -1;
  std::string tag;
  std::vector<long> payload;
  std::uint64_t trace_id = 0;     ///< causal tree this send belongs to
  std::uint64_t parent_span = 0;  ///< sender's span at the send site
  std::uint64_t flow_id = 0;      ///< pairs the send arrow with delivery
};

/// Contiguous view of a node's (sorted) neighbor row in the shared CSR
/// topology.  `const std::vector<int>&` converts to it, so pre-CSR models
/// of the Transport concept (e.g. the archetype) conform unchanged.
using neighbor_span = std::span<const int>;

/// Delivery timing for the taxonomy's Timing dimension.
enum class timing { synchronous, asynchronous };

/// Message-level fault injection (the taxonomy's Fault-Tolerance
/// dimension, message axis).  Applied identically on every backend, to
/// every send, as a pure hash of (seed, sender, send sequence).
struct fault_options {
  /// Probability a message is silently lost in transit.
  double drop = 0.0;
  /// Probability a message is delivered twice (the copy draws its own
  /// delay).
  double duplicate = 0.0;
  /// Extra delivery delay in virtual-time ticks, uniform in [0, max_delay].
  /// Asynchronous mode only: a synchronous round delivers every message at
  /// the next round boundary, so construction rejects a nonzero max_delay
  /// under timing::synchronous.
  std::uint32_t max_delay = 0;
  /// Churn schedule (process axis): at every synchronous round boundary
  /// each non-crashed node goes down with probability `churn_crash`, and
  /// each churned-down node comes back with probability `churn_recover`.
  /// The draw is a pure hash of (seed, node, round), so the schedule is
  /// identical on every backend.  A churned-down node drops its mail and
  /// runs no handlers; on recovery it resumes with its process state
  /// intact (a restart-from-disk model).  Explicit `crash()` remains
  /// permanent.  Synchronous mode only.
  double churn_crash = 0.0;
  double churn_recover = 0.0;
  /// Last round the churn schedule applies to (0 = for the whole run).
  /// The soak tests let churn rage until this bound, then require the
  /// membership view to converge to the surviving set.
  std::size_t churn_until = 0;

  [[nodiscard]] bool any() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || max_delay != 0 ||
           churn_crash > 0.0 || churn_recover > 0.0;
  }
  [[nodiscard]] bool churn() const noexcept {
    return churn_crash > 0.0 || churn_recover > 0.0;
  }
};

/// Aggregate of every orthogonal construction dimension; replaces the old
/// positional `network(n, topo, mode, seed, fifo)` constructor (see the
/// README migration table).  Designated initializers name each dimension
/// at the call site: `sim_transport net({.nodes = 8, .topo =
/// topology::ring});`.
struct net_options {
  std::size_t nodes = 1;
  topology topo = topology::ring;
  timing mode = timing::synchronous;
  std::uint32_t seed = 42;
  /// Asynchronous delivery is per-link FIFO (the channel assumption
  /// algorithms like Peterson's election rely on); false models fully
  /// reordering channels.  Synchronous delivery is inherently ordered by
  /// the round barrier, so the flag only affects asynchronous runs.
  bool fifo_links = true;
  /// parallel_transport / inproc_transport only: worker thread count
  /// (0 = auto, at least 2).
  unsigned workers = 0;
  fault_options faults{};
};

class net_base;

/// Per-node view of the network handed to process handlers.
class context {
 public:
  context(net_base& net, int id) : net_(&net), id_(id) {}

  [[nodiscard]] int id() const noexcept { return id_; }
  /// The node's unique identifier (a pseudonymized uid, not its index).
  [[nodiscard]] long uid() const;
  [[nodiscard]] neighbor_span neighbors() const;
  [[nodiscard]] std::size_t round() const;
  [[nodiscard]] std::size_t node_count() const;

  /// Sends to a neighbor; throws if `to` is not adjacent (the runtime
  /// enforces the topology).  The tag is viewed, not copied, until the
  /// message is materialized; the payload is moved through to the outbox.
  void send(int to, std::string_view tag, std::vector<long> payload = {});

  /// Charges extra local computation steps to this node (Section 4: "local
  /// computation at a node is rarely accounted for").
  void charge(std::size_t steps);

  /// Records a decision (e.g. "leader", "parent") for this node.
  void decide(const std::string& key, long value);

  /// Deterministic per-node randomness (for randomized strategies).
  /// Materialized lazily — a million-node run pays for engines only at
  /// the nodes that actually draw.
  [[nodiscard]] std::mt19937& rng();

 private:
  net_base* net_;
  int id_;
};

/// A distributed process: implement the handlers, register with a backend.
class process {
 public:
  virtual ~process() = default;
  /// Invoked once before the first round / event.
  virtual void start(context& ctx) { (void)ctx; }
  /// Invoked on message delivery.
  virtual void receive(context& ctx, const message& m) = 0;
  /// Synchronous mode only: invoked once per round after deliveries.
  virtual void on_round(context& ctx) { (void)ctx; }
};

using process_factory = std::function<std::unique_ptr<process>(int id)>;

/// Run statistics — the taxonomy's measured performance data.
/// `messages_total` counts send attempts (the algorithm's message
/// complexity); injected faults are broken out separately: dropped sends
/// are counted in the total but never delivered, duplicated deliveries are
/// NOT in the total (the extra copy shows up in `messages_duplicated` and
/// in the receiver's per-node count).
///
/// The per-node arrays are sized by node count — query them through the
/// span accessors (or the scalar per-node lookups), which are O(1) and
/// allocation-free even at a million nodes.  Copying the whole struct
/// copies the arrays; `net_base::stats()` hands out a const reference for
/// post-run queries that should not.
struct run_stats {
  std::size_t messages_total = 0;
  std::size_t messages_dropped = 0;
  std::size_t messages_duplicated = 0;
  std::map<std::string, std::size_t> messages_by_tag;
  std::size_t rounds = 0;
  std::size_t local_steps = 0;
  std::vector<std::size_t> local_steps_per_node;
  std::vector<std::size_t> messages_sent_per_node;
  std::vector<std::size_t> messages_received_per_node;

  /// Allocation-free views of the per-node arrays (the O(n)-copy fix:
  /// accessors never clone a million-entry vector).
  [[nodiscard]] std::span<const std::size_t> local_steps_span()
      const noexcept {
    return local_steps_per_node;
  }
  [[nodiscard]] std::span<const std::size_t> sent_span() const noexcept {
    return messages_sent_per_node;
  }
  [[nodiscard]] std::span<const std::size_t> received_span() const noexcept {
    return messages_received_per_node;
  }

  /// Messages sent with `tag` (0 when the tag never appeared).
  [[nodiscard]] std::size_t messages_for(const std::string& tag) const {
    const auto it = messages_by_tag.find(tag);
    return it == messages_by_tag.end() ? 0 : it->second;
  }
  /// Send attempts originating at `node` (mirrors messages_for; throws a
  /// descriptive std::out_of_range for an unknown node).
  [[nodiscard]] std::size_t messages_sent_by(int node) const {
    return per_node(messages_sent_per_node, node, "messages_sent_by");
  }
  /// Deliveries (including duplicated copies) at `node`.
  [[nodiscard]] std::size_t messages_received_by(int node) const {
    return per_node(messages_received_per_node, node, "messages_received_by");
  }
  /// All tags observed in this run, sorted.
  [[nodiscard]] std::vector<std::string> tags() const {
    std::vector<std::string> out;
    out.reserve(messages_by_tag.size());
    for (const auto& [tag, count] : messages_by_tag) out.push_back(tag);
    return out;
  }

 private:
  [[nodiscard]] static std::size_t per_node(
      const std::vector<std::size_t>& v, int node, const char* what) {
    if (node < 0 || static_cast<std::size_t>(node) >= v.size())
      throw std::out_of_range(std::string(what) + ": node " +
                              std::to_string(node) +
                              " out of range for a network of " +
                              std::to_string(v.size()) + " nodes");
    return v[static_cast<std::size_t>(node)];
  }
};

/// The shared engine behind every transport backend: the CSR topology,
/// uids, the canonical synchronous superstep loop, the asynchronous event
/// queue, the unified fault surface, decisions, and statistics.  Backends
/// override `for_each_shard` with their execution strategy (everything a
/// shard task touches is node-local — the shard's slice of the arenas,
/// rngs, stats slots and decision maps — so the strategy may be
/// concurrent), or, like inproc_transport, replace the whole synchronous
/// engine via `execute_synchronous` + `enqueue_sync` while reusing the
/// shared per-node superstep, fault hashing, and accounting.
class net_base {
 public:
  virtual ~net_base() = default;
  net_base(const net_base&) = delete;
  net_base& operator=(const net_base&) = delete;

  /// Installs the algorithm (one process per node).
  void spawn(const process_factory& factory);

  /// Overrides the seeded uid permutation (e.g. to build the adversarial
  /// descending-uid layout that realizes LCR's Theta(n^2) worst case).
  /// Must be a permutation-like assignment of distinct values.
  void set_uids(std::vector<long> uids);

  /// Crash-stops a node before the given round (fault injection).  Under
  /// timing::asynchronous `at_round` is measured in scheduler ticks; 0
  /// crashes the node before the run starts in either mode.  Permanent —
  /// unlike churn, a crashed node never recovers.
  void crash(int node, std::size_t at_round = 0);

  /// Installs a Byzantine corruption hook: called for every message sent by
  /// `node`; may alter the payload.
  void corrupt(int node, std::function<void(message&)> hook);

  /// Runs to quiescence (no messages in flight and no pending events) or
  /// `max_rounds`, whichever first.  Returns the statistics (by value —
  /// use stats() for allocation-free post-run queries).
  run_stats run(std::size_t max_rounds = 100000);

  /// The statistics of the (latest) run, without copying the per-node
  /// arrays.
  [[nodiscard]] const run_stats& stats() const noexcept { return stats_; }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return topo_.node_count();
  }
  [[nodiscard]] neighbor_span neighbors_of(int id) const {
    return topo_.neighbors(check_node(id, "neighbors_of"));
  }
  [[nodiscard]] long uid_of(int id) const {
    return uids_[check_node(id, "uid_of")];
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return topo_.edge_count();
  }
  /// The shared immutable CSR topology.
  [[nodiscard]] const csr_topology& topo() const noexcept { return topo_; }
  [[nodiscard]] const net_options& options() const noexcept { return opts_; }

  /// Whether a node is currently out of service (explicitly crashed or
  /// churned down) — the ground truth the membership soak tests compare
  /// gossip views against.
  [[nodiscard]] bool is_down(int node) const {
    const std::size_t i = check_node(node, "is_down");
    return crashed_[i] || churn_down_[i] != 0;
  }

  /// Decisions recorded via context::decide.
  [[nodiscard]] std::optional<long> decision(int node,
                                             const std::string& key) const;
  /// All nodes that decided `key` to some value.
  [[nodiscard]] std::vector<int> deciders(const std::string& key) const;
  /// Every decision of the run, keyed by (node, key) — the backend-parity
  /// tests compare these wholesale.
  [[nodiscard]] std::map<std::pair<int, std::string>, long> all_decisions()
      const;

 protected:
  /// `shards` is the unit of execution parallelism: nodes live in
  /// contiguous shards, senders append to their shard's outbox arena, and
  /// `for_each_shard` runs one task per shard.  Sequential backends pass 1.
  explicit net_base(const net_options& opts, std::size_t shards = 1);

  /// Execution strategy: invoke `fn(s)` once for every shard index in
  /// [0, shard_count()).  All invocations of one barrier phase may run
  /// concurrently; `fn` only touches shard-local state.
  virtual void for_each_shard(const std::function<void(std::size_t)>& fn) = 0;

  /// Short backend label ("sim", "parallel", "inproc") for traces and
  /// metrics.
  [[nodiscard]] virtual const char* backend_name() const noexcept = 0;

  /// Whether this backend implements timing::asynchronous (only the
  /// deterministic event-queue simulator does).
  [[nodiscard]] virtual bool supports_asynchronous() const noexcept {
    return false;
  }

  /// The synchronous engine: start phase + round loop.  The base
  /// implementation is the barrier-per-round arena engine below;
  /// inproc_transport overrides it with its thread-owning mailbox loop.
  virtual void execute_synchronous(std::size_t max_rounds);

  /// Synchronous send sink: where a validated, corrupted, trace-stamped
  /// message goes.  Base: the sender shard's outbox arena (faults and
  /// statistics are applied later, at the routing barrier).  Backends with
  /// cross-thread sends override this and apply `draw_faults` inline —
  /// the hash makes both schedules agree.
  virtual void enqueue_sync(std::size_t src, std::uint64_t seq, message&& m);

  // --- shared machinery for custom engines ---------------------------------

  /// Deterministic per-message fault plan: a pure function of the run seed
  /// and the message's (sender, send-sequence) identity.
  struct fault_draw {
    bool drop = false;
    bool dup = false;
  };
  [[nodiscard]] fault_draw draw_faults(std::size_t src,
                                       std::uint64_t seq) const noexcept;

  /// One node's synchronous superstep: deliver `inbox` in canonical order,
  /// then on_round.  Down nodes let their mail rot.  Adopts the enclosing
  /// phase span's trace context when executing on a worker thread.
  void node_superstep(std::size_t i, std::span<const message> inbox);

  /// One node's start-phase slot (trace adoption + accounting + start()).
  void run_node_start(std::size_t i);

  /// Applies the deferred-crash schedule and the churn hash draws for the
  /// current `round_`.  Single-threaded contexts only (the coordinator, or
  /// a barrier completion step).
  void apply_round_faults();

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shard_count_;
  }
  [[nodiscard]] std::size_t shard_of(std::size_t node) const noexcept {
    return node / shard_width_;
  }
  /// The contiguous [begin, end) node range of shard `s`.
  [[nodiscard]] std::pair<std::size_t, std::size_t> shard_range(
      std::size_t s) const noexcept {
    const std::size_t lo = std::min(node_count(), s * shard_width_);
    return {lo, std::min(node_count(), lo + shard_width_)};
  }
  [[nodiscard]] bool all_down() const noexcept {
    return down_count_ == node_count();
  }

  [[nodiscard]] std::size_t check_node(int id, const char* what) const {
    if (id < 0 || static_cast<std::size_t>(id) >= topo_.node_count())
      throw std::out_of_range(std::string(what) + ": node " +
                              std::to_string(id) +
                              " out of range for a network of " +
                              std::to_string(topo_.node_count()) + " nodes");
    return static_cast<std::size_t>(id);
  }

  // Shared state a custom engine needs to read or (in synchronized phases)
  // write.  Worker tasks only ever touch node-local slots; the scalar
  // fields are coordinator/completion-step territory.
  net_options opts_;
  csr_topology topo_;
  std::vector<long> uids_;
  std::vector<std::unique_ptr<process>> procs_;
  std::vector<bool> crashed_;             ///< explicit crash-stop (permanent)
  std::vector<unsigned char> churn_down_; ///< churn schedule (recoverable)
  std::vector<std::size_t> crash_round_;
  std::size_t down_count_ = 0;
  bool have_deferred_crashes_ = false;
  std::map<int, std::function<void(message&)>> corruption_;
  std::vector<std::uint64_t> send_seq_;   ///< per-sender send sequence

  std::size_t round_ = 0;
  run_stats stats_;
  std::vector<std::map<std::string, long>> decisions_;  ///< per node

  // Stall-watchdog heartbeat for the current run(): registered at run
  // entry, marked busy for the run's duration, beaten once per superstep
  // (sync) / delivered event batch (async), released at run exit.
  std::shared_ptr<telemetry::live::heartbeat> run_heartbeat_;

  // Health-observatory track for the current run (telemetry/health.hpp):
  // nullptr unless the observatory is enabled, acquired at run() entry.
  // Message hooks fire at the same sites as the fault draw (routing
  // barrier on the base engine, cross-thread send sites on inproc);
  // end_round fires once per synchronous round at a single-threaded
  // barrier point, with identical round indices on every backend.
  telemetry::health::backend_track* health_ = nullptr;

  // Trace context of the current phase span (start phase / round span),
  // captured on the coordinator so worker-thread tasks can adopt it and
  // keep the whole superstep in one causal tree.  Raw ids so this header
  // stays independent of telemetry/trace.hpp.
  std::uint64_t phase_trace_id_ = 0;
  std::uint64_t phase_parent_span_ = 0;

  // Interned profiler frame ids for this backend's phase probes
  // (distributed.<backend>.{superstep,route,deliver,fault}), resolved at
  // run() entry where backend_name() dispatches virtually.  Raw ids keep
  // this header independent of telemetry/profile.hpp.
  std::uint32_t prof_superstep_frame_ = 0xffff'ffffu;
  std::uint32_t prof_route_frame_ = 0xffff'ffffu;
  std::uint32_t prof_deliver_frame_ = 0xffff'ffffu;
  std::uint32_t prof_fault_frame_ = 0xffff'ffffu;

 private:
  friend class context;

  // Handler-side entry points (called from per-node tasks; thread-safe by
  // node-locality, see for_each_shard).
  void do_send(int from, int to, std::string_view tag,
               std::vector<long>&& payload);
  void charge_node(int node, std::size_t steps);
  void decide_node(int node, const std::string& key, long value);
  [[nodiscard]] std::mt19937& node_rng(std::size_t node);

  void deliver_to(std::size_t dst, const message& m);

  // Base synchronous engine: one shard's round slice — bucket the shard's
  // incoming arena by destination (stable counting sort), then run every
  // node's superstep over its contiguous span.
  void shard_superstep(std::size_t s);

  // Coordinator-side routing barrier: drains every per-shard outbox arena
  // in shard order (= ascending sender order), counts statistics, applies
  // the hash fault plan, and appends deliveries to the destination shards'
  // incoming arenas.  Returns the number of newly scheduled messages.
  std::size_t route_outboxes();
  void schedule_async(message&& m, std::uint64_t extra_delay);

  void run_synchronous(std::size_t max_rounds);
  void run_asynchronous(std::size_t max_rounds);
  void run_start_phase();
  void finalize_stats();

  std::size_t shard_count_ = 1;
  std::size_t shard_width_ = 1;

  std::mt19937 rng_;  ///< topology/uid/latency randomness
  std::uint64_t fault_seed_ = 0;  ///< per-message fault hash key
  std::uint64_t churn_seed_ = 0;  ///< per-(node, round) churn hash key
  std::mt19937 async_fault_rng_;  ///< async delay draws (sim only)
  /// Lazily materialized per-node engines, owned by the node's shard (one
  /// map per shard so concurrent shards never share a bucket).
  std::vector<std::unordered_map<std::uint32_t, std::mt19937>> shard_rngs_;

  // Synchronous engine arenas (all recycled round over round):
  struct outbox_entry {
    std::uint32_t src;
    std::uint64_t seq;
    message msg;
  };
  std::vector<std::vector<outbox_entry>> outbox_arena_;  ///< per source shard
  std::vector<std::vector<message>> incoming_;     ///< per destination shard
  std::vector<std::vector<message>> inbox_arena_;  ///< bucketed by dst
  std::vector<std::uint32_t> inbox_begin_;  ///< per node: span start
  std::vector<std::uint32_t> inbox_end_;    ///< per node: span end
  std::size_t pending_count_ = 0;

  // Asynchronous engine (sim backend only): (delivery_time, sequence,
  // message) min-heap.
  struct event {
    std::uint64_t time;
    std::uint64_t seq;
    message msg;
    friend bool operator>(const event& a, const event& b) {
      return std::tie(a.time, a.seq) > std::tie(b.time, b.seq);
    }
  };
  std::priority_queue<event, std::vector<event>, std::greater<>> events_;
  std::uint64_t now_ = 0;
  std::uint64_t seq_ = 0;
  std::map<std::pair<int, int>, std::uint64_t> link_last_delivery_;
};

/// The deterministic sequential simulator (the seed's `network`, recast as
/// one backend of the Transport concept).  Implements both timing modes.
class sim_transport final : public net_base {
 public:
  explicit sim_transport(const net_options& opts) : net_base(opts, 1) {}

 protected:
  void for_each_shard(const std::function<void(std::size_t)>& fn) override {
    for (std::size_t s = 0; s < shard_count(); ++s) fn(s);
  }
  [[nodiscard]] const char* backend_name() const noexcept override {
    return "sim";
  }
  [[nodiscard]] bool supports_asynchronous() const noexcept override {
    return true;
  }
};

/// Transitional alias for the pre-redesign class name; new code should
/// name the backend it wants (sim_transport / parallel_transport /
/// inproc_transport).
using network = sim_transport;

}  // namespace cgp::distributed
