// An in-process message-passing network simulator — the experimental
// substrate for Section 4's distributed algorithm concept taxonomy.
//
// Substitution note (see DESIGN.md): the paper's Section 4 argues that a
// taxonomy should organize algorithms by *measured* message counts, time
// (rounds), and — often neglected — LOCAL COMPUTATION per node.  This
// simulator counts exactly those three quantities for every run:
//   * messages_sent, total and per tag;
//   * rounds executed (synchronous) / virtual time (asynchronous);
//   * local computation steps (one per handler invocation plus whatever the
//     handler explicitly charges).
// Topologies (ring, complete, star, grid, random) are the taxonomy's
// Topology dimension; crash and Byzantine corruption hooks exercise its
// Fault-Tolerance dimension; synchronous vs asynchronous delivery its
// Timing dimension.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

namespace cgp::distributed {

/// A message: source/destination node ids, a tag, and an integer payload.
/// The trailing trace envelope carries the sender's causal context across
/// the delivery boundary (see telemetry/trace.hpp): the receiver's handler
/// span parents under `parent_span`, so a whole superstep renders as one
/// causally-linked tree across all simulated ranks.  All three fields are 0
/// when the run is not being traced.
struct message {
  int src = -1;
  int dst = -1;
  std::string tag;
  std::vector<long> payload;
  std::uint64_t trace_id = 0;     ///< causal tree this send belongs to
  std::uint64_t parent_span = 0;  ///< sender's span at the send site
  std::uint64_t flow_id = 0;      ///< pairs the send arrow with delivery
};

/// Topologies for the taxonomy's Topology dimension.
enum class topology { ring, complete, star, grid, random_connected, line };

[[nodiscard]] const char* to_string(topology t);

/// Delivery timing for the taxonomy's Timing dimension.
enum class timing { synchronous, asynchronous };

class network;

/// Per-node view of the network handed to process handlers.
class context {
 public:
  context(network& net, int id) : net_(&net), id_(id) {}

  [[nodiscard]] int id() const noexcept { return id_; }
  /// The node's unique identifier (a pseudonymized uid, not its index).
  [[nodiscard]] long uid() const;
  [[nodiscard]] const std::vector<int>& neighbors() const;
  [[nodiscard]] std::size_t round() const;
  [[nodiscard]] std::size_t node_count() const;

  /// Sends to a neighbor; throws if `to` is not adjacent (the simulator
  /// enforces the topology).
  void send(int to, std::string tag, std::vector<long> payload = {});

  /// Charges extra local computation steps to this node (Section 4: "local
  /// computation at a node is rarely accounted for").
  void charge(std::size_t steps);

  /// Records a decision (e.g. "leader", "parent") for this node.
  void decide(const std::string& key, long value);

  /// Deterministic per-node randomness (for randomized strategies).
  [[nodiscard]] std::mt19937& rng();

 private:
  network* net_;
  int id_;
};

/// A distributed process: implement the handlers, register with a network.
class process {
 public:
  virtual ~process() = default;
  /// Invoked once before the first round / event.
  virtual void start(context& ctx) { (void)ctx; }
  /// Invoked on message delivery.
  virtual void receive(context& ctx, const message& m) = 0;
  /// Synchronous mode only: invoked once per round after deliveries.
  virtual void on_round(context& ctx) { (void)ctx; }
};

using process_factory = std::function<std::unique_ptr<process>(int id)>;

/// Run statistics — the taxonomy's measured performance data.
struct run_stats {
  std::size_t messages_total = 0;
  std::map<std::string, std::size_t> messages_by_tag;
  std::size_t rounds = 0;
  std::size_t local_steps = 0;
  std::vector<std::size_t> local_steps_per_node;

  /// Messages sent with `tag` (0 when the tag never appeared).
  [[nodiscard]] std::size_t messages_for(const std::string& tag) const {
    const auto it = messages_by_tag.find(tag);
    return it == messages_by_tag.end() ? 0 : it->second;
  }
  /// All tags observed in this run, sorted.
  [[nodiscard]] std::vector<std::string> tags() const {
    std::vector<std::string> out;
    out.reserve(messages_by_tag.size());
    for (const auto& [tag, count] : messages_by_tag) out.push_back(tag);
    return out;
  }
};

/// The simulated network.
class network {
 public:
  /// Builds `n` nodes wired by `topo`; uids are a seeded permutation of
  /// 1..n so identifier order is independent of ring order.
  /// `fifo_links` makes asynchronous delivery per-link FIFO (the channel
  /// assumption algorithms like Peterson's election rely on); set false to
  /// model fully reordering channels.
  network(std::size_t n, topology topo, timing mode = timing::synchronous,
          std::uint32_t seed = 42, bool fifo_links = true);

  /// Installs the algorithm (one process per node).
  void spawn(const process_factory& factory);

  /// Overrides the seeded uid permutation (e.g. to build the adversarial
  /// descending-uid layout that realizes LCR's Theta(n^2) worst case).
  /// Must be a permutation-like assignment of distinct values.
  void set_uids(std::vector<long> uids);

  /// Crash-stops a node before the given round (fault injection).
  void crash(int node, std::size_t at_round = 0);

  /// Installs a Byzantine corruption hook: called for every message sent by
  /// `node`; may alter the payload.
  void corrupt(int node, std::function<void(message&)> hook);

  /// Runs to quiescence (no messages in flight and no pending events) or
  /// `max_rounds`, whichever first.  Returns the statistics.
  run_stats run(std::size_t max_rounds = 100000);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return adjacency_.size();
  }
  [[nodiscard]] const std::vector<int>& neighbors_of(int id) const {
    return adjacency_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] long uid_of(int id) const {
    return uids_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

  /// Decisions recorded via context::decide, keyed by (node, key).
  [[nodiscard]] std::optional<long> decision(int node,
                                             const std::string& key) const;
  /// All nodes that decided `key` to some value.
  [[nodiscard]] std::vector<int> deciders(const std::string& key) const;

 private:
  friend class context;
  void do_send(int from, int to, std::string tag, std::vector<long> payload);
  void deliver(const message& m);

  std::vector<std::vector<int>> adjacency_;
  std::size_t edges_ = 0;
  std::vector<long> uids_;
  std::vector<std::unique_ptr<process>> procs_;
  std::vector<bool> crashed_;
  std::vector<std::size_t> crash_round_;
  std::map<int, std::function<void(message&)>> corruption_;
  timing mode_;
  std::mt19937 rng_;
  std::vector<std::mt19937> node_rngs_;

  // synchronous: messages sent in round r are delivered in round r+1.
  std::vector<message> outbox_;
  // asynchronous: (delivery_time, sequence, message) min-heap.
  struct event {
    std::uint64_t time;
    std::uint64_t seq;
    message msg;
    friend bool operator>(const event& a, const event& b) {
      return std::tie(a.time, a.seq) > std::tie(b.time, b.seq);
    }
  };
  std::priority_queue<event, std::vector<event>, std::greater<>> events_;
  std::uint64_t now_ = 0;
  std::uint64_t seq_ = 0;
  bool fifo_links_ = true;
  std::map<std::pair<int, int>, std::uint64_t> link_last_delivery_;

  std::size_t round_ = 0;
  run_stats stats_;
  std::map<std::pair<int, std::string>, long> decisions_;
};

}  // namespace cgp::distributed
