// An in-process message-passing runtime — the experimental substrate for
// Section 4's distributed algorithm concept taxonomy.
//
// Substitution note (see DESIGN.md §7): the paper's Section 4 classifies
// distributed algorithms along orthogonal dimensions (topology, timing,
// fault tolerance, communication).  This runtime mirrors that structure in
// its API instead of hard-wiring one simulator class:
//
//   * `net_options` is the aggregate of all orthogonal construction
//     dimensions (size, topology, timing, seed, channel order, fault
//     plan, worker count) — new dimensions extend the aggregate instead
//     of forcing positional-constructor churn;
//   * `net_base` is the shared engine: topology wiring, uids, canonical
//     message routing, fault injection, and measured statistics
//     (messages, rounds, LOCAL COMPUTATION per node — the quantity the
//     paper says is "rarely accounted for");
//   * backends plug in an execution strategy: `sim_transport` runs
//     handlers sequentially and deterministically (and is the only
//     backend implementing `timing::asynchronous` via an event queue),
//     `parallel_transport` (parallel_transport.hpp) runs each node's
//     synchronous superstep concurrently on a thread pool;
//   * the driver-facing boundary is the `Transport` concept
//     (transport.hpp), checked with an archetype in the spirit of
//     core/archetypes.hpp, so algorithm drivers provably need nothing
//     beyond the concept and run unchanged on interchangeable backends.
//
// Fault injection is unified behind one surface on every backend: crash
// stops (`crash`), Byzantine corruption hooks (`corrupt`), and the
// message-level drop / duplicate / delay knobs of `fault_options`.
//
// Determinism contract: for `timing::synchronous`, every backend delivers
// each node's round-r mailbox in CANONICAL ORDER — sorted by (sending
// round, sender index, per-sender send sequence) — and draws fault
// decisions in that same order from a dedicated engine at the (single
// threaded) routing barrier.  Handler invocations only touch node-local
// state, so a run's decisions and statistics are identical across
// backends for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <random>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cgp::telemetry::live {
class heartbeat;
}  // namespace cgp::telemetry::live

namespace cgp::distributed {

/// A message: source/destination node ids, a tag, and an integer payload.
/// The trailing trace envelope carries the sender's causal context across
/// the delivery boundary (see telemetry/trace.hpp): the receiver's handler
/// span parents under `parent_span`, so a whole superstep renders as one
/// causally-linked tree across all ranks, on every backend.  All three
/// fields are 0 when the run is not being traced.
struct message {
  int src = -1;
  int dst = -1;
  std::string tag;
  std::vector<long> payload;
  std::uint64_t trace_id = 0;     ///< causal tree this send belongs to
  std::uint64_t parent_span = 0;  ///< sender's span at the send site
  std::uint64_t flow_id = 0;      ///< pairs the send arrow with delivery
};

/// Topologies for the taxonomy's Topology dimension.
enum class topology { ring, complete, star, grid, random_connected, line };

[[nodiscard]] const char* to_string(topology t);

/// Delivery timing for the taxonomy's Timing dimension.
enum class timing { synchronous, asynchronous };

/// Message-level fault injection (the taxonomy's Fault-Tolerance
/// dimension, message axis).  Applied identically on every backend, to
/// every send, from a dedicated deterministic engine.
struct fault_options {
  /// Probability a message is silently lost in transit.
  double drop = 0.0;
  /// Probability a message is delivered twice (the copy draws its own
  /// delay).
  double duplicate = 0.0;
  /// Extra delivery delay in virtual-time ticks, uniform in [0, max_delay].
  /// Asynchronous mode only: a synchronous round delivers every message at
  /// the next round boundary, so construction rejects a nonzero max_delay
  /// under timing::synchronous.
  std::uint32_t max_delay = 0;

  [[nodiscard]] bool any() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || max_delay != 0;
  }
};

/// Aggregate of every orthogonal construction dimension; replaces the old
/// positional `network(n, topo, mode, seed, fifo)` constructor (see the
/// README migration table).  Designated initializers name each dimension
/// at the call site: `sim_transport net({.nodes = 8, .topo =
/// topology::ring});`.
struct net_options {
  std::size_t nodes = 1;
  topology topo = topology::ring;
  timing mode = timing::synchronous;
  std::uint32_t seed = 42;
  /// Asynchronous delivery is per-link FIFO (the channel assumption
  /// algorithms like Peterson's election rely on); false models fully
  /// reordering channels.  Synchronous delivery is inherently ordered by
  /// the round barrier, so the flag only affects asynchronous runs.
  bool fifo_links = true;
  /// parallel_transport only: worker thread count (0 = auto, at least 2).
  unsigned workers = 0;
  fault_options faults{};
};

class net_base;

/// Per-node view of the network handed to process handlers.
class context {
 public:
  context(net_base& net, int id) : net_(&net), id_(id) {}

  [[nodiscard]] int id() const noexcept { return id_; }
  /// The node's unique identifier (a pseudonymized uid, not its index).
  [[nodiscard]] long uid() const;
  [[nodiscard]] const std::vector<int>& neighbors() const;
  [[nodiscard]] std::size_t round() const;
  [[nodiscard]] std::size_t node_count() const;

  /// Sends to a neighbor; throws if `to` is not adjacent (the runtime
  /// enforces the topology).  The tag is viewed, not copied, until the
  /// message is materialized; the payload is moved through to the outbox.
  void send(int to, std::string_view tag, std::vector<long> payload = {});

  /// Charges extra local computation steps to this node (Section 4: "local
  /// computation at a node is rarely accounted for").
  void charge(std::size_t steps);

  /// Records a decision (e.g. "leader", "parent") for this node.
  void decide(const std::string& key, long value);

  /// Deterministic per-node randomness (for randomized strategies).
  [[nodiscard]] std::mt19937& rng();

 private:
  net_base* net_;
  int id_;
};

/// A distributed process: implement the handlers, register with a backend.
class process {
 public:
  virtual ~process() = default;
  /// Invoked once before the first round / event.
  virtual void start(context& ctx) { (void)ctx; }
  /// Invoked on message delivery.
  virtual void receive(context& ctx, const message& m) = 0;
  /// Synchronous mode only: invoked once per round after deliveries.
  virtual void on_round(context& ctx) { (void)ctx; }
};

using process_factory = std::function<std::unique_ptr<process>(int id)>;

/// Run statistics — the taxonomy's measured performance data.
/// `messages_total` counts send attempts (the algorithm's message
/// complexity); injected faults are broken out separately: dropped sends
/// are counted in the total but never delivered, duplicated deliveries are
/// NOT in the total (the extra copy shows up in `messages_duplicated` and
/// in the receiver's per-node count).
struct run_stats {
  std::size_t messages_total = 0;
  std::size_t messages_dropped = 0;
  std::size_t messages_duplicated = 0;
  std::map<std::string, std::size_t> messages_by_tag;
  std::size_t rounds = 0;
  std::size_t local_steps = 0;
  std::vector<std::size_t> local_steps_per_node;
  std::vector<std::size_t> messages_sent_per_node;
  std::vector<std::size_t> messages_received_per_node;

  /// Messages sent with `tag` (0 when the tag never appeared).
  [[nodiscard]] std::size_t messages_for(const std::string& tag) const {
    const auto it = messages_by_tag.find(tag);
    return it == messages_by_tag.end() ? 0 : it->second;
  }
  /// Send attempts originating at `node` (mirrors messages_for; throws a
  /// descriptive std::out_of_range for an unknown node).
  [[nodiscard]] std::size_t messages_sent_by(int node) const {
    return per_node(messages_sent_per_node, node, "messages_sent_by");
  }
  /// Deliveries (including duplicated copies) at `node`.
  [[nodiscard]] std::size_t messages_received_by(int node) const {
    return per_node(messages_received_per_node, node, "messages_received_by");
  }
  /// All tags observed in this run, sorted.
  [[nodiscard]] std::vector<std::string> tags() const {
    std::vector<std::string> out;
    out.reserve(messages_by_tag.size());
    for (const auto& [tag, count] : messages_by_tag) out.push_back(tag);
    return out;
  }

 private:
  [[nodiscard]] static std::size_t per_node(
      const std::vector<std::size_t>& v, int node, const char* what) {
    if (node < 0 || static_cast<std::size_t>(node) >= v.size())
      throw std::out_of_range(std::string(what) + ": node " +
                              std::to_string(node) +
                              " out of range for a network of " +
                              std::to_string(v.size()) + " nodes");
    return v[static_cast<std::size_t>(node)];
  }
};

/// The shared engine behind every transport backend: topology wiring,
/// uids, the canonical synchronous superstep loop, the asynchronous event
/// queue, the unified fault surface, decisions, and statistics.  Backends
/// override `for_each_node` with their execution strategy; everything a
/// per-node task touches is node-local (its own mailbox, outbox, rng,
/// stats slots and decision map), so the strategy may be concurrent.
class net_base {
 public:
  virtual ~net_base() = default;
  net_base(const net_base&) = delete;
  net_base& operator=(const net_base&) = delete;

  /// Installs the algorithm (one process per node).
  void spawn(const process_factory& factory);

  /// Overrides the seeded uid permutation (e.g. to build the adversarial
  /// descending-uid layout that realizes LCR's Theta(n^2) worst case).
  /// Must be a permutation-like assignment of distinct values.
  void set_uids(std::vector<long> uids);

  /// Crash-stops a node before the given round (fault injection).  Under
  /// timing::asynchronous `at_round` is measured in scheduler ticks; 0
  /// crashes the node before the run starts in either mode.
  void crash(int node, std::size_t at_round = 0);

  /// Installs a Byzantine corruption hook: called for every message sent by
  /// `node`; may alter the payload.
  void corrupt(int node, std::function<void(message&)> hook);

  /// Runs to quiescence (no messages in flight and no pending events) or
  /// `max_rounds`, whichever first.  Returns the statistics.
  run_stats run(std::size_t max_rounds = 100000);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return adjacency_.size();
  }
  [[nodiscard]] const std::vector<int>& neighbors_of(int id) const {
    return adjacency_[check_node(id, "neighbors_of")];
  }
  [[nodiscard]] long uid_of(int id) const {
    return uids_[check_node(id, "uid_of")];
  }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }
  [[nodiscard]] const net_options& options() const noexcept { return opts_; }

  /// Decisions recorded via context::decide.
  [[nodiscard]] std::optional<long> decision(int node,
                                             const std::string& key) const;
  /// All nodes that decided `key` to some value.
  [[nodiscard]] std::vector<int> deciders(const std::string& key) const;
  /// Every decision of the run, keyed by (node, key) — the backend-parity
  /// tests compare these wholesale.
  [[nodiscard]] std::map<std::pair<int, std::string>, long> all_decisions()
      const;

 protected:
  explicit net_base(const net_options& opts);

  /// Execution strategy: invoke `fn(i)` once for every node index.  All
  /// invocations of one barrier phase may run concurrently; `fn` only
  /// touches node-local state.  The engine calls this once for the start
  /// phase and once per synchronous round.
  virtual void for_each_node(const std::function<void(std::size_t)>& fn) = 0;

  /// Short backend label ("sim", "parallel") for traces and metrics.
  [[nodiscard]] virtual const char* backend_name() const noexcept = 0;

  /// Whether this backend implements timing::asynchronous (only the
  /// deterministic event-queue simulator does).
  [[nodiscard]] virtual bool supports_asynchronous() const noexcept {
    return false;
  }

 private:
  friend class context;

  [[nodiscard]] std::size_t check_node(int id, const char* what) const {
    if (id < 0 || static_cast<std::size_t>(id) >= adjacency_.size())
      throw std::out_of_range(std::string(what) + ": node " +
                              std::to_string(id) +
                              " out of range for a network of " +
                              std::to_string(adjacency_.size()) + " nodes");
    return static_cast<std::size_t>(id);
  }

  // Handler-side entry points (called from per-node tasks; thread-safe by
  // node-locality, see for_each_node).
  void do_send(int from, int to, std::string_view tag,
               std::vector<long>&& payload);
  void charge_node(int node, std::size_t steps);
  void decide_node(int node, const std::string& key, long value);

  // One node's synchronous superstep: deliver its due mailbox in canonical
  // order, then on_round.  Adopts the enclosing phase span's trace context
  // (phase_trace_*) when executing on a worker thread.
  void node_superstep(std::size_t i);
  void deliver_to(std::size_t dst, const message& m);

  // Coordinator-side routing barrier: drains every per-sender outbox in
  // sender order, counts statistics, applies the fault plan, and schedules
  // deliveries.  Returns the number of newly scheduled messages.
  std::size_t route_outboxes();
  void schedule_sync(message&& m);
  void schedule_async(message&& m, std::uint64_t extra_delay);

  run_stats run_synchronous(std::size_t max_rounds);
  run_stats run_asynchronous(std::size_t max_rounds);
  void run_start_phase();
  void finalize_stats();

  net_options opts_;
  std::vector<std::vector<int>> adjacency_;
  std::size_t edges_ = 0;
  std::vector<long> uids_;
  std::vector<std::unique_ptr<process>> procs_;
  std::vector<bool> crashed_;
  std::vector<std::size_t> crash_round_;
  std::map<int, std::function<void(message&)>> corruption_;
  std::mt19937 rng_;        ///< topology/uid/latency randomness
  std::mt19937 fault_rng_;  ///< fault plan draws (canonical routing order)
  std::vector<std::mt19937> node_rngs_;

  // Synchronous engine: per-sender outboxes filled by the node tasks, then
  // routed at the barrier into per-destination mailboxes tagged with a due
  // round (always the next round — construction rejects delay faults in
  // synchronous mode).
  struct pending_msg {
    std::size_t due_round;
    message msg;
  };
  std::vector<std::vector<message>> outboxes_;      ///< indexed by sender
  std::vector<std::vector<pending_msg>> mailboxes_; ///< indexed by dest
  std::vector<std::vector<message>> inboxes_;       ///< this round's input
  std::size_t pending_count_ = 0;

  // Asynchronous engine (sim backend only): (delivery_time, sequence,
  // message) min-heap.
  struct event {
    std::uint64_t time;
    std::uint64_t seq;
    message msg;
    friend bool operator>(const event& a, const event& b) {
      return std::tie(a.time, a.seq) > std::tie(b.time, b.seq);
    }
  };
  std::priority_queue<event, std::vector<event>, std::greater<>> events_;
  std::uint64_t now_ = 0;
  std::uint64_t seq_ = 0;
  std::map<std::pair<int, int>, std::uint64_t> link_last_delivery_;

  std::size_t round_ = 0;
  run_stats stats_;
  std::vector<std::map<std::string, long>> decisions_;  ///< per node

  // Stall-watchdog heartbeat for the current run(): registered at run
  // entry, marked busy for the run's duration, beaten once per superstep
  // (sync) / delivered event batch (async), released at run exit.
  std::shared_ptr<telemetry::live::heartbeat> run_heartbeat_;

  // Trace context of the current phase span (start phase / round span),
  // captured on the coordinator so worker-thread tasks can adopt it and
  // keep the whole superstep in one causal tree.  Raw ids so this header
  // stays independent of telemetry/trace.hpp.
  std::uint64_t phase_trace_id_ = 0;
  std::uint64_t phase_parent_span_ = 0;

  // Interned profiler frame ids for this backend's phase probes
  // (distributed.<backend>.{superstep,route,deliver,fault}), resolved at
  // run() entry where backend_name() dispatches virtually.  Raw ids keep
  // this header independent of telemetry/profile.hpp.
  std::uint32_t prof_superstep_frame_ = 0xffff'ffffu;
  std::uint32_t prof_route_frame_ = 0xffff'ffffu;
  std::uint32_t prof_deliver_frame_ = 0xffff'ffffu;
  std::uint32_t prof_fault_frame_ = 0xffff'ffffu;
};

/// The deterministic sequential simulator (the seed's `network`, recast as
/// one backend of the Transport concept).  Implements both timing modes.
class sim_transport final : public net_base {
 public:
  explicit sim_transport(const net_options& opts) : net_base(opts) {}

 protected:
  void for_each_node(const std::function<void(std::size_t)>& fn) override {
    for (std::size_t i = 0; i < node_count(); ++i) fn(i);
  }
  [[nodiscard]] const char* backend_name() const noexcept override {
    return "sim";
  }
  [[nodiscard]] bool supports_asynchronous() const noexcept override {
    return true;
  }
};

/// Transitional alias for the pre-redesign class name; new code should
/// name the backend it wants (sim_transport / parallel_transport).
using network = sim_transport;

}  // namespace cgp::distributed
