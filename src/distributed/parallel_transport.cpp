#include "distributed/parallel_transport.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "distributed/transport.hpp"

namespace cgp::distributed {

static_assert(Transport<parallel_transport>);

namespace {

unsigned worker_count(const net_options& opts) {
  if (opts.workers != 0) return opts.workers;
  return std::max(2u, std::thread::hardware_concurrency());
}

}  // namespace

parallel_transport::parallel_transport(const net_options& opts)
    : net_base(opts), pool_(worker_count(opts)) {
  if (opts.mode == timing::asynchronous)
    throw std::invalid_argument(
        "parallel_transport implements only timing::synchronous supersteps; "
        "use sim_transport for timing::asynchronous runs");
}

void parallel_transport::for_each_node(
    const std::function<void(std::size_t)>& fn) {
  pool_.run_chunks(node_count(), fn);
}

}  // namespace cgp::distributed
