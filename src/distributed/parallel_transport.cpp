#include "distributed/parallel_transport.hpp"

#include "distributed/transport.hpp"

namespace cgp::distributed {

// Proof obligations: the executor-templated backend is a Transport for
// both shipped Executor models — the two concept boundaries compose.
static_assert(Transport<parallel_transport>);
static_assert(Transport<stealing_transport>);

// Anchor the common instantiations in one translation unit.
template class basic_parallel_transport<parallel::thread_pool>;
template class basic_parallel_transport<parallel::work_stealing_pool>;

}  // namespace cgp::distributed
