#include "distributed/algorithms.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace cgp::distributed {
namespace {

int ring_successor(const context& ctx) {
  return static_cast<int>((static_cast<std::size_t>(ctx.id()) + 1) %
                          ctx.node_count());
}
int ring_predecessor(const context& ctx) {
  const std::size_t n = ctx.node_count();
  return static_cast<int>((static_cast<std::size_t>(ctx.id()) + n - 1) % n);
}
/// On a ring, the neighbor a message should continue to (the one that is
/// not its source); with a single neighbor (n == 2) it loops back.
int onward(const context& ctx, int from) {
  for (int nb : ctx.neighbors())
    if (nb != from) return nb;
  return from;
}

// ---------------------------------------------------------------------------
// LCR
// ---------------------------------------------------------------------------

class lcr_process final : public process {
 public:
  void start(context& ctx) override {
    if (ctx.neighbors().empty()) {  // 1-node ring
      ctx.decide("leader", ctx.uid());
      return;
    }
    ctx.send(ring_successor(ctx), "uid", {ctx.uid()});
  }

  void receive(context& ctx, const message& m) override {
    if (m.tag == "uid") {
      const long u = m.payload.at(0);
      ctx.charge(1);  // one comparison
      if (u > ctx.uid()) {
        ctx.send(ring_successor(ctx), "uid", {u});
      } else if (u == ctx.uid()) {
        ctx.decide("leader", ctx.uid());
        ctx.send(ring_successor(ctx), "leader", {ctx.uid()});
      }
      // u < uid: swallow.
      return;
    }
    if (m.tag == "leader") {
      const long u = m.payload.at(0);
      if (u != ctx.uid()) {
        ctx.decide("leader_known", u);
        ctx.send(ring_successor(ctx), "leader", {u});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// HS (Hirschberg–Sinclair)
// ---------------------------------------------------------------------------

class hs_process final : public process {
 public:
  void start(context& ctx) override {
    if (ctx.neighbors().empty()) {
      ctx.decide("leader", ctx.uid());
      return;
    }
    send_probes(ctx);
  }

  void receive(context& ctx, const message& m) override {
    if (m.tag == "probe") {
      const long u = m.payload.at(0);
      const long phase = m.payload.at(1);
      const long hops = m.payload.at(2);
      ctx.charge(1);
      if (u > ctx.uid()) {
        if (hops > 1) {
          ctx.send(onward(ctx, m.src), "probe", {u, phase, hops - 1});
        } else {
          ctx.send(m.src, "reply", {u, phase});
        }
      } else if (u == ctx.uid()) {
        // The probe circumnavigated: this node wins.
        if (!elected_) {
          elected_ = true;
          ctx.decide("leader", ctx.uid());
          ctx.send(ring_successor(ctx), "leader", {ctx.uid()});
        }
      }
      // u < uid: swallow the probe.
      return;
    }
    if (m.tag == "reply") {
      const long u = m.payload.at(0);
      const long phase = m.payload.at(1);
      if (u != ctx.uid()) {
        ctx.send(onward(ctx, m.src), "reply", {u, phase});
        return;
      }
      if (phase != phase_) return;  // stale
      if (++replies_ == 2) {
        ++phase_;
        replies_ = 0;
        send_probes(ctx);
      }
      return;
    }
    if (m.tag == "leader") {
      const long u = m.payload.at(0);
      if (u != ctx.uid()) {
        ctx.decide("leader_known", u);
        ctx.send(ring_successor(ctx), "leader", {u});
      }
    }
  }

 private:
  void send_probes(context& ctx) {
    const long hops = 1L << phase_;
    ctx.send(ring_successor(ctx), "probe", {ctx.uid(), phase_, hops});
    ctx.send(ring_predecessor(ctx), "probe", {ctx.uid(), phase_, hops});
  }

  long phase_ = 0;
  int replies_ = 0;
  bool elected_ = false;
};

// ---------------------------------------------------------------------------
// Peterson's unidirectional election
// ---------------------------------------------------------------------------

class peterson_process final : public process {
 public:
  void start(context& ctx) override {
    if (ctx.neighbors().empty()) {
      ctx.decide("leader", ctx.uid());
      return;
    }
    tid_ = ctx.uid();
    ctx.send(ring_successor(ctx), "one", {tid_});
  }

  void receive(context& ctx, const message& m) override {
    if (m.tag == "leader") {
      if (!elected_) {
        ctx.decide("leader_known", m.payload.at(0));
        ctx.send(ring_successor(ctx), "leader", m.payload);
      }
      return;
    }
    if (elected_) return;  // stray phase messages after election
    if (!active_) {        // relay: forward everything unchanged
      ctx.send(ring_successor(ctx), m.tag, m.payload);
      return;
    }
    ctx.charge(1);
    if (m.tag == "one") {
      const long t1 = m.payload.at(0);
      if (t1 == tid_) {
        // Our temp id came all the way around: only one active node is
        // left, and it holds the maximum original uid as its temp id.
        elected_ = true;
        ctx.decide("leader", tid_);
        ctx.send(ring_successor(ctx), "leader", {tid_});
        return;
      }
      d1_ = t1;
      ctx.send(ring_successor(ctx), "two", {t1});
      return;
    }
    // m.tag == "two"
    const long t2 = m.payload.at(0);
    if (d1_ > tid_ && d1_ > t2) {
      tid_ = d1_;  // adopt the local-maximum predecessor id
      ctx.send(ring_successor(ctx), "one", {tid_});
    } else {
      active_ = false;  // become a relay
    }
  }

 private:
  bool active_ = true;
  bool elected_ = false;
  long tid_ = 0;
  long d1_ = 0;
};

// ---------------------------------------------------------------------------
// Randomized anonymous election (Itai–Rodeh flavour, synchronous)
// ---------------------------------------------------------------------------

class itai_rodeh_process final : public process {
 public:
  void start(context& ctx) override {
    if (ctx.neighbors().empty()) {
      ctx.decide("leader", 1);
      return;
    }
    draw_and_send(ctx);
  }

  void receive(context& ctx, const message& m) override {
    if (m.tag == "leader") {
      if (!leader_known_) {
        leader_known_ = true;
        ctx.decide("leader_known", m.payload.at(0));
        ctx.send(ring_successor(ctx), "leader", m.payload);
      }
      return;
    }
    // token: {phase, rand, hops, unique}
    const long phase = m.payload.at(0);
    const long rand = m.payload.at(1);
    const long hops = m.payload.at(2);
    long unique = m.payload.at(3);
    ctx.charge(1);
    if (hops == static_cast<long>(ctx.node_count())) {
      // The token is back at its origin (us).
      if (!candidate_ || phase != phase_) return;
      if (unique == 1) {
        ctx.decide("leader", id_);
        ctx.send(ring_successor(ctx), "leader", {id_});
      } else {
        ++phase_;
        draw_and_send(ctx);
      }
      return;
    }
    if (!candidate_) {
      ctx.send(ring_successor(ctx), "token",
               {phase, rand, hops + 1, unique});
      return;
    }
    if (phase > phase_) {
      // A later-phase token means this node's own token was dropped
      // somewhere: it lost the earlier phase and becomes a relay.
      candidate_ = false;
      ctx.send(ring_successor(ctx), "token",
               {phase, rand, hops + 1, unique});
      return;
    }
    if (rand > id_) {
      candidate_ = false;
      ctx.send(ring_successor(ctx), "token",
               {phase, rand, hops + 1, unique});
    } else if (rand == id_) {
      ctx.send(ring_successor(ctx), "token", {phase, rand, hops + 1, 0L});
    }
    // rand < id_: drop the token.
  }

 private:
  void draw_and_send(context& ctx) {
    std::uniform_int_distribution<long> d(1, 8);  // small range: collisions!
    id_ = d(ctx.rng());
    ctx.send(ring_successor(ctx), "token", {phase_, id_, 1L, 1L});
  }

  long phase_ = 0;
  long id_ = 0;
  bool candidate_ = true;
  bool leader_known_ = false;
};

// ---------------------------------------------------------------------------
// Flooding broadcast
// ---------------------------------------------------------------------------

class flooding_process final : public process {
 public:
  explicit flooding_process(bool is_root) : is_root_(is_root) {}

  void start(context& ctx) override {
    if (!is_root_) return;
    got_ = true;
    ctx.decide("got", 0);
    for (int nb : ctx.neighbors()) ctx.send(nb, "data", {0});
  }

  void receive(context& ctx, const message& m) override {
    if (got_) return;  // duplicate
    got_ = true;
    ctx.decide("got", m.payload.at(0) + 1);  // hop count
    for (int nb : ctx.neighbors())
      if (nb != m.src) ctx.send(nb, "data", {m.payload.at(0) + 1});
  }

 private:
  bool is_root_;
  bool got_ = false;
};

// ---------------------------------------------------------------------------
// Echo (probe-echo wave): exactly 2|E| messages
// ---------------------------------------------------------------------------

class echo_process final : public process {
 public:
  explicit echo_process(bool is_root) : is_root_(is_root) {}

  void start(context& ctx) override {
    if (!is_root_) return;
    engaged_ = true;
    for (int nb : ctx.neighbors()) ctx.send(nb, "probe");
  }

  void receive(context& ctx, const message& m) override {
    ++received_;
    if (!engaged_ && !is_root_) {
      engaged_ = true;
      parent_ = m.src;
      ctx.decide("parent", parent_);
      for (int nb : ctx.neighbors())
        if (nb != parent_) ctx.send(nb, "probe");
    }
    if (received_ == ctx.neighbors().size()) {
      if (is_root_) {
        ctx.decide("done", 1);
      } else {
        ctx.send(parent_, "echo");
      }
    }
  }

 private:
  bool is_root_;
  bool engaged_ = false;
  int parent_ = -1;
  std::size_t received_ = 0;
};

// ---------------------------------------------------------------------------
// Convergecast aggregation (echo wave carrying partial sums)
// ---------------------------------------------------------------------------

class aggregate_process final : public process {
 public:
  explicit aggregate_process(bool is_root) : is_root_(is_root) {}

  void start(context& ctx) override {
    acc_ = ctx.uid();  // this node's contribution
    if (!is_root_) return;
    engaged_ = true;
    if (ctx.neighbors().empty()) {
      ctx.decide("aggregate", acc_);
      return;
    }
    for (int nb : ctx.neighbors()) ctx.send(nb, "probe");
  }

  void receive(context& ctx, const message& m) override {
    ++received_;
    if (m.tag == "echo") acc_ += m.payload.at(0);  // commutative monoid op
    if (!engaged_ && !is_root_) {
      engaged_ = true;
      parent_ = m.src;
      for (int nb : ctx.neighbors())
        if (nb != parent_) ctx.send(nb, "probe");
    }
    if (received_ == ctx.neighbors().size()) {
      if (is_root_)
        ctx.decide("aggregate", acc_);
      else
        ctx.send(parent_, "echo", {acc_});
    }
  }

 private:
  bool is_root_;
  bool engaged_ = false;
  int parent_ = -1;
  long acc_ = 0;
  std::size_t received_ = 0;
};

// ---------------------------------------------------------------------------
// BFS spanning tree (synchronous flooding = BFS layers)
// ---------------------------------------------------------------------------

class bfs_tree_process final : public process {
 public:
  explicit bfs_tree_process(bool is_root) : is_root_(is_root) {}

  void start(context& ctx) override {
    if (!is_root_) return;
    done_ = true;
    ctx.decide("dist", 0);
    for (int nb : ctx.neighbors()) ctx.send(nb, "probe", {0});
  }

  void receive(context& ctx, const message& m) override {
    if (done_) return;
    done_ = true;
    ctx.decide("parent", m.src);
    ctx.decide("dist", m.payload.at(0) + 1);
    for (int nb : ctx.neighbors())
      if (nb != m.src) ctx.send(nb, "probe", {m.payload.at(0) + 1});
  }

 private:
  bool is_root_;
  bool done_ = false;
};

// ---------------------------------------------------------------------------
// Heartbeat failure detector
// ---------------------------------------------------------------------------

class heartbeat_process final : public process {
 public:
  explicit heartbeat_process(std::size_t timeout) : timeout_(timeout) {}

  void receive(context& ctx, const message& m) override {
    last_heard_[m.src] = ctx.round();
  }

  void on_round(context& ctx) override {
    for (int nb : ctx.neighbors()) {
      ctx.send(nb, "beat");
      const auto it = last_heard_.find(nb);
      const std::size_t last = it == last_heard_.end() ? 0 : it->second;
      if (ctx.round() > last + timeout_ && !suspected_.contains(nb)) {
        suspected_.insert(nb);
        ctx.decide("suspects:" + std::to_string(nb),
                   static_cast<long>(ctx.round()));
      }
    }
  }

 private:
  std::size_t timeout_;
  std::map<int, std::size_t> last_heard_;
  std::set<int> suspected_;
};

// ---------------------------------------------------------------------------
// SWIM-style gossip membership
// ---------------------------------------------------------------------------

class gossip_membership_process final : public process {
 public:
  explicit gossip_membership_process(std::size_t timeout)
      : timeout_(timeout) {}

  void start(context& ctx) override {
    counter_[ctx.id()] = 0;
    fresh_[ctx.id()] = 0;
  }

  void receive(context& ctx, const message& m) override {
    // payload: flat [id, counter, id, counter, ...]; adopt strictly newer
    // counters and remember the round we saw them advance.
    for (std::size_t k = 0; k + 1 < m.payload.size(); k += 2) {
      const int j = static_cast<int>(m.payload[k]);
      const long c = m.payload[k + 1];
      const auto it = counter_.find(j);
      if (it == counter_.end() || c > it->second) {
        counter_[j] = c;
        fresh_[j] = ctx.round();
      }
    }
    ctx.charge(m.payload.size() / 2);  // table-merge comparisons
  }

  void on_round(context& ctx) override {
    constexpr std::size_t kFanout = 3;
    ++counter_[ctx.id()];
    fresh_[ctx.id()] = ctx.round();
    std::vector<long> flat;
    flat.reserve(2 * counter_.size());
    for (const auto& [j, c] : counter_) {
      flat.push_back(j);
      flat.push_back(c);
    }
    const neighbor_span nbrs = ctx.neighbors();
    if (nbrs.size() <= kFanout) {
      for (int nb : nbrs) ctx.send(nb, "gossip", flat);
    } else {
      std::uniform_int_distribution<std::size_t> pick(0, nbrs.size() - 1);
      std::set<std::size_t> chosen;
      while (chosen.size() < kFanout) chosen.insert(pick(ctx.rng()));
      for (const std::size_t idx : chosen)
        ctx.send(nbrs[static_cast<std::ptrdiff_t>(idx)], "gossip", flat);
    }
    // (Re)decide the full membership view; the final round's values are
    // this node's answer.
    for (const auto& [j, c] : counter_) {
      const bool alive =
          j == ctx.id() || ctx.round() <= fresh_[j] + timeout_;
      ctx.decide("member:" + std::to_string(j), alive ? 1 : 0);
    }
  }

 private:
  std::size_t timeout_;
  std::map<int, long> counter_;         ///< highest heartbeat seen per member
  std::map<int, std::size_t> fresh_;    ///< round that counter last advanced
};

}  // namespace

process_factory lcr_leader_election() {
  return [](int) { return std::make_unique<lcr_process>(); };
}

process_factory hs_leader_election() {
  return [](int) { return std::make_unique<hs_process>(); };
}

process_factory peterson_leader_election() {
  return [](int) { return std::make_unique<peterson_process>(); };
}

process_factory randomized_anonymous_election() {
  return [](int) { return std::make_unique<itai_rodeh_process>(); };
}

process_factory flooding_broadcast(int root) {
  return [root](int id) {
    return std::make_unique<flooding_process>(id == root);
  };
}

process_factory echo_wave(int root) {
  return [root](int id) { return std::make_unique<echo_process>(id == root); };
}

process_factory aggregate_sum(int root) {
  return [root](int id) {
    return std::make_unique<aggregate_process>(id == root);
  };
}

process_factory bfs_spanning_tree(int root) {
  return [root](int id) {
    return std::make_unique<bfs_tree_process>(id == root);
  };
}

process_factory heartbeat_detector(std::size_t timeout_rounds) {
  return [timeout_rounds](int) {
    return std::make_unique<heartbeat_process>(timeout_rounds);
  };
}

process_factory gossip_membership(std::size_t suspect_timeout) {
  return [suspect_timeout](int) {
    return std::make_unique<gossip_membership_process>(suspect_timeout);
  };
}

}  // namespace cgp::distributed
