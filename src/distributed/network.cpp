#include "distributed/network.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "telemetry/health.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/watchdog.hpp"

namespace cgp::distributed {

namespace {

// Live-sampler feeds: resolved once, updated on the engine's hot paths so
// a running sampler sees per-period message/fault rates and the current
// in-flight backlog instead of only post-run totals.
telemetry::gauge& in_flight_gauge() {
  static telemetry::gauge& g = telemetry::registry::global().get_gauge(
      "distributed.network.in_flight");
  return g;
}

telemetry::counter& live_routed_counter() {
  static telemetry::counter& c = telemetry::registry::global().get_counter(
      "distributed.network.live_messages_routed");
  return c;
}

telemetry::counter& live_faults_counter() {
  static telemetry::counter& c = telemetry::registry::global().get_counter(
      "distributed.network.live_faults");
  return c;
}

/// splitmix64 finalizer — the per-message / per-(node, round) fault hash.
/// Stateless, so a fault decision does not depend on the order draws
/// happen in: the property that lets inproc_transport decide faults at
/// lock-free cross-thread send sites and still match the single-threaded
/// routing barrier bit for bit.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform in [0, 1) from the hash's top 53 bits.
[[nodiscard]] constexpr double unit_interval(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Memoized per-tag counter bump: routing a million same-tag messages does
/// one map lookup, not a million.
class tag_counter {
 public:
  explicit tag_counter(std::map<std::string, std::size_t>& by_tag)
      : by_tag_(&by_tag) {}
  void bump(const std::string& tag) {
    if (slot_ == nullptr || *last_ != tag) {
      auto [it, inserted] = by_tag_->try_emplace(tag, 0);
      last_ = &it->first;
      slot_ = &it->second;
    }
    ++*slot_;
  }

 private:
  std::map<std::string, std::size_t>* by_tag_;
  const std::string* last_ = nullptr;
  std::size_t* slot_ = nullptr;
};

}  // namespace

// --- context ----------------------------------------------------------------

long context::uid() const { return net_->uid_of(id_); }
neighbor_span context::neighbors() const {
  return net_->neighbors_of(id_);
}
std::size_t context::round() const { return net_->round_; }
std::size_t context::node_count() const { return net_->node_count(); }

void context::send(int to, std::string_view tag, std::vector<long> payload) {
  net_->do_send(id_, to, tag, std::move(payload));
}

void context::charge(std::size_t steps) { net_->charge_node(id_, steps); }

void context::decide(const std::string& key, long value) {
  net_->decide_node(id_, key, value);
}

std::mt19937& context::rng() {
  return net_->node_rng(static_cast<std::size_t>(id_));
}

// --- construction -----------------------------------------------------------

net_base::net_base(const net_options& opts, std::size_t shards)
    : opts_(opts),
      uids_(opts.nodes),
      crashed_(opts.nodes, false),
      churn_down_(opts.nodes, 0),
      crash_round_(opts.nodes, 0),
      send_seq_(opts.nodes, 0),
      decisions_(opts.nodes),
      rng_(opts.seed),
      fault_seed_(static_cast<std::uint64_t>(opts.seed) ^
                  0x9e3779b97f4a7c15ull),
      churn_seed_(mix64(static_cast<std::uint64_t>(opts.seed) ^
                        0xc2b2ae3d27d4eb4full)),
      async_fault_rng_(opts.seed ^ 0x9e3779b97f4a7c15ull) {
  const std::size_t n = opts.nodes;
  if (n == 0) throw std::invalid_argument("net_options: need at least one node");
  // Fault knobs are validated here, once, so every backend shares the same
  // contract and a bad configuration fails at construction instead of
  // silently skewing a run.  (NaN fails both comparisons.)
  const fault_options& f = opts.faults;
  if (!(f.drop >= 0.0 && f.drop <= 1.0)) {
    throw std::invalid_argument(
        "net_options: faults.drop must be a probability in [0, 1], got " +
        std::to_string(f.drop));
  }
  if (!(f.duplicate >= 0.0 && f.duplicate <= 1.0)) {
    throw std::invalid_argument(
        "net_options: faults.duplicate must be a probability in [0, 1], got " +
        std::to_string(f.duplicate));
  }
  if (!(f.churn_crash >= 0.0 && f.churn_crash <= 1.0) ||
      !(f.churn_recover >= 0.0 && f.churn_recover <= 1.0)) {
    throw std::invalid_argument(
        "net_options: faults.churn_crash/churn_recover must be "
        "probabilities in [0, 1]");
  }
  if (opts.mode == timing::synchronous && f.max_delay != 0) {
    throw std::invalid_argument(
        "net_options: faults.max_delay requires timing::asynchronous — a "
        "synchronous round delivers every message at the next round "
        "boundary, so per-message delay has no defined meaning there");
  }
  if (opts.mode == timing::asynchronous && f.churn()) {
    throw std::invalid_argument(
        "net_options: churn_crash/churn_recover are drawn per synchronous "
        "round boundary; timing::asynchronous has no rounds to draw at");
  }
  topo_ = build_topology(opts.topo, n, rng_);
  // uids: a seeded permutation of 1..n.
  std::iota(uids_.begin(), uids_.end(), 1L);
  std::shuffle(uids_.begin(), uids_.end(), rng_);
  // Shard layout: contiguous node ranges, one outbox/incoming/inbox arena
  // per shard.
  shard_count_ = std::max<std::size_t>(1, std::min(shards, n));
  shard_width_ = (n + shard_count_ - 1) / shard_count_;
  shard_rngs_.resize(shard_count_);
  outbox_arena_.resize(shard_count_);
  incoming_.resize(shard_count_);
  inbox_arena_.resize(shard_count_);
  inbox_begin_.assign(n, 0);
  inbox_end_.assign(n, 0);
  stats_.local_steps_per_node.assign(n, 0);
  stats_.messages_sent_per_node.assign(n, 0);
  stats_.messages_received_per_node.assign(n, 0);
}

void net_base::spawn(const process_factory& factory) {
  procs_.clear();
  procs_.reserve(node_count());
  for (std::size_t i = 0; i < node_count(); ++i)
    procs_.push_back(factory(static_cast<int>(i)));
}

void net_base::set_uids(std::vector<long> uids) {
  if (uids.size() != node_count())
    throw std::invalid_argument("set_uids: need one uid per node");
  uids_ = std::move(uids);
}

void net_base::crash(int node, std::size_t at_round) {
  const std::size_t i = check_node(node, "crash");
  crash_round_[i] = at_round;
  if (at_round == 0) {
    if (!crashed_[i]) {
      crashed_[i] = true;
      if (churn_down_[i] == 0) ++down_count_;
    }
  } else {
    have_deferred_crashes_ = true;
  }
}

void net_base::corrupt(int node, std::function<void(message&)> hook) {
  corruption_[static_cast<int>(check_node(node, "corrupt"))] =
      std::move(hook);
}

std::mt19937& net_base::node_rng(std::size_t node) {
  // Lazy: a million-node network materializes engines only at nodes that
  // draw.  Each shard owns its map, so concurrent shard tasks never touch
  // the same container; the seed is a function of (run seed, node) alone,
  // so laziness cannot perturb determinism or backend parity.
  auto& shard_map = shard_rngs_[shard_of(node)];
  const auto key = static_cast<std::uint32_t>(node);
  auto it = shard_map.find(key);
  if (it == shard_map.end())
    it = shard_map
             .emplace(key, std::mt19937(opts_.seed +
                                        1000003u * static_cast<std::uint32_t>(
                                                       node)))
             .first;
  return it->second;
}

// --- the deterministic fault plan -------------------------------------------

net_base::fault_draw net_base::draw_faults(std::size_t src,
                                           std::uint64_t seq) const noexcept {
  const fault_options& f = opts_.faults;
  fault_draw d;
  if (f.drop <= 0.0 && f.duplicate <= 0.0) return d;
  const std::uint64_t key =
      mix64(fault_seed_ ^ mix64(static_cast<std::uint64_t>(src) ^
                                seq * 0xd6e8feb86659fd93ull));
  d.drop = f.drop > 0.0 && unit_interval(key) < f.drop;
  d.dup = f.duplicate > 0.0 &&
          unit_interval(mix64(key ^ 0xa3c59ac2ee4c9d7bull)) < f.duplicate;
  return d;
}

void net_base::apply_round_faults() {
  if (have_deferred_crashes_) {
    for (std::size_t i = 0; i < node_count(); ++i) {
      if (crash_round_[i] != 0 && round_ >= crash_round_[i] && !crashed_[i]) {
        crashed_[i] = true;
        if (churn_down_[i] == 0) ++down_count_;
      }
    }
  }
  const fault_options& f = opts_.faults;
  if (!f.churn()) return;
  if (f.churn_until != 0 && round_ > f.churn_until) return;
  for (std::size_t i = 0; i < node_count(); ++i) {
    if (crashed_[i]) continue;  // explicit crashes are permanent
    const double u = unit_interval(
        mix64(churn_seed_ ^ mix64(static_cast<std::uint64_t>(i) ^
                                  static_cast<std::uint64_t>(round_) *
                                      0x9e3779b97f4a7c15ull)));
    if (churn_down_[i] != 0) {
      if (f.churn_recover > 0.0 && u < f.churn_recover) {
        churn_down_[i] = 0;
        --down_count_;
      }
    } else if (f.churn_crash > 0.0 && u < f.churn_crash) {
      churn_down_[i] = 1;
      ++down_count_;
    }
  }
}

// --- sending ----------------------------------------------------------------

void net_base::do_send(int from, int to, std::string_view tag,
                       std::vector<long>&& payload) {
  const std::size_t src = check_node(from, "send");
  if (crashed_[src] || churn_down_[src] != 0) return;
  if (!topo_.is_adjacent(from, to))
    throw std::invalid_argument(
        "send: node " + std::to_string(from) + " is not adjacent to " +
        std::to_string(to) + " in this topology");
  message m{from, to, std::string(tag), std::move(payload)};
  if (auto it = corruption_.find(from); it != corruption_.end())
    it->second(m);
  if constexpr (telemetry::kEnabled) {
    // Stamp the trace envelope: the sender's current span becomes the
    // causal parent of the delivery, and a flow arrow links the two.
    const auto ctx = telemetry::trace::current_context();
    if (ctx.active()) {
      m.trace_id = ctx.trace_id;
      m.parent_span = ctx.span_id;
      m.flow_id = telemetry::trace::flow_begin("msg." + m.tag, "distributed");
    }
  }
  const std::uint64_t seq = send_seq_[src]++;
  if (opts_.mode == timing::synchronous) {
    // Backend-chosen sink: the base arenas (faults at the routing
    // barrier), or inproc's cross-thread mailboxes (faults at the send
    // site — the hash plan makes both agree).
    enqueue_sync(src, seq, std::move(m));
    return;
  }
  // Asynchronous engine (single-threaded): count and schedule immediately.
  ++stats_.messages_total;
  ++stats_.messages_by_tag[m.tag];
  ++stats_.messages_sent_per_node[src];
  const fault_options& f = opts_.faults;
  const fault_draw d = draw_faults(src, seq);
  if (d.drop) {
    telemetry::profile::probe fault_probe(prof_fault_frame_);
    ++stats_.messages_dropped;
    live_faults_counter().add();
    return;
  }
  const auto extra = [&]() -> std::uint64_t {
    if (f.max_delay == 0) return 0;
    std::uniform_int_distribution<std::uint64_t> delay(0, f.max_delay);
    return delay(async_fault_rng_);
  };
  if (d.dup) {
    telemetry::profile::probe fault_probe(prof_fault_frame_);
    ++stats_.messages_duplicated;
    live_faults_counter().add();
    schedule_async(message(m), extra());
  }
  schedule_async(std::move(m), extra());
}

void net_base::enqueue_sync(std::size_t src, std::uint64_t seq, message&& m) {
  // Node-local buffering only: shard tasks process their nodes in
  // ascending order, so the arena's order is (sender, sequence) — the
  // canonical order — with no per-message queue operations.
  outbox_arena_[shard_of(src)].push_back(
      outbox_entry{static_cast<std::uint32_t>(src), seq, std::move(m)});
}

void net_base::schedule_async(message&& m, std::uint64_t extra_delay) {
  std::uniform_int_distribution<std::uint64_t> delay(1, 8);
  std::uint64_t t = now_ + delay(rng_) + extra_delay;
  if (opts_.fifo_links) {
    auto& last = link_last_delivery_[{m.src, m.dst}];
    t = std::max(t, last + 1);
    last = t;
  }
  events_.push(event{t, seq_++, std::move(m)});
}

std::size_t net_base::route_outboxes() {
  std::size_t scheduled = 0;
  const fault_options& f = opts_.faults;
  const bool any_message_fault = f.drop > 0.0 || f.duplicate > 0.0;
  tag_counter tags(stats_.messages_by_tag);
  for (std::size_t s = 0; s < shard_count_; ++s) {
    for (outbox_entry& e : outbox_arena_[s]) {
      ++stats_.messages_total;
      tags.bump(e.msg.tag);
      ++stats_.messages_sent_per_node[e.src];
      bool dup = false;
      if (any_message_fault) {
        const fault_draw d = draw_faults(e.src, e.seq);
        if (d.drop) {
          telemetry::profile::probe fault_probe(prof_fault_frame_);
          ++stats_.messages_dropped;
          live_faults_counter().add();
          if (health_) health_->on_send(e.src, true, false);
          continue;
        }
        dup = d.dup;
      }
      const auto dst = static_cast<std::size_t>(e.msg.dst);
      if (health_) {
        health_->on_send(e.src, false, dup);
        health_->on_delivered(dst);
        if (dup) health_->on_delivered(dst);
      }
      auto& dest = incoming_[shard_of(dst)];
      if (dup) {
        telemetry::profile::probe fault_probe(prof_fault_frame_);
        ++stats_.messages_duplicated;
        live_faults_counter().add();
        dest.push_back(e.msg);  // the copy is delivered BEFORE the original
        ++scheduled;
      }
      dest.push_back(std::move(e.msg));
      ++scheduled;
    }
    outbox_arena_[s].clear();  // recycle the arena's capacity
  }
  return scheduled;
}

// --- delivery ---------------------------------------------------------------

void net_base::deliver_to(std::size_t dst, const message& m) {
  if (crashed_[dst] || churn_down_[dst] != 0) return;
  ++stats_.local_steps_per_node[dst];
  ++stats_.messages_received_per_node[dst];
  context ctx(*this, static_cast<int>(dst));
  if constexpr (telemetry::kEnabled) {
    if (m.trace_id != 0) {
      // Restore the sender's context from the envelope: the receive span
      // parents under the SEND site (link=async), not under whatever the
      // executing thread happens to be doing, and lands on the receiving
      // rank's pid lane.
      telemetry::trace::context_scope adopt({m.trace_id, m.parent_span});
      telemetry::trace::rank_scope rank(static_cast<int>(dst));
      telemetry::trace::trace_span span("recv." + m.tag, "distributed");
      telemetry::trace::flow_end(m.flow_id, "msg." + m.tag, "distributed");
      procs_[dst]->receive(ctx, m);
      return;
    }
  }
  procs_[dst]->receive(ctx, m);
}

void net_base::charge_node(int node, std::size_t steps) {
  stats_.local_steps_per_node[static_cast<std::size_t>(node)] += steps;
}

void net_base::decide_node(int node, const std::string& key, long value) {
  decisions_[static_cast<std::size_t>(node)][key] = value;
}

// --- the synchronous superstep ----------------------------------------------

void net_base::node_superstep(std::size_t i, std::span<const message> inbox) {
  if (crashed_[i] || churn_down_[i] != 0) return;  // mail rots undelivered
  // When this task runs on a worker thread it has no ambient trace
  // context; adopt the enclosing round span's so the node's spans stay in
  // the run's causal tree.  On the coordinator (sim backend) the context
  // is already current and no adoption happens, preserving scope links.
  std::optional<telemetry::trace::context_scope> adopt;
  if constexpr (telemetry::kEnabled) {
    const telemetry::trace::span_context phase{phase_trace_id_,
                                               phase_parent_span_};
    if (phase.active() && !(telemetry::trace::current_context() == phase))
      adopt.emplace(phase);
  }
  telemetry::trace::rank_scope rank(static_cast<int>(i));
  telemetry::profile::probe superstep_probe(prof_superstep_frame_);
  if (!inbox.empty()) {
    telemetry::profile::probe deliver_probe(prof_deliver_frame_);
    for (const message& m : inbox) deliver_to(i, m);
  }
  context ctx(*this, static_cast<int>(i));
  telemetry::trace::child_span span("on_round", "distributed");
  procs_[i]->on_round(ctx);
}

void net_base::shard_superstep(std::size_t s) {
  const auto [lo, hi] = shard_range(s);
  auto& in = incoming_[s];
  if (in.empty()) {
    // Nothing due anywhere in this shard: run the bare supersteps.
    for (std::size_t i = lo; i < hi; ++i) node_superstep(i, {});
    return;
  }
  // Stable counting-sort of the shard's incoming arena by destination:
  // count, prefix, scatter.  The arena arrives in canonical routing order,
  // and the sort is stable, so each node's span IS its canonical mailbox.
  auto& arena = inbox_arena_[s];
  for (std::size_t i = lo; i < hi; ++i) inbox_end_[i] = 0;
  for (const message& m : in) ++inbox_end_[static_cast<std::size_t>(m.dst)];
  std::uint32_t running = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    inbox_begin_[i] = running;
    running += inbox_end_[i];
    inbox_end_[i] = inbox_begin_[i];  // becomes the scatter cursor
  }
  arena.resize(in.size());
  for (message& m : in)
    arena[inbox_end_[static_cast<std::size_t>(m.dst)]++] = std::move(m);
  in.clear();  // recycle
  for (std::size_t i = lo; i < hi; ++i)
    node_superstep(i, std::span<const message>(
                          arena.data() + inbox_begin_[i],
                          arena.data() + inbox_end_[i]));
}

void net_base::run_synchronous(std::size_t max_rounds) {
  for (round_ = 1; round_ <= max_rounds; ++round_) {
    telemetry::trace::child_span round_span("round", "distributed");
    round_span.arg("round", std::to_string(round_));
    const auto round_ctx = round_span.context();
    phase_trace_id_ = round_ctx.trace_id;
    phase_parent_span_ = round_ctx.span_id;
    // Crash-stop nodes whose time has come; draw this round's churn.
    apply_round_faults();
    // Synchronous mode has no delay faults, so every pending message is
    // due this round; each shard buckets its incoming arena and drains
    // every node's span contiguously.
    const bool any_due = pending_count_ > 0;
    pending_count_ = 0;
    for_each_shard([this](std::size_t s) { shard_superstep(s); });
    const std::size_t sent = [this] {
      telemetry::profile::probe route_probe(prof_route_frame_);
      return route_outboxes();
    }();
    pending_count_ = sent;
    live_routed_counter().add(sent);
    in_flight_gauge().set(static_cast<std::int64_t>(pending_count_));
    if (run_heartbeat_) run_heartbeat_->beat();
    if (health_)
      health_->end_round(round_, phase_trace_id_, phase_parent_span_);
    if (all_down()) break;
    if (!any_due && pending_count_ == 0) break;  // quiescent
  }
  stats_.rounds = round_;
}

void net_base::run_asynchronous(std::size_t max_rounds) {
  std::size_t delivered = 0;
  const std::size_t max_events = max_rounds * node_count();
  while (!events_.empty() && delivered < max_events) {
    const event ev = events_.top();
    events_.pop();
    now_ = ev.time;
    // Deferred crashes: at_round counts scheduler ticks here.
    if (have_deferred_crashes_) {
      for (std::size_t i = 0; i < node_count(); ++i)
        if (crash_round_[i] != 0 && now_ >= crash_round_[i] && !crashed_[i]) {
          crashed_[i] = true;
          ++down_count_;
        }
    }
    {
      telemetry::profile::probe deliver_probe(prof_deliver_frame_);
      deliver_to(static_cast<std::size_t>(ev.msg.dst), ev.msg);
    }
    ++delivered;
    live_routed_counter().add();
    in_flight_gauge().set(static_cast<std::int64_t>(events_.size()));
    if (run_heartbeat_) run_heartbeat_->beat();
  }
  stats_.rounds = static_cast<std::size_t>(now_);
}

void net_base::run_node_start(std::size_t i) {
  if (crashed_[i] || churn_down_[i] != 0) return;
  std::optional<telemetry::trace::context_scope> adopt;
  if constexpr (telemetry::kEnabled) {
    const telemetry::trace::span_context phase{phase_trace_id_,
                                               phase_parent_span_};
    if (phase.active() && !(telemetry::trace::current_context() == phase))
      adopt.emplace(phase);
  }
  ++stats_.local_steps_per_node[i];
  context ctx(*this, static_cast<int>(i));
  telemetry::trace::rank_scope rank(static_cast<int>(i));
  telemetry::trace::child_span span("start", "distributed");
  procs_[i]->start(ctx);
}

void net_base::run_start_phase() {
  for_each_shard([this](std::size_t s) {
    const auto [lo, hi] = shard_range(s);
    for (std::size_t i = lo; i < hi; ++i) run_node_start(i);
  });
  if (opts_.mode == timing::synchronous) {
    {
      telemetry::profile::probe route_probe(prof_route_frame_);
      pending_count_ = route_outboxes();
    }
    // Round 0 = the start phase; the round loop continues from 1, so
    // every backend reports identical round indices to the observatory.
    if (health_) health_->end_round(0, phase_trace_id_, phase_parent_span_);
  }
}

void net_base::execute_synchronous(std::size_t max_rounds) {
  run_start_phase();
  run_synchronous(max_rounds);
}

void net_base::finalize_stats() {
  stats_.local_steps = 0;
  for (const std::size_t s : stats_.local_steps_per_node)
    stats_.local_steps += s;
}

run_stats net_base::run(std::size_t max_rounds) {
  if (procs_.size() != node_count())
    throw std::logic_error("net_base::run: spawn() a process per node first");
  if (opts_.mode == timing::asynchronous && !supports_asynchronous())
    throw std::invalid_argument(
        std::string("transport backend '") + backend_name() +
        "' implements only timing::synchronous supersteps; use "
        "sim_transport for timing::asynchronous runs");
  // When the caller is tracing, the whole run is one span; every handler
  // invocation below nests (directly or via the message envelope) under
  // it, forming a single causal tree across all ranks — on every backend.
  telemetry::trace::child_span run_span("distributed.network.run",
                                        "distributed");
  run_span.arg("backend", backend_name());
  // Resolve this backend's phase frames once per run (backend_name() is
  // virtual, so this cannot happen in the base constructor) and open the
  // run-level frame; superstep probes on worker threads re-root under it
  // via the thread pool's shadow-path propagation.
  const std::string prof_prefix = std::string("distributed.") + backend_name();
  if constexpr (telemetry::kEnabled) {
    prof_superstep_frame_ = telemetry::profile::intern(prof_prefix + ".superstep");
    prof_route_frame_ = telemetry::profile::intern(prof_prefix + ".route");
    prof_deliver_frame_ = telemetry::profile::intern(prof_prefix + ".deliver");
    prof_fault_frame_ = telemetry::profile::intern(prof_prefix + ".fault");
  }
  telemetry::profile::probe run_probe(std::string_view(prof_prefix + ".run"));
  const auto run_ctx = run_span.context();
  phase_trace_id_ = run_ctx.trace_id;
  phase_parent_span_ = run_ctx.span_id;
  // Liveness: the run is one busy watchdog participant, beaten once per
  // superstep/event, so a transport wedged mid-run (e.g. a deadlocked
  // worker barrier) shows up as a stall instead of a silent hang.
  run_heartbeat_ = telemetry::live::watchdog::global().register_heartbeat(
      std::string("distributed.") + backend_name() + ".run");
  run_heartbeat_->begin_work();
  // Health roll-ups: one fixed-size track per backend (nullptr when the
  // observatory is off — every hook below is one pointer test then).
  health_ = telemetry::health::observatory::global().begin_run(
      backend_name(), node_count());
  if (opts_.mode == timing::synchronous) {
    execute_synchronous(max_rounds);
  } else {
    run_start_phase();
    run_asynchronous(max_rounds);
  }
  run_heartbeat_->end_work();
  run_heartbeat_.reset();
  health_ = nullptr;
  in_flight_gauge().set(0);
  finalize_stats();
  // Fold this run into the process-wide telemetry registry so every
  // backend exports uniformly (the taxonomy's measured dimensions:
  // messages per tag, rounds, local computation, injected faults).
  auto& reg = telemetry::registry::global();
  reg.get_counter("distributed.network.runs").add();
  reg.get_counter(std::string("distributed.network.runs.") + backend_name())
      .add();
  reg.get_counter("distributed.network.messages_total")
      .add(stats_.messages_total);
  reg.get_counter("distributed.network.messages_dropped")
      .add(stats_.messages_dropped);
  reg.get_counter("distributed.network.messages_duplicated")
      .add(stats_.messages_duplicated);
  reg.get_counter("distributed.network.rounds").add(stats_.rounds);
  reg.get_counter("distributed.network.local_steps").add(stats_.local_steps);
  for (const auto& [tag, count] : stats_.messages_by_tag)
    reg.get_counter("distributed.network.messages." + tag).add(count);
  reg.get_histogram("distributed.network.run_rounds").record(stats_.rounds);
  reg.get_histogram("distributed.network.run_messages")
      .record(stats_.messages_total);
  return stats_;
}

// --- decisions --------------------------------------------------------------

std::optional<long> net_base::decision(int node, const std::string& key) const {
  const auto& m = decisions_[check_node(node, "decision")];
  const auto it = m.find(key);
  if (it == m.end()) return std::nullopt;
  return it->second;
}

std::vector<int> net_base::deciders(const std::string& key) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < decisions_.size(); ++i)
    if (decisions_[i].contains(key)) out.push_back(static_cast<int>(i));
  return out;
}

std::map<std::pair<int, std::string>, long> net_base::all_decisions() const {
  std::map<std::pair<int, std::string>, long> out;
  for (std::size_t i = 0; i < decisions_.size(); ++i)
    for (const auto& [key, value] : decisions_[i])
      out[{static_cast<int>(i), key}] = value;
  return out;
}

}  // namespace cgp::distributed
