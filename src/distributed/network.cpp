#include "distributed/network.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace cgp::distributed {

const char* to_string(topology t) {
  switch (t) {
    case topology::ring:
      return "ring";
    case topology::complete:
      return "complete";
    case topology::star:
      return "star";
    case topology::grid:
      return "grid";
    case topology::random_connected:
      return "random_connected";
    case topology::line:
      return "line";
  }
  return "?";
}

// --- context ----------------------------------------------------------------

long context::uid() const { return net_->uid_of(id_); }
const std::vector<int>& context::neighbors() const {
  return net_->neighbors_of(id_);
}
std::size_t context::round() const { return net_->round_; }
std::size_t context::node_count() const { return net_->node_count(); }

void context::send(int to, std::string tag, std::vector<long> payload) {
  net_->do_send(id_, to, std::move(tag), std::move(payload));
}

void context::charge(std::size_t steps) {
  net_->stats_.local_steps += steps;
  net_->stats_.local_steps_per_node.at(static_cast<std::size_t>(id_)) +=
      steps;
}

void context::decide(const std::string& key, long value) {
  net_->decisions_[{id_, key}] = value;
}

std::mt19937& context::rng() {
  return net_->node_rngs_.at(static_cast<std::size_t>(id_));
}

// --- network construction -----------------------------------------------------

network::network(std::size_t n, topology topo, timing mode,
                 std::uint32_t seed, bool fifo_links)
    : adjacency_(n),
      uids_(n),
      crashed_(n, false),
      crash_round_(n, 0),
      mode_(mode),
      rng_(seed),
      fifo_links_(fifo_links) {
  if (n == 0) throw std::invalid_argument("network: need at least one node");
  const auto link = [&](std::size_t a, std::size_t b) {
    adjacency_[a].push_back(static_cast<int>(b));
    adjacency_[b].push_back(static_cast<int>(a));
    ++edges_;
  };
  switch (topo) {
    case topology::ring:
      for (std::size_t i = 0; i < n; ++i) link(i, (i + 1) % n);
      if (n == 1) adjacency_[0].clear(), edges_ = 0;
      break;
    case topology::line:
      for (std::size_t i = 0; i + 1 < n; ++i) link(i, i + 1);
      break;
    case topology::complete:
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) link(i, j);
      break;
    case topology::star:
      for (std::size_t i = 1; i < n; ++i) link(0, i);
      break;
    case topology::grid: {
      const std::size_t side =
          static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t r = i / side, c = i % side;
        if (c + 1 < side && i + 1 < n) link(i, i + 1);
        if ((r + 1) * side + c < n) link(i, (r + 1) * side + c);
      }
      break;
    }
    case topology::random_connected: {
      // Random spanning tree + extra random edges: connected by
      // construction.
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::shuffle(order.begin(), order.end(), rng_);
      for (std::size_t i = 1; i < n; ++i) {
        std::uniform_int_distribution<std::size_t> pick(0, i - 1);
        link(order[i], order[pick(rng_)]);
      }
      std::uniform_int_distribution<std::size_t> any(0, n - 1);
      for (std::size_t extra = 0; extra < n / 2; ++extra) {
        const std::size_t a = any(rng_);
        const std::size_t b = any(rng_);
        if (a == b) continue;
        if (std::find(adjacency_[a].begin(), adjacency_[a].end(),
                      static_cast<int>(b)) != adjacency_[a].end())
          continue;
        link(a, b);
      }
      break;
    }
  }
  // Deduplicate parallel links (e.g. a 2-node ring), then recount edges.
  for (auto& adj : adjacency_) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
  std::size_t degree_sum = 0;
  for (const auto& adj : adjacency_) degree_sum += adj.size();
  edges_ = degree_sum / 2;
  // uids: a seeded permutation of 1..n.
  std::iota(uids_.begin(), uids_.end(), 1L);
  std::shuffle(uids_.begin(), uids_.end(), rng_);
  node_rngs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    node_rngs_.emplace_back(seed + 1000003u * static_cast<std::uint32_t>(i));
  stats_.local_steps_per_node.assign(n, 0);
}

void network::spawn(const process_factory& factory) {
  procs_.clear();
  procs_.reserve(node_count());
  for (std::size_t i = 0; i < node_count(); ++i)
    procs_.push_back(factory(static_cast<int>(i)));
}

void network::set_uids(std::vector<long> uids) {
  if (uids.size() != node_count())
    throw std::invalid_argument("set_uids: need one uid per node");
  uids_ = std::move(uids);
}

void network::crash(int node, std::size_t at_round) {
  crash_round_.at(static_cast<std::size_t>(node)) = at_round;
  if (at_round == 0) crashed_.at(static_cast<std::size_t>(node)) = true;
}

void network::corrupt(int node, std::function<void(message&)> hook) {
  corruption_[node] = std::move(hook);
}

void network::do_send(int from, int to, std::string tag,
                      std::vector<long> payload) {
  if (crashed_.at(static_cast<std::size_t>(from))) return;
  const auto& adj = adjacency_.at(static_cast<std::size_t>(from));
  if (std::find(adj.begin(), adj.end(), to) == adj.end())
    throw std::invalid_argument(
        "send: node " + std::to_string(from) + " is not adjacent to " +
        std::to_string(to) + " in this topology");
  message m{from, to, std::move(tag), std::move(payload)};
  if (auto it = corruption_.find(from); it != corruption_.end())
    it->second(m);
  if constexpr (telemetry::kEnabled) {
    // Stamp the trace envelope: the sender's current span becomes the
    // causal parent of the delivery, and a flow arrow links the two.
    const auto ctx = telemetry::trace::current_context();
    if (ctx.active()) {
      m.trace_id = ctx.trace_id;
      m.parent_span = ctx.span_id;
      m.flow_id = telemetry::trace::flow_begin("msg." + m.tag, "distributed");
    }
  }
  ++stats_.messages_total;
  ++stats_.messages_by_tag[m.tag];
  if (mode_ == timing::synchronous) {
    outbox_.push_back(std::move(m));
  } else {
    std::uniform_int_distribution<std::uint64_t> delay(1, 8);
    std::uint64_t t = now_ + delay(rng_);
    if (fifo_links_) {
      auto& last = link_last_delivery_[{m.src, m.dst}];
      t = std::max(t, last + 1);
      last = t;
    }
    events_.push(event{t, seq_++, std::move(m)});
  }
}

void network::deliver(const message& m) {
  const auto dst = static_cast<std::size_t>(m.dst);
  if (crashed_.at(dst)) return;
  ++stats_.local_steps;
  ++stats_.local_steps_per_node[dst];
  context ctx(*this, m.dst);
  if constexpr (telemetry::kEnabled) {
    if (m.trace_id != 0) {
      // Restore the sender's context from the envelope: the receive span
      // parents under the SEND site (link=async), not under whatever the
      // driver thread happens to be doing, and lands on the receiving
      // rank's pid lane.
      telemetry::trace::context_scope adopt({m.trace_id, m.parent_span});
      telemetry::trace::rank_scope rank(m.dst);
      telemetry::trace::trace_span span("recv." + m.tag, "distributed");
      telemetry::trace::flow_end(m.flow_id, "msg." + m.tag, "distributed");
      procs_.at(dst)->receive(ctx, m);
      return;
    }
  }
  procs_.at(dst)->receive(ctx, m);
}

run_stats network::run(std::size_t max_rounds) {
  if (procs_.size() != node_count())
    throw std::logic_error("network::run: spawn() a process per node first");
  // When the caller is tracing, the whole run is one span; every handler
  // invocation below nests (directly or via the message envelope) under
  // it, forming a single causal tree across all simulated ranks.
  telemetry::trace::child_span run_span("distributed.network.run",
                                        "distributed");
  // start handlers.
  for (std::size_t i = 0; i < node_count(); ++i) {
    if (crashed_[i]) continue;
    ++stats_.local_steps;
    ++stats_.local_steps_per_node[i];
    context ctx(*this, static_cast<int>(i));
    telemetry::trace::rank_scope rank(static_cast<int>(i));
    telemetry::trace::child_span span("start", "distributed");
    procs_[i]->start(ctx);
  }
  if (mode_ == timing::synchronous) {
    for (round_ = 1; round_ <= max_rounds; ++round_) {
      telemetry::trace::child_span round_span("round", "distributed");
      round_span.arg("round", std::to_string(round_));
      // Crash-stop nodes whose time has come.
      for (std::size_t i = 0; i < node_count(); ++i)
        if (crash_round_[i] != 0 && round_ >= crash_round_[i])
          crashed_[i] = true;
      std::vector<message> inflight;
      inflight.swap(outbox_);
      if (inflight.empty()) {
        // Give on_round a chance to make progress (timeout-driven logic).
        bool any_alive = false;
        for (std::size_t i = 0; i < node_count(); ++i) {
          if (crashed_[i]) continue;
          any_alive = true;
          context ctx(*this, static_cast<int>(i));
          telemetry::trace::rank_scope rank(static_cast<int>(i));
          telemetry::trace::child_span span("on_round", "distributed");
          procs_[i]->on_round(ctx);
        }
        if (outbox_.empty() || !any_alive) break;  // quiescent
        continue;
      }
      for (const message& m : inflight) deliver(m);
      for (std::size_t i = 0; i < node_count(); ++i) {
        if (crashed_[i]) continue;
        context ctx(*this, static_cast<int>(i));
        telemetry::trace::rank_scope rank(static_cast<int>(i));
        telemetry::trace::child_span span("on_round", "distributed");
        procs_[i]->on_round(ctx);
      }
    }
    stats_.rounds = round_;
  } else {
    std::size_t delivered = 0;
    const std::size_t max_events = max_rounds * node_count();
    while (!events_.empty() && delivered < max_events) {
      const event ev = events_.top();
      events_.pop();
      now_ = ev.time;
      deliver(ev.msg);
      ++delivered;
    }
    stats_.rounds = static_cast<std::size_t>(now_);
  }
  // Fold this run into the process-wide telemetry registry so every
  // simulation exports uniformly (the taxonomy's measured dimensions:
  // messages per tag, rounds, local computation).
  auto& reg = telemetry::registry::global();
  reg.get_counter("distributed.network.runs").add();
  reg.get_counter("distributed.network.messages_total")
      .add(stats_.messages_total);
  reg.get_counter("distributed.network.rounds").add(stats_.rounds);
  reg.get_counter("distributed.network.local_steps").add(stats_.local_steps);
  for (const auto& [tag, count] : stats_.messages_by_tag)
    reg.get_counter("distributed.network.messages." + tag).add(count);
  reg.get_histogram("distributed.network.run_rounds").record(stats_.rounds);
  reg.get_histogram("distributed.network.run_messages")
      .record(stats_.messages_total);
  return stats_;
}

std::optional<long> network::decision(int node, const std::string& key) const {
  auto it = decisions_.find({node, key});
  if (it == decisions_.end()) return std::nullopt;
  return it->second;
}

std::vector<int> network::deciders(const std::string& key) const {
  std::vector<int> out;
  for (const auto& [k, v] : decisions_)
    if (k.second == key) out.push_back(k.first);
  return out;
}

}  // namespace cgp::distributed
