#include "distributed/network.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "telemetry/profile.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/watchdog.hpp"

namespace cgp::distributed {

namespace {

// Live-sampler feeds: resolved once, updated on the engine's hot paths so
// a running sampler sees per-period message/fault rates and the current
// in-flight backlog instead of only post-run totals.
telemetry::gauge& in_flight_gauge() {
  static telemetry::gauge& g = telemetry::registry::global().get_gauge(
      "distributed.network.in_flight");
  return g;
}

telemetry::counter& live_routed_counter() {
  static telemetry::counter& c = telemetry::registry::global().get_counter(
      "distributed.network.live_messages_routed");
  return c;
}

telemetry::counter& live_faults_counter() {
  static telemetry::counter& c = telemetry::registry::global().get_counter(
      "distributed.network.live_faults");
  return c;
}

}  // namespace

const char* to_string(topology t) {
  switch (t) {
    case topology::ring:
      return "ring";
    case topology::complete:
      return "complete";
    case topology::star:
      return "star";
    case topology::grid:
      return "grid";
    case topology::random_connected:
      return "random_connected";
    case topology::line:
      return "line";
  }
  return "?";
}

// --- context ----------------------------------------------------------------

long context::uid() const { return net_->uid_of(id_); }
const std::vector<int>& context::neighbors() const {
  return net_->neighbors_of(id_);
}
std::size_t context::round() const { return net_->round_; }
std::size_t context::node_count() const { return net_->node_count(); }

void context::send(int to, std::string_view tag, std::vector<long> payload) {
  net_->do_send(id_, to, tag, std::move(payload));
}

void context::charge(std::size_t steps) { net_->charge_node(id_, steps); }

void context::decide(const std::string& key, long value) {
  net_->decide_node(id_, key, value);
}

std::mt19937& context::rng() {
  return net_->node_rngs_[static_cast<std::size_t>(id_)];
}

// --- construction -----------------------------------------------------------

net_base::net_base(const net_options& opts)
    : opts_(opts),
      adjacency_(opts.nodes),
      uids_(opts.nodes),
      crashed_(opts.nodes, false),
      crash_round_(opts.nodes, 0),
      rng_(opts.seed),
      fault_rng_(opts.seed ^ 0x9e3779b97f4a7c15ull),
      outboxes_(opts.nodes),
      mailboxes_(opts.nodes),
      inboxes_(opts.nodes),
      decisions_(opts.nodes) {
  const std::size_t n = opts.nodes;
  if (n == 0) throw std::invalid_argument("net_options: need at least one node");
  // Fault knobs are validated here, once, so every backend shares the same
  // contract and a bad configuration fails at construction instead of
  // silently skewing a run.  (NaN fails both comparisons.)
  const fault_options& f = opts.faults;
  if (!(f.drop >= 0.0 && f.drop <= 1.0)) {
    throw std::invalid_argument(
        "net_options: faults.drop must be a probability in [0, 1], got " +
        std::to_string(f.drop));
  }
  if (!(f.duplicate >= 0.0 && f.duplicate <= 1.0)) {
    throw std::invalid_argument(
        "net_options: faults.duplicate must be a probability in [0, 1], got " +
        std::to_string(f.duplicate));
  }
  if (opts.mode == timing::synchronous && f.max_delay != 0) {
    throw std::invalid_argument(
        "net_options: faults.max_delay requires timing::asynchronous — a "
        "synchronous round delivers every message at the next round "
        "boundary, so per-message delay has no defined meaning there");
  }
  const auto link = [&](std::size_t a, std::size_t b) {
    adjacency_[a].push_back(static_cast<int>(b));
    adjacency_[b].push_back(static_cast<int>(a));
    ++edges_;
  };
  switch (opts.topo) {
    case topology::ring:
      for (std::size_t i = 0; i < n; ++i) link(i, (i + 1) % n);
      if (n == 1) adjacency_[0].clear(), edges_ = 0;
      break;
    case topology::line:
      for (std::size_t i = 0; i + 1 < n; ++i) link(i, i + 1);
      break;
    case topology::complete:
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) link(i, j);
      break;
    case topology::star:
      for (std::size_t i = 1; i < n; ++i) link(0, i);
      break;
    case topology::grid: {
      const std::size_t side =
          static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t r = i / side, c = i % side;
        if (c + 1 < side && i + 1 < n) link(i, i + 1);
        if ((r + 1) * side + c < n) link(i, (r + 1) * side + c);
      }
      break;
    }
    case topology::random_connected: {
      // Random spanning tree + extra random edges: connected by
      // construction.
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::shuffle(order.begin(), order.end(), rng_);
      for (std::size_t i = 1; i < n; ++i) {
        std::uniform_int_distribution<std::size_t> pick(0, i - 1);
        link(order[i], order[pick(rng_)]);
      }
      std::uniform_int_distribution<std::size_t> any(0, n - 1);
      for (std::size_t extra = 0; extra < n / 2; ++extra) {
        const std::size_t a = any(rng_);
        const std::size_t b = any(rng_);
        if (a == b) continue;
        if (std::find(adjacency_[a].begin(), adjacency_[a].end(),
                      static_cast<int>(b)) != adjacency_[a].end())
          continue;
        link(a, b);
      }
      break;
    }
  }
  // Deduplicate parallel links (e.g. a 2-node ring), then recount edges.
  for (auto& adj : adjacency_) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
  std::size_t degree_sum = 0;
  for (const auto& adj : adjacency_) degree_sum += adj.size();
  edges_ = degree_sum / 2;
  // uids: a seeded permutation of 1..n.
  std::iota(uids_.begin(), uids_.end(), 1L);
  std::shuffle(uids_.begin(), uids_.end(), rng_);
  node_rngs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    node_rngs_.emplace_back(opts.seed +
                            1000003u * static_cast<std::uint32_t>(i));
  stats_.local_steps_per_node.assign(n, 0);
  stats_.messages_sent_per_node.assign(n, 0);
  stats_.messages_received_per_node.assign(n, 0);
}

void net_base::spawn(const process_factory& factory) {
  procs_.clear();
  procs_.reserve(node_count());
  for (std::size_t i = 0; i < node_count(); ++i)
    procs_.push_back(factory(static_cast<int>(i)));
}

void net_base::set_uids(std::vector<long> uids) {
  if (uids.size() != node_count())
    throw std::invalid_argument("set_uids: need one uid per node");
  uids_ = std::move(uids);
}

void net_base::crash(int node, std::size_t at_round) {
  const std::size_t i = check_node(node, "crash");
  crash_round_[i] = at_round;
  if (at_round == 0) crashed_[i] = true;
}

void net_base::corrupt(int node, std::function<void(message&)> hook) {
  corruption_[static_cast<int>(check_node(node, "corrupt"))] =
      std::move(hook);
}

// --- sending ----------------------------------------------------------------

void net_base::do_send(int from, int to, std::string_view tag,
                       std::vector<long>&& payload) {
  const std::size_t src = check_node(from, "send");
  if (crashed_[src]) return;
  const auto& adj = adjacency_[src];
  if (std::find(adj.begin(), adj.end(), to) == adj.end())
    throw std::invalid_argument(
        "send: node " + std::to_string(from) + " is not adjacent to " +
        std::to_string(to) + " in this topology");
  message m{from, to, std::string(tag), std::move(payload)};
  if (auto it = corruption_.find(from); it != corruption_.end())
    it->second(m);
  if constexpr (telemetry::kEnabled) {
    // Stamp the trace envelope: the sender's current span becomes the
    // causal parent of the delivery, and a flow arrow links the two.
    const auto ctx = telemetry::trace::current_context();
    if (ctx.active()) {
      m.trace_id = ctx.trace_id;
      m.parent_span = ctx.span_id;
      m.flow_id = telemetry::trace::flow_begin("msg." + m.tag, "distributed");
    }
  }
  if (opts_.mode == timing::synchronous) {
    // Node-local buffering only: statistics and the fault plan are applied
    // at the routing barrier, in canonical sender order, on one thread.
    outboxes_[src].push_back(std::move(m));
    return;
  }
  // Asynchronous engine (single-threaded): count and schedule immediately.
  ++stats_.messages_total;
  ++stats_.messages_by_tag[m.tag];
  ++stats_.messages_sent_per_node[src];
  const fault_options& f = opts_.faults;
  std::bernoulli_distribution dropped(f.drop);
  if (f.drop > 0.0 && dropped(fault_rng_)) {
    telemetry::profile::probe fault_probe(prof_fault_frame_);
    ++stats_.messages_dropped;
    live_faults_counter().add();
    return;
  }
  std::bernoulli_distribution duplicated(f.duplicate);
  const bool dup = f.duplicate > 0.0 && duplicated(fault_rng_);
  const auto extra = [&]() -> std::uint64_t {
    if (f.max_delay == 0) return 0;
    std::uniform_int_distribution<std::uint64_t> d(0, f.max_delay);
    return d(fault_rng_);
  };
  if (dup) {
    telemetry::profile::probe fault_probe(prof_fault_frame_);
    ++stats_.messages_duplicated;
    live_faults_counter().add();
    schedule_async(message(m), extra());
  }
  schedule_async(std::move(m), extra());
}

void net_base::schedule_async(message&& m, std::uint64_t extra_delay) {
  std::uniform_int_distribution<std::uint64_t> delay(1, 8);
  std::uint64_t t = now_ + delay(rng_) + extra_delay;
  if (opts_.fifo_links) {
    auto& last = link_last_delivery_[{m.src, m.dst}];
    t = std::max(t, last + 1);
    last = t;
  }
  events_.push(event{t, seq_++, std::move(m)});
}

void net_base::schedule_sync(message&& m) {
  // Construction rejects max_delay in synchronous mode, so every message
  // is due exactly one round after it was sent — no per-link reordering to
  // compensate for.
  const std::size_t due = round_ + 1;
  const auto dst = static_cast<std::size_t>(m.dst);
  mailboxes_[dst].push_back(pending_msg{due, std::move(m)});
  ++pending_count_;
}

std::size_t net_base::route_outboxes() {
  std::size_t scheduled = 0;
  const fault_options& f = opts_.faults;
  for (std::size_t src = 0; src < outboxes_.size(); ++src) {
    for (message& m : outboxes_[src]) {
      ++stats_.messages_total;
      ++stats_.messages_by_tag[m.tag];
      ++stats_.messages_sent_per_node[src];
      if (f.drop > 0.0) {
        std::bernoulli_distribution dropped(f.drop);
        if (dropped(fault_rng_)) {
          telemetry::profile::probe fault_probe(prof_fault_frame_);
          ++stats_.messages_dropped;
          live_faults_counter().add();
          continue;
        }
      }
      bool dup = false;
      if (f.duplicate > 0.0) {
        std::bernoulli_distribution duplicated(f.duplicate);
        dup = duplicated(fault_rng_);
      }
      if (dup) {
        telemetry::profile::probe fault_probe(prof_fault_frame_);
        ++stats_.messages_duplicated;
        live_faults_counter().add();
        schedule_sync(message(m));
        ++scheduled;
      }
      schedule_sync(std::move(m));
      ++scheduled;
    }
    outboxes_[src].clear();
  }
  return scheduled;
}

// --- delivery ---------------------------------------------------------------

void net_base::deliver_to(std::size_t dst, const message& m) {
  if (crashed_[dst]) return;
  ++stats_.local_steps_per_node[dst];
  ++stats_.messages_received_per_node[dst];
  context ctx(*this, static_cast<int>(dst));
  if constexpr (telemetry::kEnabled) {
    if (m.trace_id != 0) {
      // Restore the sender's context from the envelope: the receive span
      // parents under the SEND site (link=async), not under whatever the
      // executing thread happens to be doing, and lands on the receiving
      // rank's pid lane.
      telemetry::trace::context_scope adopt({m.trace_id, m.parent_span});
      telemetry::trace::rank_scope rank(static_cast<int>(dst));
      telemetry::trace::trace_span span("recv." + m.tag, "distributed");
      telemetry::trace::flow_end(m.flow_id, "msg." + m.tag, "distributed");
      procs_[dst]->receive(ctx, m);
      return;
    }
  }
  procs_[dst]->receive(ctx, m);
}

void net_base::charge_node(int node, std::size_t steps) {
  stats_.local_steps_per_node[static_cast<std::size_t>(node)] += steps;
}

void net_base::decide_node(int node, const std::string& key, long value) {
  decisions_[static_cast<std::size_t>(node)][key] = value;
}

// --- the synchronous superstep ----------------------------------------------

void net_base::node_superstep(std::size_t i) {
  if (crashed_[i]) {
    inboxes_[i].clear();  // messages to a crashed node rot undelivered
    return;
  }
  // When this task runs on a worker thread it has no ambient trace
  // context; adopt the enclosing round span's so the node's spans stay in
  // the run's causal tree.  On the coordinator (sim backend) the context
  // is already current and no adoption happens, preserving scope links.
  std::optional<telemetry::trace::context_scope> adopt;
  if constexpr (telemetry::kEnabled) {
    const telemetry::trace::span_context phase{phase_trace_id_,
                                               phase_parent_span_};
    if (phase.active() && !(telemetry::trace::current_context() == phase))
      adopt.emplace(phase);
  }
  telemetry::trace::rank_scope rank(static_cast<int>(i));
  telemetry::profile::probe superstep_probe(prof_superstep_frame_);
  {
    telemetry::profile::probe deliver_probe(prof_deliver_frame_);
    for (const message& m : inboxes_[i]) deliver_to(i, m);
    inboxes_[i].clear();
  }
  context ctx(*this, static_cast<int>(i));
  telemetry::trace::child_span span("on_round", "distributed");
  procs_[i]->on_round(ctx);
}

run_stats net_base::run_synchronous(std::size_t max_rounds) {
  for (round_ = 1; round_ <= max_rounds; ++round_) {
    telemetry::trace::child_span round_span("round", "distributed");
    round_span.arg("round", std::to_string(round_));
    const auto round_ctx = round_span.context();
    phase_trace_id_ = round_ctx.trace_id;
    phase_parent_span_ = round_ctx.span_id;
    // Crash-stop nodes whose time has come.
    for (std::size_t i = 0; i < node_count(); ++i)
      if (crash_round_[i] != 0 && round_ >= crash_round_[i])
        crashed_[i] = true;
    // Extract every node's due messages into its inbox, preserving the
    // canonical (routing round, sender, send sequence) order.
    bool any_due = false;
    for (std::size_t i = 0; i < node_count(); ++i) {
      auto& box = mailboxes_[i];
      auto& in = inboxes_[i];
      in.clear();
      auto keep = box.begin();
      for (auto it = box.begin(); it != box.end(); ++it) {
        if (it->due_round <= round_) {
          in.push_back(std::move(it->msg));
        } else {
          if (keep != it) *keep = std::move(*it);
          ++keep;
        }
      }
      pending_count_ -= static_cast<std::size_t>(in.size());
      box.erase(keep, box.end());
      any_due |= !in.empty();
    }
    // Deliveries then on_round, node by node; each node touches only its
    // own state, so backends may run the supersteps concurrently.
    for_each_node([this](std::size_t i) { node_superstep(i); });
    const std::size_t sent = [this] {
      telemetry::profile::probe route_probe(prof_route_frame_);
      return route_outboxes();
    }();
    live_routed_counter().add(sent);
    in_flight_gauge().set(static_cast<std::int64_t>(pending_count_));
    if (run_heartbeat_) run_heartbeat_->beat();
    bool any_alive = false;
    for (std::size_t i = 0; i < node_count(); ++i) any_alive |= !crashed_[i];
    if (!any_alive) break;
    if (!any_due && pending_count_ == 0) break;  // quiescent
  }
  stats_.rounds = round_;
  return stats_;
}

run_stats net_base::run_asynchronous(std::size_t max_rounds) {
  std::size_t delivered = 0;
  const std::size_t max_events = max_rounds * node_count();
  while (!events_.empty() && delivered < max_events) {
    const event ev = events_.top();
    events_.pop();
    now_ = ev.time;
    // Deferred crashes: at_round counts scheduler ticks here.
    for (std::size_t i = 0; i < node_count(); ++i)
      if (crash_round_[i] != 0 && now_ >= crash_round_[i]) crashed_[i] = true;
    {
      telemetry::profile::probe deliver_probe(prof_deliver_frame_);
      deliver_to(static_cast<std::size_t>(ev.msg.dst), ev.msg);
    }
    ++delivered;
    live_routed_counter().add();
    in_flight_gauge().set(static_cast<std::int64_t>(events_.size()));
    if (run_heartbeat_) run_heartbeat_->beat();
  }
  stats_.rounds = static_cast<std::size_t>(now_);
  return stats_;
}

void net_base::run_start_phase() {
  for_each_node([this](std::size_t i) {
    if (crashed_[i]) return;
    std::optional<telemetry::trace::context_scope> adopt;
    if constexpr (telemetry::kEnabled) {
      const telemetry::trace::span_context phase{phase_trace_id_,
                                                 phase_parent_span_};
      if (phase.active() && !(telemetry::trace::current_context() == phase))
        adopt.emplace(phase);
    }
    ++stats_.local_steps_per_node[i];
    context ctx(*this, static_cast<int>(i));
    telemetry::trace::rank_scope rank(static_cast<int>(i));
    telemetry::trace::child_span span("start", "distributed");
    procs_[i]->start(ctx);
  });
  if (opts_.mode == timing::synchronous) {
    telemetry::profile::probe route_probe(prof_route_frame_);
    (void)route_outboxes();
  }
}

void net_base::finalize_stats() {
  stats_.local_steps = 0;
  for (const std::size_t s : stats_.local_steps_per_node)
    stats_.local_steps += s;
}

run_stats net_base::run(std::size_t max_rounds) {
  if (procs_.size() != node_count())
    throw std::logic_error("net_base::run: spawn() a process per node first");
  if (opts_.mode == timing::asynchronous && !supports_asynchronous())
    throw std::invalid_argument(
        std::string("transport backend '") + backend_name() +
        "' implements only timing::synchronous supersteps; use "
        "sim_transport for timing::asynchronous runs");
  // When the caller is tracing, the whole run is one span; every handler
  // invocation below nests (directly or via the message envelope) under
  // it, forming a single causal tree across all ranks — on every backend.
  telemetry::trace::child_span run_span("distributed.network.run",
                                        "distributed");
  run_span.arg("backend", backend_name());
  // Resolve this backend's phase frames once per run (backend_name() is
  // virtual, so this cannot happen in the base constructor) and open the
  // run-level frame; superstep probes on worker threads re-root under it
  // via the thread pool's shadow-path propagation.
  const std::string prof_prefix = std::string("distributed.") + backend_name();
  if constexpr (telemetry::kEnabled) {
    prof_superstep_frame_ = telemetry::profile::intern(prof_prefix + ".superstep");
    prof_route_frame_ = telemetry::profile::intern(prof_prefix + ".route");
    prof_deliver_frame_ = telemetry::profile::intern(prof_prefix + ".deliver");
    prof_fault_frame_ = telemetry::profile::intern(prof_prefix + ".fault");
  }
  telemetry::profile::probe run_probe(std::string_view(prof_prefix + ".run"));
  const auto run_ctx = run_span.context();
  phase_trace_id_ = run_ctx.trace_id;
  phase_parent_span_ = run_ctx.span_id;
  // Liveness: the run is one busy watchdog participant, beaten once per
  // superstep/event, so a transport wedged mid-run (e.g. a deadlocked
  // worker barrier) shows up as a stall instead of a silent hang.
  run_heartbeat_ = telemetry::live::watchdog::global().register_heartbeat(
      std::string("distributed.") + backend_name() + ".run");
  run_heartbeat_->begin_work();
  run_start_phase();
  if (opts_.mode == timing::synchronous)
    (void)run_synchronous(max_rounds);
  else
    (void)run_asynchronous(max_rounds);
  run_heartbeat_->end_work();
  run_heartbeat_.reset();
  in_flight_gauge().set(0);
  finalize_stats();
  // Fold this run into the process-wide telemetry registry so every
  // backend exports uniformly (the taxonomy's measured dimensions:
  // messages per tag, rounds, local computation, injected faults).
  auto& reg = telemetry::registry::global();
  reg.get_counter("distributed.network.runs").add();
  reg.get_counter(std::string("distributed.network.runs.") + backend_name())
      .add();
  reg.get_counter("distributed.network.messages_total")
      .add(stats_.messages_total);
  reg.get_counter("distributed.network.messages_dropped")
      .add(stats_.messages_dropped);
  reg.get_counter("distributed.network.messages_duplicated")
      .add(stats_.messages_duplicated);
  reg.get_counter("distributed.network.rounds").add(stats_.rounds);
  reg.get_counter("distributed.network.local_steps").add(stats_.local_steps);
  for (const auto& [tag, count] : stats_.messages_by_tag)
    reg.get_counter("distributed.network.messages." + tag).add(count);
  reg.get_histogram("distributed.network.run_rounds").record(stats_.rounds);
  reg.get_histogram("distributed.network.run_messages")
      .record(stats_.messages_total);
  return stats_;
}

// --- decisions --------------------------------------------------------------

std::optional<long> net_base::decision(int node, const std::string& key) const {
  const auto& m = decisions_[check_node(node, "decision")];
  const auto it = m.find(key);
  if (it == m.end()) return std::nullopt;
  return it->second;
}

std::vector<int> net_base::deciders(const std::string& key) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < decisions_.size(); ++i)
    if (decisions_[i].contains(key)) out.push_back(static_cast<int>(i));
  return out;
}

std::map<std::pair<int, std::string>, long> net_base::all_decisions() const {
  std::map<std::pair<int, std::string>, long> out;
  for (std::size_t i = 0; i < decisions_.size(); ++i)
    for (const auto& [key, value] : decisions_[i])
      out[{static_cast<int>(i), key}] = value;
  return out;
}

}  // namespace cgp::distributed
