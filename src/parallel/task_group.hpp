// Recursive fork-join over any Executor.
//
// A task_group owns a set of forked tasks and a blocking `wait()` barrier.
// The part that makes NESTED parallelism safe is helping: while waiting,
// the caller first drains runnable tasks through the executor's
// `try_help()` hook (a pool worker pops its own deque / steals / pops the
// shared queue) instead of blocking a scarce worker thread.  A nested
// `parallel_for` issued from inside a pool task therefore executes its
// splits on the very worker that is waiting for them — the submit queue
// cannot deadlock on its own barrier, which is what hard-wired
// `run_chunks`-style fan-out did under recursion.
//
// Executors without a try_help hook (the inline archetype) skip straight
// to the condition-variable wait; the archetype runs tasks inline at
// submit, so its groups are already complete by then.
//
// The wait loop re-arms with a bounded timeout: between "nothing runnable
// right now" and "parked on the group cv", another thread may enqueue a
// task this waiter could help with.  The periodic rescan bounds that lost
// opportunity (and any exotic all-waiters-blocked interleaving) to one
// timeout period instead of forever.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <utility>

#include "parallel/executor.hpp"

namespace cgp::parallel {

template <Executor E>
class task_group {
 public:
  explicit task_group(E& exec) : exec_(&exec) {}

  /// Waits for stragglers; never lets tasks outlive the group state.
  ~task_group() {
    if (pending_.load(std::memory_order_acquire) != 0) try_wait_no_throw();
  }

  task_group(const task_group&) = delete;
  task_group& operator=(const task_group&) = delete;

  /// Forks `f` onto the executor.  Exceptions thrown by `f` are captured
  /// (first one wins) and rethrown from wait().
  template <std::invocable F>
  void run(F&& f) {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    exec_->submit(
        [this, fn = std::forward<F>(f)]() mutable { invoke_one(fn); });
  }

  /// Blocks until every forked task has finished, helping the executor
  /// run queued tasks meanwhile.  Rethrows the first captured exception.
  void wait() {
    wait_impl();
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

  /// Tasks forked and not yet completed.
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

 private:
  template <class F>
  void invoke_one(F& fn) {
    try {
      fn();
    } catch (...) {
      const std::lock_guard lock(m_);
      if (!error_) error_ = std::current_exception();
    }
    // The decrement and the wake form ONE critical section.  A waiter may
    // only conclude "done" from a pending_==0 it observed either under
    // this mutex or by locking it afterwards (wait_impl), so by the time
    // the group can be destroyed the final task has left this scope — the
    // cv/mutex members are never touched after the barrier opens.
    const std::lock_guard lock(m_);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
      cv_.notify_all();
  }

  void wait_impl() {
    using namespace std::chrono_literals;
    for (;;) {
      if (pending_.load(std::memory_order_acquire) == 0) {
        // Rendezvous with the final task: its decrement-to-zero happened
        // inside the mutex, so acquiring it here blocks until that task
        // has released its critical section and will never touch the
        // group again.  Only then may our caller destroy us.
        const std::lock_guard lock(m_);
        return;
      }
      // Helping phase: run whatever the executor can hand this thread.
      if constexpr (requires(E& e) {
                      { e.try_help() } -> std::convertible_to<bool>;
                    }) {
        while (pending_.load(std::memory_order_acquire) != 0 &&
               exec_->try_help()) {
        }
      }
      // Parking phase: bounded, so a task enqueued after the helping scan
      // (or an all-waiters interleaving) stalls us at most one period.
      std::unique_lock lock(m_);
      if (cv_.wait_for(lock, 1ms, [this] {
            return pending_.load(std::memory_order_acquire) == 0;
          }))
        return;
    }
  }

  void try_wait_no_throw() noexcept {
    try {
      wait_impl();
    } catch (...) {
    }
  }

  E* exec_;
  std::atomic<std::size_t> pending_{0};
  std::mutex m_;
  std::condition_variable cv_;
  std::exception_ptr error_;
};

}  // namespace cgp::parallel
