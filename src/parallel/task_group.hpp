// Recursive fork-join over any Executor.
//
// A task_group owns a set of forked tasks and a blocking `wait()` barrier.
// The part that makes NESTED parallelism safe is helping: while waiting,
// the caller first drains runnable tasks through the executor's
// `try_help()` hook (a pool worker pops its own deque / steals / pops the
// shared queue) instead of blocking a scarce worker thread.  A nested
// `parallel_for` issued from inside a pool task therefore executes its
// splits on the very worker that is waiting for them — the submit queue
// cannot deadlock on its own barrier, which is what hard-wired
// `run_chunks`-style fan-out did under recursion.
//
// Executors without a try_help hook (the inline archetype) skip straight
// to the condition-variable wait; the archetype runs tasks inline at
// submit, so its groups are already complete by then.
//
// Only waiters that can actually help (pool workers, per the executor's
// can_help() hook) park with a bounded timeout: between "nothing runnable
// right now" and "parked on the group cv", another thread may enqueue a
// task this waiter could help with, and the periodic rescan bounds that
// lost opportunity to one timeout period.  Waiters that can never help —
// external callers of run_chunks — park untimed: the completion notify in
// invoke_one is never lost (decrement and wake share one critical
// section), so polling would only burn cycles.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <utility>

#include "parallel/executor.hpp"

namespace cgp::parallel {

template <Executor E>
class task_group {
 public:
  explicit task_group(E& exec) : exec_(&exec) {}

  /// Waits for stragglers; never lets tasks outlive the group state.
  ~task_group() {
    if (pending_.load(std::memory_order_acquire) != 0) try_wait_no_throw();
  }

  task_group(const task_group&) = delete;
  task_group& operator=(const task_group&) = delete;

  /// Forks `f` onto the executor.  Exceptions thrown by `f` are captured
  /// (first one wins) and rethrown from wait().  If submission itself
  /// fails (e.g. bad_alloc while erasing the callable), the fork count is
  /// rolled back before rethrowing so wait() never blocks on a task that
  /// was never enqueued.
  template <std::invocable F>
  void run(F&& f) {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    try {
      exec_->submit(
          [this, fn = std::forward<F>(f)]() mutable { invoke_one(fn); });
    } catch (...) {
      // Same decrement-and-wake critical section as invoke_one, in case a
      // concurrent waiter is already parked on the barrier.
      const std::lock_guard lock(m_);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
        cv_.notify_all();
      throw;
    }
  }

  /// Blocks until every forked task has finished, helping the executor
  /// run queued tasks meanwhile.  Rethrows the first captured exception.
  void wait() {
    wait_impl();
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

  /// Tasks forked and not yet completed.
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

 private:
  template <class F>
  void invoke_one(F& fn) {
    try {
      fn();
    } catch (...) {
      const std::lock_guard lock(m_);
      if (!error_) error_ = std::current_exception();
    }
    // The decrement and the wake form ONE critical section.  A waiter may
    // only conclude "done" from a pending_==0 it observed either under
    // this mutex or by locking it afterwards (wait_impl), so by the time
    // the group can be destroyed the final task has left this scope — the
    // cv/mutex members are never touched after the barrier opens.
    const std::lock_guard lock(m_);
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
      cv_.notify_all();
  }

  void wait_impl() {
    using namespace std::chrono_literals;
    // Can this thread ever run tasks itself?  Executors with a can_help()
    // hook answer for the CALLING thread (pool workers help, external
    // callers never do); executors with only try_help are assumed
    // helpers; executors with neither (the inline archetype) are not.
    // Worker status is a thread_local property — it cannot change while
    // we wait — so deciding once up front is sound.
    const bool helper = [this] {
      if constexpr (requires(E& e) {
                      { e.try_help() } -> std::convertible_to<bool>;
                    }) {
        if constexpr (requires(const E& e) {
                        { e.can_help() } -> std::convertible_to<bool>;
                      })
          return static_cast<bool>(exec_->can_help());
        else
          return true;
      } else {
        return false;
      }
    }();
    for (;;) {
      if (pending_.load(std::memory_order_acquire) == 0) {
        // Rendezvous with the final task: its decrement-to-zero happened
        // inside the mutex, so acquiring it here blocks until that task
        // has released its critical section and will never touch the
        // group again.  Only then may our caller destroy us.
        const std::lock_guard lock(m_);
        return;
      }
      // Helping phase: run whatever the executor can hand this thread.
      if constexpr (requires(E& e) {
                      { e.try_help() } -> std::convertible_to<bool>;
                    }) {
        while (helper && pending_.load(std::memory_order_acquire) != 0 &&
               exec_->try_help()) {
        }
      }
      std::unique_lock lock(m_);
      if (!helper) {
        // A thread that can never execute tasks needs no rescan: the
        // completion notify in invoke_one (decrement + wake under this
        // mutex, so never lost) is its only wake source.  Park untimed
        // instead of polling at ~1kHz for the whole fan-out.
        cv_.wait(lock, [this] {
          return pending_.load(std::memory_order_acquire) == 0;
        });
        return;
      }
      // Helping waiter parks bounded: between "nothing runnable" and
      // "parked", another thread may enqueue a task this waiter could
      // help with; the timeout re-arms the scan.
      if (cv_.wait_for(lock, 1ms, [this] {
            return pending_.load(std::memory_order_acquire) == 0;
          }))
        return;
    }
  }

  void try_wait_no_throw() noexcept {
    try {
      wait_impl();
    } catch (...) {
    }
  }

  E* exec_;
  std::atomic<std::size_t> pending_{0};
  std::mutex m_;
  std::condition_variable cv_;
  std::exception_ptr error_;
};

}  // namespace cgp::parallel
