// Insert-only striped concurrent hash map (mold-style): a fixed array of
// bucket shards, each guarded by its own mutex, with chained buckets that
// never rehash and nodes that never move.  The contract that buys the
// performance:
//
//   - insert/find are thread-safe and contend only within one shard
//     (stripe count is a compile-time power of two, default 64);
//   - there is NO erase: once inserted, a node's address — and therefore
//     every returned iterator/pointer — stays valid for the map's
//     lifetime (nodes live in per-shard deques);
//   - `insert` returns {iterator, inserted} exactly like std::map: losers
//     of a racing insert get the winner's entry and `false`;
//   - iteration (`begin`/`end`, `for_each`) is for quiescent phases —
//     concurrent inserts during a traversal may or may not be visited.
//
// Used as the cross-thread memo in the simplifier's instantiation cache
// (parallel batch rewriting) and the STLlint service's summary cache.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <tuple>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

namespace cgp::parallel {

template <class Key, class T, class Hash = std::hash<Key>,
          std::size_t Stripes = 64>
class concurrent_map {
  static_assert((Stripes & (Stripes - 1)) == 0,
                "stripe count must be a power of two");

  struct node {
    std::pair<const Key, T> kv;
    node* next = nullptr;    ///< bucket chain
    std::size_t seq = 0;     ///< insertion index within the shard's deque
    template <class K, class... Args>
    explicit node(K&& k, Args&&... args)
        : kv(std::piecewise_construct,
             std::forward_as_tuple(std::forward<K>(k)),
             std::forward_as_tuple(std::forward<Args>(args)...)) {}
  };

  struct shard {
    mutable std::mutex m;
    std::vector<node*> buckets;
    std::deque<node> nodes;  ///< stable addresses, insertion order
  };

 public:
  using value_type = std::pair<const Key, T>;

  /// `expected_size` sizes the fixed bucket arrays (mold sizes these from
  /// a HyperLogLog estimate; callers here usually know the batch size).
  /// Chains simply grow past the estimate — correctness never depends on
  /// it.
  explicit concurrent_map(std::size_t expected_size = 1024) {
    std::size_t per_shard = expected_size / Stripes + 1;
    std::size_t cap = 8;
    while (cap < per_shard * 2) cap <<= 1;
    for (shard& s : shards_) s.buckets.assign(cap, nullptr);
  }

  concurrent_map(const concurrent_map&) = delete;
  concurrent_map& operator=(const concurrent_map&) = delete;

  /// Forward iterator over (shard, insertion-order) pairs.  Dereference
  /// goes through a node pointer captured while the shard lock was held —
  /// never through the shard's deque, whose internal block map other
  /// threads mutate while inserting — so an iterator returned by
  /// insert/try_emplace may be dereferenced concurrently with inserts.
  /// Traversal (begin / operator++) still requires quiescence.
  class iterator {
   public:
    iterator() = default;
    value_type& operator*() const { return n_->kv; }
    value_type* operator->() const { return &n_->kv; }
    iterator& operator++() {
      ++ni_;
      settle();
      return *this;
    }
    iterator operator++(int) {
      iterator t = *this;
      ++*this;
      return t;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.map_ == b.map_ && a.si_ == b.si_ && a.ni_ == b.ni_;
    }

   private:
    friend class concurrent_map;
    /// Traversal construction (begin/end): indexes shard deques, so
    /// quiescent phases only.
    iterator(concurrent_map* m, std::size_t si, std::size_t ni)
        : map_(m), si_(si), ni_(ni) {
      settle();
    }
    /// Insert-path construction: the caller holds the shard lock and hands
    /// over the node pointer directly — no deque access ever again.
    iterator(concurrent_map* m, std::size_t si, node* n)
        : map_(m), si_(si), ni_(n->seq), n_(n) {}
    void settle() {
      while (si_ < Stripes && ni_ >= map_->shards_[si_].nodes.size()) {
        ++si_;
        ni_ = 0;
      }
      n_ = si_ < Stripes ? &map_->shards_[si_].nodes[ni_] : nullptr;
    }
    concurrent_map* map_ = nullptr;
    std::size_t si_ = Stripes;
    std::size_t ni_ = 0;
    node* n_ = nullptr;
  };

  [[nodiscard]] iterator begin() {
    return iterator(this, std::size_t{0}, std::size_t{0});
  }
  [[nodiscard]] iterator end() {
    return iterator(this, Stripes, std::size_t{0});
  }

  /// Inserts key -> T(args...) if absent.  Returns {iterator, true} for
  /// the winner, {iterator-to-existing, false} for everyone else.  The
  /// iterator's pointee is stable forever (insert-only contract).
  template <class K, class... Args>
  std::pair<iterator, bool> try_emplace(K&& key, Args&&... args) {
    const std::size_t h = Hash{}(key);
    const std::size_t si = h & (Stripes - 1);
    shard& s = shards_[si];
    const std::lock_guard lock(s.m);
    const std::size_t b = (h / Stripes) & (s.buckets.size() - 1);
    for (node* n = s.buckets[b]; n != nullptr; n = n->next)
      if (n->kv.first == key) return {iterator(this, si, n), false};
    s.nodes.emplace_back(std::forward<K>(key), std::forward<Args>(args)...);
    node* n = &s.nodes.back();
    n->seq = s.nodes.size() - 1;
    n->next = s.buckets[b];
    s.buckets[b] = n;
    return {iterator(this, si, n), true};
  }

  /// std::map-style insert of a ready value.
  std::pair<iterator, bool> insert(const Key& key, T value) {
    return try_emplace(key, std::move(value));
  }

  /// Pointer to the mapped value, or nullptr.  The pointer is stable for
  /// the map's lifetime.
  [[nodiscard]] T* find(const Key& key) {
    const std::size_t h = Hash{}(key);
    shard& s = shards_[h & (Stripes - 1)];
    const std::lock_guard lock(s.m);
    const std::size_t b = (h / Stripes) & (s.buckets.size() - 1);
    for (node* n = s.buckets[b]; n != nullptr; n = n->next)
      if (n->kv.first == key) return &n->kv.second;
    return nullptr;
  }
  [[nodiscard]] const T* find(const Key& key) const {
    return const_cast<concurrent_map*>(this)->find(key);
  }

  /// Entry count (exact when quiescent; a racing insert may or may not be
  /// counted).
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const shard& s : shards_) {
      const std::lock_guard lock(s.m);
      total += s.nodes.size();
    }
    return total;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Quiescent traversal helper (locks shard by shard).
  template <class Fn>
  void for_each(Fn&& fn) {
    for (shard& s : shards_) {
      const std::lock_guard lock(s.m);
      for (node& n : s.nodes) fn(n.kv);
    }
  }

  /// NOT thread-safe: drops every entry (callers must be quiescent).
  /// Insert-only refers to the concurrent phase; single-threaded
  /// invalidation (a simplifier gaining a rule) may reset wholesale.
  void clear() {
    for (shard& s : shards_) {
      const std::lock_guard lock(s.m);
      for (node*& b : s.buckets) b = nullptr;
      s.nodes.clear();
    }
  }

 private:
  std::array<shard, Stripes> shards_{};
};

}  // namespace cgp::parallel
