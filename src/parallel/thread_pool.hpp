// A work-queue thread pool: the execution substrate for the data-parallel
// generic library of Section 4.
//
// Design follows the C++ Core Guidelines concurrency rules: RAII thread
// ownership (jthread-style join-on-destroy), no detached threads, condition
// variables always paired with predicates, and all shared state behind one
// mutex.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/profile.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace cgp::telemetry::live {
class heartbeat;
}  // namespace cgp::telemetry::live

namespace cgp::parallel {

class thread_pool {
 public:
  /// Spawns `n` workers (defaults to hardware concurrency, at least 1).
  explicit thread_pool(unsigned n = 0);

  /// Joins all workers; outstanding tasks are completed first.
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  [[nodiscard]] unsigned size() const noexcept { return workers_; }

  /// Enqueues a task.
  void submit(std::function<void()> task);

  /// Runs `chunk_fn(0..chunks-1)` across the pool and BLOCKS until all
  /// chunks finish.  Exceptions from chunks are rethrown (first one wins).
  void run_chunks(std::size_t chunks,
                  const std::function<void(std::size_t)>& chunk_fn);

  /// Process-wide default pool.
  [[nodiscard]] static thread_pool& default_pool();

  /// Worker utilization in [0, 1]: busy time / (busy + idle) summed over
  /// workers since construction.  0 when nothing has been measured yet.
  [[nodiscard]] double utilization() const noexcept;

 private:
  // Queue entries carry the submitter's causal metadata BESIDE the task
  // instead of re-wrapping it into a second std::function: the trace
  // context and shadow-stack path are plain inline data (no allocation),
  // so traced/profiled submits cost a memcpy, not a heap round trip —
  // that difference is what keeps attribution inside the probe-overhead
  // budget perf_report gates on.
  struct queued_task {
    std::function<void()> fn;
    telemetry::trace::span_context ctx{};  ///< submitter's trace context
    std::uint64_t flow = 0;                ///< flow arrow id (traced only)
    telemetry::profile::call_path path{};  ///< submitter's shadow stack
  };

  void worker_loop(unsigned idx);
  void run_task(queued_task& item);

  unsigned workers_ = 0;
  std::vector<std::thread> threads_;
  // One stall-watchdog heartbeat per worker (live observability): workers
  // mark busy around each task, so a wedged task shows up as a stall while
  // an idle worker parked on the condition variable stays healthy.
  std::vector<std::shared_ptr<telemetry::live::heartbeat>> heartbeats_;
  std::deque<queued_task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;

  // Telemetry handles resolved once (references are stable); increments on
  // the hot path are lock-free sharded-atomic adds.  Metric names follow
  // the `parallel.thread_pool.*` convention (see README.md).
  telemetry::counter& tasks_submitted_;
  telemetry::counter& tasks_completed_;
  telemetry::counter& busy_us_;
  telemetry::counter& idle_us_;
  telemetry::gauge& queue_depth_;
  telemetry::histogram& task_us_;
};

}  // namespace cgp::parallel
