// A work-queue thread pool: the execution substrate for the data-parallel
// generic library of Section 4.
//
// Design follows the C++ Core Guidelines concurrency rules: RAII thread
// ownership (jthread-style join-on-destroy), no detached threads, condition
// variables always paired with predicates, and all shared state behind one
// mutex.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cgp::parallel {

class thread_pool {
 public:
  /// Spawns `n` workers (defaults to hardware concurrency, at least 1).
  explicit thread_pool(unsigned n = 0);

  /// Joins all workers; outstanding tasks are completed first.
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  [[nodiscard]] unsigned size() const noexcept { return workers_; }

  /// Enqueues a task.
  void submit(std::function<void()> task);

  /// Runs `chunk_fn(0..chunks-1)` across the pool and BLOCKS until all
  /// chunks finish.  Exceptions from chunks are rethrown (first one wins).
  void run_chunks(std::size_t chunks,
                  const std::function<void(std::size_t)>& chunk_fn);

  /// Process-wide default pool.
  [[nodiscard]] static thread_pool& default_pool();

 private:
  void worker_loop();

  unsigned workers_ = 0;
  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace cgp::parallel
