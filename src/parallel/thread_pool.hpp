// The legacy work-queue thread pool: one mutex-guarded FIFO shared by all
// workers.  Still the right executor for coarse, uniform fan-out (its
// FIFO ordering is also what the causal-trace tests pin down); the
// work-stealing pool (work_stealing_pool.hpp) is the executor for
// fine-grained, irregular, or nested work.  Both model the Executor
// concept (executor.hpp), so every algorithm and transport built on the
// concept runs unchanged on either.
//
// Design follows the C++ Core Guidelines concurrency rules: RAII thread
// ownership (jthread-style join-on-destroy), no detached threads, condition
// variables always paired with predicates, and all shared state behind one
// mutex.  Workers batch-pop several tasks per lock acquisition (the queue
// mutex is the pool's only contention point, so amortizing it matters once
// the threads-sweep benchmark puts submitters and workers on all cores).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/executor.hpp"
#include "parallel/options.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace cgp::telemetry::live {
class heartbeat;
}  // namespace cgp::telemetry::live

namespace cgp::parallel {

class thread_pool {
 public:
  /// Spawns `n` workers (defaults to hardware concurrency, at least 1).
  explicit thread_pool(unsigned n = 0);

  /// Unified construction surface shared with work_stealing_pool:
  /// validates the options (std::invalid_argument names the bad knob).
  /// `queue_capacity` bounds the shared queue — submit blocks for space
  /// (backpressure); `steal_attempts` is validated but unused here.
  explicit thread_pool(const pool_options& opts);

  /// Joins all workers; outstanding tasks are completed first.
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  [[nodiscard]] unsigned worker_count() const noexcept { return workers_; }
  /// Back-compat alias for worker_count().
  [[nodiscard]] unsigned size() const noexcept { return workers_; }

  /// Enqueues any invocable.  Concept-bounded and single-erasure: the
  /// callable is erased once into task_fn, so move-only callables work
  /// and std::function callers no longer pay a second wrapper.
  template <std::invocable F>
  void submit(F&& task) {
    detail::task_item item;
    item.fn = task_fn(std::forward<F>(task));
    detail::capture_task_meta(item, "parallel.thread_pool.task");
    enqueue(std::move(item));
  }

  /// Deprecated entry point: converting through std::function first adds
  /// a copyability requirement and (for callers that built the function
  /// themselves) a second type erasure.  Pass the callable directly.
  [[deprecated(
      "pass the callable straight to submit(F&&); routing through "
      "std::function<void()> forces an extra type-erasure")]]
  void submit(std::function<void()> task) {
    submit<std::function<void()>&>(task);
  }

  /// Runs `chunk_fn(0..chunks-1)` across the pool and BLOCKS until all
  /// chunks finish.  Exceptions from chunks are rethrown (first one wins).
  /// Safe to call from inside a pool task: the waiting worker helps run
  /// queued chunks instead of deadlocking the queue (see task_group).
  void run_chunks(std::size_t chunks,
                  const std::function<void(std::size_t)>& chunk_fn);

  /// Helping hook for task_group::wait — runs one queued task on the
  /// CALLING thread if (and only if) it is one of this pool's workers.
  /// Returns false for non-workers and when the queue is empty, so
  /// external waiters keep the legacy block-on-condvar behavior.
  bool try_help();

  /// True iff the CALLING thread is one of this pool's workers — i.e.
  /// try_help could ever succeed from here.  task_group::wait uses this
  /// to park external waiters untimed instead of poll-rescanning.
  [[nodiscard]] bool can_help() const noexcept;

  /// Process-wide default pool.
  [[nodiscard]] static thread_pool& default_pool();

  /// Worker utilization in [0, 1]: busy time / (busy + idle) summed over
  /// workers since construction.  0 when nothing has been measured yet.
  [[nodiscard]] double utilization() const noexcept;

 private:
  void enqueue(detail::task_item&& item);
  void worker_loop(unsigned idx);
  void execute(detail::task_item& item);

  unsigned workers_ = 0;
  std::size_t capacity_ = 0;  ///< 0 = unbounded
  std::vector<std::thread> threads_;
  // One stall-watchdog heartbeat per worker (live observability): workers
  // mark busy around each task, so a wedged task shows up as a stall while
  // an idle worker parked on the condition variable stays healthy.
  std::vector<std::shared_ptr<telemetry::live::heartbeat>> heartbeats_;
  std::deque<detail::task_item> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable space_cv_;  ///< submitters waiting on capacity
  bool stopping_ = false;

  // Telemetry handles resolved once (references are stable); increments on
  // the hot path are lock-free sharded-atomic adds.  Metric names follow
  // the `parallel.thread_pool.*` convention (see README.md).
  telemetry::counter& tasks_submitted_;
  telemetry::counter& tasks_completed_;
  telemetry::counter& busy_us_;
  telemetry::counter& idle_us_;
  telemetry::gauge& queue_depth_;
  telemetry::histogram& task_us_;
};

static_assert(Executor<thread_pool>);

}  // namespace cgp::parallel
