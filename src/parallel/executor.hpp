// The Executor concept: the driver-facing boundary of the parallel layer,
// mirroring the Transport concept of `distributed/transport.hpp` (Section 2
// methodology: generic libraries expose concept-bounded module boundaries
// so implementations can be swapped without touching call sites).
//
// An Executor is anything that can host the data-parallel algorithms:
// construct from `pool_options`, accept work via a concept-bounded
// templated `submit` (any `std::invocable`, including move-only callables
// — no double type-erasure through std::function), and report its
// `worker_count`.  The fork-join layer (`task_group`, `run_chunks`, the
// four parallel algorithms) is built on top of exactly this surface, so
// `parallel_for` over the legacy `thread_pool`, the `work_stealing_pool`,
// or the inline archetype below is the same code.
//
// `executor_archetype` is the syntactic archetype (core/archetypes.hpp
// style): the MINIMAL model of the concept, with run-inline semantics.
// Instantiating the algorithms with it proves they require no syntax
// beyond the concept — the static_asserts at the bottom of this header
// and the instantiation in tests/executor_test.cpp are the proof
// obligations.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>

#include "parallel/options.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace cgp::parallel {

// ---------------------------------------------------------------------------
// task_fn: a move-only type-erased () -> void callable
// ---------------------------------------------------------------------------

/// The executor-side task representation.  Unlike std::function it accepts
/// move-only callables (a closure owning a std::unique_ptr, a promise, a
/// one-shot latch count) and erases the callable exactly ONCE: the
/// templated `submit` constructs the task_fn directly from the caller's
/// invocable, and the queue stores causal metadata BESIDE it (see
/// `task_item`) instead of re-wrapping into a second closure.
class task_fn {
 public:
  task_fn() = default;

  template <std::invocable F>
    requires(!std::same_as<std::remove_cvref_t<F>, task_fn>)
  task_fn(F&& f)  // NOLINT(google-explicit-constructor): converting on purpose
      : impl_(std::make_unique<model<std::decay_t<F>>>(std::forward<F>(f))) {}

  task_fn(task_fn&&) noexcept = default;
  task_fn& operator=(task_fn&&) noexcept = default;
  task_fn(const task_fn&) = delete;
  task_fn& operator=(const task_fn&) = delete;

  void operator()() { impl_->call(); }
  [[nodiscard]] explicit operator bool() const noexcept {
    return impl_ != nullptr;
  }

 private:
  struct base {
    virtual ~base() = default;
    virtual void call() = 0;
  };
  template <class F>
  struct model final : base {
    F f;
    explicit model(const F& g) : f(g) {}
    explicit model(F&& g) : f(std::move(g)) {}
    void call() override { f(); }
  };
  std::unique_ptr<base> impl_;
};

// ---------------------------------------------------------------------------
// The concept
// ---------------------------------------------------------------------------

// clang-format off
template <class E>
concept Executor =
    std::constructible_from<E, const pool_options&> &&
    requires(E e, const E ce, task_fn t) {
      // Work submission: the archetypal erased task must be accepted.  Real
      // models take any std::invocable via a concept-bounded template, of
      // which this is one instantiation.
      { e.submit(std::move(t)) };
      // Sizing for grain control: how wide can a fan-out usefully be.
      { ce.worker_count() } -> std::convertible_to<unsigned>;
    };
// clang-format on

// ---------------------------------------------------------------------------
// Shared queue-entry payload (causal metadata rides beside the task)
// ---------------------------------------------------------------------------

namespace detail {

/// One queued task with the submitter's causal metadata carried INLINE
/// beside it rather than re-wrapped into a second closure: the trace
/// context and shadow-stack path are plain data (no allocation), so
/// traced/profiled submits cost a memcpy, not a heap round trip — the
/// difference that keeps attribution inside the probe-overhead budget
/// perf_report gates on.  Both Executor models queue exactly this.
struct task_item {
  task_fn fn;
  telemetry::trace::span_context ctx{};  ///< submitter's trace context
  std::uint64_t flow = 0;                ///< flow arrow id (traced only)
  telemetry::profile::call_path path{};  ///< submitter's shadow stack
};

/// Captures the submitting thread's trace context + shadow-stack path into
/// `item` and opens the flow arrow.  `flow_name` is the span both ends of
/// the arrow carry (e.g. "parallel.thread_pool.task").
inline void capture_task_meta(task_item& item, const char* flow_name) {
  if constexpr (telemetry::kEnabled) {
    item.ctx = telemetry::trace::current_context();
    if (item.ctx.active())
      item.flow = telemetry::trace::flow_begin(flow_name, "parallel");
    item.path = telemetry::profile::current_path();
  }
}

/// Runs a queued task under the submitter's adopted causal identity: the
/// worker-side half of capture_task_meta.  `frame` is the interned probe
/// frame for this executor's task scope.
inline void run_task_item(task_item& item, const char* flow_name,
                          telemetry::profile::frame_id frame) {
  if constexpr (telemetry::kEnabled) {
    const bool traced = item.ctx.active();
    if (traced || telemetry::profile::profiler::global().enabled()) {
      std::optional<telemetry::trace::context_scope> adopt;
      std::optional<telemetry::trace::trace_span> span;
      if (traced) {
        adopt.emplace(item.ctx);
        span.emplace(flow_name, "parallel");
        telemetry::trace::flow_end(item.flow, flow_name, "parallel");
      }
      telemetry::profile::adopt_scope padopt(item.path);
      telemetry::profile::probe probe(frame);
      item.fn();
      return;
    }
  }
  item.fn();
}

}  // namespace detail

// ---------------------------------------------------------------------------
// The archetype
// ---------------------------------------------------------------------------

/// Minimal syntactic model of Executor.  Every operation is the weakest
/// legal implementation: submitted work runs inline on the calling thread,
/// and the reported width is 1.  Algorithms instantiated with it must
/// compile — and produce correct (serial) results — without reaching
/// beyond the concept.
class executor_archetype {
 public:
  executor_archetype() = default;
  explicit executor_archetype(const pool_options& opts) { opts.validate(); }

  template <std::invocable F>
  void submit(F&& f) {
    std::invoke(std::forward<F>(f));
  }

  [[nodiscard]] unsigned worker_count() const noexcept { return 1; }
};

// Proof obligation: the archetype models the concept.  The real pools
// assert their own conformance next to their definitions (thread_pool.hpp,
// work_stealing_pool.hpp) to keep this header dependency-light.
static_assert(Executor<executor_archetype>);

}  // namespace cgp::parallel
