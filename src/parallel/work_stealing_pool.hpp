// Work-stealing scheduler: the second model of the Executor concept, built
// for fine-grained, irregular, and NESTED parallelism (mold-style: one
// deque per worker, owner pops LIFO for locality, thieves steal FIFO for
// breadth — the oldest task is the one most likely to fan out further).
//
// Structure:
//   - each worker owns a lock-guarded deque; a task submitted FROM a
//     worker goes to its own deque (cache-warm, no shared-queue
//     contention), external submits land in a shared inject queue;
//   - an idle worker pops its own deque from the back, then the inject
//     queue from the front, then probes `steal_attempts` random victims
//     plus one full round-robin scan, stealing from the FRONT of a
//     victim's deque;
//   - idle/wake protocol without thundering herds: submitters wake at
//     most ONE parked worker; a worker that claims a task while more
//     remain queued wakes one more (wake chaining), so the woken set
//     grows with the work instead of stampeding every sleeper at once;
//     parks are bounded by `park_timeout_us` to ride out lost-wakeup
//     races;
//   - nested fork-join recurses through task_group: a worker waiting on
//     a group runs its own (LIFO) splits via try_help instead of
//     blocking, so recursive parallel_for cannot deadlock the scheduler.
//
// Telemetry mirrors the legacy pool (`parallel.work_stealing.*`): queued
// tasks carry {fn, span ctx, flow, call path} inline exactly like
// thread_pool's, each worker has a stall-watchdog heartbeat, and the new
// steal/park/execute counters feed the threads-sweep benchmarks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/executor.hpp"
#include "parallel/options.hpp"
#include "telemetry/telemetry.hpp"

namespace cgp::telemetry::live {
class heartbeat;
}  // namespace cgp::telemetry::live

namespace cgp::parallel {

class work_stealing_pool {
 public:
  explicit work_stealing_pool(const pool_options& opts = {});
  /// Convenience twin of thread_pool(unsigned).
  explicit work_stealing_pool(unsigned n)
      : work_stealing_pool(pool_options{.workers = n}) {}

  /// Joins all workers; every task submitted before destruction runs
  /// first (destruction drains).
  ~work_stealing_pool();

  work_stealing_pool(const work_stealing_pool&) = delete;
  work_stealing_pool& operator=(const work_stealing_pool&) = delete;

  [[nodiscard]] unsigned worker_count() const noexcept { return workers_; }

  /// Concept-bounded single-erasure submission (see thread_pool::submit).
  /// Worker-thread submits go to the caller's own deque; external submits
  /// to the inject queue (with capacity backpressure when configured).
  template <std::invocable F>
  void submit(F&& task) {
    detail::task_item item;
    item.fn = task_fn(std::forward<F>(task));
    detail::capture_task_meta(item, "parallel.work_stealing.task");
    enqueue(std::move(item));
  }

  /// Fork-join convenience mirroring thread_pool::run_chunks; chunks run
  /// through a task_group so nested calls stay on the stealing path.
  void run_chunks(std::size_t chunks,
                  const std::function<void(std::size_t)>& chunk_fn);

  /// Helping hook for task_group::wait — pops/steals one task and runs it
  /// on the calling thread if it is one of this pool's workers.  Returns
  /// false for non-workers and when nothing is runnable anywhere.
  bool try_help();

  /// True iff the CALLING thread is one of this pool's workers — i.e.
  /// try_help could ever succeed from here.  task_group::wait uses this
  /// to park external waiters untimed instead of poll-rescanning.
  [[nodiscard]] bool can_help() const noexcept;

 private:
  struct worker_slot {
    std::mutex m;
    std::deque<detail::task_item> dq;
  };

  void enqueue(detail::task_item&& item);
  bool next_task(unsigned self, detail::task_item& out);
  void execute(detail::task_item& item);
  void worker_loop(unsigned idx);
  void wake_one();

  unsigned workers_ = 0;
  unsigned steal_attempts_ = 4;
  std::uint32_t park_timeout_us_ = 2000;
  std::size_t capacity_ = 0;  ///< inject-queue bound; 0 = unbounded

  std::vector<std::unique_ptr<worker_slot>> slots_;
  std::vector<std::thread> threads_;
  std::vector<std::shared_ptr<telemetry::live::heartbeat>> heartbeats_;

  std::mutex inject_m_;
  std::deque<detail::task_item> inject_;
  std::condition_variable space_cv_;  ///< submitters waiting on capacity

  std::mutex idle_m_;
  std::condition_variable idle_cv_;
  std::atomic<unsigned> sleepers_{0};
  std::atomic<std::size_t> ready_{0};  ///< queued-but-unclaimed tasks
  std::atomic<bool> stopping_{false};

  // `parallel.work_stealing.*` (README metric naming conventions).
  telemetry::counter& tasks_submitted_;
  telemetry::counter& tasks_completed_;
  telemetry::counter& steals_;
  telemetry::counter& steal_probes_;
  telemetry::counter& parks_;
  telemetry::counter& busy_us_;
  telemetry::gauge& queue_depth_;
  telemetry::histogram& task_us_;
};

static_assert(Executor<work_stealing_pool>);

}  // namespace cgp::parallel
