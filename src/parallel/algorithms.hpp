// The data-parallel generic library of Section 4, rebuilt over the
// Executor concept.
//
// "The programmer still thinks and programs in parallel, but more
// abstractly" — and both concept layers do real work here.  The *semantic*
// concepts of Section 3: `parallel_reduce` and `parallel_scan` reassociate
// the operation across chunks, which is only meaning-preserving for
// associative operations, so both are constrained by the Monoid concept —
// a non-associative operation is a compile-time error, not a silent wrong
// answer.  The *executor* concept of this layer: every algorithm is
// templated on any `Executor`, so the same code runs over the legacy
// `thread_pool`, the `work_stealing_pool`, or the inline archetype — the
// executor is a plugged-in module boundary, exactly like the element type.
//
// Grain control: every algorithm takes a `grain` — the minimum number of
// elements a chunk must hold to be worth forking (amortizing submit + wake
// cost).  [0, n) splits into at most `worker_count * 4` chunks of at least
// `grain` elements; work smaller than one grain runs inline.
#pragma once

#include <functional>
#include <vector>

#include "core/algebraic.hpp"
#include "parallel/executor.hpp"
#include "parallel/task_group.hpp"
#include "parallel/thread_pool.hpp"
#include "sequences/sort.hpp"

namespace cgp::parallel {

namespace detail {

/// Chunk [0,n) into at most worker_count*4 chunks of at least `grain`.
struct chunking {
  std::size_t chunk_count;
  std::size_t chunk_size;
};

template <Executor E>
chunking chunks_for(std::size_t n, const E& exec, std::size_t grain = 1024) {
  if (n == 0) return {0, 0};
  if (grain == 0) grain = 1;
  const std::size_t max_chunks =
      static_cast<std::size_t>(exec.worker_count()) * 4;
  std::size_t count = std::min(max_chunks, (n + grain - 1) / grain);
  count = std::max<std::size_t>(count, 1);
  const std::size_t size = (n + count - 1) / count;
  return {(n + size - 1) / size, size};
}

/// Blocking chunk fan-out over any Executor.  Pools expose a `run_chunks`
/// member carrying their own telemetry identity (span + trace + profile
/// frame named after the pool) — use it when present; minimal models (the
/// archetype) get the plain task_group fan-out, which is all the concept
/// promises.
template <Executor E>
void run_chunks_on(E& exec, std::size_t chunks,
                   const std::function<void(std::size_t)>& fn) {
  if constexpr (requires { exec.run_chunks(chunks, fn); }) {
    exec.run_chunks(chunks, fn);
  } else {
    if (chunks == 0) return;
    task_group<E> group(exec);
    for (std::size_t c = 0; c < chunks; ++c) group.run([&fn, c] { fn(c); });
    group.wait();
  }
}

}  // namespace detail

/// parallel_for: applies fn(i) for i in [0, n) across any Executor.
template <class Fn, Executor E = thread_pool>
  requires std::invocable<Fn&, std::size_t>
void parallel_for(std::size_t n, Fn fn,
                  E& exec = thread_pool::default_pool(),
                  std::size_t grain = 1024) {
  const auto [chunks, size] = detail::chunks_for(n, exec, grain);
  if (chunks <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  detail::run_chunks_on(exec, chunks, [&, size = size](std::size_t c) {
    const std::size_t lo = c * size;
    const std::size_t hi = std::min(lo + size, n);
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

/// parallel_transform: out[i] = fn(in[i]).
template <std::random_access_iterator I, std::random_access_iterator O,
          class Fn, Executor E = thread_pool>
void parallel_transform(I first, I last, O out, Fn fn,
                        E& exec = thread_pool::default_pool(),
                        std::size_t grain = 1024) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  parallel_for(
      n, [&](std::size_t i) { out[i] = fn(first[i]); }, exec, grain);
}

/// Monoid-constrained parallel reduction.  Deterministic: chunk results are
/// combined in index order, so only associativity (not commutativity) is
/// required — exactly the Monoid contract.
template <class Op, std::random_access_iterator I, Executor E = thread_pool>
  requires core::Monoid<std::iter_value_t<I>, Op>
[[nodiscard]] std::iter_value_t<I> parallel_reduce(
    I first, I last, Op op = {}, E& exec = thread_pool::default_pool(),
    std::size_t grain = 1024) {
  using T = std::iter_value_t<I>;
  const std::size_t n = static_cast<std::size_t>(last - first);
  const auto [chunks, size] = detail::chunks_for(n, exec, grain);
  const T id = core::identity_element<T, Op>();
  if (chunks <= 1) {
    T acc = id;
    for (std::size_t i = 0; i < n; ++i) acc = op(acc, first[i]);
    return acc;
  }
  std::vector<T> partial(chunks, id);
  detail::run_chunks_on(exec, chunks, [&, size = size](std::size_t c) {
    const std::size_t lo = c * size;
    const std::size_t hi = std::min(lo + size, n);
    T acc = id;
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, first[i]);
    partial[c] = acc;
  });
  T acc = id;
  for (const T& p : partial) acc = op(acc, p);
  return acc;
}

/// Monoid-constrained inclusive scan (two-phase block scan):
///   phase 1 — each chunk reduces to a block sum in parallel;
///   serial   — exclusive scan over the (few) block sums;
///   phase 2 — each chunk rescans with its offset in parallel.
template <class Op, std::random_access_iterator I,
          std::random_access_iterator O, Executor E = thread_pool>
  requires core::Monoid<std::iter_value_t<I>, Op>
void parallel_inclusive_scan(I first, I last, O out, Op op = {},
                             E& exec = thread_pool::default_pool(),
                             std::size_t grain = 1024) {
  using T = std::iter_value_t<I>;
  const std::size_t n = static_cast<std::size_t>(last - first);
  const auto [chunks, size] = detail::chunks_for(n, exec, grain);
  const T id = core::identity_element<T, Op>();
  if (chunks <= 1) {
    T acc = id;
    for (std::size_t i = 0; i < n; ++i) {
      acc = op(acc, first[i]);
      out[i] = acc;
    }
    return;
  }
  std::vector<T> block_sum(chunks, id);
  detail::run_chunks_on(exec, chunks, [&, size = size](std::size_t c) {
    const std::size_t lo = c * size;
    const std::size_t hi = std::min(lo + size, n);
    T acc = id;
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, first[i]);
    block_sum[c] = acc;
  });
  std::vector<T> offset(chunks, id);
  for (std::size_t c = 1; c < chunks; ++c)
    offset[c] = op(offset[c - 1], block_sum[c - 1]);
  detail::run_chunks_on(exec, chunks, [&, size = size](std::size_t c) {
    const std::size_t lo = c * size;
    const std::size_t hi = std::min(lo + size, n);
    T acc = offset[c];
    for (std::size_t i = lo; i < hi; ++i) {
      acc = op(acc, first[i]);
      out[i] = acc;
    }
  });
}

/// Canonical short name for the inclusive scan (the four data-parallel
/// algorithms are for/reduce/scan/sort).
template <class Op, std::random_access_iterator I,
          std::random_access_iterator O, Executor E = thread_pool>
  requires core::Monoid<std::iter_value_t<I>, Op>
void parallel_scan(I first, I last, O out, Op op = {},
                   E& exec = thread_pool::default_pool(),
                   std::size_t grain = 1024) {
  parallel_inclusive_scan(first, last, out, op, exec, grain);
}

/// Parallel mergesort: chunks sorted in parallel with the concept-dispatched
/// sequential sort, then pairwise parallel merge rounds.
template <std::random_access_iterator I,
          std::indirect_strict_weak_order<I> Cmp = std::less<>,
          Executor E = thread_pool>
void parallel_sort(I first, I last, Cmp cmp = {},
                   E& exec = thread_pool::default_pool(),
                   std::size_t grain = 4096) {
  using T = std::iter_value_t<I>;
  const std::size_t n = static_cast<std::size_t>(last - first);
  const auto [chunks, size] = detail::chunks_for(n, exec, grain);
  if (chunks <= 1) {
    cgp::sequences::sort(first, last, cmp);
    return;
  }
  detail::run_chunks_on(exec, chunks, [&, size = size](std::size_t c) {
    const std::size_t lo = c * size;
    const std::size_t hi = std::min(lo + size, n);
    cgp::sequences::sort(first + lo, first + hi, cmp);
  });
  // Pairwise merge rounds through a buffer.
  std::vector<T> buffer(first, last);
  bool in_buffer = false;  // which storage currently holds the runs
  for (std::size_t width = size; width < n; width *= 2) {
    const std::size_t pairs = (n + 2 * width - 1) / (2 * width);
    auto src = [&](std::size_t i) -> T& {
      return in_buffer ? buffer[i] : first[i];
    };
    auto dst = [&](std::size_t i) -> T& {
      return in_buffer ? first[i] : buffer[i];
    };
    detail::run_chunks_on(exec, pairs, [&](std::size_t p) {
      const std::size_t lo = p * 2 * width;
      const std::size_t mid = std::min(lo + width, n);
      const std::size_t hi = std::min(lo + 2 * width, n);
      std::size_t a = lo, b = mid, o = lo;
      while (a < mid && b < hi)
        dst(o++) = cmp(src(b), src(a)) ? src(b++) : src(a++);
      while (a < mid) dst(o++) = src(a++);
      while (b < hi) dst(o++) = src(b++);
    });
    in_buffer = !in_buffer;
  }
  if (in_buffer)
    for (std::size_t i = 0; i < n; ++i) first[i] = buffer[i];
}

}  // namespace cgp::parallel
