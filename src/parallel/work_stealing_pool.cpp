#include "parallel/work_stealing_pool.hpp"

#include <atomic>
#include <chrono>
#include <string>

#include "parallel/task_group.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/watchdog.hpp"

namespace cgp::parallel {

namespace {

using clock = std::chrono::steady_clock;

std::uint64_t us_between(clock::time_point a, clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

unsigned next_pool_id() {
  static std::atomic<unsigned> id{0};
  return id.fetch_add(1, std::memory_order_relaxed);
}

// Which stealing pool (if any) the current thread works for, and its
// worker index there: submit routes through this to reach the caller's
// own deque, and try_help refuses foreign threads (external waiters keep
// the wait-only contract, same as thread_pool).
thread_local const work_stealing_pool* tls_ws_pool = nullptr;
thread_local unsigned tls_ws_index = 0;

// Cheap per-thread xorshift for victim probing.  Deterministically seeded
// from the worker index — probe SEQUENCES differ across workers, which is
// all randomized stealing needs, and nothing here depends on wall-clock
// entropy.
thread_local std::uint32_t tls_rng_state = 0;

std::uint32_t next_rand() {
  std::uint32_t x = tls_rng_state;
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  tls_rng_state = x;
  return x;
}

}  // namespace

work_stealing_pool::work_stealing_pool(const pool_options& opts)
    : tasks_submitted_(telemetry::registry::global().get_counter(
          "parallel.work_stealing.tasks_submitted")),
      tasks_completed_(telemetry::registry::global().get_counter(
          "parallel.work_stealing.tasks_completed")),
      steals_(telemetry::registry::global().get_counter(
          "parallel.work_stealing.steals")),
      steal_probes_(telemetry::registry::global().get_counter(
          "parallel.work_stealing.steal_probes")),
      parks_(telemetry::registry::global().get_counter(
          "parallel.work_stealing.parks")),
      busy_us_(telemetry::registry::global().get_counter(
          "parallel.work_stealing.busy_us")),
      queue_depth_(telemetry::registry::global().get_gauge(
          "parallel.work_stealing.queue_depth")),
      task_us_(telemetry::registry::global().get_histogram(
          "parallel.work_stealing.task_us")) {
  opts.validate();
  workers_ = opts.resolved_workers();
  steal_attempts_ = opts.steal_attempts;
  park_timeout_us_ = opts.park_timeout_us;
  capacity_ = opts.queue_capacity;
  slots_.reserve(workers_);
  for (unsigned i = 0; i < workers_; ++i)
    slots_.push_back(std::make_unique<worker_slot>());
  const unsigned pool_id = next_pool_id();
  heartbeats_.reserve(workers_);
  for (unsigned i = 0; i < workers_; ++i)
    heartbeats_.push_back(
        telemetry::live::watchdog::global().register_heartbeat(
            "parallel.work_stealing.p" + std::to_string(pool_id) + ".worker" +
            std::to_string(i)));
  threads_.reserve(workers_);
  for (unsigned i = 0; i < workers_; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

work_stealing_pool::~work_stealing_pool() {
  stopping_.store(true, std::memory_order_release);
  {
    // Empty critical section: orders the store against the workers'
    // predicate re-check under idle_m_, so no sleeper misses the stop.
    const std::lock_guard lock(idle_m_);
  }
  idle_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  heartbeats_.clear();
  if constexpr (telemetry::kEnabled)
    telemetry::live::watchdog::global().prune_expired();
}

void work_stealing_pool::wake_one() {
  if (sleepers_.load(std::memory_order_acquire) == 0) return;
  // The lock pairs with the sleeper's ++sleepers_/wait under idle_m_,
  // closing the "checked sleepers_ before the sleeper registered" race;
  // the bounded park timeout backstops anything left.
  const std::lock_guard lock(idle_m_);
  idle_cv_.notify_one();
}

void work_stealing_pool::enqueue(detail::task_item&& item) {
  // ready_ is bumped BEFORE the publishing lock is released: claims
  // (fetch_sub in next_task) run under the same lock, so the increment
  // for an item always lands before any decrement for it — the counter
  // can never transiently wrap below zero and fake "work everywhere" to
  // sleepers or stall the stopping&&drained exit check.
  if (tls_ws_pool == this) {
    // Worker self-submit: own deque, back (LIFO hot end).  Never blocks on
    // capacity — a worker is its own consumer, and fork-join would
    // deadlock against a full inject queue.
    worker_slot& s = *slots_[tls_ws_index];
    const std::lock_guard lock(s.m);
    s.dq.push_back(std::move(item));
    ready_.fetch_add(1, std::memory_order_acq_rel);
  } else {
    std::unique_lock lock(inject_m_);
    if (capacity_ != 0)
      space_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) ||
               inject_.size() < capacity_;
      });
    inject_.push_back(std::move(item));
    ready_.fetch_add(1, std::memory_order_acq_rel);
  }
  tasks_submitted_.add();
  queue_depth_.add();
  wake_one();
}

// Claim order: own deque back (LIFO, cache-warm), inject queue front
// (FIFO fairness for external work), then stealing — `steal_attempts_`
// random probes followed by one full round-robin sweep so a lone loaded
// victim is always found before parking.  Thieves take the FRONT of a
// victim's deque: the oldest task is the coarsest split, the one worth
// moving across workers.
bool work_stealing_pool::next_task(unsigned self, detail::task_item& out) {
  {
    worker_slot& s = *slots_[self];
    const std::lock_guard lock(s.m);
    if (!s.dq.empty()) {
      out = std::move(s.dq.back());
      s.dq.pop_back();
      ready_.fetch_sub(1, std::memory_order_acq_rel);
      queue_depth_.sub();
      return true;
    }
  }
  {
    const std::lock_guard lock(inject_m_);
    if (!inject_.empty()) {
      out = std::move(inject_.front());
      inject_.pop_front();
      ready_.fetch_sub(1, std::memory_order_acq_rel);
      queue_depth_.sub();
      if (capacity_ != 0) space_cv_.notify_one();
      return true;
    }
  }
  if (workers_ > 1) {
    auto steal_from = [&](unsigned victim) {
      if (victim == self) return false;
      worker_slot& v = *slots_[victim];
      const std::lock_guard lock(v.m);
      steal_probes_.add();
      if (v.dq.empty()) return false;
      out = std::move(v.dq.front());
      v.dq.pop_front();
      ready_.fetch_sub(1, std::memory_order_acq_rel);
      queue_depth_.sub();
      steals_.add();
      return true;
    };
    for (unsigned a = 0; a < steal_attempts_; ++a)
      if (steal_from(next_rand() % workers_)) return true;
    for (unsigned v = 0; v < workers_; ++v)
      if (steal_from((self + 1 + v) % workers_)) return true;
  }
  return false;
}

void work_stealing_pool::execute(detail::task_item& item) {
  static const auto kTaskFrame =
      telemetry::profile::intern("parallel.work_stealing.task");
  if constexpr (telemetry::kEnabled) {
    const auto run_start = clock::now();
    detail::run_task_item(item, "parallel.work_stealing.task", kTaskFrame);
    const std::uint64_t us = us_between(run_start, clock::now());
    busy_us_.add(us);
    task_us_.record(us);
  } else {
    detail::run_task_item(item, "parallel.work_stealing.task", kTaskFrame);
  }
  tasks_completed_.add();
}

bool work_stealing_pool::can_help() const noexcept {
  return tls_ws_pool == this;
}

bool work_stealing_pool::try_help() {
  if (tls_ws_pool != this) return false;
  detail::task_item item;
  if (!next_task(tls_ws_index, item)) return false;
  execute(item);
  return true;
}

void work_stealing_pool::worker_loop(unsigned idx) {
  tls_ws_pool = this;
  tls_ws_index = idx;
  tls_rng_state = 0x9E3779B9u * (idx + 1) | 1u;  // golden-ratio spread, odd
  telemetry::live::heartbeat& hb = *heartbeats_[idx];
  detail::task_item item;
  for (;;) {
    if (next_task(idx, item)) {
      // Wake chaining: if more work remains queued after this claim, pull
      // ONE more sleeper in.  Each woken worker that finds work wakes the
      // next — the active set grows geometrically with load, and an
      // isolated submit wakes exactly one thread instead of the herd.
      if (ready_.load(std::memory_order_acquire) > 0) wake_one();
      hb.begin_work();
      execute(item);
      hb.end_work();
      item.fn = task_fn();
      continue;
    }
    if (stopping_.load(std::memory_order_acquire) &&
        ready_.load(std::memory_order_acquire) == 0)
      return;  // stopping and drained
    // Park, bounded: the timeout re-arms the scan so a wakeup lost to the
    // sleepers_-vs-enqueue race costs at most park_timeout_us.
    parks_.add();
    std::unique_lock lock(idle_m_);
    sleepers_.fetch_add(1, std::memory_order_acq_rel);
    idle_cv_.wait_for(lock, std::chrono::microseconds(park_timeout_us_),
                      [this] {
                        return stopping_.load(std::memory_order_acquire) ||
                               ready_.load(std::memory_order_acquire) > 0;
                      });
    sleepers_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void work_stealing_pool::run_chunks(
    std::size_t chunks, const std::function<void(std::size_t)>& chunk_fn) {
  if (chunks == 0) return;
  telemetry::span span("parallel.work_stealing.run_chunks");
  span.charge(chunks);
  telemetry::trace::child_span tspan("parallel.work_stealing.run_chunks",
                                     "parallel");
  static const auto kChunksFrame =
      telemetry::profile::intern("parallel.work_stealing.run_chunks");
  telemetry::profile::probe pprobe(kChunksFrame);
  if (chunks == 1) {
    chunk_fn(0);
    return;
  }
  task_group<work_stealing_pool> group(*this);
  for (std::size_t c = 0; c < chunks; ++c)
    group.run([&chunk_fn, c] { chunk_fn(c); });
  group.wait();
}

}  // namespace cgp::parallel
