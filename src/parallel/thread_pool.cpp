#include "parallel/thread_pool.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <exception>
#include <optional>

#include "parallel/task_group.hpp"
#include "telemetry/profile.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/watchdog.hpp"

namespace cgp::parallel {

namespace {

using clock = std::chrono::steady_clock;

std::uint64_t us_between(clock::time_point a, clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

// Distinguishes heartbeat names across pool instances (tests construct
// many short-lived pools; stale registrations self-prune via weak_ptr).
unsigned next_pool_id() {
  static std::atomic<unsigned> id{0};
  return id.fetch_add(1, std::memory_order_relaxed);
}

// Which pool (if any) the current thread works for: lets try_help refuse
// to run tasks on foreign threads, preserving the legacy contract that
// external callers of run_chunks only wait, never execute.
thread_local const thread_pool* tls_worker_pool = nullptr;

// Workers drain up to this many tasks per queue-lock acquisition.  The
// single shared mutex is the legacy pool's only contention point; batching
// amortizes it without starving peers (the batch is small and bounded).
constexpr std::size_t kPopBatch = 4;

}  // namespace

thread_pool::thread_pool(unsigned n) : thread_pool(pool_options{.workers = n}) {}

thread_pool::thread_pool(const pool_options& opts)
    : tasks_submitted_(telemetry::registry::global().get_counter(
          "parallel.thread_pool.tasks_submitted")),
      tasks_completed_(telemetry::registry::global().get_counter(
          "parallel.thread_pool.tasks_completed")),
      busy_us_(telemetry::registry::global().get_counter(
          "parallel.thread_pool.busy_us")),
      idle_us_(telemetry::registry::global().get_counter(
          "parallel.thread_pool.idle_us")),
      queue_depth_(telemetry::registry::global().get_gauge(
          "parallel.thread_pool.queue_depth")),
      task_us_(telemetry::registry::global().get_histogram(
          "parallel.thread_pool.task_us")) {
  opts.validate();
  workers_ = opts.resolved_workers();
  capacity_ = opts.queue_capacity;
  threads_.reserve(workers_);
  heartbeats_.reserve(workers_);
  const unsigned pool_id = next_pool_id();
  for (unsigned i = 0; i < workers_; ++i)
    heartbeats_.push_back(
        telemetry::live::watchdog::global().register_heartbeat(
            "parallel.thread_pool.p" + std::to_string(pool_id) + ".worker" +
            std::to_string(i)));
  for (unsigned i = 0; i < workers_; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

thread_pool::~thread_pool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  // Deregister eagerly: dropping our shared_ptrs expires the watchdog's
  // weak slots, and the explicit prune removes them NOW rather than at
  // the sampler's next tick — a destroyed pool must not leave dangling
  // entries in a long-lived watchdog.
  heartbeats_.clear();
  if constexpr (telemetry::kEnabled)
    telemetry::live::watchdog::global().prune_expired();
}

void thread_pool::enqueue(detail::task_item&& item) {
  {
    std::unique_lock lock(mutex_);
    if (capacity_ != 0)
      // Backpressure, with two escape hatches: a stopping pool must not
      // wedge a submitter forever, and a worker submitting (nested
      // fork-join) cannot block — it is its own consumer.
      space_cv_.wait(lock, [this] {
        return stopping_ || queue_.size() < capacity_ ||
               tls_worker_pool == this;
      });
    queue_.push_back(std::move(item));
  }
  tasks_submitted_.add();
  queue_depth_.add();
  cv_.notify_one();
}

void thread_pool::execute(detail::task_item& item) {
  static const auto kTaskFrame =
      telemetry::profile::intern("parallel.thread_pool.task");
  if constexpr (telemetry::kEnabled) {
    const auto run_start = clock::now();
    detail::run_task_item(item, "parallel.thread_pool.task", kTaskFrame);
    const std::uint64_t us = us_between(run_start, clock::now());
    busy_us_.add(us);
    task_us_.record(us);
  } else {
    detail::run_task_item(item, "parallel.thread_pool.task", kTaskFrame);
  }
  tasks_completed_.add();
  if (capacity_ != 0) space_cv_.notify_one();
}

bool thread_pool::can_help() const noexcept { return tls_worker_pool == this; }

bool thread_pool::try_help() {
  if (tls_worker_pool != this) return false;
  std::optional<detail::task_item> task;
  {
    const std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  queue_depth_.sub();
  execute(*task);
  return true;
}

void thread_pool::worker_loop(unsigned idx) {
  tls_worker_pool = this;
  telemetry::live::heartbeat& hb = *heartbeats_[idx];
  std::array<std::optional<detail::task_item>, kPopBatch> batch;
  for (;;) {
    std::size_t got = 0;
    {
      std::unique_lock lock(mutex_);
      if constexpr (telemetry::kEnabled) {
        const auto wait_start = clock::now();
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        idle_us_.add(us_between(wait_start, clock::now()));
      } else {
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      }
      if (queue_.empty()) return;  // stopping and drained
      // Batch-pop: drain several tasks under one lock acquisition, but
      // only from the SURPLUS beyond one-task-per-peer.  A batch of k > 1
      // always leaves at least workers_-1 tasks queued, so peer workers
      // each still get one — tasks that rendezvous across workers (up to
      // pool width) keep the one-task-per-worker spread they rely on.
      const std::size_t surplus =
          queue_.size() - std::min<std::size_t>(queue_.size(), workers_ - 1);
      const std::size_t take =
          std::min(kPopBatch, std::max<std::size_t>(1, surplus));
      for (; got < take; ++got) {
        batch[got] = std::move(queue_.front());
        queue_.pop_front();
      }
    }
    queue_depth_.sub(static_cast<std::int64_t>(got));
    if (capacity_ != 0) space_cv_.notify_one();
    // Busy from here: a task that wedges leaves this worker busy+silent,
    // which is exactly what the stall watchdog flags.
    hb.begin_work();
    for (std::size_t i = 0; i < got; ++i) {
      execute(*batch[i]);
      batch[i].reset();
    }
    hb.end_work();
  }
}

double thread_pool::utilization() const noexcept {
  const auto busy = static_cast<double>(busy_us_.value());
  const auto idle = static_cast<double>(idle_us_.value());
  return busy + idle == 0.0 ? 0.0 : busy / (busy + idle);
}

void thread_pool::run_chunks(std::size_t chunks,
                             const std::function<void(std::size_t)>& fn) {
  if (chunks == 0) return;
  telemetry::span span("parallel.thread_pool.run_chunks");
  span.charge(chunks);
  // Traced runs get a scope span here; submitted chunk tasks capture its
  // context, so every chunk parents under this call in the trace tree.
  telemetry::trace::child_span tspan("parallel.thread_pool.run_chunks",
                                     "parallel");
  // Profiled runs get a frame here; chunk tasks capture this thread's
  // path at submit, so worker-side frames nest under this call.
  static const auto kChunksFrame =
      telemetry::profile::intern("parallel.thread_pool.run_chunks");
  telemetry::profile::probe pprobe(kChunksFrame);
  if (chunks == 1) {
    fn(0);
    return;
  }
  task_group<thread_pool> group(*this);
  for (std::size_t c = 0; c < chunks; ++c)
    group.run([&fn, c] { fn(c); });
  group.wait();
}

thread_pool& thread_pool::default_pool() {
  static thread_pool pool;
  return pool;
}

}  // namespace cgp::parallel
