#include "parallel/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <optional>

#include "telemetry/profile.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/watchdog.hpp"

namespace cgp::parallel {

namespace {

using clock = std::chrono::steady_clock;

std::uint64_t us_between(clock::time_point a, clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

// Distinguishes heartbeat names across pool instances (tests construct
// many short-lived pools; stale registrations self-prune via weak_ptr).
unsigned next_pool_id() {
  static std::atomic<unsigned> id{0};
  return id.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

thread_pool::thread_pool(unsigned n)
    : tasks_submitted_(telemetry::registry::global().get_counter(
          "parallel.thread_pool.tasks_submitted")),
      tasks_completed_(telemetry::registry::global().get_counter(
          "parallel.thread_pool.tasks_completed")),
      busy_us_(telemetry::registry::global().get_counter(
          "parallel.thread_pool.busy_us")),
      idle_us_(telemetry::registry::global().get_counter(
          "parallel.thread_pool.idle_us")),
      queue_depth_(telemetry::registry::global().get_gauge(
          "parallel.thread_pool.queue_depth")),
      task_us_(telemetry::registry::global().get_histogram(
          "parallel.thread_pool.task_us")) {
  workers_ = n != 0 ? n : std::max(1u, std::thread::hardware_concurrency());
  threads_.reserve(workers_);
  heartbeats_.reserve(workers_);
  const unsigned pool_id = next_pool_id();
  for (unsigned i = 0; i < workers_; ++i)
    heartbeats_.push_back(
        telemetry::live::watchdog::global().register_heartbeat(
            "parallel.thread_pool.p" + std::to_string(pool_id) + ".worker" +
            std::to_string(i)));
  for (unsigned i = 0; i < workers_; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

thread_pool::~thread_pool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  // Deregister eagerly: dropping our shared_ptrs expires the watchdog's
  // weak slots, and the explicit prune removes them NOW rather than at
  // the sampler's next tick — a destroyed pool must not leave dangling
  // entries in a long-lived watchdog.
  heartbeats_.clear();
  if constexpr (telemetry::kEnabled)
    telemetry::live::watchdog::global().prune_expired();
}

void thread_pool::submit(std::function<void()> task) {
  queued_task item;
  item.fn = std::move(task);
  if constexpr (telemetry::kEnabled) {
    // Causal propagation: capture the submitter's trace context and
    // shadow-stack path beside the task (run_task restores both in the
    // worker), so the task's span parents under the submitting span
    // (link=async, flow arrow between the lanes) and a flamegraph shows
    // pool tasks under whatever submitted them.  Both captures are plain
    // inline data — no wrapper closure, no extra allocation.
    item.ctx = telemetry::trace::current_context();
    if (item.ctx.active())
      item.flow =
          telemetry::trace::flow_begin("parallel.thread_pool.task", "parallel");
    item.path = telemetry::profile::current_path();
  }
  {
    const std::lock_guard lock(mutex_);
    queue_.push_back(std::move(item));
  }
  tasks_submitted_.add();
  queue_depth_.add();
  cv_.notify_one();
}

void thread_pool::run_task(queued_task& item) {
  if constexpr (telemetry::kEnabled) {
    const bool traced = item.ctx.active();
    if (traced || telemetry::profile::profiler::global().enabled()) {
      std::optional<telemetry::trace::context_scope> adopt;
      std::optional<telemetry::trace::trace_span> span;
      if (traced) {
        adopt.emplace(item.ctx);
        span.emplace("parallel.thread_pool.task", "parallel");
        telemetry::trace::flow_end(item.flow, "parallel.thread_pool.task",
                                   "parallel");
      }
      telemetry::profile::adopt_scope padopt(item.path);
      static const auto kTaskFrame =
          telemetry::profile::intern("parallel.thread_pool.task");
      telemetry::profile::probe probe(kTaskFrame);
      item.fn();
      return;
    }
  }
  item.fn();
}

void thread_pool::worker_loop(unsigned idx) {
  telemetry::live::heartbeat& hb = *heartbeats_[idx];
  for (;;) {
    queued_task task;
    {
      std::unique_lock lock(mutex_);
      if constexpr (telemetry::kEnabled) {
        const auto wait_start = clock::now();
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        idle_us_.add(us_between(wait_start, clock::now()));
      } else {
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      }
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_depth_.sub();
    // Busy from here: a task that wedges leaves this worker busy+silent,
    // which is exactly what the stall watchdog flags.
    hb.begin_work();
    if constexpr (telemetry::kEnabled) {
      const auto run_start = clock::now();
      run_task(task);
      const std::uint64_t us = us_between(run_start, clock::now());
      busy_us_.add(us);
      task_us_.record(us);
    } else {
      run_task(task);
    }
    hb.end_work();
    tasks_completed_.add();
  }
}

double thread_pool::utilization() const noexcept {
  const auto busy = static_cast<double>(busy_us_.value());
  const auto idle = static_cast<double>(idle_us_.value());
  return busy + idle == 0.0 ? 0.0 : busy / (busy + idle);
}

void thread_pool::run_chunks(std::size_t chunks,
                             const std::function<void(std::size_t)>& fn) {
  if (chunks == 0) return;
  telemetry::span span("parallel.thread_pool.run_chunks");
  span.charge(chunks);
  // Traced runs get a scope span here; submitted chunk tasks capture its
  // context, so every chunk parents under this call in the trace tree.
  telemetry::trace::child_span tspan("parallel.thread_pool.run_chunks",
                                     "parallel");
  // Profiled runs get a frame here; chunk tasks capture this thread's
  // path at submit, so worker-side frames nest under this call.
  static const auto kChunksFrame =
      telemetry::profile::intern("parallel.thread_pool.run_chunks");
  telemetry::profile::probe pprobe(kChunksFrame);
  if (chunks == 1) {
    fn(0);
    return;
  }
  struct barrier_state {
    std::mutex m;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  };
  barrier_state bs{.remaining = chunks};
  for (std::size_t c = 0; c < chunks; ++c) {
    submit([&bs, &fn, c] {
      try {
        fn(c);
      } catch (...) {
        const std::lock_guard lock(bs.m);
        if (!bs.error) bs.error = std::current_exception();
      }
      const std::lock_guard lock(bs.m);
      if (--bs.remaining == 0) bs.done.notify_all();
    });
  }
  std::unique_lock lock(bs.m);
  bs.done.wait(lock, [&bs] { return bs.remaining == 0; });
  if (bs.error) std::rethrow_exception(bs.error);
}

thread_pool& thread_pool::default_pool() {
  static thread_pool pool;
  return pool;
}

}  // namespace cgp::parallel
